//! File walking, rule dispatch, suppression filtering, and the audit.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::{Finding, Report};
use crate::rules::{self, FileCtx};
use crate::suppress::Suppressions;

/// Which rule families apply to one file. Derived from its path, the
/// same way the legacy linter derived its two file sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileClass {
    /// Legacy narrow set: library sources (root `src/` + each
    /// `crates/<name>/src/` minus `bin/`). Runs the ported line rules
    /// `float-cmp`, `as-narrowing`, `snapshot-io`, plus
    /// `wal-append-order`.
    pub narrow: bool,
    /// Legacy wide set: narrow plus `bin/`, examples, integration
    /// tests, and benches. Runs `deprecated-shim` and `metric-name`.
    pub wide: bool,
    /// Library crates proper (narrow minus `crates/bench`): code
    /// reachable from the public estimation API, where determinism and
    /// no-abort guarantees bind. Runs the four scope-aware rules.
    pub library: bool,
}

impl FileClass {
    /// Classification used by the selftest fixtures: a library source
    /// file, in scope for every rule family.
    #[must_use]
    pub fn library() -> Self {
        Self { narrow: true, wide: true, library: true }
    }
}

/// Runs every applicable rule over one file, applies suppressions, and
/// appends findings plus the unused-suppression audit to `report`.
pub fn analyze_file(rel_path: &str, source: &str, class: FileClass, report: &mut Report) {
    let ctx = FileCtx::new(rel_path, source);
    let mut suppressions = Suppressions::parse(&ctx.raw_lines);
    let mut raw: Vec<Finding> = Vec::new();

    if class.library {
        rules::hash_iter::check(&ctx, &mut raw);
        rules::par_float::check(&ctx, &mut raw);
        rules::atomics::check(&ctx, &mut raw);
        rules::panic_surface::check(&ctx, &mut raw);
    }
    if class.narrow {
        rules::legacy::float_cmp(&ctx, &mut raw);
        rules::legacy::as_narrowing(&ctx, &mut raw);
        rules::legacy::snapshot_io(&ctx, &mut raw);
        rules::wal_order::check(&ctx, &mut raw);
    }
    if class.wide {
        rules::legacy::deprecated_shim(&ctx, &mut raw);
        rules::legacy::metric_name(&ctx, &mut raw);
        rules::legacy::journal_event_name(&ctx, &mut raw);
    }

    for finding in raw {
        if rules::test_exempt(finding.rule) && ctx.scopes.in_test(finding.line) {
            continue;
        }
        if suppressions.suppresses(finding.line, finding.rule) {
            continue;
        }
        report.findings.push(finding);
    }
    report.unused_suppressions.extend(suppressions.audit(rel_path, &rules::RULES));
    report.files_scanned += 1;
}

/// Walks the workspace and analyzes every first-party file.
#[must_use]
pub fn analyze_workspace(root: &Path) -> Report {
    let mut report = Report::default();
    for (path, class) in workspace_files(root) {
        let Ok(source) = fs::read_to_string(&path) else {
            eprintln!("analyze: unreadable file {}", path.display());
            continue;
        };
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        analyze_file(&rel, &source, class, &mut report);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    report.unused_suppressions.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Crates excluded from scanning entirely: the analyzer and xtask are
/// tooling (their sources are full of fixture strings that would trip
/// the rules), and `vendor/` is third-party.
const TOOLING_CRATES: [&str; 2] = ["xtask", "analyze"];

/// Enumerates every first-party file with its classification, sorted by
/// path. The sets mirror the legacy linter: narrow = library sources
/// minus `bin/`; wide additionally covers `bin/`, examples, integration
/// tests, and benches.
#[must_use]
pub fn workspace_files(root: &Path) -> Vec<(PathBuf, FileClass)> {
    let mut out: Vec<(PathBuf, FileClass)> = Vec::new();
    let mut push = |path: PathBuf, class: FileClass| {
        if let Some(existing) = out.iter_mut().find(|(p, _)| *p == path) {
            existing.1.narrow |= class.narrow;
            existing.1.wide |= class.wide;
            existing.1.library |= class.library;
        } else {
            out.push((path, class));
        }
    };

    // Root package: src/ is narrow+wide+library, examples/tests wide.
    let mut files = Vec::new();
    collect_rs_files(&root.join("src"), &mut files);
    for f in files.drain(..) {
        push(f, FileClass { narrow: true, wide: true, library: true });
    }
    collect_rs_files_deep(&root.join("src"), &mut files);
    for f in files.drain(..) {
        push(f, FileClass { narrow: false, wide: true, library: false });
    }
    for dir in [root.join("examples"), root.join("tests")] {
        collect_rs_files_deep(&dir, &mut files);
        for f in files.drain(..) {
            push(f, FileClass { narrow: false, wide: true, library: false });
        }
    }

    // Workspace crates, tooling excluded.
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut names: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.is_dir() && p.file_name().is_some_and(|n| !TOOLING_CRATES.iter().any(|t| n == *t))
            })
            .collect();
        names.sort();
        for krate in names {
            let library = krate.file_name().is_some_and(|n| n != "bench");
            collect_rs_files(&krate.join("src"), &mut files);
            for f in files.drain(..) {
                push(f, FileClass { narrow: true, wide: true, library });
            }
            collect_rs_files_deep(&krate.join("src"), &mut files);
            for f in files.drain(..) {
                push(f, FileClass { narrow: false, wide: true, library: false });
            }
            for dir in [krate.join("benches"), krate.join("tests")] {
                collect_rs_files_deep(&dir, &mut files);
                for f in files.drain(..) {
                    push(f, FileClass { narrow: false, wide: true, library: false });
                }
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/`
/// subtrees (legacy narrow-set walk).
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Recursively collects every `.rs` file under `dir`, including `bin/`
/// (legacy wide-set walk).
fn collect_rs_files_deep(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files_deep(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_drops_finding_and_audit_flags_dead_allow() {
        let mut report = Report::default();
        analyze_file(
            "crates/core/src/x.rs",
            "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(panic-surface): boot path\n}\n",
            FileClass::library(),
            &mut report,
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.unused_suppressions.is_empty());

        let mut dead = Report::default();
        analyze_file(
            "crates/core/src/y.rs",
            "fn f() {} // lint:allow(panic-surface): nothing here\n",
            FileClass::library(),
            &mut dead,
        );
        assert_eq!(dead.unused_suppressions.len(), 1);
        assert_eq!(dead.unused_suppressions[0].reason, "no finding on this line");
    }

    #[test]
    fn test_regions_exempt_for_library_rules_only() {
        let src = "fn lib() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); let c = r.counter(\"dbhist_bad\"); }\n\
                   }\n";
        let mut report = Report::default();
        analyze_file("crates/core/src/lib.rs", src, FileClass::library(), &mut report);
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(!rules.contains(&"panic-surface"), "{rules:?}");
        assert!(rules.contains(&"metric-name"), "metric namespace is shared with tests: {rules:?}");
    }

    #[test]
    fn class_gates_rule_families() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        let mut bench = Report::default();
        analyze_file(
            "crates/bench/src/experiments.rs",
            src,
            FileClass { narrow: true, wide: true, library: false },
            &mut bench,
        );
        assert!(bench.findings.is_empty(), "bench keeps its unwraps: {:?}", bench.findings);
        let mut lib = Report::default();
        analyze_file("crates/core/src/f.rs", src, FileClass::library(), &mut lib);
        assert_eq!(lib.findings.len(), 1);
    }
}
