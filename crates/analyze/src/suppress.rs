//! `lint:allow` suppression markers with usage auditing.
//!
//! The marker syntax is unchanged from the legacy linter:
//!
//! * `// lint:allow(<rule>): <justification>` suppresses `<rule>` on the
//!   same line;
//! * `// lint:allow-next-line(<rule>): <justification>` suppresses it on
//!   the following line (the standalone form survives rustfmt
//!   rewrapping);
//! * several rules may be listed comma-separated inside one marker.
//!
//! What is new is the audit: every marker records whether it actually
//! suppressed a finding during the run. A marker that suppressed nothing
//! is reported as `unused-suppression` and fails the gate — dead allows
//! are how a suppression-based gate rots.

use crate::diag::UnusedSuppression;

/// One parsed `lint:allow` entry (one rule of one marker).
#[derive(Debug)]
struct Marker {
    /// Line the marker text sits on (1-based).
    marker_line: usize,
    /// Line whose findings it suppresses (same line, or the next).
    target_line: usize,
    rule: String,
    used: bool,
}

/// All suppression markers of one file, with usage tracking.
#[derive(Debug, Default)]
pub struct Suppressions {
    markers: Vec<Marker>,
}

impl Suppressions {
    /// Parses every marker in `raw_lines` (the unmasked source — markers
    /// live in comments, which masking blanks).
    #[must_use]
    pub fn parse(raw_lines: &[String]) -> Self {
        let mut markers = Vec::new();
        for (idx, raw) in raw_lines.iter().enumerate() {
            let line = idx + 1;
            for rule in parse_allow_markers(raw, "lint:allow(") {
                markers.push(Marker {
                    marker_line: line,
                    target_line: line,
                    rule: rule.to_string(),
                    used: false,
                });
            }
            for rule in parse_allow_markers(raw, "lint:allow-next-line(") {
                markers.push(Marker {
                    marker_line: line,
                    target_line: line + 1,
                    rule: rule.to_string(),
                    used: false,
                });
            }
        }
        Self { markers }
    }

    /// `true` if `rule` is suppressed on 1-based `line`; marks every
    /// matching marker as used.
    pub fn suppresses(&mut self, line: usize, rule: &str) -> bool {
        let mut hit = false;
        for m in &mut self.markers {
            if m.target_line == line && m.rule == rule {
                m.used = true;
                hit = true;
            }
        }
        hit
    }

    /// Markers that suppressed nothing, or name a rule that does not
    /// exist. `known_rules` is the full rule catalog.
    #[must_use]
    pub fn audit(&self, file: &str, known_rules: &[&str]) -> Vec<UnusedSuppression> {
        let mut out = Vec::new();
        for m in &self.markers {
            if !known_rules.contains(&m.rule.as_str()) {
                out.push(UnusedSuppression {
                    file: file.to_string(),
                    line: m.marker_line,
                    rule: m.rule.clone(),
                    reason: "unknown rule",
                });
            } else if !m.used {
                out.push(UnusedSuppression {
                    file: file.to_string(),
                    line: m.marker_line,
                    rule: m.rule.clone(),
                    reason: "no finding on this line",
                });
            }
        }
        out
    }
}

/// Extracts the rule list from every `marker` occurrence in `raw_line`,
/// byte-for-byte the legacy parser: everything between the marker's `(`
/// and the next `)`, split on commas, trimmed.
fn parse_allow_markers<'a>(raw_line: &'a str, marker: &str) -> Vec<&'a str> {
    let mut allowed = Vec::new();
    let mut rest = raw_line;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                allowed.push(rule.trim());
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    allowed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(src: &str) -> Vec<String> {
        src.lines().map(str::to_string).collect()
    }

    #[test]
    fn same_line_and_next_line_targets() {
        let mut s = Suppressions::parse(&lines(
            "x.unwrap(); // lint:allow(panic-surface): startup\n\
             // lint:allow-next-line(float-cmp): exact sentinel\n\
             if a == 0.0 {}\n",
        ));
        assert!(s.suppresses(1, "panic-surface"));
        assert!(s.suppresses(3, "float-cmp"));
        assert!(!s.suppresses(2, "float-cmp"), "marker line itself is not suppressed");
        assert!(!s.suppresses(1, "float-cmp"));
    }

    #[test]
    fn comma_separated_rules() {
        let mut s =
            Suppressions::parse(&lines("y(); // lint:allow(float-cmp, as-narrowing): both\n"));
        assert!(s.suppresses(1, "float-cmp"));
        assert!(s.suppresses(1, "as-narrowing"));
    }

    #[test]
    fn audit_flags_unused_and_unknown() {
        let mut s = Suppressions::parse(&lines(
            "a(); // lint:allow(panic-surface): used below\n\
             b(); // lint:allow(no-such-rule): typo\n\
             c(); // lint:allow(float-cmp): never fires\n",
        ));
        assert!(s.suppresses(1, "panic-surface"));
        let audit = s.audit("src/x.rs", &["panic-surface", "float-cmp"]);
        assert_eq!(audit.len(), 2);
        assert_eq!(audit[0].rule, "no-such-rule");
        assert_eq!(audit[0].reason, "unknown rule");
        assert_eq!(audit[1].rule, "float-cmp");
        assert_eq!(audit[1].reason, "no finding on this line");
    }
}
