//! Brace/scope tracking over the token stream.
//!
//! Two views are built from one pass over a file:
//!
//! * **Test regions** — which lines sit inside a `#[cfg(test)]` item.
//!   Library-only rules skip those lines. The detection is kept
//!   bit-compatible with the legacy line scanner (armed by a masked line
//!   containing `cfg(test)`, engaged at the next opening brace, released
//!   when the depth unwinds), so the ported rules report identically.
//! * **Scope contexts** — a stack of named scopes (`fn foo`, `impl Bar`,
//!   `mod baz`, closures) so diagnostics can say *where* a finding lives
//!   and scope-aware rules can bind names to the scope that declared
//!   them.

use crate::lexer::{Token, TokenKind};

/// What kind of item opened a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    Fn,
    Impl,
    Mod,
    Trait,
    Closure,
    /// Any other `{ … }` (match arms, plain blocks, struct literals…).
    Block,
}

/// One entry of the scope stack.
#[derive(Debug, Clone)]
struct Scope {
    kind: ScopeKind,
    name: String,
}

/// Per-line scope information for one file.
#[derive(Debug)]
pub struct Scopes {
    /// `test_lines[i]` is `true` if 1-based line `i + 1` is inside a
    /// `#[cfg(test)]` region.
    test_lines: Vec<bool>,
    /// Innermost named context per 1-based line (e.g. `"fn lex_line"`,
    /// `"impl Registry > fn counter"`, `"closure"`). Empty at top level.
    contexts: Vec<String>,
}

impl Scopes {
    /// `true` if 1-based `line` is inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test(&self, line: usize) -> bool {
        line.checked_sub(1).and_then(|i| self.test_lines.get(i)).copied().unwrap_or(false)
    }

    /// Human-readable innermost context for 1-based `line` (empty string
    /// at module top level).
    #[must_use]
    pub fn context(&self, line: usize) -> &str {
        line.checked_sub(1).and_then(|i| self.contexts.get(i)).map_or("", String::as_str)
    }
}

/// Builds scope information from a file's masked lines and token stream.
#[must_use]
pub fn analyze(masked: &[String], tokens: &[Token]) -> Scopes {
    Scopes { test_lines: test_region_lines(masked), contexts: context_lines(masked.len(), tokens) }
}

/// Legacy-compatible `#[cfg(test)]` region detection over masked lines.
fn test_region_lines(masked: &[String]) -> Vec<bool> {
    let mut out = Vec::with_capacity(masked.len());
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_until: Option<i64> = None;
    for line in masked {
        if test_until.is_none() && line.contains("cfg(test)") {
            pending_test = true;
        }
        let opens = i64::try_from(line.bytes().filter(|&b| b == b'{').count()).unwrap_or(0);
        let closes = i64::try_from(line.bytes().filter(|&b| b == b'}').count()).unwrap_or(0);
        if pending_test && opens > 0 {
            test_until = Some(depth);
            pending_test = false;
        }
        out.push(test_until.is_some());
        depth += opens - closes;
        if let Some(t) = test_until {
            if depth <= t {
                test_until = None;
            }
        }
    }
    out
}

/// Idents that, when immediately preceding a `|`, mark it as a closure
/// opener rather than a binary/bitwise operator.
const CLOSURE_LEAD_IDENTS: [&str; 2] = ["move", "return"];

/// Builds the innermost-context string per line by walking braces.
fn context_lines(n_lines: usize, tokens: &[Token]) -> Vec<String> {
    let mut contexts = vec![String::new(); n_lines];
    let mut stack: Vec<Scope> = Vec::new();
    /// Re-renders the joined context after a push/pop.
    fn render(stack: &[Scope]) -> String {
        let named: Vec<String> = stack
            .iter()
            .filter(|s| s.kind != ScopeKind::Block)
            .map(|s| {
                if s.name.is_empty() {
                    match s.kind {
                        ScopeKind::Closure => "closure".to_string(),
                        _ => String::new(),
                    }
                } else {
                    s.name.clone()
                }
            })
            .filter(|s| !s.is_empty())
            .collect();
        named.join(" > ")
    }

    // The declaration a future `{` will be attributed to.
    let mut pending: Option<Scope> = None;
    let mut current = String::new();
    let mut line_cursor = 0usize; // 0-based index of next line to stamp
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // Stamp every line up to (and including) this token's line with
        // the context that was current when the line started.
        while line_cursor < n_lines && line_cursor + 1 < t.line {
            contexts[line_cursor] = current.clone();
            line_cursor += 1;
        }
        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "fn" | "mod" | "trait" => {
                    let kw = t.text.clone();
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokenKind::Ident) {
                        let kind = match kw.as_str() {
                            "fn" => ScopeKind::Fn,
                            "mod" => ScopeKind::Mod,
                            _ => ScopeKind::Trait,
                        };
                        pending = Some(Scope { kind, name: format!("{kw} {}", name.text) });
                    }
                }
                "impl" => {
                    // `impl Type` / `impl Trait for Type`: take the last
                    // ident before the opening brace as the subject.
                    let mut j = i + 1;
                    let mut subject = String::new();
                    while let Some(n) = tokens.get(j) {
                        if n.is_punct('{') || n.is_punct(';') {
                            break;
                        }
                        if n.kind == TokenKind::Ident && n.text != "for" && n.text != "where" {
                            subject = n.text.clone();
                        }
                        j += 1;
                    }
                    pending =
                        Some(Scope { kind: ScopeKind::Impl, name: format!("impl {subject}") });
                }
                _ => {}
            },
            TokenKind::Punct => match t.text.as_bytes().first() {
                Some(b'|') => {
                    // Closure parameter list vs binary `|` / `||`: treat
                    // as a closure opener when preceded by a token that
                    // cannot end an expression.
                    let opens_closure = match (i == 0, tokens.get(i.wrapping_sub(1))) {
                        (true, _) | (_, None) => true,
                        (_, Some(p)) if p.kind == TokenKind::Punct => {
                            matches!(p.text.as_bytes()[0], b'(' | b',' | b'=' | b'{' | b';')
                        }
                        (_, Some(p)) if p.kind == TokenKind::Ident => {
                            CLOSURE_LEAD_IDENTS.contains(&p.text.as_str())
                        }
                        _ => false,
                    };
                    if opens_closure && pending.is_none() {
                        // Find the closing `|` of the parameter list; the
                        // closure becomes pending only if a `{` follows it
                        // (braceless closures open no scope). If no closer
                        // exists before a `;` or `{`, this was a binary
                        // `|` after all — reprocess nothing, skip nothing.
                        let mut close = None;
                        let mut j = i + 1;
                        while let Some(n) = tokens.get(j) {
                            if n.is_punct('|') {
                                close = Some(j);
                                break;
                            }
                            if n.is_punct(';') || n.is_punct('{') {
                                break;
                            }
                            j += 1;
                        }
                        if let Some(close) = close {
                            if tokens.get(close + 1).is_some_and(|n| n.is_punct('{')) {
                                pending =
                                    Some(Scope { kind: ScopeKind::Closure, name: String::new() });
                            }
                            i = close; // skip the parameter list
                        }
                    }
                }
                Some(b'{') => {
                    let scope = pending
                        .take()
                        .unwrap_or(Scope { kind: ScopeKind::Block, name: String::new() });
                    stack.push(scope);
                    current = render(&stack);
                }
                Some(b'}') => {
                    stack.pop();
                    pending = None;
                    current = render(&stack);
                }
                Some(b';') => {
                    // A `;` discards a pending declaration (`mod x;`).
                    pending = None;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    while line_cursor < n_lines {
        contexts[line_cursor] = current.clone();
        line_cursor += 1;
    }
    contexts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes_of(src: &str) -> Scopes {
        let lexed = lex(src);
        analyze(&lexed.masked, &lexed.tokens)
    }

    #[test]
    fn cfg_test_region_matches_legacy_shape() {
        let s =
            scopes_of("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n");
        assert!(!s.in_test(1));
        assert!(s.in_test(4), "inside the test module");
        assert!(!s.in_test(6), "after the test module");
    }

    #[test]
    fn contexts_attribute_fns_and_impls() {
        let s =
            scopes_of("impl Registry {\n    pub fn counter(&self) {\n        body();\n    }\n}\n");
        assert_eq!(s.context(3), "impl Registry > fn counter");
        assert_eq!(s.context(4), "impl Registry", "fn's closing line unwinds to the impl");
    }

    #[test]
    fn closures_open_scopes() {
        let s = scopes_of("fn f() {\n    run(|x| {\n        inner();\n    });\n}\n");
        assert_eq!(s.context(3), "fn f > closure");
    }

    #[test]
    fn bitwise_or_is_not_a_closure() {
        let s = scopes_of("fn f(a: u32, b: u32) {\n    let c = a | b;\n    body();\n}\n");
        assert_eq!(s.context(3), "fn f");
    }

    #[test]
    fn braceless_items_do_not_leak_pending() {
        let s = scopes_of("mod helpers;\nfn real() {\n    body();\n}\n");
        assert_eq!(s.context(3), "fn real");
    }
}
