//! `dbhist-analyze` — scope-aware determinism & concurrency static
//! analysis for the dbhist workspace, invoked as `cargo xtask analyze`.
//!
//! The paper's estimates are only trustworthy if they are reproducible:
//! every layer of this workspace pins *bit-identical estimates* as its
//! invariant (serial vs parallel builds, persisted vs rebuilt
//! synopses). This crate checks that invariant statically, where the
//! runtime proptests cannot reach:
//!
//! ```text
//! lexer  →  scopes  →  rules  →  diagnostics
//! ```
//!
//! * [`lexer`] promotes the legacy line masker into a full token stream
//!   with line/column spans, masking comments and string/char literals
//!   byte-identically to the old scanner (verified by proptest).
//! * [`scope`] walks braces to attribute every line to its
//!   `fn`/`impl`/`mod`/closure context and to the legacy-compatible
//!   `#[cfg(test)]` regions.
//! * [`rules`] hosts four scope-aware rules guarding the bit-identity
//!   and upcoming-concurrency invariants (`hash-iter-order`,
//!   `par-float-reduction`, `atomic-ordering`, `panic-surface`) plus
//!   the five ported legacy line rules (`float-cmp`, `as-narrowing`,
//!   `deprecated-shim`, `metric-name`, `snapshot-io`).
//! * [`diag`] renders structured findings (file:line:col, excerpt, rule
//!   id, scope context, fix hint) as human lines or JSON.
//! * [`suppress`] implements the `lint:allow(...)` /
//!   `lint:allow-next-line(...)` escape hatches and audits markers that
//!   suppressed nothing — a dead allow fails the gate.
//! * [`engine`] classifies workspace files into the legacy narrow/wide
//!   sets plus the library-crate set and dispatches the rules.
//! * [`selftest`] seeds a violating/clean/suppressed fixture triple per
//!   rule so CI proves the gate itself has not rotted.
//!
//! Dependency-free by design: like xtask, the analyzer must build in
//! the registry-less container before anything else does.

#![forbid(unsafe_code)]

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod scope;
pub mod selftest;
pub mod suppress;

pub use diag::{Finding, Report, UnusedSuppression};
pub use engine::{analyze_file, analyze_workspace, workspace_files, FileClass};
pub use rules::{FileCtx, RULES};
