//! `par-float-reduction` — parallel float reductions break bit-identity.
//!
//! f64 addition is not associative: `(a + b) + c != a + (b + c)` in the
//! low-order bits, so a rayon `sum()`/`fold()`/`reduce()` whose chunk
//! boundaries depend on thread scheduling produces run-to-run different
//! results. The workspace invariant is *bit-identical* estimates between
//! serial and parallel builds, so float reductions must either stay
//! serial or reduce over deterministically ordered chunks.
//!
//! Detection: a `.par_iter()` / `.into_par_iter()` / `.par_chunks()` /
//! `.par_bridge()` combinator whose method chain (to the statement end)
//! contains a top-level `.sum()` / `.product()` / `.fold()` /
//! `.reduce()` *and* float evidence anywhere in the chain (an `f64`/
//! `f32` ident, a float literal, or a frequency-like identifier). A
//! serial `sum()` inside a parallel `map`/`for_each` body is fine — it
//! sits at nesting depth > 0 and is deterministic per item.

use super::FileCtx;
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Rayon combinators that introduce scheduling-dependent order.
const PAR_COMBINATORS: [&str; 5] =
    ["par_iter", "par_iter_mut", "into_par_iter", "par_chunks", "par_bridge"];

/// Non-associative reducers when applied to floats.
const REDUCERS: [&str; 4] = ["sum", "product", "fold", "reduce"];

/// Identifier fragments marking frequency-like floats (same hints as the
/// legacy `float-cmp` rule).
const FLOAT_HINTS: [&str; 3] = ["freq", "mass", "weight"];

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident
            || !PAR_COMBINATORS.contains(&t.text.as_str())
            || i == 0
            || !tokens[i - 1].is_punct('.')
        {
            continue;
        }
        // Walk the method chain forward to the end of the statement,
        // tracking nesting relative to the combinator.
        let mut depth: i64 = 0;
        let mut reducer: Option<usize> = None;
        let mut float_evidence = false;
        let mut j = i + 1;
        while let Some(n) = tokens.get(j) {
            match n.kind {
                TokenKind::Punct => match n.text.as_bytes().first() {
                    Some(b'(' | b'[' | b'{') => depth += 1,
                    Some(b')' | b']' | b'}') => {
                        depth -= 1;
                        if depth < 0 {
                            break; // end of the enclosing call
                        }
                    }
                    Some(b';') if depth == 0 => break,
                    _ => {}
                },
                TokenKind::Ident => {
                    if depth == 0
                        && REDUCERS.contains(&n.text.as_str())
                        && tokens.get(j - 1).is_some_and(|p| p.is_punct('.'))
                    {
                        reducer.get_or_insert(j);
                    }
                    let lower = n.text.to_ascii_lowercase();
                    if n.text == "f64"
                        || n.text == "f32"
                        || FLOAT_HINTS.iter().any(|h| lower.contains(h))
                    {
                        float_evidence = true;
                    }
                }
                TokenKind::Number
                    if n.text.contains('.') || n.text.contains("f64") || n.text.contains("f32") =>
                {
                    float_evidence = true;
                }
                _ => {}
            }
            j += 1;
        }
        if let Some(r) = reducer {
            if float_evidence {
                out.push(ctx.finding(tokens[r].line, tokens[r].col, "par-float-reduction"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("crates/core/src/marginal.rs", src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn parallel_float_sum_is_flagged() {
        let v =
            run("fn f(w: &[f64]) -> f64 {\n    w.par_iter().map(|x| x * 2.0).sum::<f64>()\n}\n");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("par-float-reduction", 2));
    }

    #[test]
    fn parallel_integer_sum_is_fine() {
        let v = run("fn f(c: &[u64]) -> u64 {\n    c.par_iter().map(|x| x + 1).sum::<u64>()\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn serial_float_sum_is_fine() {
        assert!(run("fn f(w: &[f64]) -> f64 { w.iter().sum::<f64>() }\n").is_empty());
    }

    #[test]
    fn parallel_fold_over_masses_is_flagged() {
        let v = run(
            "fn f(cells: &[Cell]) -> f64 {\n    cells.par_iter().fold(|| 0.0, |acc, c| acc + c.mass).reduce(|| 0.0, |a, b| a + b)\n}\n",
        );
        assert!(!v.is_empty(), "{v:?}");
    }

    #[test]
    fn serial_sum_inside_parallel_for_each_is_fine() {
        let v = run(
            "fn f(rows: &mut [Row]) {\n    rows.par_iter_mut().for_each(|r| { r.total = r.freqs.iter().sum(); });\n}\n",
        );
        assert!(v.is_empty(), "the inner sum is per-item deterministic: {v:?}");
    }

    #[test]
    fn parallel_collect_is_fine() {
        let v =
            run("fn f(w: &[f64]) -> Vec<f64> {\n    w.par_iter().map(|x| x * 2.0).collect()\n}\n");
        assert!(v.is_empty(), "{v:?}");
    }
}
