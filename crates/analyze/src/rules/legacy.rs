//! The five rules ported from the legacy line scanner
//! (`crates/xtask/src/lint.rs`), now running over the shared masked
//! lines produced by the lexer.
//!
//! The per-line detection helpers are kept byte-for-byte identical to
//! the legacy implementations so that `cargo xtask analyze` reports
//! exactly what `cargo xtask lint` reported before the port (verified by
//! `tests/legacy_parity.rs` against a frozen copy of the old scanner).
//!
//! * `float-cmp` — no `==` / `!=` where an operand looks like a float
//!   frequency (literal with a fraction, or a `freq`/`mass`/`weight`
//!   identifier). Frequencies are accumulated `f64` sums; exact
//!   comparison hides representation error.
//! * `as-narrowing` — in codec / bucket arithmetic files, no bare `as`
//!   casts to a narrower integer type; wire-format widths are a
//!   contract, so use `try_from` and surface `HistogramError::Codec`.
//! * `deprecated-shim` — the `DbHistogram::build_*` shims were removed
//!   outright (construction goes through `SynopsisBuilder`); the rule
//!   stays on as a reintroduction guard, so no first-party file may call
//!   or re-add them.
//! * `metric-name` — every `dbhist_`-prefixed metric literal follows
//!   `dbhist_<subsystem>_<name>_<unit>`; the registry is a process-wide
//!   namespace scraped by external tooling.
//! * `snapshot-io` — no library code outside `crates/persist/` reads
//!   file bytes directly; snapshot bytes must funnel through the
//!   validating `dbhist_persist::read_file` path.
//! * `journal-event-name` — event-type tags rendered into the telemetry
//!   journal's JSONL stream (`JournalEvent::Variant { .. } => "tag"`
//!   match arms) are `snake_case`; downstream log pipelines key on the
//!   tag, so casing is a wire contract like the metric namespace.

use super::FileCtx;
use crate::diag::Finding;

/// Identifier fragments that mark an operand as a frequency-like float.
const FLOAT_IDENT_HINTS: [&str; 3] = ["freq", "mass", "weight"];

/// Narrow integer targets banned as bare `as` casts in codec/bucket files.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Deprecated construction entry points for the `deprecated-shim` rule.
const SHIM_PATTERNS: [&str; 3] =
    ["DbHistogram::build_mhist", "DbHistogram::build_grid", "DbHistogram::build_wavelet"];

/// Approved trailing unit segments for the `metric-name` rule.
const METRIC_UNITS: [&str; 7] = ["total", "seconds", "ns", "us", "bytes", "ratio", "count"];

/// Derived-name suffixes the Prometheus exporter appends to a histogram
/// family (`<name>_bucket`, `<name>_sum`; `_count` is already a unit).
const METRIC_DERIVED_SUFFIXES: [&str; 2] = ["bucket", "sum"];

/// Raw-file read entry points banned outside `crates/persist/`.
/// `fs::read(` deliberately does not match `fs::read_dir(` or
/// `fs::read_to_string(`.
const SNAPSHOT_IO_PATTERNS: [&str; 3] = ["fs::read(", "File::open(", "read_to_end("];

/// Path fragments that put a file in scope for the `as-narrowing` rule.
const NARROWING_SCOPE: [&str; 4] = ["codec", "mhist", "bbox", "alloc"];

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Matches `pattern` in `masked` at word-ish boundaries: the byte before
/// a match must not be an identifier byte (so `try_unwrap()` never
/// matches `.unwrap()` — the leading dot anchors it anyway, but macro
/// patterns like `panic!` need the guard).
pub(crate) fn find_banned(masked: &str, pattern: &str) -> bool {
    let needs_guard = pattern.as_bytes().first().copied().is_some_and(is_ident_byte);
    let mut start = 0;
    while let Some(pos) = masked[start..].find(pattern) {
        let abs = start + pos;
        if !needs_guard || abs == 0 || !is_ident_byte(masked.as_bytes()[abs - 1]) {
            return true;
        }
        start = abs + pattern.len();
    }
    false
}

/// True if `text` contains a float literal: a digit, a `.`, then a digit.
/// `0..5` (range syntax) and `x.0` (tuple field) deliberately do not match.
fn has_float_literal(text: &str) -> bool {
    let b = text.as_bytes();
    (2..b.len()).any(|i| b[i].is_ascii_digit() && b[i - 1] == b'.' && b[i - 2].is_ascii_digit())
}

/// True if `text` contains an identifier with a frequency-like fragment.
fn has_float_ident(text: &str) -> bool {
    text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_').any(|tok| {
        let lower = tok.to_ascii_lowercase();
        FLOAT_IDENT_HINTS.iter().any(|h| lower.contains(h))
    })
}

/// Detects `==` / `!=` comparisons whose nearby operand text looks like a
/// float frequency. The operand window is heuristic (40 bytes each side,
/// clipped at expression separators) — this is a lint, not a type
/// checker; clippy's `float_cmp` is the semantic backstop.
fn has_float_cmp(masked: &str) -> bool {
    let b = masked.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let is_eq = b[i] == b'=' && b[i + 1] == b'=';
        let is_ne = b[i] == b'!' && b[i + 1] == b'=';
        if (is_eq || is_ne)
            && (i == 0
                || !matches!(
                    b[i - 1],
                    b'<' | b'>'
                        | b'='
                        | b'!'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ))
            && b.get(i + 2) != Some(&b'=')
        {
            let lo = i.saturating_sub(40);
            let hi = (i + 2 + 40).min(b.len());
            let left = clip_operand(&masked[lo..i], true);
            let right = clip_operand(&masked[i + 2..hi], false);
            for side in [left, right] {
                if has_float_literal(side) || has_float_ident(side) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Clips an operand window at the nearest expression separator so that
/// unrelated neighbouring arguments don't leak into the float heuristic.
fn clip_operand(window: &str, from_end: bool) -> &str {
    const SEPS: [char; 6] = [',', ';', '(', ')', '{', '}'];
    if from_end {
        match window.rfind(SEPS) {
            Some(p) => &window[p + 1..],
            None => window,
        }
    } else {
        match window.find(SEPS) {
            Some(p) => &window[..p],
            None => window,
        }
    }
}

/// Detects a bare `as <narrow-int>` cast in the masked line.
fn has_narrowing_cast(masked: &str) -> bool {
    let b = masked.as_bytes();
    let mut start = 0;
    while let Some(pos) = masked[start..].find(" as ") {
        let abs = start + pos;
        let after = &masked[abs + 4..];
        let target: String = after.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
        if NARROW_TARGETS.contains(&target.as_str()) {
            // `as` must be a standalone word (preceded by non-ident byte).
            if abs == 0 || !is_ident_byte(b[abs]) {
                return true;
            }
        }
        start = abs + 4;
    }
    false
}

/// True if this relative path is in scope for the `as-narrowing` rule.
#[must_use]
pub fn narrowing_applies(rel_path: &str) -> bool {
    let normalized = rel_path.replace('\\', "/");
    NARROWING_SCOPE.iter().any(|frag| {
        normalized.rsplit('/').next().is_some_and(|file| file.contains(frag))
            || normalized.contains(&format!("/{frag}/"))
    })
}

/// True if this relative path may perform raw file reads.
#[must_use]
pub fn snapshot_io_exempt(rel_path: &str) -> bool {
    rel_path.replace('\\', "/").contains("crates/persist/")
}

/// True if this relative path may call the removed shims. Nothing is:
/// the defining module's exemption ended when the shims were deleted, so
/// the rule now guards against reintroduction everywhere.
#[must_use]
pub fn shim_exempt(_rel_path: &str) -> bool {
    false
}

/// Returns the first malformed `dbhist_`-prefixed metric-name literal on
/// this raw (unmasked) line, if any.
fn bad_metric_name(raw_line: &str) -> Option<&str> {
    let bytes = raw_line.as_bytes();
    let mut start = 0;
    while let Some(pos) = raw_line[start..].find("\"dbhist_") {
        let name_start = start + pos + 1;
        let mut end = name_start;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &raw_line[name_start..end];
        if !metric_name_ok(name) || bytes.get(end).is_some_and(u8::is_ascii_uppercase) {
            return Some(name);
        }
        start = end;
    }
    None
}

/// Validates one extracted metric name against the
/// `dbhist_<subsystem>_<name>_<unit>` convention.
fn metric_name_ok(name: &str) -> bool {
    let segments: Vec<&str> = name.split('_').collect();
    if segments.len() < 4 || segments.iter().any(|s| s.is_empty()) {
        return false;
    }
    let last = segments[segments.len() - 1];
    if METRIC_UNITS.contains(&last) {
        return true;
    }
    // `<family>_bucket` / `<family>_sum` derived series: valid iff the
    // family under the suffix is.
    METRIC_DERIVED_SUFFIXES.contains(&last)
        && segments.len() >= 5
        && METRIC_UNITS.contains(&segments[segments.len() - 2])
}

/// `float-cmp` over the shared masked lines.
pub fn float_cmp(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if has_float_cmp(masked) {
            out.push(ctx.finding(idx + 1, 0, "float-cmp"));
        }
    }
}

/// `as-narrowing` over the shared masked lines (path-scoped).
pub fn as_narrowing(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if !narrowing_applies(&ctx.rel_path) {
        return;
    }
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if has_narrowing_cast(masked) {
            out.push(ctx.finding(idx + 1, 0, "as-narrowing"));
        }
    }
}

/// `snapshot-io` over the shared masked lines (persist crate exempt).
pub fn snapshot_io(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if snapshot_io_exempt(&ctx.rel_path) {
        return;
    }
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if SNAPSHOT_IO_PATTERNS.iter().any(|p| find_banned(masked, p)) {
            out.push(ctx.finding(idx + 1, 0, "snapshot-io"));
        }
    }
}

/// `deprecated-shim` over the shared masked lines (no exemptions since
/// the shims' removal; the engine runs this over the wide first-party
/// file set as a reintroduction guard).
pub fn deprecated_shim(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if shim_exempt(&ctx.rel_path) {
        return;
    }
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if SHIM_PATTERNS.iter().any(|p| find_banned(masked, p)) {
            out.push(ctx.finding(idx + 1, 0, "deprecated-shim"));
        }
    }
}

/// `metric-name` over *raw* lines — the names live inside the string
/// literals that masking blanks out.
pub fn metric_name(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (idx, raw) in ctx.raw_lines.iter().enumerate() {
        if bad_metric_name(raw).is_some() {
            out.push(ctx.finding(idx + 1, 0, "metric-name"));
        }
    }
}

/// Validates one journal event-type tag: lowercase `snake_case`, leading
/// letter.
fn event_name_ok(name: &str) -> bool {
    let b = name.as_bytes();
    !b.is_empty()
        && b[0].is_ascii_lowercase()
        && b.iter().all(|&c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
}

/// Returns the first non-`snake_case` event tag on this raw (unmasked)
/// line. Only `=> "tag"` match arms on lines naming a `JournalEvent::`
/// variant are tag definitions; rendering lines (`=> {` bodies) carry no
/// arrow-literal and are ignored.
fn bad_event_name(raw_line: &str) -> Option<&str> {
    if !raw_line.contains("JournalEvent::") {
        return None;
    }
    let mut start = 0;
    while let Some(pos) = raw_line[start..].find("=> \"") {
        let lit_start = start + pos + 4;
        let rest = &raw_line[lit_start..];
        let end = rest.find('"')?;
        let name = &rest[..end];
        if !event_name_ok(name) {
            return Some(name);
        }
        start = lit_start + end + 1;
    }
    None
}

/// `journal-event-name` over *raw* lines — like `metric-name`, the tags
/// live inside string literals that masking blanks out.
pub fn journal_event_name(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (idx, raw) in ctx.raw_lines.iter().enumerate() {
        if bad_event_name(raw).is_some() {
            out.push(ctx.finding(idx + 1, 0, "journal-event-name"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rule: fn(&FileCtx, &mut Vec<Finding>), path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        rule(&ctx, &mut out);
        out
    }

    #[test]
    fn float_cmp_flags_frequency_equality() {
        let v = run(float_cmp, "crates/core/src/x.rs", "if freq == 0.0 { return; }\n");
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "float-cmp");
        assert!(run(float_cmp, "crates/core/src/x.rs", "if count == 0 { return; }\n").is_empty());
    }

    #[test]
    fn narrowing_only_in_scoped_files() {
        let src = "let n = count as u16;\n";
        assert_eq!(run(as_narrowing, "crates/histogram/src/codec.rs", src).len(), 1);
        assert!(run(as_narrowing, "crates/histogram/src/lib.rs", src).is_empty());
    }

    #[test]
    fn snapshot_io_exempts_persist() {
        let src = "let bytes = std::fs::read(path)?;\n";
        assert_eq!(run(snapshot_io, "crates/core/src/snapshot.rs", src).len(), 1);
        assert!(run(snapshot_io, "crates/persist/src/container.rs", src).is_empty());
    }

    #[test]
    fn shim_rule_guards_reintroduction_everywhere() {
        let src = "let db = DbHistogram::build_mhist(&rel, &cfg)?;\n";
        assert_eq!(run(deprecated_shim, "examples/quickstart.rs", src).len(), 1);
        // The former defining-module exemption ended with the shims'
        // removal: even crates/core/src/synopsis.rs may not re-add them.
        assert_eq!(run(deprecated_shim, "crates/core/src/synopsis.rs", src).len(), 1);
    }

    #[test]
    fn metric_name_validates_unit_suffix() {
        let bad = "let c = registry.counter(\"dbhist_build_rounds\");\n";
        let good = "let c = registry.counter(\"dbhist_build_rounds_total\");\n";
        assert_eq!(run(metric_name, "crates/telemetry/src/x.rs", bad).len(), 1);
        assert!(run(metric_name, "crates/telemetry/src/x.rs", good).is_empty());
    }

    #[test]
    fn journal_event_name_requires_snake_case_tags() {
        let bad = "JournalEvent::CacheEviction { .. } => \"CacheEviction\",\n";
        let good = "JournalEvent::CacheEviction { .. } => \"cache_eviction\",\n";
        assert_eq!(run(journal_event_name, "crates/telemetry/src/journal.rs", bad).len(), 1);
        assert!(run(journal_event_name, "crates/telemetry/src/journal.rs", good).is_empty());
        // Rendering arms (`=> {`) and unrelated arrow-literals stay quiet.
        let body = "JournalEvent::Rebuild { rows, max_drift } => {\n";
        assert!(run(journal_event_name, "crates/telemetry/src/journal.rs", body).is_empty());
        let unrelated = "Mode::Fast => \"Fast\",\n";
        assert!(run(journal_event_name, "crates/core/src/x.rs", unrelated).is_empty());
    }
}
