//! Rule catalog and the per-file context rules run against.

pub mod atomics;
pub mod hash_iter;
pub mod legacy;
pub mod panic_surface;
pub mod par_float;
pub mod wal_order;

use crate::diag::Finding;
use crate::lexer::{self, Lexed};
use crate::scope::{self, Scopes};

/// Every rule id, in reporting order. `lint:allow` markers must name one
/// of these (the audit flags unknown names).
pub const RULES: [&str; 11] = [
    "hash-iter-order",
    "par-float-reduction",
    "atomic-ordering",
    "panic-surface",
    "float-cmp",
    "as-narrowing",
    "deprecated-shim",
    "metric-name",
    "snapshot-io",
    "wal-append-order",
    "journal-event-name",
];

/// Fix hint attached to each rule's findings.
#[must_use]
pub fn hint_for(rule: &str) -> &'static str {
    match rule {
        "hash-iter-order" => {
            "hash iteration order can reach estimates/buckets/output; use BTreeMap/BTreeSet, \
             sort before use, or add a justified lint:allow"
        }
        "par-float-reduction" => {
            "f64 addition is not associative; a parallel sum/fold/reduce breaks serial/parallel \
             bit-identity — reduce serially after collecting, or chunk deterministically"
        }
        "atomic-ordering" => {
            "raw Relaxed/SeqCst orderings and .lock().unwrap() belong in the vetted telemetry \
             registry; use registry counters or PoisonError::into_inner"
        }
        "panic-surface" => {
            "library code must not abort the host: return Result through the crate error enum, \
             use .get() instead of indexing"
        }
        "float-cmp" => "compare through an explicit epsilon or integer counts",
        "as-narrowing" => "use try_from and surface HistogramError::Codec",
        "deprecated-shim" => {
            "the DbHistogram::build_* shims were removed; construct through SynopsisBuilder"
        }
        "metric-name" => "metric names follow dbhist_<subsystem>_<name>_<unit>",
        "snapshot-io" => "snapshot bytes enter through dbhist_persist::read_file only",
        "wal-append-order" => {
            "WAL files are mutated through dbhist_persist::wal::WalWriter only — it owns \
             the append → fsync → apply and snapshot-before-truncate ordering that crash \
             recovery depends on"
        }
        "journal-event-name" => {
            "journal event-type tags are snake_case wire contracts (query_sampled, \
             generation_swap); log pipelines key on the tag string"
        }
        _ => "",
    }
}

/// One sanctioned per-rule, per-file exemption. The justification lives
/// next to the grant so the audit's allow policy is reviewable in one
/// table instead of being hard-coded inside rule implementations.
#[derive(Debug, Clone, Copy)]
pub struct Exemption {
    /// Rule id the grant applies to (must appear in [`RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated, matched exactly.
    pub path: &'static str,
    /// Why this file may violate the rule.
    pub why: &'static str,
}

/// The sanctioned exemption table. Adding a file here is a reviewed
/// decision: the entry must say *why* the rule's invariant holds anyway.
pub const EXEMPTIONS: &[Exemption] = &[
    Exemption {
        rule: "atomic-ordering",
        path: "crates/telemetry/src/registry.rs",
        why: "the sanctioned relaxed-atomic surface: monotonic counters, gauges, and \
              histogram buckets whose internal orderings are reviewed in one place",
    },
    Exemption {
        rule: "atomic-ordering",
        path: "crates/core/src/sharded.rs",
        why: "the sharded-cache capacity knob is an advisory Relaxed atomic: every \
              cached value moves under a per-shard mutex, so a stale capacity read \
              only delays an eviction or skips a memoization, never corrupts data",
    },
    Exemption {
        rule: "atomic-ordering",
        path: "crates/telemetry/src/journal.rs",
        why: "the journal's sequence claim is a Relaxed fetch_add: the counter only \
              hands out distinct slot numbers, and every event payload is published \
              and consumed under the per-slot mutex, which orders the data",
    },
];

/// `true` if `rule` findings in `rel_path` are sanctioned by
/// [`EXEMPTIONS`].
#[must_use]
pub fn path_exempt(rule: &str, rel_path: &str) -> bool {
    EXEMPTIONS.iter().any(|e| e.rule == rule && e.path == rel_path)
}

/// `true` if findings of `rule` inside `#[cfg(test)]` regions are
/// dropped. `deprecated-shim`, `metric-name`, and `journal-event-name`
/// deliberately apply to tests too (legacy behaviour: tests exercise the
/// builder API and share the metric and event-tag namespaces).
#[must_use]
pub fn test_exempt(rule: &str) -> bool {
    !matches!(rule, "deprecated-shim" | "metric-name" | "journal-event-name")
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileCtx {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Raw source lines (suppression markers and metric names live here).
    pub raw_lines: Vec<String>,
    /// Token stream + masked lines (strings/comments blanked).
    pub lexed: Lexed,
    /// Test regions and named scope contexts.
    pub scopes: Scopes,
}

impl FileCtx {
    #[must_use]
    pub fn new(rel_path: &str, source: &str) -> Self {
        let raw_lines: Vec<String> = source.lines().map(str::to_string).collect();
        let lexed = lexer::lex(source);
        let scopes = scope::analyze(&lexed.masked, &lexed.tokens);
        Self { rel_path: rel_path.replace('\\', "/"), raw_lines, lexed, scopes }
    }

    /// `true` if `rule` findings in this file are sanctioned by the
    /// [`EXEMPTIONS`] table.
    #[must_use]
    pub fn exempt(&self, rule: &str) -> bool {
        path_exempt(rule, &self.rel_path)
    }

    /// Builds a finding at 1-based `line`/`col` with the standard
    /// excerpt, context, and hint.
    #[must_use]
    pub fn finding(&self, line: usize, col: usize, rule: &'static str) -> Finding {
        let excerpt = self
            .raw_lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().chars().take(120).collect())
            .unwrap_or_default();
        Finding {
            file: self.rel_path.clone(),
            line,
            col,
            rule,
            excerpt,
            context: self.scopes.context(line).to_string(),
            hint: hint_for(rule).to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exemption_table_is_well_formed() {
        for e in EXEMPTIONS {
            assert!(RULES.contains(&e.rule), "exemption names unknown rule {:?}", e.rule);
            assert!(!e.why.trim().is_empty(), "exemption for {} lacks a justification", e.path);
            assert!(!e.path.contains('\\'), "exemption paths are /-separated: {}", e.path);
        }
        for (i, a) in EXEMPTIONS.iter().enumerate() {
            for b in &EXEMPTIONS[i + 1..] {
                assert!(
                    (a.rule, a.path) != (b.rule, b.path),
                    "duplicate exemption for {} / {}",
                    a.rule,
                    a.path
                );
            }
        }
    }

    #[test]
    fn path_exempt_matches_exactly() {
        assert!(path_exempt("atomic-ordering", "crates/telemetry/src/registry.rs"));
        assert!(path_exempt("atomic-ordering", "crates/core/src/sharded.rs"));
        assert!(path_exempt("atomic-ordering", "crates/telemetry/src/journal.rs"));
        assert!(!path_exempt("atomic-ordering", "crates/core/src/service.rs"));
        assert!(!path_exempt("hash-iter-order", "crates/telemetry/src/registry.rs"));
    }
}
