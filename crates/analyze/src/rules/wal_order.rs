//! `wal-append-order` — write-ahead-log files are mutated only inside
//! `crates/persist/src/wal`.
//!
//! The ingest durability contract (append → fsync → apply, snapshot
//! before truncate) lives in `dbhist_persist::wal::WalWriter`. A direct
//! append, fsync, or truncation anywhere else can reorder those steps —
//! an un-fsync'd batch that moved the estimates, or a truncation racing
//! a snapshot save — and the resulting divergence only surfaces after a
//! crash, the one moment nothing can be debugged. So the raw mutation
//! entry points (`OpenOptions::new(`, `.sync_data(`, `.sync_all(`,
//! `.set_len(`) are banned outside the WAL module and the persist
//! crate root (whose `write_file` is the sanctioned fsync'd snapshot
//! writer the checkpoint protocol depends on), mirroring how
//! `snapshot-io` funnels snapshot reads through
//! `dbhist_persist::read_file`.

use super::FileCtx;
use crate::diag::Finding;
use crate::rules::legacy::find_banned;

/// Raw WAL-mutation entry points banned outside `crates/persist/src/wal`.
/// `OpenOptions::new(` covers append-mode opens; the fsync and truncate
/// calls cover re-ordering an already-open handle.
const WAL_ORDER_PATTERNS: [&str; 4] =
    ["OpenOptions::new(", ".sync_data(", ".sync_all(", ".set_len("];

/// True if this relative path may issue durable-I/O syscalls directly:
/// the WAL module itself (`crates/persist/src/wal.rs` or a future
/// `crates/persist/src/wal/` subtree), or the persist crate root —
/// `dbhist_persist::write_file` fsyncs the snapshot temp file and its
/// directory before the WAL is allowed to truncate.
#[must_use]
pub fn wal_order_exempt(rel_path: &str) -> bool {
    let rel = rel_path.replace('\\', "/");
    rel.contains("crates/persist/src/wal") || rel.ends_with("crates/persist/src/lib.rs")
}

/// `wal-append-order` over the shared masked lines (WAL module exempt).
pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    if wal_order_exempt(&ctx.rel_path) {
        return;
    }
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if WAL_ORDER_PATTERNS.iter().any(|p| find_banned(masked, p)) {
            out.push(ctx.finding(idx + 1, 0, "wal-append-order"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_direct_wal_mutation_outside_the_wal_module() {
        let append = "let f = OpenOptions::new().append(true).open(p)?;\n";
        assert_eq!(run("crates/core/src/ingest.rs", append).len(), 1);
        let fsync = "file.sync_data()?;\n";
        assert_eq!(run("crates/core/src/service.rs", fsync).len(), 1);
        let truncate = "file.set_len(valid)?;\n";
        assert_eq!(run("crates/persist/src/container.rs", truncate).len(), 1);
    }

    #[test]
    fn the_wal_module_is_exempt() {
        let src =
            "let f = OpenOptions::new().write(true).open(p)?;\nf.set_len(n)?;\nf.sync_data()?;\n";
        assert!(run("crates/persist/src/wal.rs", src).is_empty());
        assert!(run("crates/persist/src/wal/writer.rs", src).is_empty());
    }

    #[test]
    fn the_persist_crate_root_is_exempt_but_its_siblings_fire() {
        // `write_file` fsyncs the snapshot temp file + directory.
        let src = "file.sync_all()?;\n";
        assert!(run("crates/persist/src/lib.rs", src).is_empty());
        assert_eq!(run("crates/persist/src/container.rs", src).len(), 1);
        assert_eq!(run("crates/core/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn ordinary_io_stays_quiet() {
        let src = "std::fs::write(path, &bytes)?;\nlet s = vec.len();\n";
        assert!(run("crates/core/src/ingest.rs", src).is_empty());
    }
}
