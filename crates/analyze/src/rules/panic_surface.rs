//! `panic-surface` — library code must not be able to abort the host.
//!
//! Supersedes the legacy per-line `no-panic` rule with the same banned
//! invocations (`.unwrap()`, `.expect(`, `panic!`, `unreachable!`,
//! `todo!`, `unimplemented!`) plus a token-based check for slice/array
//! indexing expressions in the adversarial-input paths (the persistence
//! crate and the wire codecs), where an out-of-range index panic is a
//! denial-of-service on hostile snapshot bytes. `Vec<T>`/`[T; N]` *type*
//! positions and array literals are not indexing and are not flagged.
//!
//! The engine runs this over library crates only — tests, benches, and
//! the tooling crates keep their unwraps.

use super::legacy::find_banned;
use super::FileCtx;
use crate::diag::Finding;
use crate::lexer::TokenKind;

/// Banned invocations, unchanged from the legacy `no-panic` rule.
const PANIC_PATTERNS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Keywords that may legally precede a `[` without forming an indexing
/// expression (array literals and patterns: `return [..]`, `let [a, b]`,
/// `for x in [..]` …).
const NON_RECEIVER_KEYWORDS: [&str; 14] = [
    "let", "in", "ref", "mut", "return", "if", "else", "match", "move", "break", "continue",
    "while", "loop", "box",
];

/// True if this path handles adversarial input bytes, where indexing
/// panics are reachable from outside the process.
fn indexing_in_scope(rel_path: &str) -> bool {
    rel_path.contains("crates/persist/")
        || rel_path.rsplit('/').next().is_some_and(|f| f.contains("codec"))
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    for (idx, masked) in ctx.lexed.masked.iter().enumerate() {
        if PANIC_PATTERNS.iter().any(|p| find_banned(masked, p)) {
            out.push(ctx.finding(idx + 1, 0, "panic-surface"));
        }
    }

    if !indexing_in_scope(&ctx.rel_path) {
        return;
    }
    let tokens = &ctx.lexed.tokens;
    let mut flagged_lines = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let prev = &tokens[i - 1];
        let is_receiver = match prev.kind {
            TokenKind::Ident => !NON_RECEIVER_KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => matches!(prev.text.as_bytes().first(), Some(b')' | b']')),
            _ => false,
        };
        if is_receiver && !flagged_lines.contains(&t.line) {
            flagged_lines.push(t.line);
            out.push(ctx.finding(t.line, t.col, "panic-surface"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn flags_each_panic_pattern() {
        for bad in [
            "let x = maybe.unwrap();",
            "let x = maybe.expect(\"reason\");",
            "panic!(\"boom\");",
            "unreachable!(),",
            "todo!()",
            "unimplemented!()",
        ] {
            let v = run("crates/core/src/alloc.rs", bad);
            assert_eq!(v.len(), 1, "{bad} should be flagged: {v:?}");
            assert_eq!(v[0].rule, "panic-surface");
        }
    }

    #[test]
    fn comments_and_strings_are_ignored() {
        let src = "// this .unwrap() is prose\nlet m = \"panic! inside a string\";\n";
        assert!(run("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn indexing_flagged_only_in_adversarial_paths() {
        let src = "fn f(buf: &[u8], i: usize) -> u8 {\n    buf[i]\n}\n";
        let v = run("crates/persist/src/container.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].line, v[0].rule), (2, "panic-surface"));
        assert!(run("crates/core/src/plan.rs", src).is_empty(), "non-codec paths may index");
    }

    #[test]
    fn types_literals_and_patterns_are_not_indexing() {
        let src = "fn f() -> [u8; 2] {\n    let [a, b] = pair;\n    let v: Vec<[u8; 2]> = vec![[a, b]];\n    v.first().copied().unwrap_or([0, 0])\n}\n";
        assert!(run("crates/persist/src/container.rs", src).is_empty());
    }

    #[test]
    fn chained_indexing_after_call_is_flagged() {
        let v = run("crates/histogram/src/codec.rs", "fn f() -> u8 { make()[0] }\n");
        assert_eq!(v.len(), 1);
    }
}
