//! `atomic-ordering` — concurrency primitives stay behind vetted doors.
//!
//! Two patterns, both preparing the ground for the ROADMAP-1 concurrent
//! `EstimatorService`:
//!
//! * Raw `Ordering::Relaxed` / `Ordering::SeqCst` outside the modules
//!   granted an entry in the [`super::EXEMPTIONS`] table. `Relaxed` is
//!   correct for monotonic stat counters and advisory knobs and wrong
//!   for almost everything else; `SeqCst` is usually a guess. Library
//!   code should use `dbhist_telemetry::registry` counters (whose
//!   internal orderings are reviewed in one place), spell an
//!   acquire/release protocol explicitly, or justify its orderings with
//!   an exemption entry.
//! * `.lock()` / `.read()` / `.write()` immediately followed by
//!   `.unwrap()` / `.expect(` — a poisoned mutex aborts the host;
//!   library code recovers with `PoisonError::into_inner`. This pattern
//!   is *not* covered by the exemption (exempt modules still must not
//!   abort on poison).

use super::FileCtx;
use crate::diag::Finding;
use crate::lexer::TokenKind;

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    let exempt = ctx.exempt("atomic-ordering");
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `Ordering` `::` `Relaxed|SeqCst`
        if !exempt
            && t.text == "Ordering"
            && tokens.get(i + 1).is_some_and(|p| p.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|p| p.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|v| {
                v.kind == TokenKind::Ident && (v.text == "Relaxed" || v.text == "SeqCst")
            })
        {
            out.push(ctx.finding(t.line, t.col, "atomic-ordering"));
        }
        // `.lock()` / `.read()` / `.write()` + `.unwrap()` / `.expect(`
        if matches!(t.text.as_str(), "lock" | "read" | "write")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|p| p.is_punct('('))
            && tokens.get(i + 2).is_some_and(|p| p.is_punct(')'))
            && tokens.get(i + 3).is_some_and(|p| p.is_punct('.'))
            && tokens.get(i + 4).is_some_and(|v| {
                v.kind == TokenKind::Ident && (v.text == "unwrap" || v.text == "expect")
            })
        {
            out.push(ctx.finding(t.line, t.col, "atomic-ordering"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new(path, src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn raw_relaxed_and_seqcst_flagged_outside_registry() {
        for bad in [
            "self.hits.fetch_add(1, Ordering::Relaxed);",
            "FLAG.store(true, atomic::Ordering::SeqCst);",
        ] {
            let v = run("crates/distribution/src/cache.rs", bad);
            assert_eq!(v.len(), 1, "{bad}: {v:?}");
            assert_eq!(v[0].rule, "atomic-ordering");
        }
    }

    #[test]
    fn exemption_table_modules_are_exempt() {
        let src = "self.0.fetch_add(n, Ordering::Relaxed);";
        assert!(run("crates/telemetry/src/registry.rs", src).is_empty());
        assert!(run("crates/core/src/sharded.rs", src).is_empty());
        assert_eq!(run("crates/telemetry/src/drift.rs", src).len(), 1);
    }

    #[test]
    fn exemption_does_not_cover_lock_unwrap() {
        let src = "let g = self.shards.lock().unwrap();";
        assert_eq!(run("crates/core/src/sharded.rs", src).len(), 1);
        assert_eq!(run("crates/telemetry/src/registry.rs", src).len(), 1);
    }

    #[test]
    fn acquire_release_protocols_are_allowed() {
        let src = "self.state.store(1, Ordering::Release); self.state.load(Ordering::Acquire);";
        assert!(run("crates/core/src/plan.rs", src).is_empty());
    }

    #[test]
    fn lock_unwrap_flagged_into_inner_not() {
        let bad = "let g = self.inner.lock().unwrap();";
        let v = run("crates/core/src/plan.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        let good = "let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);";
        assert!(run("crates/core/src/plan.rs", good).is_empty());
        let rw = "let g = self.inner.read().expect(\"poisoned\");";
        assert_eq!(run("crates/core/src/plan.rs", rw).len(), 1);
    }

    #[test]
    fn io_read_with_args_is_not_a_sync_primitive() {
        let src = "file.read(&mut buf)?;";
        assert!(run("crates/persist/src/container.rs", src).is_empty());
    }

    #[test]
    fn ordering_in_string_is_ignored() {
        let src = "let doc = \"uses Ordering::Relaxed internally\";";
        assert!(run("crates/core/src/plan.rs", src).is_empty());
    }
}
