//! `hash-iter-order` — hash-map iteration order must not reach output.
//!
//! `FxHashMap` iteration order is deterministic for a fixed insertion
//! sequence, but it is an accident of hasher and capacity: any refactor
//! that reorders insertions — or any concurrency that interleaves them —
//! silently permutes iteration, and a permuted order feeds
//! non-associative f64 accumulation, bucket layout, and serialized
//! output. The workspace invariant is bit-identical estimates, so
//! library code may only iterate ordered containers (`BTreeMap` /
//! `BTreeSet`), sort explicitly before use, or carry a justified
//! `lint:allow(hash-iter-order)` explaining why order cannot escape
//! (e.g. an order-independent min over unique keys).
//!
//! Detection is scope-aware in two passes over the token stream:
//!
//! 1. **Bind** — names declared or assigned with a hash-typed right-hand
//!    side (`cells: FxHashMap<…>`, `let mut agg = FxHashMap::default()`,
//!    fields and fn params alike) are collected file-wide.
//! 2. **Flag** — order-producing calls on a bound name
//!    (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.into_iter()`,
//!    `.par_iter()`, …) and direct `for … in [&mut] name` loops. A
//!    statement window that also mentions a `sort*` call or a `BTree*`
//!    type is skipped — collect-then-sort is the sanctioned idiom.

use super::FileCtx;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};

/// Unordered container type names whose bindings are tracked.
const HASH_TYPES: [&str; 4] = ["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Methods whose result order is the container's iteration order.
const ITER_METHODS: [&str; 11] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "par_iter",
    "into_par_iter",
];

/// Collects every name bound to a hash-typed value anywhere in the file.
fn bound_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over path qualifiers (`fxhash::FxHashMap`).
        let mut j = i;
        while j >= 3
            && tokens[j - 1].is_punct(':')
            && tokens[j - 2].is_punct(':')
            && tokens[j - 3].kind == TokenKind::Ident
        {
            j -= 3;
        }
        // Walk back over `&`, `mut`, and lifetimes (`x: &mut FxHashMap`).
        let mut k = j;
        while k > 0 {
            let p = &tokens[k - 1];
            let skip = p.is_punct('&')
                || p.kind == TokenKind::Lifetime
                || (p.kind == TokenKind::Ident && p.text == "mut");
            if !skip {
                break;
            }
            k -= 1;
        }
        if k < 2 {
            continue;
        }
        let anchor = &tokens[k - 1];
        let name = &tokens[k - 2];
        // `name: FxHashMap<…>` (field, param, or annotated let) and
        // `name = FxHashMap::default()` / `HashMap::new()` both bind.
        let is_decl =
            anchor.is_punct(':') && !tokens.get(k.wrapping_sub(3)).is_some_and(|q| q.is_punct(':'));
        let is_assign = anchor.is_punct('=');
        if (is_decl || is_assign) && name.kind == TokenKind::Ident && !names.contains(&name.text) {
            names.push(name.text.clone());
        }
    }
    names
}

/// `true` if the statement window around token `p` mentions a `sort*`
/// call or a `BTree*` type — the sanctioned collect-then-sort idiom.
fn sorted_escape(tokens: &[Token], p: usize) -> bool {
    let escape = |t: &Token| {
        t.kind == TokenKind::Ident && (t.text.starts_with("sort") || t.text.contains("BTree"))
    };
    // Backward to the nearest statement boundary.
    let mut i = p;
    while i > 0 {
        let t = &tokens[i - 1];
        if t.kind == TokenKind::Punct
            && matches!(t.text.as_bytes().first(), Some(b';' | b'{' | b'}'))
        {
            break;
        }
        if escape(t) {
            return true;
        }
        i -= 1;
    }
    // Forward through this statement and the next (collect-then-sort
    // spans two), stopping at a loop-body `{` or an unwinding `}`.
    let mut depth: i64 = 0;
    let mut semis = 0;
    let mut j = p + 1;
    while let Some(t) = tokens.get(j) {
        if escape(t) {
            return true;
        }
        if t.kind == TokenKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(' | b'[') => depth += 1,
                Some(b')' | b']') => depth -= 1,
                Some(b'{') => {
                    if depth == 0 {
                        break;
                    }
                    depth += 1;
                }
                Some(b'}') => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                Some(b';') if depth <= 0 => {
                    semis += 1;
                    if semis >= 2 {
                        break;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    false
}

pub fn check(ctx: &FileCtx, out: &mut Vec<Finding>) {
    let tokens = &ctx.lexed.tokens;
    let bound = bound_names(tokens);
    if bound.is_empty() {
        return;
    }
    let mut flagged_lines: Vec<usize> = Vec::new();
    let push = |t: &Token, flagged_lines: &mut Vec<usize>, out: &mut Vec<Finding>| {
        if !flagged_lines.contains(&t.line) {
            flagged_lines.push(t.line);
            out.push(ctx.finding(t.line, t.col, "hash-iter-order"));
        }
    };

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `name.iter()` and friends.
        if bound.contains(&t.text)
            && tokens.get(i + 1).is_some_and(|p| p.is_punct('.'))
            && tokens.get(i + 2).is_some_and(|m| {
                m.kind == TokenKind::Ident && ITER_METHODS.contains(&m.text.as_str())
            })
            && tokens.get(i + 3).is_some_and(|p| p.is_punct('('))
            && !sorted_escape(tokens, i)
        {
            push(t, &mut flagged_lines, out);
            continue;
        }
        // `for pat in [&][mut] [self.]name { … }` — direct iteration.
        if t.text == "for" {
            let mut j = i + 1;
            let mut found_in = None;
            while let Some(n) = tokens.get(j) {
                if j > i + 10 || n.is_punct('{') || n.is_punct(';') {
                    break;
                }
                if n.kind == TokenKind::Ident && n.text == "in" {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(mut j) = found_in else { continue };
            j += 1;
            while tokens
                .get(j)
                .is_some_and(|n| n.is_punct('&') || (n.kind == TokenKind::Ident && n.text == "mut"))
            {
                j += 1;
            }
            if tokens.get(j).is_some_and(|n| n.kind == TokenKind::Ident && n.text == "self")
                && tokens.get(j + 1).is_some_and(|p| p.is_punct('.'))
            {
                j += 2;
            }
            let Some(name) = tokens.get(j) else { continue };
            if name.kind == TokenKind::Ident
                && bound.contains(&name.text)
                && tokens.get(j + 1).is_some_and(|p| p.is_punct('{'))
                && !sorted_escape(tokens, j)
            {
                push(name, &mut flagged_lines, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("crates/distribution/src/distribution.rs", src);
        let mut out = Vec::new();
        check(&ctx, &mut out);
        out
    }

    #[test]
    fn iterating_a_hash_field_is_flagged() {
        let src = "struct D { cells: FxHashMap<Box<[u32]>, f64> }\n\
                   impl D {\n\
                       fn total(&self) -> f64 {\n\
                           self.cells.iter().map(|(_, w)| w).sum()\n\
                       }\n\
                   }\n";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!((v[0].rule, v[0].line), ("hash-iter-order", 4));
        assert_eq!(v[0].context, "impl D > fn total");
    }

    #[test]
    fn for_loop_over_hash_map_is_flagged() {
        let src = "fn f() {\n    let mut agg = FxHashMap::default();\n    for (k, w) in &agg {\n        emit(k, w);\n    }\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn lookup_only_maps_are_fine() {
        let src = "fn f(constraint: &FxHashMap<u16, (u32, u32)>, key: u16) -> bool {\n    constraint.get(&key).is_some() && constraint.len() > 1\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn btree_maps_are_fine() {
        let src = "fn f(cells: &BTreeMap<u32, f64>) -> f64 {\n    cells.iter().map(|(_, w)| w).sum()\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn collect_then_sort_is_sanctioned() {
        let src = "fn f(agg: &FxHashMap<u32, f64>) -> Vec<(u32, f64)> {\n    let mut v: Vec<_> = agg.iter().map(|(k, w)| (*k, *w)).collect();\n    v.sort_unstable_by_key(|e| e.0);\n    v\n}\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn keys_values_drain_all_flagged() {
        for m in ["keys", "values", "drain", "into_iter", "par_iter"] {
            let src =
                format!("fn f(mut agg: FxHashMap<u32, f64>) {{\n    consume(agg.{m}());\n}}\n");
            let v = run(&src);
            assert_eq!(v.len(), 1, "{m}: {v:?}");
        }
    }

    #[test]
    fn qualified_path_binding_is_tracked() {
        let src = "fn f(out: &mut fxhash::FxHashMap<Vec<u32>, f64>) {\n    for (sub, w) in out.iter_mut() {\n        *w += 1.0;\n    }\n}\n";
        let v = run(src);
        assert_eq!(v.len(), 1, "{v:?}");
    }
}
