//! Selftest: proves the analyzer still catches seeded violations of
//! every rule, suppresses them through `lint:allow`, and honours the
//! sanctioned exemptions — a regression test for the gate itself,
//! runnable in CI without mutating any tracked file. If a rule is
//! disabled or its detection rots, the corresponding fixture stops
//! firing and the selftest exits nonzero.

use crate::diag::Report;
use crate::engine::{analyze_file, FileClass};

/// One rule's fixture triple: a violating snippet, a clean rewrite, and
/// the path it is scanned under (path-scoped rules care).
struct Fixture {
    rule: &'static str,
    path: &'static str,
    violating: &'static str,
    clean: &'static str,
}

const FIXTURES: [Fixture; 11] = [
    Fixture {
        rule: "hash-iter-order",
        path: "crates/distribution/src/distribution.rs",
        violating: "fn total(cells: &FxHashMap<u32, f64>) -> f64 {\n    cells.iter().map(|(_, w)| w).sum()\n}\n",
        clean: "fn total(cells: &BTreeMap<u32, f64>) -> f64 {\n    cells.iter().map(|(_, w)| w).sum()\n}\n",
    },
    Fixture {
        rule: "par-float-reduction",
        path: "crates/core/src/marginal.rs",
        violating: "fn mass(w: &[f64]) -> f64 {\n    w.par_iter().map(|x| x * 0.5).sum::<f64>()\n}\n",
        clean: "fn mass(w: &[f64]) -> f64 {\n    w.iter().map(|x| x * 0.5).sum::<f64>()\n}\n",
    },
    Fixture {
        rule: "atomic-ordering",
        path: "crates/distribution/src/cache.rs",
        violating: "fn bump(hits: &AtomicUsize) {\n    hits.fetch_add(1, Ordering::Relaxed);\n}\n",
        clean: "fn bump(hits: &telemetry::Counter) {\n    hits.incr(1);\n}\n",
    },
    Fixture {
        rule: "panic-surface",
        path: "crates/persist/src/container.rs",
        violating: "fn first(buf: &[u8]) -> u8 {\n    buf[0]\n}\n",
        clean: "fn first(buf: &[u8]) -> Option<u8> {\n    buf.first().copied()\n}\n",
    },
    Fixture {
        rule: "float-cmp",
        path: "crates/core/src/marginal.rs",
        violating: "fn z(freq: f64) -> bool { freq == 0.0 }\n",
        clean: "fn z(freq: f64) -> bool { freq.abs() < f64::EPSILON }\n",
    },
    Fixture {
        rule: "as-narrowing",
        path: "crates/histogram/src/codec.rs",
        violating: "fn w(count: usize) -> u16 { count as u16 }\n",
        clean: "fn w(count: usize) -> Result<u16, Error> { u16::try_from(count).map_err(Error::from) }\n",
    },
    Fixture {
        rule: "deprecated-shim",
        path: "examples/quickstart.rs",
        violating: "fn b() { let db = DbHistogram::build_mhist(&rel, &config); }\n",
        clean: "fn b() { let db = SynopsisBuilder::new(&rel).build(&config); }\n",
    },
    Fixture {
        rule: "metric-name",
        path: "crates/telemetry/src/wellknown.rs",
        violating: "fn m(r: &Registry) { r.counter(\"dbhist_build_rounds\"); }\n",
        clean: "fn m(r: &Registry) { r.counter(\"dbhist_build_rounds_total\"); }\n",
    },
    Fixture {
        rule: "snapshot-io",
        path: "crates/core/src/snapshot.rs",
        violating: "fn load(path: &Path) -> io::Result<Vec<u8>> { std::fs::read(path) }\n",
        clean: "fn load(path: &Path) -> Result<Vec<u8>, Error> { dbhist_persist::read_file(path) }\n",
    },
    Fixture {
        rule: "wal-append-order",
        path: "crates/core/src/ingest.rs",
        violating: "fn journal(path: &Path, rec: &[u8]) -> io::Result<()> {\n    let mut f = OpenOptions::new().append(true).open(path)?;\n    f.write_all(rec)\n}\n",
        clean: "fn journal(wal: &mut WalWriter, ops: &[WalOp]) -> Result<u64, PersistError> {\n    wal.append(ops)\n}\n",
    },
    Fixture {
        rule: "journal-event-name",
        path: "crates/telemetry/src/journal.rs",
        violating: "fn tag(e: &JournalEvent) -> &'static str {\n    match e {\n        JournalEvent::CacheEviction { .. } => \"CacheEviction\",\n    }\n}\n",
        clean: "fn tag(e: &JournalEvent) -> &'static str {\n    match e {\n        JournalEvent::CacheEviction { .. } => \"cache_eviction\",\n    }\n}\n",
    },
];

fn scan(path: &str, source: &str) -> Report {
    let mut report = Report::default();
    let class = if path.starts_with("examples/") {
        FileClass { narrow: false, wide: true, library: false }
    } else {
        FileClass::library()
    };
    analyze_file(path, source, class, &mut report);
    report
}

/// Runs every fixture; returns the number of failures (0 = gate intact).
/// Progress goes to stderr, mirroring the legacy selftest output.
#[must_use]
pub fn run() -> u32 {
    let mut failures = 0u32;
    for f in &FIXTURES {
        let hit = scan(f.path, f.violating);
        if hit.findings.iter().any(|v| v.rule == f.rule) {
            eprintln!("selftest: rule {} fires on seeded violation ... ok", f.rule);
        } else {
            eprintln!("selftest: rule {} MISSED seeded violation:\n{}", f.rule, f.violating);
            failures += 1;
        }

        let clean = scan(f.path, f.clean);
        if clean.findings.iter().any(|v| v.rule == f.rule) {
            eprintln!("selftest: rule {} fires on CLEAN fixture:\n{}", f.rule, f.clean);
            failures += 1;
        }

        // The escape hatch must suppress, and the suppression must then
        // count as used (no unused-suppression report).
        let marker = format!("// lint:allow-next-line({}): selftest\n", f.rule);
        let viol_line = hit.findings.iter().find(|v| v.rule == f.rule).map_or(1, |v| v.line);
        let mut suppressed_src = String::new();
        for (i, l) in f.violating.lines().enumerate() {
            if i + 1 == viol_line {
                suppressed_src.push_str(&marker);
            }
            suppressed_src.push_str(l);
            suppressed_src.push('\n');
        }
        let quiet = scan(f.path, &suppressed_src);
        if quiet.findings.iter().any(|v| v.rule == f.rule) {
            eprintln!("selftest: lint:allow({}) failed to suppress", f.rule);
            failures += 1;
        } else if !quiet.unused_suppressions.is_empty() {
            eprintln!(
                "selftest: lint:allow({}) reported unused after suppressing: {:?}",
                f.rule, quiet.unused_suppressions
            );
            failures += 1;
        }
    }

    failures += exemption_checks();
    if failures == 0 {
        eprintln!("selftest: all {} rules verified", FIXTURES.len());
    }
    failures
}

/// Sanctioned exemptions must stay exempt, or the rules would outlaw
/// their own implementation sites.
fn exemption_checks() -> u32 {
    let mut failures = 0u32;
    let mut check = |ok: bool, what: &str| {
        if ok {
            eprintln!("selftest: {what} ... ok");
        } else {
            eprintln!("selftest: FAILED: {what}");
            failures += 1;
        }
    };

    // The shims were removed from crates/core/src/synopsis.rs, which
    // ended its defining-module exemption: reintroducing a call (or the
    // definition) anywhere — including there — must fire the rule.
    let shim =
        scan("crates/core/src/synopsis.rs", "fn t() { DbHistogram::build_mhist(&r, &c); }\n");
    check(
        shim.findings.iter().any(|f| f.rule == "deprecated-shim"),
        "deprecated-shim guards reintroduction in crates/core/src/synopsis.rs",
    );

    // Every entry in the declarative exemption table must actually
    // grant its exemption (here: the seeded atomic-ordering violation
    // goes quiet on each granted path)...
    let ordering_violation = "fn i(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
    for e in crate::rules::EXEMPTIONS {
        if e.rule != "atomic-ordering" {
            continue;
        }
        let granted = scan(e.path, ordering_violation);
        check(
            !granted.findings.iter().any(|f| f.rule == "atomic-ordering"),
            &format!("atomic-ordering exemption table grants {}", e.path),
        );
    }
    // ...while ungranted paths keep firing, and the grant stays scoped
    // to raw orderings: poison-aborting lock acquisition is flagged even
    // inside an exempt module.
    let ungranted = scan("crates/core/src/service.rs", ordering_violation);
    check(
        ungranted.findings.iter().any(|f| f.rule == "atomic-ordering"),
        "atomic-ordering still fires outside the exemption table",
    );
    let poison =
        scan("crates/core/src/sharded.rs", "fn g(m: &Mutex<u32>) -> u32 { *m.lock().unwrap() }\n");
    check(
        poison.findings.iter().any(|f| f.rule == "atomic-ordering"),
        "exemption grants orderings only, not .lock().unwrap()",
    );

    // The WAL module implements the append/fsync/truncate discipline the
    // rule enforces, so it must stay exempt — everywhere else fires.
    let wal_mutation = "fn t(f: &File) -> io::Result<()> { f.sync_data() }\n";
    let walled = scan("crates/persist/src/wal.rs", wal_mutation);
    check(
        !walled.findings.iter().any(|f| f.rule == "wal-append-order"),
        "wal-append-order exempts crates/persist/src/wal",
    );
    let unwalled = scan("crates/persist/src/container.rs", wal_mutation);
    check(
        unwalled.findings.iter().any(|f| f.rule == "wal-append-order"),
        "wal-append-order fires outside the WAL module",
    );

    let plain_index = scan("crates/core/src/plan.rs", "fn g(v: &[u8]) -> u8 { v[0] }\n");
    check(
        plain_index.findings.is_empty(),
        "panic-surface indexing check is scoped to adversarial-input paths",
    );

    let mut bench = Report::default();
    analyze_file(
        "crates/bench/src/experiments.rs",
        "fn b(v: Option<u32>) -> u32 { v.unwrap() }\n",
        FileClass { narrow: true, wide: true, library: false },
        &mut bench,
    );
    check(bench.findings.is_empty(), "library rules skip the bench crate");

    failures
}

#[cfg(test)]
mod tests {
    #[test]
    fn selftest_passes() {
        assert_eq!(super::run(), 0);
    }
}
