//! Structured diagnostics and report rendering.

/// One rule finding at a specific location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column (0 when a line-oriented rule has no better
    /// anchor than the whole line).
    pub col: usize,
    /// Stable rule id (see `rules::catalog`).
    pub rule: &'static str,
    /// Trimmed source excerpt, at most 120 chars.
    pub excerpt: String,
    /// Innermost scope (`"impl Foo > fn bar"`), empty at top level.
    pub context: String,
    /// How to fix it (rule-level hint; some rules specialize it).
    pub hint: String,
}

/// A `lint:allow` marker that suppressed nothing — dead weight that
/// silently disarms the gate, reported and failed like a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedSuppression {
    pub file: String,
    pub line: usize,
    /// The rule the marker names (possibly an unknown id).
    pub rule: String,
    /// Why it is unused: `"no finding on this line"` or `"unknown rule"`.
    pub reason: &'static str,
}

/// The full result of one analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub unused_suppressions: Vec<UnusedSuppression>,
}

impl Report {
    /// `true` when the run should exit zero.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.unused_suppressions.is_empty()
    }

    /// Human-readable rendering, one line per finding plus a hint line.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            let at =
                if f.context.is_empty() { String::new() } else { format!(" (in {})", f.context) };
            out.push_str(&format!(
                "{}:{}:{}: [{}]{} {}\n    hint: {}\n",
                f.file, f.line, f.col, f.rule, at, f.excerpt, f.hint
            ));
        }
        for u in &self.unused_suppressions {
            out.push_str(&format!(
                "{}:{}: [unused-suppression] lint:allow({}) suppresses nothing ({})\n",
                u.file, u.line, u.rule, u.reason
            ));
        }
        out
    }

    /// Machine-readable JSON (hand-rolled: the analyzer is
    /// dependency-free so it builds before everything else).
    #[must_use]
    pub fn to_json(&self, rule_ids: &[&str]) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        s.push_str(&format!("\"total_findings\":{},", self.findings.len()));
        s.push_str(&format!("\"unused_suppression_count\":{},", self.unused_suppressions.len()));
        s.push_str("\"counts\":{");
        for (i, rule) in rule_ids.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let n = self.findings.iter().filter(|f| f.rule == *rule).count();
            s.push_str(&format!("\"{rule}\":{n}"));
        }
        s.push_str("},\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"context\":\"{}\",\"excerpt\":\"{}\",\"hint\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.col,
                f.rule,
                json_escape(&f.context),
                json_escape(&f.excerpt),
                json_escape(&f.hint),
            ));
        }
        s.push_str("],\"unused_suppressions\":[");
        for (i, u) in self.unused_suppressions.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"reason\":\"{}\"}}",
                json_escape(&u.file),
                u.line,
                json_escape(&u.rule),
                u.reason,
            ));
        }
        s.push_str("]}");
        s
    }
}

/// Escapes a string for embedding in a JSON literal.
#[must_use]
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            file: "crates/core/src/alloc.rs".into(),
            line: 7,
            col: 13,
            rule: "panic-surface",
            excerpt: "x.unwrap() // \"quoted\"".into(),
            context: "fn allocate".into(),
            hint: "return a Result through the crate error enum".into(),
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let report = Report {
            files_scanned: 3,
            findings: vec![finding()],
            unused_suppressions: vec![UnusedSuppression {
                file: "src/lib.rs".into(),
                line: 2,
                rule: "float-cmp".into(),
                reason: "no finding on this line",
            }],
        };
        let json = report.to_json(&["panic-surface", "float-cmp"]);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\"panic-surface\":1"));
        assert!(json.contains("\"float-cmp\":0"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"unused_suppression_count\":1"));
    }

    #[test]
    fn human_rendering_names_scope_and_hint() {
        let report =
            Report { files_scanned: 1, findings: vec![finding()], unused_suppressions: vec![] };
        let text = report.render_human();
        assert!(text.contains("crates/core/src/alloc.rs:7:13"));
        assert!(text.contains("(in fn allocate)"));
        assert!(text.contains("hint:"));
        assert!(!report.is_clean());
    }
}
