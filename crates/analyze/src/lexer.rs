//! The shared lexer: one masking/tokenizing implementation for every rule.
//!
//! This is the promotion of the old `xtask` linter's per-line `mask_line`
//! state machine into a real token stream. The masking semantics are kept
//! bit-compatible (a property test pins them against a frozen copy of the
//! legacy implementation): comment and string/char-literal contents become
//! spaces, length is preserved, line comments blank to end of line, block
//! comments nest, raw strings keep their `r` marker byte, and lifetimes
//! survive masking. On top of that, the lexer now emits [`Token`]s with
//! line/column spans, which is what lets rules reason across lines and
//! scopes instead of pattern-matching one masked line at a time.
//!
//! Tokens carry their text except for string/char literals, whose contents
//! are deliberately blanked — rules must never match inside literal data.
//! (The `metric-name` rule inspects *raw* lines for exactly this reason;
//! see `rules::legacy`.)

/// Lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `for`, `HashMap`, …).
    Ident,
    /// Lifetime marker (`'a`); kept distinct from char literals.
    Lifetime,
    /// Integer or float literal, including any type suffix (`0`, `0.5`,
    /// `1e9`, `42u32`). Float-ness is visible as a `.` in the text.
    Number,
    /// String literal (`"…"`). Content is blanked; only position is kept.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`).
    RawStr,
    /// Char literal (`'x'`, `'\n'`).
    Char,
    /// A single punctuation byte (`.`, `:`, `{`, `|`, …).
    Punct,
}

/// One lexed token with its source position (1-based line and byte
/// column of its first byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
    /// Token text. Empty for [`TokenKind::Str`] / [`TokenKind::RawStr`] /
    /// [`TokenKind::Char`] — literal contents are masked by design.
    pub text: String,
}

impl Token {
    fn new(kind: TokenKind, line: usize, col: usize, text: impl Into<String>) -> Self {
        Self { kind, line, col, text: text.into() }
    }

    /// `true` if this token is a punctuation byte equal to `c`.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// `true` if this token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }
}

/// The result of lexing one file: the token stream plus the masked lines
/// (code bytes preserved, comment/literal bytes blanked — the exact
/// surface the line-oriented legacy rules match against).
#[derive(Debug)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub masked: Vec<String>,
}

/// Cross-line lexer state: inside a (possibly nested) block comment, a
/// string literal, or a raw string literal with `hashes` trailing `#`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    #[default]
    Code,
    Block(u32),
    Str,
    RawStr(u8),
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

/// Counts leading `#` bytes followed by a `"` — the `r#..#"` raw-string
/// opener — returning the hash count, or `None` if this is not one.
fn raw_str_hashes(after_r: &[u8]) -> Option<u8> {
    if after_r.first() == Some(&b'"') {
        return Some(0);
    }
    let hashes = after_r.iter().take_while(|&&b| b == b'#').count();
    if hashes > 0 && after_r.get(hashes) == Some(&b'"') {
        u8::try_from(hashes).ok()
    } else {
        None
    }
}

/// `Some(hashes)` if the `r` at `bytes[i]` opens a raw string literal.
/// The legacy byte machine ran this check on *every* code byte, so the
/// lexer applies it inside identifiers, lifetimes, and number suffixes
/// too — bug-compatible by design (`br"…"`, `'r#"…"#`, `1r"…"`).
fn raw_opener_at(bytes: &[u8], i: usize) -> Option<u8> {
    match bytes.get(i + 1) {
        Some(&b'"') => Some(0),
        Some(&b'#') => raw_str_hashes(&bytes[i + 1..]),
        _ => None,
    }
}

/// Lexes a whole file. Never fails: unlexable bytes degrade to `Punct`
/// tokens, because a static checker must not abort on the code it checks.
#[must_use]
pub fn lex(source: &str) -> Lexed {
    let mut tokens = Vec::new();
    let mut masked = Vec::new();
    let mut mode = Mode::default();
    for (idx, line) in source.lines().enumerate() {
        masked.push(lex_line(line, idx + 1, &mut mode, &mut tokens));
    }
    Lexed { tokens, masked }
}

/// Lexes one line, returning its masked form and appending tokens.
/// `line_no` is 1-based. This mirrors the legacy `mask_line` byte machine
/// exactly; token emission piggybacks on the `Code` path.
#[allow(clippy::too_many_lines)]
fn lex_line(line: &str, line_no: usize, mode: &mut Mode, tokens: &mut Vec<Token>) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match *mode {
            Mode::Block(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    *mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    *mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    *mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if bytes[i] == b'"' {
                    let h = usize::from(hashes);
                    if bytes.len() >= i + 1 + h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        *mode = Mode::Code;
                        i += 1 + h;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Code => match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    return String::from_utf8(out).unwrap_or_default()
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    *mode = Mode::Block(1);
                    i += 2;
                }
                b'"' => {
                    tokens.push(Token::new(TokenKind::Str, line_no, i + 1, ""));
                    *mode = Mode::Str;
                    i += 1;
                }
                b'r' if bytes.get(i + 1) == Some(&b'"')
                    || (bytes.get(i + 1) == Some(&b'#')
                        && raw_str_hashes(&bytes[i + 1..]).is_some()) =>
                {
                    let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                    out[i] = b'r';
                    tokens.push(Token::new(TokenKind::RawStr, line_no, i + 1, ""));
                    *mode = Mode::RawStr(hashes);
                    i += 2 + usize::from(hashes);
                }
                b'\'' => {
                    // Char literal (`'x'`, `'\n'`, `'{'`) vs lifetime (`'a`).
                    if bytes.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        tokens.push(Token::new(TokenKind::Char, line_no, i + 1, ""));
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(bytes.len());
                    } else if bytes.len() > i + 2 && bytes[i + 2] == b'\'' {
                        tokens.push(Token::new(TokenKind::Char, line_no, i + 1, ""));
                        i += 3; // plain char literal
                    } else {
                        // Lifetime marker: keep it, plus its identifier —
                        // with the legacy quirk: an `r` in the identifier
                        // that opens a raw string ends the lifetime there.
                        out[i] = b'\'';
                        let start = i;
                        let mut j = i + 1;
                        let mut raw_open: Option<u8> = None;
                        while j < bytes.len() && is_ident_byte(bytes[j]) {
                            if bytes[j] == b'r' {
                                if let Some(h) = raw_opener_at(bytes, j) {
                                    out[j] = b'r';
                                    j += 1;
                                    raw_open = Some(h);
                                    break;
                                }
                            }
                            out[j] = bytes[j];
                            j += 1;
                        }
                        tokens.push(Token::new(
                            TokenKind::Lifetime,
                            line_no,
                            start + 1,
                            &line[start..j],
                        ));
                        i = j;
                        if let Some(h) = raw_open {
                            tokens.push(Token::new(TokenKind::RawStr, line_no, i, ""));
                            *mode = Mode::RawStr(h);
                            i += 1 + usize::from(h);
                        }
                    }
                }
                b if is_ident_start(b) => {
                    // Identifier — with the legacy machine's quirk kept
                    // bug-compatible: an interior `r` that opens a raw
                    // string (as in `br"…"`) ends the identifier there and
                    // enters raw-string mode, exactly as the byte-at-a-time
                    // legacy scan did.
                    let start = i;
                    let mut raw_open: Option<u8> = None;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        if bytes[i] == b'r' && i > start {
                            if let Some(h) = raw_opener_at(bytes, i) {
                                out[i] = b'r';
                                i += 1;
                                raw_open = Some(h);
                                break;
                            }
                        }
                        out[i] = bytes[i];
                        i += 1;
                    }
                    tokens.push(Token::new(TokenKind::Ident, line_no, start + 1, &line[start..i]));
                    if let Some(h) = raw_open {
                        tokens.push(Token::new(TokenKind::RawStr, line_no, i, ""));
                        *mode = Mode::RawStr(h);
                        i += 1 + usize::from(h);
                    }
                }
                b if b.is_ascii_digit() => {
                    // Number: integer part, optional `.digits` fraction
                    // (but never `0..5` range syntax), optional suffix.
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                        out[i] = bytes[i];
                        i += 1;
                    }
                    if bytes.get(i) == Some(&b'.')
                        && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        out[i] = b'.';
                        i += 1;
                        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                            out[i] = bytes[i];
                            i += 1;
                        }
                    }
                    let mut raw_open: Option<u8> = None;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        if bytes[i] == b'r' {
                            if let Some(h) = raw_opener_at(bytes, i) {
                                out[i] = b'r';
                                i += 1;
                                raw_open = Some(h);
                                break;
                            }
                        }
                        out[i] = bytes[i];
                        i += 1;
                    }
                    tokens.push(Token::new(TokenKind::Number, line_no, start + 1, &line[start..i]));
                    if let Some(h) = raw_open {
                        tokens.push(Token::new(TokenKind::RawStr, line_no, i, ""));
                        *mode = Mode::RawStr(h);
                        i += 1 + usize::from(h);
                    }
                }
                b => {
                    out[i] = b;
                    if !b.is_ascii_whitespace() {
                        tokens.push(Token::new(
                            TokenKind::Punct,
                            line_no,
                            i + 1,
                            String::from(b as char),
                        ));
                    }
                    i += 1;
                }
            },
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn tokenizes_code_with_spans() {
        let lexed = lex("let x = m.iter();\n  x.sum::<f64>()");
        let idents: Vec<&Token> =
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Ident).collect();
        assert_eq!(idents[0].text, "let");
        assert_eq!((idents[0].line, idents[0].col), (1, 1));
        assert_eq!(idents[2].text, "m");
        assert_eq!((idents[2].line, idents[2].col), (1, 9));
        let f64_tok = lexed.tokens.iter().find(|t| t.text == "f64").unwrap();
        assert_eq!(f64_tok.line, 2);
    }

    #[test]
    fn masks_comments_and_strings() {
        let lexed = lex("let s = \"panic!\"; // .unwrap()\nlet r = r#\"raw\"#;");
        assert!(!lexed.masked[0].contains("panic"));
        assert!(!lexed.masked[0].contains("unwrap"));
        assert!(!lexed.masked[1].contains("raw"));
        assert!(lexed.masked[1].contains('r'), "raw marker byte survives");
        // No token carries literal contents.
        assert!(lexed.tokens.iter().all(|t| !t.text.contains("panic")));
    }

    #[test]
    fn block_comments_nest_across_lines() {
        let lexed = lex("/* a /* b */ still */ code\nmore");
        assert_eq!(lexed.masked[0].trim(), "code");
        assert_eq!(lexed.masked[1].trim(), "more");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn multiline_string_suppresses_tokens() {
        let lexed = lex("let s = \"one\ntwo\";\nafter();");
        assert!(!lexed.tokens.iter().any(|t| t.is_ident("two")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("after")));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = kinds("0..5 x.0 1.5f64 42u32");
        let nums: Vec<&str> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Number).map(|(_, t)| t.as_str()).collect();
        assert_eq!(nums, ["0", "5", "0", "1.5f64", "42u32"]);
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let toks = kinds("let c = '{'; fn f<'a>(x: &'a str) {}");
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Char));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        // The char-literal brace must not appear as a Punct token.
        let braces = toks.iter().filter(|(_, t)| t == "{").count();
        assert_eq!(braces, 1, "only the fn body's real brace: {toks:?}");
    }

    #[test]
    fn lifetime_survives_masking() {
        let lexed = lex("fn f<'a>(x: &'a str) {}");
        assert!(lexed.masked[0].contains("'a"));
    }

    #[test]
    fn raw_string_after_ident_prefix() {
        // `br"…"` — the legacy machine enters raw-string mode at the
        // interior `r`; the stream must do the same.
        let lexed = lex("let b = br\"bytes\"; tail();");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::RawStr));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("tail")));
        assert!(!lexed.masked[0].contains("bytes"));
    }
}
