//! Parity between the new analyzer and the legacy line scanner.
//!
//! `mod frozen` is a verbatim copy of the legacy
//! `crates/xtask/src/lint.rs` detection code as it stood before the
//! port (comments trimmed). It exists only here, as the reference
//! implementation for two guarantees:
//!
//! 1. **Masking parity** — the new lexer's masked lines are
//!    byte-identical to legacy `mask_line` output on generated
//!    string/comment/raw-string soups (proptest) and on every real
//!    workspace source file.
//! 2. **Findings parity** — for the five ported rules (`float-cmp`,
//!    `as-narrowing`, `deprecated-shim`, `metric-name`, `snapshot-io`),
//!    `cargo xtask analyze` reports exactly what `cargo xtask lint`
//!    reported before the port, on a fixture corpus and on the whole
//!    workspace. (`no-panic` is deliberately excluded: `panic-surface`
//!    supersedes it and its markers were renamed.)

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use dbhist_analyze::{analyze_file, workspace_files, Report};

/// Verbatim copy of the legacy scanner (pre-port reference).
#[allow(dead_code, clippy::collapsible_if)]
mod frozen {
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Violation {
        pub file: String,
        pub line: usize,
        pub rule: &'static str,
        pub excerpt: String,
    }

    pub const RULES: [&str; 6] =
        ["no-panic", "float-cmp", "as-narrowing", "deprecated-shim", "metric-name", "snapshot-io"];

    const PANIC_PATTERNS: [&str; 6] =
        [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];
    const FLOAT_IDENT_HINTS: [&str; 3] = ["freq", "mass", "weight"];
    const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];
    const SHIM_PATTERNS: [&str; 3] =
        ["DbHistogram::build_mhist", "DbHistogram::build_grid", "DbHistogram::build_wavelet"];
    const METRIC_UNITS: [&str; 7] = ["total", "seconds", "ns", "us", "bytes", "ratio", "count"];
    const METRIC_DERIVED_SUFFIXES: [&str; 2] = ["bucket", "sum"];
    const SNAPSHOT_IO_PATTERNS: [&str; 3] = ["fs::read(", "File::open(", "read_to_end("];
    const NARROWING_SCOPE: [&str; 4] = ["codec", "mhist", "bbox", "alloc"];

    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    enum Mode {
        #[default]
        Code,
        Block(u32),
        Str,
        RawStr(u8),
    }

    pub fn mask_line_pub(line: &str, carry: &mut u64) -> String {
        // Test-only shim exposing the private mode as an opaque carry.
        let mut mode = match *carry {
            0 => Mode::Code,
            1 => Mode::Str,
            m if m >= 1000 => Mode::RawStr(u8::try_from(m - 1000).unwrap_or(0)),
            m => Mode::Block(u32::try_from(m - 1).unwrap_or(0)),
        };
        let out = mask_line(line, &mut mode);
        *carry = match mode {
            Mode::Code => 0,
            Mode::Str => 1,
            Mode::RawStr(h) => 1000 + u64::from(h),
            Mode::Block(d) => 1 + u64::from(d),
        };
        out
    }

    fn mask_line(line: &str, mode: &mut Mode) -> String {
        let bytes = line.as_bytes();
        let mut out = vec![b' '; bytes.len()];
        let mut i = 0;
        while i < bytes.len() {
            match *mode {
                Mode::Block(depth) => {
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        *mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                        i += 2;
                    } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        *mode = Mode::Block(depth + 1);
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                Mode::Str => {
                    if bytes[i] == b'\\' {
                        i += 2;
                    } else if bytes[i] == b'"' {
                        *mode = Mode::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if bytes[i] == b'"' {
                        let h = usize::from(hashes);
                        if bytes.len() >= i + 1 + h
                            && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                        {
                            *mode = Mode::Code;
                            i += 1 + h;
                            continue;
                        }
                    }
                    i += 1;
                }
                Mode::Code => match bytes[i] {
                    b'/' if bytes.get(i + 1) == Some(&b'/') => {
                        return String::from_utf8(out).unwrap_or_default()
                    }
                    b'/' if bytes.get(i + 1) == Some(&b'*') => {
                        *mode = Mode::Block(1);
                        i += 2;
                    }
                    b'"' => {
                        *mode = Mode::Str;
                        i += 1;
                    }
                    b'r' if bytes.get(i + 1) == Some(&b'"')
                        || (bytes.get(i + 1) == Some(&b'#')
                            && raw_str_hashes(&bytes[i + 1..]).is_some()) =>
                    {
                        let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                        out[i] = b'r';
                        *mode = Mode::RawStr(hashes);
                        i += 2 + usize::from(hashes);
                    }
                    b'\'' => {
                        if bytes.get(i + 1) == Some(&b'\\') {
                            let mut j = i + 2;
                            while j < bytes.len() && bytes[j] != b'\'' {
                                j += 1;
                            }
                            i = (j + 1).min(bytes.len());
                        } else if bytes.len() > i + 2 && bytes[i + 2] == b'\'' {
                            i += 3;
                        } else {
                            out[i] = b'\'';
                            i += 1;
                        }
                    }
                    b => {
                        out[i] = b;
                        i += 1;
                    }
                },
            }
        }
        String::from_utf8(out).unwrap_or_default()
    }

    fn raw_str_hashes(after_r: &[u8]) -> Option<u8> {
        if after_r.first() == Some(&b'"') {
            return Some(0);
        }
        let hashes = after_r.iter().take_while(|&&b| b == b'#').count();
        if hashes > 0 && after_r.get(hashes) == Some(&b'"') {
            u8::try_from(hashes).ok()
        } else {
            None
        }
    }

    fn is_ident_byte(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_'
    }

    fn allowed_rules(raw_line: &str) -> Vec<&str> {
        parse_allow_markers(raw_line, "lint:allow(")
    }

    fn next_line_allowed_rules(raw_line: &str) -> Vec<&str> {
        parse_allow_markers(raw_line, "lint:allow-next-line(")
    }

    fn parse_allow_markers<'a>(raw_line: &'a str, marker: &str) -> Vec<&'a str> {
        let mut allowed = Vec::new();
        let mut rest = raw_line;
        while let Some(pos) = rest.find(marker) {
            rest = &rest[pos + marker.len()..];
            if let Some(end) = rest.find(')') {
                for rule in rest[..end].split(',') {
                    allowed.push(rule.trim());
                }
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
        allowed
    }

    fn find_banned(masked: &str, pattern: &str) -> bool {
        let needs_guard = pattern.as_bytes().first().copied().is_some_and(is_ident_byte);
        let mut start = 0;
        while let Some(pos) = masked[start..].find(pattern) {
            let abs = start + pos;
            if !needs_guard || abs == 0 || !is_ident_byte(masked.as_bytes()[abs - 1]) {
                return true;
            }
            start = abs + pattern.len();
        }
        false
    }

    fn has_float_literal(text: &str) -> bool {
        let b = text.as_bytes();
        (2..b.len()).any(|i| b[i].is_ascii_digit() && b[i - 1] == b'.' && b[i - 2].is_ascii_digit())
    }

    fn has_float_ident(text: &str) -> bool {
        text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_').any(|tok| {
            let lower = tok.to_ascii_lowercase();
            FLOAT_IDENT_HINTS.iter().any(|h| lower.contains(h))
        })
    }

    fn has_float_cmp(masked: &str) -> bool {
        let b = masked.as_bytes();
        let mut i = 0;
        while i + 1 < b.len() {
            let is_eq = b[i] == b'=' && b[i + 1] == b'=';
            let is_ne = b[i] == b'!' && b[i + 1] == b'=';
            if (is_eq || is_ne)
                && (i == 0
                    || !matches!(
                        b[i - 1],
                        b'<' | b'>'
                            | b'='
                            | b'!'
                            | b'+'
                            | b'-'
                            | b'*'
                            | b'/'
                            | b'%'
                            | b'&'
                            | b'|'
                            | b'^'
                    ))
                && b.get(i + 2) != Some(&b'=')
            {
                let lo = i.saturating_sub(40);
                let hi = (i + 2 + 40).min(b.len());
                let left = clip_operand(&masked[lo..i], true);
                let right = clip_operand(&masked[i + 2..hi], false);
                for side in [left, right] {
                    if has_float_literal(side) || has_float_ident(side) {
                        return true;
                    }
                }
            }
            i += 1;
        }
        false
    }

    fn clip_operand(window: &str, from_end: bool) -> &str {
        const SEPS: [char; 6] = [',', ';', '(', ')', '{', '}'];
        if from_end {
            match window.rfind(SEPS) {
                Some(p) => &window[p + 1..],
                None => window,
            }
        } else {
            match window.find(SEPS) {
                Some(p) => &window[..p],
                None => window,
            }
        }
    }

    fn has_narrowing_cast(masked: &str) -> bool {
        let b = masked.as_bytes();
        let mut start = 0;
        while let Some(pos) = masked[start..].find(" as ") {
            let abs = start + pos;
            let after = &masked[abs + 4..];
            let target: String = after.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
            if NARROW_TARGETS.contains(&target.as_str()) {
                if abs == 0 || !is_ident_byte(b[abs]) {
                    return true;
                }
            }
            start = abs + 4;
        }
        false
    }

    pub fn narrowing_applies(rel_path: &str) -> bool {
        let normalized = rel_path.replace('\\', "/");
        NARROWING_SCOPE.iter().any(|frag| {
            normalized.rsplit('/').next().is_some_and(|file| file.contains(frag))
                || normalized.contains(&format!("/{frag}/"))
        })
    }

    pub fn snapshot_io_exempt(rel_path: &str) -> bool {
        rel_path.replace('\\', "/").contains("crates/persist/")
    }

    pub fn shim_exempt(rel_path: &str) -> bool {
        rel_path.replace('\\', "/").ends_with("crates/core/src/synopsis.rs")
    }

    pub fn scan_shims(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
        if shim_exempt(rel_path) {
            return;
        }
        let mut mode = Mode::default();
        let mut next_line_allows: Vec<&str> = Vec::new();
        for (idx, raw_line) in source.lines().enumerate() {
            let masked = mask_line(raw_line, &mut mode);
            let carried = std::mem::take(&mut next_line_allows);
            next_line_allows = next_line_allowed_rules(raw_line);
            let mut allowed = allowed_rules(raw_line);
            allowed.extend(carried);
            if allowed.contains(&"deprecated-shim") {
                continue;
            }
            if SHIM_PATTERNS.iter().any(|p| find_banned(&masked, p)) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: "deprecated-shim",
                    excerpt: raw_line.trim().chars().take(120).collect(),
                });
            }
        }
    }

    fn bad_metric_name(raw_line: &str) -> Option<&str> {
        let bytes = raw_line.as_bytes();
        let mut start = 0;
        while let Some(pos) = raw_line[start..].find("\"dbhist_") {
            let name_start = start + pos + 1;
            let mut end = name_start;
            while end < bytes.len()
                && (bytes[end].is_ascii_lowercase()
                    || bytes[end].is_ascii_digit()
                    || bytes[end] == b'_')
            {
                end += 1;
            }
            let name = &raw_line[name_start..end];
            if !metric_name_ok(name) || bytes.get(end).is_some_and(u8::is_ascii_uppercase) {
                return Some(name);
            }
            start = end;
        }
        None
    }

    fn metric_name_ok(name: &str) -> bool {
        let segments: Vec<&str> = name.split('_').collect();
        if segments.len() < 4 || segments.iter().any(|s| s.is_empty()) {
            return false;
        }
        let last = segments[segments.len() - 1];
        if METRIC_UNITS.contains(&last) {
            return true;
        }
        METRIC_DERIVED_SUFFIXES.contains(&last)
            && segments.len() >= 5
            && METRIC_UNITS.contains(&segments[segments.len() - 2])
    }

    pub fn scan_metrics(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
        let mut next_line_allows: Vec<&str> = Vec::new();
        for (idx, raw_line) in source.lines().enumerate() {
            let carried = std::mem::take(&mut next_line_allows);
            next_line_allows = next_line_allowed_rules(raw_line);
            let mut allowed = allowed_rules(raw_line);
            allowed.extend(carried);
            if allowed.contains(&"metric-name") {
                continue;
            }
            if bad_metric_name(raw_line).is_some() {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: "metric-name",
                    excerpt: raw_line.trim().chars().take(120).collect(),
                });
            }
        }
    }

    pub fn scan_source(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
        let mut mode = Mode::default();
        let mut depth: i64 = 0;
        let mut pending_test = false;
        let mut test_until: Option<i64> = None;
        let mut next_line_allows: Vec<&str> = Vec::new();
        let narrowing_in_scope = narrowing_applies(rel_path);
        let snapshot_io_in_scope = !snapshot_io_exempt(rel_path);

        for (idx, raw_line) in source.lines().enumerate() {
            let masked = mask_line(raw_line, &mut mode);
            let line_no = idx + 1;

            if test_until.is_none() && masked.contains("cfg(test)") {
                pending_test = true;
            }
            let opens = i64::try_from(masked.bytes().filter(|&b| b == b'{').count()).unwrap_or(0);
            let closes = i64::try_from(masked.bytes().filter(|&b| b == b'}').count()).unwrap_or(0);
            if pending_test && opens > 0 {
                test_until = Some(depth);
                pending_test = false;
            }
            let in_test = test_until.is_some();
            depth += opens - closes;
            if let Some(t) = test_until {
                if depth <= t {
                    test_until = None;
                }
            }

            let carried_allows = std::mem::take(&mut next_line_allows);
            next_line_allows = next_line_allowed_rules(raw_line);
            if in_test {
                continue;
            }
            let mut allowed = allowed_rules(raw_line);
            allowed.extend(carried_allows);
            let mut push = |rule: &'static str| {
                if !allowed.contains(&rule) {
                    out.push(Violation {
                        file: rel_path.to_string(),
                        line: line_no,
                        rule,
                        excerpt: raw_line.trim().chars().take(120).collect(),
                    });
                }
            };

            if PANIC_PATTERNS.iter().any(|p| find_banned(&masked, p)) {
                push("no-panic");
            }
            if has_float_cmp(&masked) {
                push("float-cmp");
            }
            if narrowing_in_scope && has_narrowing_cast(&masked) {
                push("as-narrowing");
            }
            if snapshot_io_in_scope && SNAPSHOT_IO_PATTERNS.iter().any(|p| find_banned(&masked, p))
            {
                push("snapshot-io");
            }
        }
    }
}

/// The five ported rules whose findings must match the legacy scanner.
const PORTED: [&str; 5] =
    ["float-cmp", "as-narrowing", "deprecated-shim", "metric-name", "snapshot-io"];

fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Legacy masking of a whole source, line by line.
fn frozen_mask(source: &str) -> Vec<String> {
    let mut carry = 0u64;
    source.lines().map(|l| frozen::mask_line_pub(l, &mut carry)).collect()
}

/// (file, line, rule) key set for comparisons.
fn keys_frozen(v: &[frozen::Violation]) -> BTreeSet<(String, usize, String)> {
    v.iter()
        .filter(|v| v.rule != "no-panic")
        .map(|v| (v.file.clone(), v.line, v.rule.to_string()))
        .collect()
}

fn keys_report(r: &Report) -> BTreeSet<(String, usize, String)> {
    r.findings
        .iter()
        .filter(|f| PORTED.contains(&f.rule))
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect()
}

#[test]
fn masking_matches_legacy_on_every_workspace_file() {
    let root = workspace_root();
    let mut checked = 0usize;
    for (path, _) in workspace_files(&root) {
        let Ok(source) = std::fs::read_to_string(&path) else { continue };
        let legacy = frozen_mask(&source);
        let lexed = dbhist_analyze::lexer::lex(&source);
        assert_eq!(legacy, lexed.masked, "masking diverged in {}", path.display());
        checked += 1;
    }
    assert!(checked > 20, "workspace walk found only {checked} files");
}

#[test]
fn findings_match_legacy_on_whole_workspace() {
    let root = workspace_root();
    let mut legacy: Vec<frozen::Violation> = Vec::new();
    let mut report = Report::default();
    for (path, class) in workspace_files(&root) {
        let Ok(source) = std::fs::read_to_string(&path) else { continue };
        let rel = path.strip_prefix(&root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        if class.narrow {
            frozen::scan_source(&rel, &source, &mut legacy);
        }
        if class.wide {
            frozen::scan_shims(&rel, &source, &mut legacy);
            frozen::scan_metrics(&rel, &source, &mut legacy);
        }
        dbhist_analyze::analyze_file(&rel, &source, class, &mut report);
    }
    assert_eq!(
        keys_frozen(&legacy),
        keys_report(&report),
        "ported rules diverged from the pre-port linter"
    );
}

#[test]
fn findings_match_legacy_on_fixture_corpus() {
    // Small adversarial corpus: every ported rule, suppressions,
    // cfg(test) regions, masking traps.
    let corpus: [(&str, &str); 6] = [
        (
            "crates/core/src/marginal.rs",
            "fn f(freq: f64) {\n    if freq == 0.0 { return; }\n    // lint:allow-next-line(float-cmp): exact sentinel\n    if freq == 1.0 { return; }\n}\n#[cfg(test)]\nmod tests {\n    fn t(freq: f64) { assert!(freq == 0.5); }\n}\n",
        ),
        (
            "crates/histogram/src/codec.rs",
            "fn w(n: usize) -> u16 {\n    let a = n as u16; // lint:allow(as-narrowing): bounded above\n    let b = n as u16;\n    b\n}\n",
        ),
        (
            "crates/core/src/snapshot.rs",
            "fn load(p: &Path) {\n    let b = std::fs::read(p);\n    let s = std::fs::read_to_string(p);\n    let doc = \"fs::read( in a string\";\n}\n",
        ),
        (
            "crates/telemetry/src/wellknown.rs",
            "fn m(r: &Registry) {\n    r.counter(\"dbhist_build_rounds\");\n    r.counter(\"dbhist_query_estimates_total\");\n}\n",
        ),
        (
            "examples/quickstart.rs",
            "fn main() {\n    let db = DbHistogram::build_mhist(&rel, &config);\n    /* DbHistogram::build_grid in a comment */\n}\n",
        ),
        (
            "crates/core/src/plan.rs",
            "fn f() {\n    let r = r#\"raw \"quoted\" freq == 0.0\"#;\n    let c = '{';\n    if mass != expected_mass { fix(); }\n}\n",
        ),
    ];
    for (rel, source) in corpus {
        let mut legacy: Vec<frozen::Violation> = Vec::new();
        let narrow = !rel.starts_with("examples/");
        if narrow {
            frozen::scan_source(rel, source, &mut legacy);
        }
        frozen::scan_shims(rel, source, &mut legacy);
        frozen::scan_metrics(rel, source, &mut legacy);

        let class = dbhist_analyze::FileClass { narrow, wide: true, library: false };
        let mut report = Report::default();
        analyze_file(rel, source, class, &mut report);

        assert_eq!(keys_frozen(&legacy), keys_report(&report), "fixture diverged: {rel}\n{source}");
    }
}

mod masking_proptest {
    use proptest::collection::vec;
    use proptest::prelude::*;

    /// Fragment alphabet for string/comment/raw-string soups. Joined
    /// with no separator, so fragments collide into each other — that
    /// is the point (`br` + `"str"` forms `br"str"`, idents run into
    /// quotes, comment openers split across fragments…).
    const FRAGMENTS: [&str; 30] = [
        "let x = 1;",
        "\n",
        "\"",
        "\\\"",
        "\\\\",
        "'",
        "r",
        "b",
        "br",
        "#",
        "r#\"",
        "\"#",
        "//",
        "/*",
        "*/",
        "freq == 0.0",
        ".unwrap()",
        "ident",
        "'a",
        "'x'",
        "'\\n'",
        "{",
        "}",
        " as u16 ",
        "0..5",
        "1.5f64",
        "fs::read(",
        "panic!",
        "var",
        " ",
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]
        #[test]
        fn lexer_masking_agrees_with_legacy(idx in vec(0usize..FRAGMENTS.len(), 1..40)) {
            let source: String = idx.iter().map(|&i| FRAGMENTS[i]).collect();
            let legacy = super::frozen_mask(&source);
            let lexed = dbhist_analyze::lexer::lex(&source);
            prop_assert_eq!(&legacy, &lexed.masked, "source: {:?}", source);
        }
    }
}
