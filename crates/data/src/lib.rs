//! Data sets, query workloads, and answer-quality metrics (paper §4.1).
//!
//! The paper evaluates on extracts of the US Census Bureau's Current
//! Population Survey (March Questionnaire Supplement) and a California
//! housing survey. Those exact 2001 extracts are not redistributable, so
//! this crate provides **synthetic generators that reproduce the paper's
//! schemas and correlation structure**:
//!
//! * [`census::census_data_set_1`] — the 6-attribute set: `race(4)`,
//!   `native-country(113)`, `mother-country(113)`, `father-country(113)`,
//!   `citizenship(5)`, `age(91)`; ~125,705 tuples. The first five
//!   attributes are strongly correlated, `age` is essentially independent
//!   — exactly the structure the paper expects model selection to
//!   discover.
//! * [`census::census_data_set_2`] — the 12-attribute set adding
//!   `industry(237)`, `hours(88)`, `education(17)`, `state(51)`,
//!   `county(91)`; ~83,566 tuples with a high distinct-tuple ratio.
//! * [`housing::california_housing`] — the classic 9-attribute housing
//!   schema with geographic clusters and income/value correlations.
//!
//! [`workload`] generates the paper's random `k`-D range-query workloads
//! (100 queries per `k`, discarding queries matching fewer than 100 base
//! tuples), and [`metrics`] implements the two answer-quality measures:
//! absolute relative error and multiplicative error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod census;
pub mod housing;
pub mod metrics;
pub mod synthetic;
pub mod workload;

pub use metrics::{multiplicative_error, relative_error, ErrorSummary};
pub use workload::{Query, Workload, WorkloadConfig};
