//! Parametric synthetic data with controlled dependency structure.
//!
//! The Census and housing generators reproduce the paper's specific data
//! sets; this module generates tables with a *chosen* ground-truth
//! dependency topology, so scaling experiments and controlled tests can
//! vary dimensionality, domain sizes, and correlation strength
//! independently — and verify that model selection recovers exactly the
//! structure that was planted.

use dbhist_distribution::{Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth dependency topology of a synthetic table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// No dependencies: every attribute uniform and independent.
    Independent,
    /// A Markov chain `X_0 → X_1 → ... → X_{n-1}`.
    Chain,
    /// A star: every attribute depends on `X_0`.
    Star,
    /// Disjoint correlated pairs `(X_0,X_1), (X_2,X_3), ...` (odd
    /// leftover attribute independent).
    Pairs,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Domain size per attribute (arity = `domains.len()`).
    pub domains: Vec<u32>,
    /// The planted dependency structure.
    pub topology: Topology,
    /// Probability that a dependent attribute *copies* its parent's value
    /// (modulo domain); the rest is uniform noise. 0 = independent,
    /// 1 = deterministic.
    pub strength: f64,
    /// Number of rows.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A chain over `n` attributes of domain `d` with copy probability
    /// 0.8 — the workhorse for scaling benches.
    #[must_use]
    pub fn chain(n: usize, d: u32, rows: usize, seed: u64) -> Self {
        Self { domains: vec![d; n], topology: Topology::Chain, strength: 0.8, rows, seed }
    }
}

/// Generates a relation with the configured planted structure.
///
/// # Panics
///
/// Panics on an empty domain list, a zero domain, or a strength outside
/// `[0, 1]`.
#[must_use]
#[allow(clippy::expect_used)]
pub fn generate(config: &SyntheticConfig) -> Relation {
    assert!(!config.domains.is_empty(), "need at least one attribute");
    assert!(config.domains.iter().all(|&d| d > 0), "domains must be non-empty");
    assert!((0.0..=1.0).contains(&config.strength), "strength must lie in [0, 1]");
    let schema = Schema::new(config.domains.iter().enumerate().map(|(i, &d)| (format!("x{i}"), d)))
        .expect("valid synthetic schema"); // lint:allow(panic-surface): generated names are unique and domains validated above
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.domains.len();
    let rows: Vec<Vec<u32>> = (0..config.rows)
        .map(|_| {
            let mut row = vec![0u32; n];
            for i in 0..n {
                let d = config.domains[i];
                let parent: Option<usize> = match config.topology {
                    Topology::Independent => None,
                    Topology::Chain => (i > 0).then(|| i - 1),
                    Topology::Star => (i > 0).then_some(0),
                    Topology::Pairs => (i % 2 == 1).then(|| i - 1),
                };
                row[i] = match parent {
                    Some(p) if rng.gen_bool(config.strength) => row[p] % d,
                    _ => rng.gen_range(0..d),
                };
            }
            row
        })
        .collect();
    Relation::from_rows(schema, rows).expect("generator respects the schema") // lint:allow(panic-surface): every row value is drawn modulo its domain
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_model::selection::{ForwardSelector, SelectionConfig};

    #[test]
    fn shapes_and_determinism() {
        let cfg = SyntheticConfig::chain(5, 8, 500, 3);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.row_count(), 500);
        assert_eq!(a.schema().arity(), 5);
        assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
    }

    #[test]
    fn selection_recovers_chain() {
        let cfg = SyntheticConfig {
            domains: vec![6; 5],
            topology: Topology::Chain,
            strength: 0.85,
            rows: 4_000,
            seed: 11,
        };
        let rel = generate(&cfg);
        let model = ForwardSelector::new(&rel, SelectionConfig::default()).run().model;
        // Every chain link must be discovered.
        for i in 0..4u16 {
            assert!(
                model.graph().has_edge(i, i + 1),
                "missing {i}-{} in {}",
                i + 1,
                model.notation()
            );
        }
    }

    #[test]
    fn selection_recovers_star_center() {
        let cfg = SyntheticConfig {
            domains: vec![8; 5],
            topology: Topology::Star,
            strength: 0.8,
            rows: 4_000,
            seed: 12,
        };
        let rel = generate(&cfg);
        let model = ForwardSelector::new(&rel, SelectionConfig::default()).run().model;
        for leaf in 1..5u16 {
            assert!(
                model.graph().has_edge(0, leaf),
                "missing hub edge to {leaf} in {}",
                model.notation()
            );
        }
    }

    #[test]
    fn selection_recovers_pairs_only() {
        let cfg = SyntheticConfig {
            domains: vec![6; 5],
            topology: Topology::Pairs,
            strength: 0.9,
            rows: 4_000,
            seed: 13,
        };
        let rel = generate(&cfg);
        // A strict significance level keeps borderline sampling noise out
        // (θ = 0.90 admits an expected ~10% false-positive rate per pair).
        let config = SelectionConfig { theta: 0.9999, ..Default::default() };
        let model = ForwardSelector::new(&rel, config).run().model;
        assert!(model.graph().has_edge(0, 1));
        assert!(model.graph().has_edge(2, 3));
        // The odd attribute 4 stays isolated.
        assert!(model.graph().neighbors(4).is_empty(), "{}", model.notation());
    }

    #[test]
    fn independent_topology_yields_empty_model() {
        let cfg = SyntheticConfig {
            domains: vec![6; 4],
            topology: Topology::Independent,
            strength: 0.0,
            rows: 3_000,
            seed: 14,
        };
        let rel = generate(&cfg);
        // As in `selection_recovers_pairs_only`: a strict significance level
        // keeps borderline sampling noise from spawning spurious edges.
        let config = SelectionConfig { theta: 0.9999, ..Default::default() };
        let model = ForwardSelector::new(&rel, config).run().model;
        assert_eq!(model.edge_count(), 0, "{}", model.notation());
    }

    #[test]
    fn strength_zero_is_independent_even_with_topology() {
        let cfg = SyntheticConfig {
            domains: vec![4; 3],
            topology: Topology::Chain,
            strength: 0.0,
            rows: 2_000,
            seed: 15,
        };
        let rel = generate(&cfg);
        let model = ForwardSelector::new(&rel, SelectionConfig::default()).run().model;
        assert_eq!(model.edge_count(), 0);
    }

    #[test]
    #[should_panic(expected = "strength")]
    fn rejects_bad_strength() {
        let cfg = SyntheticConfig {
            domains: vec![4; 2],
            topology: Topology::Chain,
            strength: 1.5,
            rows: 10,
            seed: 0,
        };
        let _ = generate(&cfg);
    }
}
