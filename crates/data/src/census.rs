//! Synthetic Census CPS-like data sets (paper §4.1).
//!
//! The generators reproduce the *attribute domains* and the *correlation
//! structure* the paper describes for the Current Population Survey person
//! files, without access to the original extracts:
//!
//! * `native-country`, `mother-country`, and `father-country` are strongly
//!   mutually correlated (family members usually share an origin);
//! * `citizenship` is nearly a function of `native-country`;
//! * `race` correlates with origin region;
//! * `age` is drawn independently of everything else;
//! * (data set 2) `county` depends on `state`; `education` on `age`;
//!   `industry` on `education`; `hours` on `industry`.
//!
//! The distributions are heavily skewed (a dominant home country, Zipfian
//! tails) so that histograms face realistic frequency variation, and the
//! generation is fully deterministic given the seed.

use dbhist_distribution::{Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuple count of the paper's Census data set 1.
pub const DATA_SET_1_ROWS: usize = 125_705;
/// Tuple count of the paper's Census data set 2.
pub const DATA_SET_2_ROWS: usize = 83_566;

/// Attribute indices of data set 1 (and the first six of data set 2).
pub mod attrs {
    /// `race` (domain 4).
    pub const RACE: u16 = 0;
    /// `native-country` of the sample person (domain 113).
    pub const COUNTRY: u16 = 1;
    /// `native-country` of the person's mother (domain 113).
    pub const MOTHER_COUNTRY: u16 = 2;
    /// `native-country` of the person's father (domain 113).
    pub const FATHER_COUNTRY: u16 = 3;
    /// `citizenship` (domain 5).
    pub const CITIZENSHIP: u16 = 4;
    /// `age` (domain 91).
    pub const AGE: u16 = 5;
    /// `industry` code (domain 237, data set 2 only).
    pub const INDUSTRY: u16 = 6;
    /// usual weekly `hours` at the main job (domain 88, data set 2 only).
    pub const HOURS: u16 = 7;
    /// `education` attainment (domain 17, data set 2 only).
    pub const EDUCATION: u16 = 8;
    /// census `state` code (domain 51, data set 2 only).
    pub const STATE: u16 = 9;
    /// `county` code (domain 91, data set 2 only).
    pub const COUNTY: u16 = 10;
    /// a second independent survey weight digit (domain 10, data set 2
    /// only) — keeps the arity at 12 as in the paper.
    pub const WEIGHT_DIGIT: u16 = 11;
}

/// Schema of Census data set 1 (6 attributes, as in the paper).
#[must_use]
#[allow(clippy::expect_used)]
pub fn schema_1() -> Schema {
    Schema::new(vec![
        ("race", 4),
        ("country", 113),
        ("mother-country", 113),
        ("father-country", 113),
        ("citizenship", 5),
        ("age", 91),
    ])
    .expect("static schema is valid") // lint:allow(panic-surface): compile-time literal schema
}

/// Schema of Census data set 2 (12 attributes, as in the paper).
#[must_use]
#[allow(clippy::expect_used)]
pub fn schema_2() -> Schema {
    Schema::new(vec![
        ("race", 4),
        ("country", 113),
        ("mother-country", 113),
        ("father-country", 113),
        ("citizenship", 5),
        ("age", 91),
        ("industry", 237),
        ("hours", 88),
        ("education", 17),
        ("state", 51),
        ("county", 91),
        ("weight-digit", 10),
    ])
    .expect("static schema is valid") // lint:allow(panic-surface): compile-time literal schema
}

/// Draws a country: 0 is the dominant home country (~72%); the remaining
/// mass decays Zipf-like over 1..113.
fn draw_country(rng: &mut StdRng) -> u32 {
    if rng.gen_bool(0.72) {
        return 0;
    }
    // Zipf-ish over the 112 foreign codes via inverse-power transform.
    let u: f64 = rng.gen_range(0.0f64..1.0);
    let v = (112.0f64.powf(u) - 1.0) / 111.0 * 112.0;
    1 + (v as u32).min(111)
}

/// Draws a parent's country given the person's.
fn draw_parent_country(rng: &mut StdRng, person: u32) -> u32 {
    if person == 0 {
        // Home-born: parents mostly home-born, sometimes immigrants.
        if rng.gen_bool(0.88) {
            0
        } else {
            draw_country(rng)
        }
    } else if rng.gen_bool(0.90) {
        person
    } else {
        draw_country(rng)
    }
}

/// Citizenship as a noisy function of the native country.
fn draw_citizenship(rng: &mut StdRng, country: u32) -> u32 {
    if country == 0 {
        if rng.gen_bool(0.97) {
            0 // born in the home country
        } else {
            1 // born in an outlying territory
        }
    } else if rng.gen_bool(0.12) {
        2 // born abroad of citizen parents
    } else if rng.gen_bool(0.45) {
        3 // naturalized
    } else {
        4 // not a citizen
    }
}

/// Race correlates with origin region.
fn draw_race(rng: &mut StdRng, country: u32) -> u32 {
    let region = match country {
        0 => 0,
        1..=40 => 1,
        41..=80 => 2,
        _ => 3,
    };
    if rng.gen_bool(0.75) {
        region
    } else {
        rng.gen_range(0..4)
    }
}

/// Age: independent, roughly census-shaped (triangular with a working-age
/// plateau), clamped to 0..91.
fn draw_age(rng: &mut StdRng) -> u32 {
    let a: u32 = rng.gen_range(0..91);
    let b: u32 = rng.gen_range(0..91);
    // Averaging two uniforms gives a triangular distribution peaked at 45.
    (a + b) / 2
}

fn draw_person(rng: &mut StdRng) -> [u32; 6] {
    let country = draw_country(rng);
    let mother = draw_parent_country(rng, country);
    let father = if rng.gen_bool(0.85) {
        // Couples usually share an origin.
        if mother == 0 || rng.gen_bool(0.9) {
            mother
        } else {
            draw_parent_country(rng, country)
        }
    } else {
        draw_parent_country(rng, country)
    };
    [
        draw_race(rng, country),
        country,
        mother,
        father,
        draw_citizenship(rng, country),
        draw_age(rng),
    ]
}

/// Generates Census data set 1 (6 attributes, `rows` tuples).
#[must_use]
#[allow(clippy::expect_used)]
pub fn census_data_set_1_with(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..rows).map(|_| draw_person(&mut rng).to_vec()).collect();
    // lint:allow-next-line(panic-surface): draw_person emits in-domain values by construction
    Relation::from_rows(schema_1(), rows).expect("generator respects the schema")
}

/// Generates Census data set 1 at the paper's size (125,705 tuples).
#[must_use]
pub fn census_data_set_1() -> Relation {
    census_data_set_1_with(DATA_SET_1_ROWS, 0x2001_5161)
}

/// State populations are skewed; county depends on the state; education
/// depends on age; industry on education; hours on industry.
fn draw_extension(rng: &mut StdRng, age: u32) -> [u32; 6] {
    // State: a few large states hold most of the mass.
    let state: u32 = if rng.gen_bool(0.5) {
        rng.gen_range(0..8) // the big states
    } else {
        rng.gen_range(0..51)
    };
    // County: tightly concentrated around a state-specific base.
    let county = if rng.gen_bool(0.92) {
        (state * 7 + rng.gen_range(0..5)) % 91
    } else {
        rng.gen_range(0..91)
    };
    // Education rises with age up to a plateau.
    let edu_cap = ((age / 6) + 4).min(16);
    let education = if rng.gen_bool(0.8) {
        rng.gen_range((edu_cap.saturating_sub(3))..=edu_cap)
    } else {
        rng.gen_range(0..17)
    };
    // Industry clusters tightly by education band.
    let industry = if rng.gen_bool(0.88) {
        (education * 14 + rng.gen_range(0..10)) % 237
    } else {
        rng.gen_range(0..237)
    };
    // Hours: full-time dominates, with an industry-dependent second mode.
    let hours = if rng.gen_bool(0.65) {
        40
    } else if industry % 2 == 0 {
        rng.gen_range(10..25)
    } else {
        rng.gen_range(45..70)
    };
    let weight_digit = rng.gen_range(0..10);
    [industry, hours, education, state, county, weight_digit]
}

/// Generates Census data set 2 (12 attributes, `rows` tuples).
#[must_use]
#[allow(clippy::expect_used)]
pub fn census_data_set_2_with(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let rows: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            let person = draw_person(&mut rng);
            let ext = draw_extension(&mut rng, person[5]);
            person.iter().chain(ext.iter()).copied().collect()
        })
        .collect();
    // lint:allow-next-line(panic-surface): draw_person/draw_extension emit in-domain values by construction
    Relation::from_rows(schema_2(), rows).expect("generator respects the schema")
}

/// Generates Census data set 2 at the paper's size (83,566 tuples).
#[must_use]
pub fn census_data_set_2() -> Relation {
    census_data_set_2_with(DATA_SET_2_ROWS, 0x2001_5162)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{AttrSet, EntropyCache};

    #[test]
    fn schemas_match_paper_domains() {
        let s1 = schema_1();
        assert_eq!(s1.arity(), 6);
        assert_eq!(s1.domain_size(attrs::RACE), 4);
        assert_eq!(s1.domain_size(attrs::COUNTRY), 113);
        assert_eq!(s1.domain_size(attrs::CITIZENSHIP), 5);
        assert_eq!(s1.domain_size(attrs::AGE), 91);
        let s2 = schema_2();
        assert_eq!(s2.arity(), 12);
        assert_eq!(s2.domain_size(attrs::INDUSTRY), 237);
        assert_eq!(s2.domain_size(attrs::HOURS), 88);
        assert_eq!(s2.domain_size(attrs::EDUCATION), 17);
        assert_eq!(s2.domain_size(attrs::STATE), 51);
        assert_eq!(s2.domain_size(attrs::COUNTY), 91);
    }

    #[test]
    fn deterministic_generation() {
        let a = census_data_set_1_with(500, 7);
        let b = census_data_set_1_with(500, 7);
        assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        let c = census_data_set_1_with(500, 8);
        assert_ne!(a.rows().collect::<Vec<_>>(), c.rows().collect::<Vec<_>>());
    }

    /// Mutual information I(X;Y) from a relation, in nats.
    fn mi(rel: &Relation, x: u16, y: u16) -> f64 {
        let mut cache = EntropyCache::new(rel);
        cache.entropy(&AttrSet::singleton(x)) + cache.entropy(&AttrSet::singleton(y))
            - cache.entropy(&AttrSet::from_ids([x, y]))
    }

    /// Upward bias of the plug-in MI estimate for independent variables:
    /// ≈ (|Dx|−1)(|Dy|−1)/(2N) nats (the Miller–Madow correction). Tests
    /// for independence must allow for it on wide domains.
    fn mi_bias(rel: &Relation, x: u16, y: u16) -> f64 {
        let dx = f64::from(rel.schema().domain_size(x)) - 1.0;
        let dy = f64::from(rel.schema().domain_size(y)) - 1.0;
        dx * dy / (2.0 * rel.row_count() as f64)
    }

    #[test]
    fn correlation_structure_data_set_1() {
        let rel = census_data_set_1_with(20_000, 42);
        // The origin cluster is strongly correlated.
        let strong = [
            (attrs::COUNTRY, attrs::MOTHER_COUNTRY),
            (attrs::MOTHER_COUNTRY, attrs::FATHER_COUNTRY),
            (attrs::COUNTRY, attrs::CITIZENSHIP),
        ];
        for (x, y) in strong {
            assert!(mi(&rel, x, y) > 0.3, "I({x};{y}) = {}", mi(&rel, x, y));
        }
        // Age is (nearly) independent of everything: the measured MI must
        // be explained by estimator bias alone.
        for other in [attrs::RACE, attrs::COUNTRY, attrs::CITIZENSHIP] {
            let i = mi(&rel, attrs::AGE, other);
            let bias = mi_bias(&rel, attrs::AGE, other);
            assert!(i < bias + 0.05, "I(age;{other}) = {i} (bias {bias})");
        }
        // And the strong correlations dwarf the bias-corrected age ones.
        let age_excess = (mi(&rel, attrs::AGE, attrs::COUNTRY)
            - mi_bias(&rel, attrs::AGE, attrs::COUNTRY))
        .max(0.01);
        assert!(mi(&rel, attrs::COUNTRY, attrs::MOTHER_COUNTRY) > 10.0 * age_excess);
    }

    #[test]
    fn correlation_structure_data_set_2() {
        let rel = census_data_set_2_with(20_000, 42);
        assert!(mi(&rel, attrs::STATE, attrs::COUNTY) > 0.5);
        assert!(mi(&rel, attrs::EDUCATION, attrs::INDUSTRY) > 0.3);
        assert!(mi(&rel, attrs::AGE, attrs::EDUCATION) > 0.1);
        // The weight digit is independent of everything (up to plug-in
        // estimator bias).
        for other in [attrs::STATE, attrs::AGE, attrs::INDUSTRY] {
            let i = mi(&rel, attrs::WEIGHT_DIGIT, other);
            let bias = mi_bias(&rel, attrs::WEIGHT_DIGIT, other);
            assert!(i < bias + 0.02, "I(weight;{other}) = {i} (bias {bias})");
        }
    }

    #[test]
    fn skew_present() {
        // The dominant home country holds most of the mass.
        let rel = census_data_set_1_with(10_000, 3);
        let c = rel.marginal(&AttrSet::singleton(attrs::COUNTRY)).unwrap();
        let home = c.frequency(&[0]);
        assert!(home > 6_000.0 && home < 8_500.0, "home mass {home}");
        // Many distinct foreign codes appear.
        assert!(c.support_size() > 60);
    }

    #[test]
    fn duplicate_ratio_flavors() {
        // Data set 1 has few distinct tuples relative to rows (paper:
        // 13,449 of 125,705); data set 2 is mostly distinct (63,090 of
        // 83,566). Check the same flavor at smaller scale.
        let r1 = census_data_set_1_with(20_000, 5);
        let d1 = r1.distribution().support_size() as f64 / 20_000.0;
        let r2 = census_data_set_2_with(20_000, 5);
        let d2 = r2.distribution().support_size() as f64 / 20_000.0;
        assert!(d1 < 0.65, "data set 1 distinct ratio {d1}");
        assert!(d2 > 0.85, "data set 2 distinct ratio {d2}");
        assert!(d2 > d1);
    }

    #[test]
    fn full_sizes_match_paper() {
        // Only row counts (cheap to verify without generating twice).
        assert_eq!(DATA_SET_1_ROWS, 125_705);
        assert_eq!(DATA_SET_2_ROWS, 83_566);
    }
}
