//! Synthetic California-housing-like data set.
//!
//! The paper's full version additionally evaluates on the 1990 California
//! housing survey (`lib.stat.cmu.edu`). This generator reproduces that
//! set's shape: 20,640 districts over 9 attributes, with geographic
//! clustering (districts concentrate around a handful of metro areas),
//! size attributes (`rooms`, `bedrooms`, `population`, `households`) that
//! are strongly mutually correlated through district size, and
//! `median-income` driving `median-house-value`. Attributes are
//! discretized to integer domains as §2.1 prescribes for non-categorical
//! data.

use dbhist_distribution::{Relation, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// District count of the original survey.
pub const HOUSING_ROWS: usize = 20_640;

/// Attribute indices of the housing data set.
pub mod attrs {
    /// Discretized longitude (domain 50).
    pub const LONGITUDE: u16 = 0;
    /// Discretized latitude (domain 50).
    pub const LATITUDE: u16 = 1;
    /// Housing median age (domain 52).
    pub const AGE: u16 = 2;
    /// Total rooms, bucketized (domain 64).
    pub const ROOMS: u16 = 3;
    /// Total bedrooms, bucketized (domain 64).
    pub const BEDROOMS: u16 = 4;
    /// Population, bucketized (domain 64).
    pub const POPULATION: u16 = 5;
    /// Households, bucketized (domain 64).
    pub const HOUSEHOLDS: u16 = 6;
    /// Median income, bucketized (domain 64).
    pub const INCOME: u16 = 7;
    /// Median house value, bucketized (domain 64).
    pub const VALUE: u16 = 8;
}

/// Schema of the housing data set.
#[must_use]
#[allow(clippy::expect_used)]
pub fn schema() -> Schema {
    Schema::new(vec![
        ("longitude", 50),
        ("latitude", 50),
        ("age", 52),
        ("rooms", 64),
        ("bedrooms", 64),
        ("population", 64),
        ("households", 64),
        ("income", 64),
        ("value", 64),
    ])
    .expect("static schema is valid") // lint:allow(panic-surface): compile-time literal schema
}

/// Metro-area cluster centers as (longitude, latitude, affluence) with
/// affluence in 0..1 steering incomes.
const METROS: [(u32, u32, f64); 5] = [
    (8, 38, 0.85),  // SF bay
    (20, 12, 0.70), // LA basin
    (26, 8, 0.55),  // San Diego
    (18, 30, 0.45), // Central Valley
    (12, 22, 0.40), // Central Coast
];

fn clamp(v: i64, hi: u32) -> u32 {
    v.clamp(0, i64::from(hi - 1)) as u32
}

/// Generates the housing data set with `rows` districts.
#[must_use]
#[allow(clippy::expect_used)]
pub fn california_housing_with(rows: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = schema();
    let data: Vec<Vec<u32>> = (0..rows)
        .map(|_| {
            // Pick a metro (skewed) or a rural spot.
            let (lon, lat, affluence) = if rng.gen_bool(0.8) {
                let weights = [0.3f64, 0.35, 0.12, 0.13, 0.10];
                let mut pick: f64 = rng.gen_range(0.0f64..1.0);
                let mut metro = METROS[0];
                for (m, &w) in METROS.iter().zip(&weights) {
                    if pick < w {
                        metro = *m;
                        break;
                    }
                    pick -= w;
                }
                let (mx, my, aff) = metro;
                let lon = clamp(i64::from(mx) + rng.gen_range(-4i64..=4), 50);
                let lat = clamp(i64::from(my) + rng.gen_range(-4i64..=4), 50);
                (lon, lat, aff)
            } else {
                (rng.gen_range(0..50), rng.gen_range(0..50), 0.3)
            };

            // District size drives rooms/bedrooms/population/households.
            let size: f64 = rng.gen_range(0.2f64..1.0);
            let noise = |rng: &mut StdRng, scale: f64| rng.gen_range(-scale..scale);
            let rooms = clamp((size * 56.0 + noise(&mut rng, 6.0)) as i64, 64);
            let bedrooms = clamp((f64::from(rooms) * 0.85 + noise(&mut rng, 5.0)) as i64, 64);
            let households = clamp((size * 52.0 + noise(&mut rng, 7.0)) as i64, 64);
            let population =
                clamp((f64::from(households) * 1.05 + noise(&mut rng, 6.0)) as i64, 64);

            // Income around the metro's affluence; value follows income.
            let income = clamp((affluence * 52.0 + noise(&mut rng, 12.0)) as i64, 64);
            let value = clamp((f64::from(income) * 0.9 + noise(&mut rng, 9.0)) as i64, 64);

            // Older housing stock in the urban cores.
            let urban = f64::from(50 - lon.abs_diff(20).min(30)) / 50.0;
            let age = clamp((urban * 40.0 + rng.gen_range(0.0f64..20.0)) as i64, 52);

            vec![lon, lat, age, rooms, bedrooms, population, households, income, value]
        })
        .collect();
    Relation::from_rows(schema, data).expect("generator respects the schema") // lint:allow(panic-surface): clamp() keeps every generated value in-domain
}

/// Generates the housing data set at its original size (20,640 rows).
#[must_use]
pub fn california_housing() -> Relation {
    california_housing_with(HOUSING_ROWS, 0x1990_CA11)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{AttrSet, EntropyCache};

    fn mi(rel: &Relation, x: u16, y: u16) -> f64 {
        let mut cache = EntropyCache::new(rel);
        cache.entropy(&AttrSet::singleton(x)) + cache.entropy(&AttrSet::singleton(y))
            - cache.entropy(&AttrSet::from_ids([x, y]))
    }

    #[test]
    fn schema_shape() {
        let s = schema();
        assert_eq!(s.arity(), 9);
        assert_eq!(s.domain_size(attrs::LONGITUDE), 50);
        assert_eq!(s.domain_size(attrs::VALUE), 64);
    }

    #[test]
    fn deterministic_and_sized() {
        let a = california_housing_with(1000, 1);
        let b = california_housing_with(1000, 1);
        assert_eq!(a.rows().collect::<Vec<_>>(), b.rows().collect::<Vec<_>>());
        assert_eq!(a.row_count(), 1000);
        assert_eq!(HOUSING_ROWS, 20_640);
    }

    #[test]
    fn correlations_present() {
        let rel = california_housing_with(15_000, 9);
        // The size cluster is strongly mutually correlated.
        assert!(mi(&rel, attrs::ROOMS, attrs::BEDROOMS) > 0.5);
        assert!(mi(&rel, attrs::POPULATION, attrs::HOUSEHOLDS) > 0.5);
        assert!(mi(&rel, attrs::ROOMS, attrs::HOUSEHOLDS) > 0.3);
        // Income drives value; geography drives income.
        assert!(mi(&rel, attrs::INCOME, attrs::VALUE) > 0.5);
        assert!(mi(&rel, attrs::LONGITUDE, attrs::LATITUDE) > 0.3);
        // Size is (nearly) independent of income.
        assert!(mi(&rel, attrs::ROOMS, attrs::INCOME) < 0.12);
    }

    #[test]
    fn geographic_clustering() {
        let rel = california_housing_with(10_000, 9);
        let lon = rel.marginal(&AttrSet::singleton(attrs::LONGITUDE)).unwrap();
        // Mass concentrates near the metro longitudes (8, 20, 26, ...).
        let metro_mass = lon.range_mass(&[(attrs::LONGITUDE, 4, 30)]);
        assert!(metro_mass > 7_000.0, "metro mass {metro_mass}");
    }
}
