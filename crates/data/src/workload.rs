//! Random range-selectivity query workloads (paper §4.1).
//!
//! A `k`-D query specifies inclusive ranges on `k` randomly chosen
//! attributes and leaves the rest unconstrained. Workloads consist of 100
//! random `k`-D queries; queries matching fewer than 100 base tuples are
//! discarded (the paper's truncation rule), so error metrics are never
//! dominated by near-empty answers.

use dbhist_distribution::{AttrId, Relation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One range-selectivity query with its exact answer.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The conjunctive ranges `(attr, lo, hi)`, one per constrained
    /// attribute.
    pub ranges: Vec<(AttrId, u32, u32)>,
    /// Exact number of matching tuples in the base relation.
    pub exact: u64,
}

/// Workload generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of constrained attributes per query (the paper's `k`).
    pub dimensionality: usize,
    /// Number of accepted queries (the paper uses 100).
    pub queries: usize,
    /// Minimum exact answer for a query to be kept (the paper uses 100).
    pub min_count: u64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's configuration for a `k`-D workload: 100 queries, ≥100
    /// matching tuples.
    #[must_use]
    pub fn paper(dimensionality: usize, seed: u64) -> Self {
        Self { dimensionality, queries: 100, min_count: 100, seed }
    }
}

/// A generated workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The configuration it was generated with.
    pub config: WorkloadConfig,
    /// The accepted queries.
    pub queries: Vec<Query>,
}

impl Workload {
    /// Generates a workload against `relation`.
    ///
    /// Random queries are drawn until `config.queries` pass the
    /// `min_count` filter (bounded by a generous attempt cap, so
    /// pathological configurations terminate with fewer queries rather
    /// than hanging).
    #[must_use]
    pub fn generate(relation: &Relation, config: WorkloadConfig) -> Self {
        assert!(
            config.dimensionality >= 1 && config.dimensionality <= relation.schema().arity(),
            "workload dimensionality must be within the schema arity"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = relation.schema().arity();
        let attrs: Vec<AttrId> = (0..n as AttrId).collect();
        let mut queries = Vec::with_capacity(config.queries);
        let max_attempts = config.queries * 500;
        let mut attempts = 0;
        // Candidate filtering counts against the sparse joint distribution
        // (its support is typically 10x smaller than the row count), not
        // the raw rows — same exact integers, far cheaper rejection.
        let joint = relation.distribution();
        while queries.len() < config.queries && attempts < max_attempts {
            attempts += 1;
            // Choose k distinct attributes and a random range per attribute.
            let chosen: Vec<AttrId> =
                attrs.choose_multiple(&mut rng, config.dimensionality).copied().collect();
            let ranges: Vec<(AttrId, u32, u32)> = chosen
                .iter()
                .map(|&a| {
                    let d = relation.schema().domain_size(a);
                    let x = rng.gen_range(0..d);
                    let y = rng.gen_range(0..d);
                    (a, x.min(y), x.max(y))
                })
                .collect();
            let exact = joint.range_mass(&ranges).round() as u64;
            if exact >= config.min_count {
                queries.push(Query { ranges, exact });
            }
        }
        Self { config, queries }
    }

    /// Number of accepted queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` if generation accepted no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 16), ("b", 16), ("c", 8)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..20_000u32).map(|i| vec![(i * 7) % 16, (i * 3) % 16, i % 8]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn generates_requested_count() {
        let rel = relation();
        let w = Workload::generate(&rel, WorkloadConfig::paper(2, 11));
        assert_eq!(w.len(), 100);
        for q in &w.queries {
            assert_eq!(q.ranges.len(), 2);
            assert!(q.exact >= 100);
            assert_eq!(q.exact, rel.count_range(&q.ranges));
            // Distinct attributes, valid ranges.
            assert_ne!(q.ranges[0].0, q.ranges[1].0);
            for &(a, lo, hi) in &q.ranges {
                assert!(lo <= hi);
                assert!(hi < rel.schema().domain_size(a));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let rel = relation();
        let a = Workload::generate(&rel, WorkloadConfig::paper(3, 5));
        let b = Workload::generate(&rel, WorkloadConfig::paper(3, 5));
        assert_eq!(a.queries, b.queries);
        let c = Workload::generate(&rel, WorkloadConfig::paper(3, 6));
        assert_ne!(a.queries, c.queries);
    }

    #[test]
    fn min_count_filter_applies() {
        let rel = relation();
        let cfg = WorkloadConfig { dimensionality: 3, queries: 50, min_count: 5000, seed: 2 };
        let w = Workload::generate(&rel, cfg);
        assert!(w.queries.iter().all(|q| q.exact >= 5000));
    }

    #[test]
    fn impossible_filter_terminates() {
        let rel = relation();
        let cfg = WorkloadConfig { dimensionality: 3, queries: 10, min_count: 10_000_000, seed: 2 };
        let w = Workload::generate(&rel, cfg);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn rejects_bad_dimensionality() {
        let rel = relation();
        let _ = Workload::generate(&rel, WorkloadConfig::paper(9, 1));
    }
}
