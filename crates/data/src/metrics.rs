//! Answer-quality metrics (paper §4.1).
//!
//! * **Absolute relative error** `|a_s − a| / a` — standard, but flattering
//!   to estimators that return tiny answers: even `a_s = 0` caps at 1.
//! * **Multiplicative error** `max(a_s, a) / min(a_s, a)` — the paper's
//!   corrective metric, penalizing gross *under*-estimates symmetrically
//!   with over-estimates. Following the workload's `min_count ≥ 100`
//!   filter, the exact answer is never 0; estimates below 1 are clamped to
//!   1 so the ratio stays finite (an estimate of 0 for a 100-tuple answer
//!   scores 100×).

use crate::workload::Workload;
use dbhist_distribution::AttrId;

/// Absolute relative error `|estimate − exact| / exact`.
///
/// # Panics
///
/// Panics if `exact` is not positive (workloads filter those out).
#[must_use]
pub fn relative_error(estimate: f64, exact: f64) -> f64 {
    assert!(exact > 0.0, "relative error needs a positive exact answer");
    (estimate - exact).abs() / exact
}

/// Multiplicative error `max(a_s, a) / min(a_s, a)`, with estimates
/// clamped below at 1 to keep the ratio finite. Always ≥ 1.
///
/// # Panics
///
/// Panics if `exact` is not positive.
#[must_use]
pub fn multiplicative_error(estimate: f64, exact: f64) -> f64 {
    assert!(exact > 0.0, "multiplicative error needs a positive exact answer");
    let e = estimate.max(1.0);
    if e >= exact {
        e / exact
    } else {
        exact / e
    }
}

/// Aggregated workload errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Mean absolute relative error over the workload.
    pub mean_relative: f64,
    /// Mean multiplicative error over the workload.
    pub mean_multiplicative: f64,
    /// Number of queries evaluated.
    pub queries: usize,
}

impl ErrorSummary {
    /// Evaluates an estimator (any closure mapping ranges to an estimated
    /// count) over a workload.
    ///
    /// # Panics
    ///
    /// Panics on an empty workload.
    #[must_use]
    pub fn evaluate(
        workload: &Workload,
        mut estimator: impl FnMut(&[(AttrId, u32, u32)]) -> f64,
    ) -> Self {
        assert!(!workload.is_empty(), "cannot evaluate an empty workload");
        let mut rel_sum = 0.0;
        let mut mult_sum = 0.0;
        for q in &workload.queries {
            let est = estimator(&q.ranges);
            let exact = q.exact as f64;
            rel_sum += relative_error(est, exact);
            mult_sum += multiplicative_error(est, exact);
        }
        let n = workload.len() as f64;
        Self {
            mean_relative: rel_sum / n,
            mean_multiplicative: mult_sum / n,
            queries: workload.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Query, WorkloadConfig};

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert_eq!(relative_error(150.0, 100.0), 0.5);
        assert_eq!(relative_error(0.0, 100.0), 1.0);
        assert_eq!(relative_error(200.0, 100.0), 1.0);
    }

    #[test]
    fn multiplicative_error_cases() {
        assert_eq!(multiplicative_error(100.0, 100.0), 1.0);
        assert_eq!(multiplicative_error(200.0, 100.0), 2.0);
        assert_eq!(multiplicative_error(50.0, 100.0), 2.0);
        // Tiny/zero estimates are clamped to 1, not infinity.
        assert_eq!(multiplicative_error(0.0, 100.0), 100.0);
        assert_eq!(multiplicative_error(0.5, 100.0), 100.0);
    }

    #[test]
    fn multiplicative_penalizes_underestimates_relative_does_not() {
        // The paper's motivation for the metric: IND returning ~0 looks
        // fine on relative error (≤ 1) but terrible multiplicatively.
        let (rel0, mult0) = (relative_error(0.0, 1000.0), multiplicative_error(0.0, 1000.0));
        let (rel3x, mult3x) =
            (relative_error(3000.0, 1000.0), multiplicative_error(3000.0, 1000.0));
        assert!(rel0 < rel3x, "relative error prefers the zero answer");
        assert!(mult0 > mult3x, "multiplicative error does not");
    }

    #[test]
    fn summary_averages() {
        let workload = crate::workload::Workload {
            config: WorkloadConfig { dimensionality: 1, queries: 2, min_count: 1, seed: 0 },
            queries: vec![
                Query { ranges: vec![(0, 0, 1)], exact: 100 },
                Query { ranges: vec![(0, 2, 3)], exact: 200 },
            ],
        };
        // Estimator always answers 200.
        let s = ErrorSummary::evaluate(&workload, |_| 200.0);
        assert_eq!(s.queries, 2);
        assert!((s.mean_relative - 0.5).abs() < 1e-12); // (1.0 + 0.0)/2
        assert!((s.mean_multiplicative - 1.5).abs() < 1e-12); // (2 + 1)/2
    }

    #[test]
    #[should_panic(expected = "positive exact")]
    fn rejects_zero_exact() {
        let _ = relative_error(1.0, 0.0);
    }
}
