//! Saving and loading whole synopses as versioned snapshot files.
//!
//! A synopsis `H = <M, C>` is exactly the artifact the paper designed to
//! be small (§4.2's `3b − 2`-number split trees): this module makes it
//! durable. [`Synopsis::save`] serializes the decomposable model and
//! every clique factor into the [`dbhist_persist`] container;
//! [`Synopsis::load`] materializes it back **without re-deriving any
//! structure** — no re-chordalization, no junction-tree construction, no
//! re-rooting (the query engine's `RootedViews` and plan cache refill
//! lazily, exactly as after an in-memory build).
//!
//! Loaded synopses are *bit-identical* estimators: every `f64` in every
//! factor round-trips by bit pattern (see the `*_exact` codecs in
//! `dbhist_histogram::codec`), so `save → load → estimate` returns the
//! same bits as the in-memory synopsis. The persistence round-trip
//! proptest in `tests/persist_roundtrip.rs` pins this.
//!
//! Corruption is detected, never UB: the container layer checks magic,
//! version, bounds, and per-section CRCs eagerly, and every decoded
//! structure passes through the same validating constructors the codecs
//! use, surfacing typed [`PersistError`]s wrapped in
//! [`SynopsisError::Persist`].

use std::path::Path;
use std::time::Instant;

use dbhist_distribution::Schema;
use dbhist_histogram::codec::{
    decode_grid_exact, decode_haar_exact, decode_split_tree_exact, encode_grid_exact,
    encode_haar_exact, encode_split_tree_exact,
};
use dbhist_histogram::{GridHistogram, HistogramError, SplitTree};
use dbhist_persist::{
    decode_factors, decode_model, encode_factors, encode_model, read_file, write_file,
    PersistError, SectionKind, Snapshot, SnapshotMeta, SnapshotWriter, WalPosition,
};

use crate::builder::{Synopsis, SynopsisBuilder};
use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::factor::Factor;
use crate::synopsis::DbHistogram;
use crate::wavelet_factor::{WaveletFactor, DEFAULT_WAVELET_CELL_CAP};

/// Lossy histogram-codec failures become `Corrupt`: by the time a factor
/// payload decodes, the container's CRCs have already passed, so a codec
/// rejection means the bytes are structurally wrong, not bit-flipped.
fn codec_err(e: HistogramError) -> PersistError {
    PersistError::Corrupt { reason: e.to_string() }
}

/// A clique-factor representation that can round-trip through a snapshot.
///
/// Implementations must be **exact**: `decode_factor(encode_factor(f))`
/// yields a factor whose every estimate is bit-identical to `f`'s.
pub(crate) trait PersistableFactor: Factor + Sized {
    /// Factor-kind code recorded in the snapshot meta section
    /// (1 = MHIST split tree, 2 = grid, 3 = wavelet).
    const KIND: u8;

    /// Serializes this factor to an opaque payload.
    fn encode_factor(&self) -> Result<Vec<u8>, PersistError>;

    /// Deserializes a payload produced by
    /// [`PersistableFactor::encode_factor`].
    fn decode_factor(bytes: &[u8], schema: &Schema) -> Result<Self, PersistError>;
}

impl PersistableFactor for SplitTree {
    const KIND: u8 = 1;

    fn encode_factor(&self) -> Result<Vec<u8>, PersistError> {
        encode_split_tree_exact(self).map_err(codec_err)
    }

    fn decode_factor(bytes: &[u8], _schema: &Schema) -> Result<Self, PersistError> {
        decode_split_tree_exact(bytes).map_err(codec_err)
    }
}

impl PersistableFactor for GridHistogram {
    const KIND: u8 = 2;

    fn encode_factor(&self) -> Result<Vec<u8>, PersistError> {
        encode_grid_exact(self).map_err(codec_err)
    }

    fn decode_factor(bytes: &[u8], _schema: &Schema) -> Result<Self, PersistError> {
        decode_grid_exact(bytes).map_err(codec_err)
    }
}

impl PersistableFactor for WaveletFactor {
    const KIND: u8 = 3;

    fn encode_factor(&self) -> Result<Vec<u8>, PersistError> {
        let syn = self.haar().ok_or_else(|| PersistError::Corrupt {
            reason: "derived wavelet factors carry no coefficient synopsis and cannot be saved"
                .into(),
        })?;
        encode_haar_exact(syn).map_err(codec_err)
    }

    fn decode_factor(bytes: &[u8], schema: &Schema) -> Result<Self, PersistError> {
        let syn = decode_haar_exact(bytes, DEFAULT_WAVELET_CELL_CAP).map_err(codec_err)?;
        Self::from_synopsis(syn, schema)
            .map_err(|e| PersistError::Corrupt { reason: e.to_string() })
    }
}

/// Serializes a synopsis into container bytes (no I/O). `wal`, when
/// present, is recorded as a [`SectionKind::WalPosition`] section — the
/// ingest checkpoint's atomic claim of which WAL batches this snapshot
/// absorbed.
fn snapshot_bytes<F: PersistableFactor>(
    db: &DbHistogram<F>,
    wal: Option<WalPosition>,
) -> Result<Vec<u8>, PersistError> {
    let factor_count = u32::try_from(db.factors().len()).map_err(|_| PersistError::Corrupt {
        reason: "factor count overflows the snapshot meta field".into(),
    })?;
    let meta = SnapshotMeta {
        factor_kind: F::KIND,
        name: db.name().to_string(),
        storage_bytes: db.storage_bytes() as u64,
        factor_count,
    };
    let mut writer = SnapshotWriter::new();
    writer.section(SectionKind::Meta, meta.encode()?);
    encode_model(db.model(), &mut writer)?;
    let payloads: Vec<Vec<u8>> =
        db.factors().iter().map(PersistableFactor::encode_factor).collect::<Result<_, _>>()?;
    writer.section(SectionKind::Factors, encode_factors(&payloads)?);
    if let Some(pos) = wal {
        writer.section(SectionKind::WalPosition, pos.encode());
    }
    writer.finish()
}

/// Saves a synopsis to `path` (atomic write: temp file + rename, both
/// fsync'd).
pub(crate) fn save_db<F: PersistableFactor>(
    db: &DbHistogram<F>,
    path: &Path,
) -> Result<(), SynopsisError> {
    save_db_with_wal(db, path, None)
}

/// [`save_db`] plus an optional WAL position recorded atomically with
/// the synopsis state — see [`snapshot_bytes`].
pub(crate) fn save_db_with_wal<F: PersistableFactor>(
    db: &DbHistogram<F>,
    path: &Path,
    wal: Option<WalPosition>,
) -> Result<(), SynopsisError> {
    let _span = dbhist_telemetry::span!("dbhist_persist_save_latency_us");
    let start = Instant::now();
    let bytes = snapshot_bytes(db, wal)?;
    write_file(path, &bytes)?;
    if dbhist_telemetry::enabled() {
        let w = dbhist_telemetry::wellknown::wellknown();
        w.persist_saves.increment();
        w.persist_save_seconds.set(start.elapsed().as_secs_f64());
        w.persist_snapshot_bytes.set(bytes.len() as f64);
    }
    Ok(())
}

/// Reads the WAL position a snapshot recorded at checkpoint time, or
/// `None` for snapshots written outside a durable ingest session (plain
/// saves, rebuild re-saves). Recovery treats `None` plus a non-empty
/// WAL as an unprovable state and refuses to replay.
pub(crate) fn load_wal_position(path: &Path) -> Result<Option<WalPosition>, SynopsisError> {
    let bytes = read_file(path)?;
    let snapshot = Snapshot::parse(&bytes).map_err(SynopsisError::from)?;
    match snapshot.section(SectionKind::WalPosition) {
        Ok(payload) => Ok(Some(WalPosition::decode(payload)?)),
        Err(PersistError::MissingSection { .. }) => Ok(None),
        Err(e) => Err(e.into()),
    }
}

/// Materializes a synopsis of factor type `F` from parsed snapshot
/// sections, cross-checking the factor list against the model.
fn load_db<F: PersistableFactor>(
    snapshot: &Snapshot<'_>,
    meta: SnapshotMeta,
) -> Result<DbHistogram<F>, PersistError> {
    let model = decode_model(snapshot)?;
    let payloads = decode_factors(snapshot.section(SectionKind::Factors)?)?;
    let cliques = model.cliques();
    if payloads.len() != cliques.len() || payloads.len() != meta.factor_count as usize {
        return Err(PersistError::Corrupt {
            reason: format!(
                "{} factor payloads for {} cliques (meta declares {})",
                payloads.len(),
                cliques.len(),
                meta.factor_count
            ),
        });
    }
    let mut factors = Vec::with_capacity(payloads.len());
    for (i, payload) in payloads.iter().enumerate() {
        let factor = F::decode_factor(payload, model.schema())?;
        if factor.attrs() != &cliques[i] {
            return Err(PersistError::Corrupt {
                reason: format!("factor {i} does not cover its clique's attributes"),
            });
        }
        factors.push(factor);
    }
    let bytes = usize::try_from(meta.storage_bytes).map_err(|_| PersistError::Corrupt {
        reason: "storage byte count overflows usize".into(),
    })?;
    Ok(DbHistogram::from_loaded_parts(model, factors, bytes, meta.name))
}

impl Synopsis {
    /// Saves this synopsis as a versioned, checksummed snapshot file.
    ///
    /// The write is atomic (temp file + rename), so a concurrent or
    /// crashed save never leaves a truncated snapshot behind.
    ///
    /// # Errors
    ///
    /// Returns [`SynopsisError::Persist`] on encoding or I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SynopsisError> {
        match self {
            Self::Mhist(db) => save_db(db, path.as_ref()),
            Self::Grid(db) => save_db(db, path.as_ref()),
            Self::Wavelet(db) => save_db(db, path.as_ref()),
        }
    }

    /// Loads a synopsis from a snapshot file, materializing the model and
    /// factors without re-deriving any structure. Estimates from the
    /// loaded synopsis are bit-identical to the saved one's.
    ///
    /// # Errors
    ///
    /// Returns [`SynopsisError::Persist`] with a typed [`PersistError`]
    /// for I/O failures, version mismatches, CRC failures, truncation, or
    /// structurally invalid content. Corruption is detected, never UB.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, SynopsisError> {
        let path = path.as_ref();
        let _span = dbhist_telemetry::span!("dbhist_persist_load_latency_us");
        let start = Instant::now();
        let bytes = read_file(path)?;
        let snapshot = Snapshot::parse(&bytes).map_err(SynopsisError::from)?;
        let meta = SnapshotMeta::decode(snapshot.section(SectionKind::Meta)?)?;
        let loaded = match meta.factor_kind {
            SplitTree::KIND => Self::Mhist(load_db(&snapshot, meta)?),
            GridHistogram::KIND => Self::Grid(load_db(&snapshot, meta)?),
            WaveletFactor::KIND => Self::Wavelet(load_db(&snapshot, meta)?),
            kind => {
                return Err(SynopsisError::Persist(PersistError::Corrupt {
                    reason: format!("unknown factor kind {kind}"),
                }))
            }
        };
        if dbhist_telemetry::enabled() {
            let w = dbhist_telemetry::wellknown::wellknown();
            w.persist_loads.increment();
            w.persist_load_seconds.set(start.elapsed().as_secs_f64());
            w.persist_snapshot_bytes.set(bytes.len() as f64);
        }
        Ok(loaded)
    }
}

impl SynopsisBuilder<'_> {
    /// Loads a previously saved synopsis instead of building one — the
    /// fast path for new replicas and post-rebuild restarts. Equivalent
    /// to [`Synopsis::load`]; provided on the builder so construction and
    /// restoration share one entry point.
    ///
    /// # Errors
    ///
    /// As for [`Synopsis::load`].
    pub fn from_snapshot(path: impl AsRef<Path>) -> Result<Synopsis, SynopsisError> {
        Synopsis::load(path)
    }
}
