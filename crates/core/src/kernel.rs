//! Lowered execution kernels for the uncached estimate path.
//!
//! The plan-based engine beat the recursive interpreter mostly through
//! memoized *marginals* — a cache a diverse workload defeats. This module
//! attacks the per-query work itself: once a [`MassPlan`]'s shape is
//! known, each independent component's **loose marginal** is executed one
//! time through the ordinary factor algebra (so it is bit-identical by
//! construction) and then *lowered* into a
//! [`TreeIndex`](dbhist_histogram::TreeIndex) — two contiguous flat
//! arrays (per-node subtree totals in `f64`, packed split structure with
//! precomputed child offsets) that answer `mass_in_box` with a pruned
//! O(log b)-per-boundary walk instead of re-running products, projections,
//! and full-tree scans per query.
//!
//! A [`MassKernel`] bundles the lowered group indices with the synopsis
//! total and replays the exact arithmetic of
//! [`execute_mass`](crate::plan::execute_mass):
//! `mass = N · Π (group_mass / N)`, groups in plan order, left to right.
//! Because each index walk is bit-identical to
//! `SplitTree::mass_in_box` on the marginal it was lowered from (see the
//! proof in `dbhist_histogram::mhist::index`), a kernel evaluation is
//! bit-identical to executing the plan — the invariant every prior PR
//! pinned, extended to the kernels by `tests/plan_equivalence.rs`.
//!
//! Dense vs sparse lowering is chosen per clique-group by leaf occupancy
//! (see [`IndexLayout`](dbhist_histogram::IndexLayout)); both layouts
//! share the walk and the bit-identity contract. Factors without a
//! lowering (exact distributions, grids, wavelets) simply return `None`
//! from [`Factor::lower_index`](crate::factor::Factor::lower_index) and
//! the engine keeps executing their plans directly.
//!
//! **Summation-order contract:** a lowered kernel never re-associates a
//! sum. Subtree totals are precomputed with the same tree-shaped
//! `(left + right)` grouping the interpreter's recursion produces, the
//! walk visits children in the same left-then-right order, and the group
//! product loop keeps plan order. Any future kernel optimization must
//! preserve this or demote itself behind a new equivalence proof.

use std::time::Instant;

use dbhist_distribution::AttrId;
use dbhist_histogram::TreeIndex;

use crate::explain::{ExplainProbe, NoProbe};
use crate::query::Query;
use crate::scratch::PlanScratch;

/// A fully lowered [`MassPlan`](crate::plan::MassPlan): the synopsis
/// total plus one flattened [`TreeIndex`] per independent component, in
/// plan order. Built by the engine on the first execution of a plan
/// shape; evaluated on every subsequent query with that shape.
#[derive(Debug, Clone)]
pub struct MassKernel {
    /// The synopsis total `N` at lowering time (factors are immutable
    /// between invalidations, which drop lowered kernels).
    total: f64,
    /// Lowered loose group marginals, in [`MassPlan`] group order.
    groups: Vec<TreeIndex>,
}

impl MassKernel {
    /// Assembles a kernel from the synopsis total and the lowered group
    /// indices (one per plan group, same order).
    #[must_use]
    pub(crate) fn new(total: f64, groups: Vec<TreeIndex>) -> Self {
        Self { total, groups }
    }

    /// The lowered per-group indices, in plan order.
    #[must_use]
    pub fn groups(&self) -> &[TreeIndex] {
        &self.groups
    }

    /// Evaluates the kernel for one concrete query, reusing `scratch`.
    /// Bit-identical to executing the plan it was lowered from.
    #[must_use]
    pub fn evaluate(&self, query: &Query, scratch: &mut PlanScratch) -> f64 {
        self.evaluate_ranges(query.ranges(), scratch)
    }

    /// Range-slice form of [`MassKernel::evaluate`] (the histogram-layer
    /// representation).
    #[must_use]
    pub(crate) fn evaluate_ranges(
        &self,
        ranges: &[(AttrId, u32, u32)],
        scratch: &mut PlanScratch,
    ) -> f64 {
        self.evaluate_ranges_probed(ranges, scratch, &mut NoProbe)
    }

    /// [`MassKernel::evaluate_ranges`] with an [`ExplainProbe`] observing
    /// each group walk. With [`NoProbe`] every probe site (and its clock
    /// read) monomorphizes away, so the unprobed path is the old code.
    pub(crate) fn evaluate_ranges_probed<P: ExplainProbe>(
        &self,
        ranges: &[(AttrId, u32, u32)],
        scratch: &mut PlanScratch,
        probe: &mut P,
    ) -> f64 {
        // Verbatim arithmetic from `execute_mass`: start from the total,
        // multiply each group's mass ratio in plan order.
        let total = self.total;
        let mut mass = total;
        for (index, group) in self.groups.iter().enumerate() {
            let started = if P::ACTIVE { Some(Instant::now()) } else { None };
            let group_mass =
                group.mass_in_box_with(ranges, &mut scratch.bounds, &mut scratch.constraint);
            if P::ACTIVE {
                let ns = started.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(0));
                probe.kernel_group(index, group_mass, ns);
            }
            if total > 0.0 {
                mass *= group_mass / total;
            } else {
                return 0.0;
            }
        }
        mass
    }
}
