//! Baseline selectivity estimators (paper §4.1).
//!
//! * [`IndEstimator`] — one one-dimensional histogram per attribute plus
//!   the full-independence assumption (what commercial systems of the era
//!   shipped). Buckets are allocated across attributes with
//!   `IncrementalGains`, exactly as the paper describes.
//! * [`MhistEstimator`] — a single full-dimensional MHIST-2 histogram over
//!   all attributes (Poosala & Ioannidis), stored as a split tree at `9b`
//!   bytes.
//! * [`SamplingEstimator`] — a uniform row sample scaled to the table
//!   size; the paper notes that at synopsis-scale budgets the sample is so
//!   small that most range queries hit zero sampled tuples, and our
//!   implementation reproduces that failure mode.

use dbhist_distribution::{AttrId, Relation};
use dbhist_histogram::mhist::MhistBuilder;
use dbhist_histogram::{MultiHistogram, OneDimHistogram, SplitCriterion, SplitTree};

use crate::alloc::incremental_gains;
use crate::build::{IncrementalBuilder, OneDimCliqueBuilder, MHIST_BYTES_PER_BUCKET};
use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::query::Query;

/// The `IND` baseline: per-attribute histograms + mutual independence.
#[derive(Debug, Clone)]
pub struct IndEstimator {
    histograms: Vec<OneDimHistogram>,
    total: f64,
    bytes: usize,
}

impl IndEstimator {
    /// Builds one histogram per attribute, allocating `budget_bytes`
    /// across them with `IncrementalGains` (total variance as the error
    /// function, per §4.1).
    ///
    /// # Errors
    ///
    /// Fails when the budget cannot hold one bucket per attribute.
    pub fn build(
        relation: &Relation,
        budget_bytes: usize,
        criterion: SplitCriterion,
    ) -> Result<Self, SynopsisError> {
        let n = relation.schema().arity();
        let joint = relation.distribution();
        let mut builders: Vec<OneDimCliqueBuilder> = (0..n as AttrId)
            .map(|a| OneDimCliqueBuilder::start(&joint, a, criterion))
            .collect::<Result<_, _>>()?;
        let report = incremental_gains(&mut builders, budget_bytes)?;
        let histograms = builders.iter().map(IncrementalBuilder::finish).collect();
        Ok(Self { histograms, total: relation.row_count() as f64, bytes: report.bytes_used })
    }

    /// The per-attribute histograms.
    #[must_use]
    pub fn histograms(&self) -> &[OneDimHistogram] {
        &self.histograms
    }
}

impl SelectivityEstimator for IndEstimator {
    fn estimate(&self, query: &Query) -> f64 {
        // Under full independence, the joint selectivity is the product of
        // per-attribute selectivities: N · Π (f_a(range) / N).
        if self.total <= 0.0 {
            return 0.0;
        }
        let mut selectivity = 1.0;
        for h in &self.histograms {
            // Intersect all constraints on this attribute.
            let mut range: Option<(u32, u32)> = None;
            for &(a, lo, hi) in query.ranges() {
                if a == h.attr() {
                    range = Some(match range {
                        None => (lo, hi),
                        Some((clo, chi)) => (clo.max(lo), chi.min(hi)),
                    });
                }
            }
            if let Some((lo, hi)) = range {
                if lo > hi {
                    return 0.0;
                }
                selectivity *= h.estimate_range(lo, hi) / self.total;
            }
        }
        self.total * selectivity
    }

    fn storage_bytes(&self) -> usize {
        self.bytes
    }

    fn name(&self) -> &str {
        "IND"
    }
}

/// The full-dimensional `MHIST` baseline.
#[derive(Debug, Clone)]
pub struct MhistEstimator {
    tree: SplitTree,
}

impl MhistEstimator {
    /// Builds an MHIST-2 histogram over the complete joint distribution
    /// with `budget_bytes / 9` buckets.
    ///
    /// # Errors
    ///
    /// Fails when the budget cannot hold a single bucket.
    pub fn build(
        relation: &Relation,
        budget_bytes: usize,
        criterion: SplitCriterion,
    ) -> Result<Self, SynopsisError> {
        let buckets = budget_bytes / MHIST_BYTES_PER_BUCKET;
        if buckets == 0 {
            return Err(SynopsisError::Budget {
                reason: format!("{budget_bytes} bytes cannot hold one MHIST bucket"),
            });
        }
        let joint = relation.distribution();
        let tree = MhistBuilder::build(&joint, buckets, criterion)?;
        Ok(Self { tree })
    }

    /// The underlying split tree.
    #[must_use]
    pub fn tree(&self) -> &SplitTree {
        &self.tree
    }
}

impl SelectivityEstimator for MhistEstimator {
    fn estimate(&self, query: &Query) -> f64 {
        self.tree.mass_in_box(query.ranges())
    }

    fn storage_bytes(&self) -> usize {
        MultiHistogram::storage_bytes(&self.tree)
    }

    fn name(&self) -> &str {
        "MHIST"
    }
}

/// The random-sampling baseline.
#[derive(Debug, Clone)]
pub struct SamplingEstimator {
    sample: Relation,
    scale: f64,
    bytes: usize,
}

impl SamplingEstimator {
    /// Keeps `budget_bytes / (4n)` uniformly sampled rows (4 bytes per
    /// attribute value).
    ///
    /// # Errors
    ///
    /// Fails when the budget cannot hold a single row.
    pub fn build(
        relation: &Relation,
        budget_bytes: usize,
        seed: u64,
    ) -> Result<Self, SynopsisError> {
        let n = relation.schema().arity().max(1);
        let rows = budget_bytes / (4 * n);
        if rows == 0 {
            return Err(SynopsisError::Budget {
                reason: format!("{budget_bytes} bytes cannot hold one sampled row"),
            });
        }
        let sample = relation.sample(rows, seed);
        let kept = sample.row_count().max(1) as f64;
        Ok(Self {
            scale: relation.row_count() as f64 / kept,
            bytes: sample.row_count() * 4 * n,
            sample,
        })
    }

    /// Number of sampled rows retained.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.sample.row_count()
    }
}

impl SelectivityEstimator for SamplingEstimator {
    fn estimate(&self, query: &Query) -> f64 {
        self.sample.count_range(query.ranges()) as f64 * self.scale
    }

    fn storage_bytes(&self) -> usize {
        self.bytes
    }

    fn name(&self) -> &str {
        "SAMPLE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    /// a == b (8 values), c independent.
    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..4096u32).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn ind_good_on_single_attribute() {
        let rel = relation();
        let ind = IndEstimator::build(&rel, 300, SplitCriterion::MaxDiff).unwrap();
        assert!(ind.storage_bytes() <= 300);
        assert_eq!(ind.histograms().len(), 3);
        let est = ind.estimate(&Query::range(0, 0, 3));
        let exact = rel.count_range(&[(0, 0, 3)]) as f64;
        assert!((est - exact).abs() / exact < 0.1, "{est} vs {exact}");
    }

    #[test]
    fn ind_fails_on_correlation() {
        // The independence assumption grossly underestimates the diagonal.
        let rel = relation();
        let ind = IndEstimator::build(&rel, 300, SplitCriterion::MaxDiff).unwrap();
        let est = ind.estimate(&Query::range(0, 2, 2).and(1, 2, 2));
        let exact = rel.count_range(&[(0, 2, 2), (1, 2, 2)]) as f64;
        assert!(exact >= 8.0 * est / 2.0, "IND should underestimate: {est} vs {exact}");
    }

    #[test]
    fn ind_edge_cases() {
        let rel = relation();
        let ind = IndEstimator::build(&rel, 300, SplitCriterion::MaxDiff).unwrap();
        assert!((ind.estimate(&Query::all()) - 4096.0).abs() < 1e-9);
        assert_eq!(ind.estimate(&Query::range(0, 3, 5).and(0, 6, 7)), 0.0, "contradiction");
        // Constraints on unknown attributes are ignored.
        assert!((ind.estimate(&Query::range(9, 0, 0)) - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn mhist_estimates_low_dim_data() {
        let rel = relation();
        let mh = MhistEstimator::build(&rel, 540, SplitCriterion::MaxDiff).unwrap();
        assert!(mh.storage_bytes() <= 540);
        let est = mh.estimate(&Query::range(0, 0, 3));
        let exact = rel.count_range(&[(0, 0, 3)]) as f64;
        assert!((est - exact).abs() / exact < 0.25, "{est} vs {exact}");
        assert!(MhistEstimator::build(&rel, 5, SplitCriterion::MaxDiff).is_err());
    }

    #[test]
    fn sampling_scales_counts() {
        let rel = relation();
        let s = SamplingEstimator::build(&rel, 4096, 7).unwrap();
        assert_eq!(s.sample_size(), 4096 / 12);
        assert!(s.storage_bytes() <= 4096);
        // The whole-table estimate is exact by construction.
        assert!((s.estimate(&Query::all()) - 4096.0).abs() < 1e-9);
        assert!(SamplingEstimator::build(&rel, 4, 7).is_err());
    }

    #[test]
    fn sampling_returns_zero_for_narrow_queries_at_tiny_budgets() {
        // Reproduces the paper's observation: at synopsis-scale budgets the
        // sample misses most narrow conjunctive ranges entirely.
        let rel = relation();
        let s = SamplingEstimator::build(&rel, 120, 7).unwrap(); // 10 rows
        let zeros = (0..8u32)
            .filter(|&v| s.estimate(&Query::range(0, v, v).and(2, v % 4, v % 4)) == 0.0)
            .count();
        assert!(zeros >= 5, "most narrow queries should see no sampled tuple");
    }

    #[test]
    fn names_and_bytes() {
        let rel = relation();
        let ind = IndEstimator::build(&rel, 300, SplitCriterion::MaxDiff).unwrap();
        let mh = MhistEstimator::build(&rel, 300, SplitCriterion::MaxDiff).unwrap();
        let s = SamplingEstimator::build(&rel, 300, 1).unwrap();
        assert_eq!(ind.name(), "IND");
        assert_eq!(mh.name(), "MHIST");
        assert_eq!(s.name(), "SAMPLE");
        for bytes in [ind.storage_bytes(), mh.storage_bytes(), s.storage_bytes()] {
            assert!(bytes > 0 && bytes <= 300);
        }
    }
}
