//! The factor abstraction `ComputeMarginal` operates over.
//!
//! The paper's selectivity-estimation procedure (§3.3) combines clique
//! histograms through `project` and `product` operations read off the
//! junction tree. The same procedure applies verbatim when the "clique
//! histograms" are *exact* marginal distributions — the configuration of
//! the paper's Fig. 6 experiment, where "each projection, in effect,
//! corresponds to a clique histogram with an unlimited number of buckets".
//! [`Factor`] captures the shared interface; [`ExactFactor`] adapts
//! [`Distribution`] to it.

use dbhist_distribution::{AttrId, AttrSet, Distribution};
use dbhist_histogram::{GridHistogram, HistogramError, MultiHistogram, SplitTree, TreeIndex};

use crate::error::SynopsisError;

/// A multiplicative factor over a subset of attributes: the unit
/// `ComputeMarginal` multiplies and projects.
pub trait Factor: Sized + Clone {
    /// The attributes the factor covers.
    fn attrs(&self) -> &AttrSet;

    /// Total frequency mass.
    fn total(&self) -> f64;

    /// A rough size measure (buckets / support cells), used by the query
    /// planner to decide whether an intermediate projection is worthwhile.
    fn len_hint(&self) -> usize;

    /// Estimated frequency mass inside a conjunction of inclusive ranges;
    /// constraints on uncovered attributes are ignored.
    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64;

    /// Projects onto a non-empty subset of the covered attributes.
    ///
    /// # Errors
    ///
    /// Rejects empty or non-subset targets.
    fn project(&self, attrs: &AttrSet) -> Result<Self, SynopsisError>;

    /// Multiplies with another factor using the separation formula
    /// `f_{Ci∪Cj} = f_{Ci} · f_{Cj} / f_{Ci∩Cj}`.
    ///
    /// # Errors
    ///
    /// Rejects operands with incompatible shared domains.
    fn product(&self, other: &Self) -> Result<Self, SynopsisError>;

    /// Borrow-friendly projection: identity projections return
    /// `Cow::Borrowed(self)` (no clone); proper projections materialize.
    /// The plan executor (see [`crate::plan`]) is built on this
    /// discipline.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Factor::project`].
    fn project_cow<'a>(
        &'a self,
        attrs: &AttrSet,
    ) -> Result<std::borrow::Cow<'a, Self>, SynopsisError> {
        if self.attrs() == attrs {
            Ok(std::borrow::Cow::Borrowed(self))
        } else {
            Ok(std::borrow::Cow::Owned(self.project(attrs)?))
        }
    }

    /// Lowers the factor into a flattened [`TreeIndex`] for the dense
    /// kernel path (see [`crate::kernel`]), or `None` when no bit-identical
    /// lowering exists for this representation. The engine falls back to
    /// direct plan execution on `None`.
    fn lower_index(&self) -> Option<TreeIndex> {
        None
    }
}

impl Factor for SplitTree {
    fn attrs(&self) -> &AttrSet {
        MultiHistogram::attrs(self)
    }

    fn total(&self) -> f64 {
        MultiHistogram::total(self)
    }

    fn len_hint(&self) -> usize {
        MultiHistogram::bucket_count(self)
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        MultiHistogram::mass_in_box(self, ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, SynopsisError> {
        Ok(MultiHistogram::project(self, attrs)?)
    }

    fn product(&self, other: &Self) -> Result<Self, SynopsisError> {
        Ok(MultiHistogram::product(self, other)?)
    }

    fn lower_index(&self) -> Option<TreeIndex> {
        TreeIndex::lower(self)
    }
}

impl Factor for GridHistogram {
    fn attrs(&self) -> &AttrSet {
        MultiHistogram::attrs(self)
    }

    fn total(&self) -> f64 {
        MultiHistogram::total(self)
    }

    fn len_hint(&self) -> usize {
        MultiHistogram::bucket_count(self)
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        MultiHistogram::mass_in_box(self, ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, SynopsisError> {
        Ok(MultiHistogram::project(self, attrs)?)
    }

    fn product(&self, other: &Self) -> Result<Self, SynopsisError> {
        Ok(MultiHistogram::product(self, other)?)
    }
}

/// Positions of each of `sub`'s attributes within `attrs`.
///
/// # Errors
///
/// Errors if `sub` is not a subset of `attrs` — the operands handed to a
/// factor operation are inconsistent.
fn shared_positions(attrs: &AttrSet, sub: &AttrSet) -> Result<Vec<usize>, SynopsisError> {
    sub.iter()
        .map(|a| {
            attrs.position(a).ok_or_else(|| SynopsisError::Budget {
                reason: format!("shared attribute {a} missing from a product operand"),
            })
        })
        .collect()
}

/// An exact sparse marginal acting as a factor — a "clique histogram with
/// an unlimited number of buckets" (paper §4.2.1).
#[derive(Debug, Clone)]
pub struct ExactFactor(pub Distribution);

impl Factor for ExactFactor {
    fn attrs(&self) -> &AttrSet {
        self.0.attrs()
    }

    fn total(&self) -> f64 {
        self.0.total()
    }

    fn len_hint(&self) -> usize {
        self.0.support_size()
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        self.0.range_mass(ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, SynopsisError> {
        if attrs.is_empty() {
            return Err(SynopsisError::Histogram(HistogramError::InvalidRequest {
                reason: "cannot project onto the empty attribute set".into(),
            }));
        }
        Ok(Self(self.0.marginal(attrs)?))
    }

    fn product(&self, other: &Self) -> Result<Self, SynopsisError> {
        let shared = self.0.attrs().intersection(other.0.attrs());
        let union = self.0.attrs().union(other.0.attrs());
        let mut out = Distribution::empty(self.0.schema().clone(), union.clone())?;

        // Group the right operand's cells by their shared-attribute
        // sub-key so each left cell pairs only with compatible partners.
        let other_shared_pos = shared_positions(other.0.attrs(), &shared)?;
        let mut groups: dbhist_distribution::fxhash::FxHashMap<Vec<u32>, Vec<(&[u32], f64)>> =
            dbhist_distribution::fxhash::FxHashMap::default();
        for (key, f) in other.0.iter() {
            let sub: Vec<u32> = other_shared_pos.iter().map(|&p| key[p]).collect();
            groups.entry(sub).or_default().push((key, f));
        }

        let separator = if shared.is_empty() { None } else { Some(self.0.marginal(&shared)?) };
        let self_shared_pos = shared_positions(self.0.attrs(), &shared)?;

        // Precompute, for each union attribute, where its value comes from.
        enum Source {
            Left(usize),
            Right(usize),
        }
        let mut sources: Vec<Source> = Vec::with_capacity(union.len());
        for a in union.iter() {
            if let Some(p) = self.0.attrs().position(a) {
                sources.push(Source::Left(p));
            } else if let Some(p) = other.0.attrs().position(a) {
                sources.push(Source::Right(p));
            } else {
                return Err(SynopsisError::Budget {
                    reason: format!("attribute {a} missing from both product operands"),
                });
            }
        }

        let mut out_key = vec![0u32; union.len()];
        for (lkey, lf) in self.0.iter() {
            let sub: Vec<u32> = self_shared_pos.iter().map(|&p| lkey[p]).collect();
            let denom = match &separator {
                Some(sep) => sep.frequency(&sub),
                None => self.0.total(),
            };
            if denom <= 0.0 {
                continue;
            }
            let Some(partners) = groups.get(&sub) else { continue };
            for &(rkey, rf) in partners {
                for (slot, src) in out_key.iter_mut().zip(&sources) {
                    *slot = match src {
                        Source::Left(p) => lkey[*p],
                        Source::Right(p) => rkey[*p],
                    };
                }
                out.add(&out_key, lf * rf / denom);
            }
        }
        Ok(Self(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    /// a depends on b, c depends on b, a ⊥ c | b.
    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 3), ("c", 4)]).unwrap();
        let mut rows = Vec::new();
        for b in 0..3u32 {
            for a in 0..4u32 {
                for c in 0..4u32 {
                    let fa = if a % 3 == b { 3 } else { 1 };
                    let fc = if c % 3 == b { 2 } else { 1 };
                    for _ in 0..fa * fc {
                        rows.push(vec![a, b, c]);
                    }
                }
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn exact_product_matches_closed_form() {
        let rel = relation();
        let ab = ExactFactor(rel.marginal(&AttrSet::from_ids([0, 1])).unwrap());
        let bc = ExactFactor(rel.marginal(&AttrSet::from_ids([1, 2])).unwrap());
        let prod = ab.product(&bc).unwrap();
        assert_eq!(prod.attrs(), &AttrSet::from_ids([0, 1, 2]));
        let b_marg = rel.marginal(&AttrSet::singleton(1)).unwrap();
        for a in 0..4u32 {
            for b in 0..3u32 {
                for c in 0..4u32 {
                    let expect =
                        ab.0.frequency(&[a, b]) * bc.0.frequency(&[b, c]) / b_marg.frequency(&[b]);
                    let got = prod.0.frequency(&[a, b, c]);
                    assert!((got - expect).abs() < 1e-9, "({a},{b},{c})");
                }
            }
        }
        // Conditional independence holds exactly for this relation, so the
        // product reproduces the joint.
        let joint = rel.distribution();
        for (k, f) in joint.iter() {
            assert!((prod.0.frequency(k) - f).abs() < 1e-9);
        }
    }

    #[test]
    fn exact_product_disjoint_uses_total() {
        let rel = relation();
        let a = ExactFactor(rel.marginal(&AttrSet::singleton(0)).unwrap());
        let c = ExactFactor(rel.marginal(&AttrSet::singleton(2)).unwrap());
        let prod = a.product(&c).unwrap();
        assert!((prod.total() - rel.row_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn exact_project_and_mass() {
        let rel = relation();
        let joint = ExactFactor(rel.distribution());
        let ab = joint.project(&AttrSet::from_ids([0, 1])).unwrap();
        assert_eq!(ab.attrs().len(), 2);
        assert!(joint.project(&AttrSet::empty()).is_err());
        let mass = joint.mass_in_box(&[(0, 0, 1)]);
        assert_eq!(mass, rel.count_range(&[(0, 0, 1)]) as f64);
        // Borrow-friendly projection: identity borrows, proper owns.
        let same = joint.project_cow(joint.attrs()).unwrap();
        assert!(matches!(same, std::borrow::Cow::Borrowed(_)));
        let sub = joint.project_cow(&AttrSet::from_ids([0, 1])).unwrap();
        assert!(matches!(sub, std::borrow::Cow::Owned(_)));
        assert!((sub.total() - joint.total()).abs() < 1e-9);
    }

    #[test]
    fn histogram_factors_compile_through_trait() {
        // Smoke check the SplitTree/Grid impls through the Factor trait.
        fn mass<F: Factor>(f: &F) -> f64 {
            f.mass_in_box(&[])
        }
        let rel = relation();
        let dist = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let tree = dbhist_histogram::mhist::MhistBuilder::build(
            &dist,
            8,
            dbhist_histogram::SplitCriterion::MaxDiff,
        )
        .unwrap();
        assert!((mass(&tree) - rel.row_count() as f64).abs() < 1e-9);
        let grid = dbhist_histogram::grid::GridBuilder::build(
            &dist,
            8,
            dbhist_histogram::SplitCriterion::MaxDiff,
        )
        .unwrap();
        assert!((mass(&grid) - rel.row_count() as f64).abs() < 1e-9);
    }
}
