//! Streaming tuple ingest with WAL-backed durability and self-tuning
//! (ROADMAP item 2; paper §5's maintenance avenue + the self-tuning
//! histogram line of work).
//!
//! [`IngestSession`] wraps a [`MaintainedDbHistogram`] and accepts
//! insert/delete batches ([`WalOp`]) from a continuous stream. Each
//! batch:
//!
//! 1. is journaled to a replayable write-ahead log
//!    ([`dbhist_persist::wal`], fsync'd per batch) **before** it touches
//!    the synopsis, so an acknowledged batch is never lost;
//! 2. updates every clique factor's bucket counts through the exact
//!    same [`MaintainedDbHistogram::insert`]/`delete` path a one-shot
//!    caller would use — estimates after N batches are bit-identical to
//!    applying the concatenated ops one by one;
//! 3. incrementally maintains *per-clique marginal distributions* under
//!    a budget-bounded cell cap, so a later re-split can re-derive
//!    bucket boundaries from fresh data without touching the base
//!    table.
//!
//! # Crash recovery
//!
//! Durability is last-snapshot-plus-tail: [`IngestSession::recover`]
//! loads the registered snapshot, replays the WAL tail through the same
//! update path, and resumes appending — the recovered estimator answers
//! every query bit-identically to an uninterrupted run, because the log
//! records the exact op stream and tuple updates are deterministic.
//!
//! Every checkpoint (including the one a re-split triggers) saves the
//! snapshot with an embedded [`WalPosition`] — the WAL's current
//! generation and committed batch count — **then** atomically truncates
//! the log to the next generation. Because the position rides inside
//! the snapshot's own atomic write, every crash window is decidable at
//! recovery:
//!
//! - crash before the snapshot save: the old snapshot names the
//!   *previous* generation, the log is one generation newer → replay
//!   the whole tail;
//! - crash between the snapshot save and the truncation: snapshot and
//!   log name the *same* generation → skip exactly the
//!   `batches_covered` batches the snapshot absorbed (no
//!   double-apply), replay any beyond;
//! - crash after the truncation: the log is one generation newer than
//!   the snapshot names → replay the (now short) tail.
//!
//! Any other combination — a log older or more than one generation
//! newer than the snapshot claims, fewer committed batches than the
//! snapshot absorbed, or a non-empty log beside a snapshot that records
//! no position at all — is a typed error, never a silent divergence.
//!
//! # The re-split decision ladder
//!
//! [`IngestSession::tune`] folds query feedback
//! ([`IngestSession::record_feedback`] → per-clique abs-rel-error
//! quantile gauges) into maintenance, cheapest remedy first:
//!
//! 1. **Idle** — too little feedback, or no clique's q95 error exceeds
//!    [`IngestConfig::resplit_threshold`]. Do nothing.
//! 2. **Re-split** — one clique's error tail tripped but the model
//!    still fits ([`MaintainedDbHistogram::drift`] under
//!    [`IngestConfig::rebuild_drift_threshold`]): rebuild *that
//!    clique's* bucketization from its maintained marginal via the
//!    split-tree allocator ([`MaintainedDbHistogram::resplit_clique`]),
//!    keep every other factor and the model untouched, checkpoint.
//! 3. **Rebuild recommended** — structural drift says the *model* no
//!    longer fits (or the marginals were dropped to the budget cap /
//!    lost to a crash, leaving nothing to re-split from). The caller
//!    runs full re-selection offline and swaps it in via
//!    [`crate::service::EstimatorService::swap_rebuilt`]; this module
//!    never blocks the stream on a rebuild.

use std::path::{Path, PathBuf};

use dbhist_distribution::{Distribution, Relation};
use dbhist_persist::wal::{WalOp, WalPosition, WalWriter};
use dbhist_persist::PersistError;
use dbhist_telemetry::journal::{journal, JournalEvent};
use dbhist_telemetry::wellknown::wellknown;

use crate::error::SynopsisError;
use crate::maintenance::{MaintainedDbHistogram, TRIGGER_QUANTILE};
use crate::query::Query;
use crate::synopsis::DbConfig;

/// Tuning knobs for an [`IngestSession`].
#[derive(Debug, Clone, PartialEq)]
pub struct IngestConfig {
    /// Cap on the total number of resident cells across all maintained
    /// per-clique marginals. When incremental updates push the support
    /// past this cap, marginal tracking is dropped (deterministically,
    /// once) and the tuner degrades from re-splitting to recommending
    /// rebuilds — bounded memory beats unbounded fidelity on a stream.
    pub marginal_budget_cells: usize,
    /// q95 per-clique abs-rel-error above which [`IngestSession::tune`]
    /// re-splits the offending clique.
    pub resplit_threshold: f64,
    /// Structural drift ([`MaintainedDbHistogram::drift`]) above which
    /// tuning escalates to [`TuneOutcome::RebuildRecommended`] instead
    /// of re-splitting — new data contradicting the *model* cannot be
    /// fixed by re-bucketing one clique.
    pub rebuild_drift_threshold: f64,
    /// Minimum feedback observations before tuning acts at all; below
    /// this the error quantiles are noise.
    pub min_observations: u64,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            marginal_budget_cells: 1 << 20,
            resplit_threshold: 0.25,
            rebuild_drift_threshold: 0.5,
            min_observations: 32,
        }
    }
}

/// What [`IngestSession::tune`] decided (and did).
#[derive(Debug, Clone, PartialEq)]
pub enum TuneOutcome {
    /// Nothing tripped; no change.
    Idle,
    /// One clique's bucketization was rebuilt in place from its
    /// maintained marginal; the synopsis was checkpointed.
    Resplit {
        /// Index of the re-split clique.
        clique: usize,
        /// Buckets in the replacement factor.
        buckets: usize,
    },
    /// The cheap remedies are exhausted — the caller should schedule a
    /// full background re-selection (e.g.
    /// [`crate::service::EstimatorService::swap_rebuilt`]). The session
    /// keeps serving and ingesting meanwhile.
    RebuildRecommended {
        /// The reading that escalated (structural drift, or the tripped
        /// q95 error when no marginal was available to re-split from).
        drift: f64,
    },
}

/// What a crash recovery replayed.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// Committed batches replayed from the WAL tail.
    pub batches_replayed: u64,
    /// Committed batches the snapshot's recorded [`WalPosition`] proved
    /// were already absorbed, so replay skipped them (non-zero exactly
    /// when the crash landed between a checkpoint's snapshot save and
    /// its WAL truncation).
    pub batches_skipped: u64,
    /// Tuple operations replayed.
    pub ops_replayed: u64,
    /// The typed error describing a torn (uncommitted) tail the log
    /// carried, if any. The tail was discarded — it was never
    /// acknowledged to the writer.
    pub tail_discarded: Option<PersistError>,
}

/// How many leading WAL batches recovery must skip because the snapshot
/// already absorbed them, per the snapshot's recorded [`WalPosition`]
/// and the log's header generation (module docs, "Crash recovery").
/// Errors on any snapshot/log pairing the checkpoint protocol cannot
/// produce — replaying such a log could double- or under-apply batches.
fn batches_to_skip(
    snap: Option<WalPosition>,
    recovery: &dbhist_persist::wal::WalRecovery,
) -> Result<u64, SynopsisError> {
    let committed = recovery.batches.len() as u64;
    let corrupt = |reason: String| SynopsisError::Persist(PersistError::Corrupt { reason });
    let Some(pos) = snap else {
        if committed == 0 {
            return Ok(0);
        }
        return Err(corrupt(format!(
            "snapshot records no wal position but the log holds {committed} committed batches; \
             replaying them cannot be proven safe (the snapshot may already contain them)"
        )));
    };
    if recovery.generation == pos.generation {
        // Crash between a checkpoint's snapshot save and its WAL
        // truncation: the snapshot absorbed the first `batches_covered`
        // batches of this very log.
        if committed < pos.batches_covered {
            return Err(corrupt(format!(
                "snapshot absorbed {} batches of wal generation {} but the log holds only \
                 {committed}",
                pos.batches_covered, pos.generation
            )));
        }
        Ok(pos.batches_covered)
    } else if recovery.generation == pos.generation + 1 {
        // The checkpoint that wrote this snapshot completed its
        // truncation; the tail is entirely post-snapshot.
        Ok(0)
    } else {
        Err(corrupt(format!(
            "wal generation {} cannot pair with a snapshot cut at generation {} (the \
             checkpoint protocol only ever leaves the log at the snapshot's generation or \
             one past it)",
            recovery.generation, pos.generation
        )))
    }
}

/// A streaming ingest session over a maintained synopsis. See the
/// module docs for the durability and tuning contracts.
#[derive(Debug)]
pub struct IngestSession {
    maintained: MaintainedDbHistogram,
    /// Per-clique marginals maintained incrementally alongside the
    /// factors (same clique order as the model); `None` once dropped to
    /// the budget cap, or after a recovery (the snapshot does not carry
    /// them).
    marginals: Option<Vec<Distribution>>,
    wal: Option<WalWriter>,
    cfg: IngestConfig,
    batches_applied: u64,
    ops_applied: u64,
    resplits: u64,
}

impl IngestSession {
    /// Starts a session over `maintained`, seeding the per-clique
    /// marginals from `relation` (the same base table the synopsis was
    /// built from). The session is volatile until
    /// [`IngestSession::with_durability`] attaches a snapshot + WAL.
    ///
    /// # Errors
    ///
    /// Propagates marginal-construction failures (e.g. a relation whose
    /// schema does not cover the model's cliques).
    pub fn begin(
        maintained: MaintainedDbHistogram,
        relation: &Relation,
        cfg: IngestConfig,
    ) -> Result<Self, SynopsisError> {
        let cliques = maintained.synopsis().model().cliques().to_vec();
        let mut marginals = Vec::with_capacity(cliques.len());
        for clique in &cliques {
            marginals.push(relation.marginal(clique)?);
        }
        let mut session = Self {
            maintained,
            marginals: Some(marginals),
            wal: None,
            cfg,
            batches_applied: 0,
            ops_applied: 0,
            resplits: 0,
        };
        session.enforce_marginal_budget();
        Ok(session)
    }

    /// Attaches durability: persists a snapshot to `snapshot_path`
    /// immediately (and after every rebuild/re-split) and creates a
    /// fresh WAL at `wal_path` journaling every subsequent batch. The
    /// snapshot records WAL position zero — generation 0, no batches —
    /// so recovery knows the log it sits beside starts from it.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-save and WAL-create failures.
    pub fn with_durability(
        mut self,
        snapshot_path: impl Into<PathBuf>,
        wal_path: impl Into<PathBuf>,
    ) -> Result<Self, SynopsisError> {
        self.maintained
            .persist_to_with_wal(snapshot_path, WalPosition { generation: 0, batches_covered: 0 })?;
        let arity = self.arity_u16()?;
        self.wal = Some(WalWriter::create(wal_path.into(), arity)?);
        Ok(self)
    }

    /// Recovers a crashed session from its last snapshot plus the WAL
    /// tail: loads the synopsis, compares the snapshot's recorded
    /// [`WalPosition`] against the log's generation to skip every batch
    /// the snapshot already absorbed (see the module docs' crash-window
    /// table), replays the rest through the normal update path
    /// (bit-identical to the uninterrupted run), discards a torn tail
    /// if the crash left one, and reopens the log for further appends.
    /// Marginal tracking does not survive a crash (the snapshot
    /// intentionally does not carry it), so tuning degrades to rebuild
    /// recommendations until the next full rebuild re-seeds a session.
    ///
    /// # Errors
    ///
    /// Propagates snapshot load failures, typed WAL header/arity
    /// failures, and filesystem errors; a snapshot/WAL pair whose
    /// recorded position and generation cannot have come from one
    /// checkpoint protocol run (see the module docs) is
    /// [`PersistError::Corrupt`] — replaying it could double- or
    /// under-apply batches. A torn WAL *tail* is not an error — it is
    /// reported in [`RecoveryReport::tail_discarded`].
    pub fn recover(
        snapshot_path: impl AsRef<Path>,
        wal_path: impl Into<PathBuf>,
        config: DbConfig,
        cfg: IngestConfig,
    ) -> Result<(Self, RecoveryReport), SynopsisError> {
        let snapshot_path = snapshot_path.as_ref();
        let wal_path = wal_path.into();
        let mut maintained = MaintainedDbHistogram::from_snapshot(snapshot_path, config)?;
        let snap_pos = crate::snapshot::load_wal_position(snapshot_path)?;
        let arity = maintained.synopsis().model().schema().arity();
        let mut report = RecoveryReport {
            batches_replayed: 0,
            batches_skipped: 0,
            ops_replayed: 0,
            tail_discarded: None,
        };
        if wal_path.exists() {
            let bytes = dbhist_persist::read_file(&wal_path)?;
            let recovery = dbhist_persist::wal::recover(&bytes)?;
            if usize::from(recovery.arity) != arity {
                return Err(SynopsisError::InvalidConfig {
                    parameter: "wal_path",
                    reason: format!(
                        "wal arity {} does not match the snapshot schema arity {arity}",
                        recovery.arity
                    ),
                });
            }
            let skip = batches_to_skip(snap_pos, &recovery)?;
            report.batches_skipped = skip;
            for batch in recovery.batches.iter().skip(usize::try_from(skip).unwrap_or(usize::MAX))
            {
                for op in &batch.ops {
                    match op {
                        WalOp::Insert(row) => maintained.insert(row),
                        WalOp::Delete(row) => maintained.delete(row),
                    }
                    report.ops_replayed += 1;
                }
                report.batches_replayed += 1;
            }
            report.tail_discarded = recovery.tail_error;
        }
        let arity = u16::try_from(arity).map_err(|_| SynopsisError::InvalidConfig {
            parameter: "schema",
            reason: format!("arity {arity} exceeds the WAL's u16 bound"),
        })?;
        // `open` truncates the torn tail (if any) and resumes the
        // sequence right after the last committed batch. A missing log
        // beside a positioned snapshot restarts one generation past the
        // snapshot's — "everything absorbed, empty tail".
        let wal = if wal_path.exists() {
            WalWriter::open(wal_path, arity)?
        } else {
            let generation = snap_pos.map_or(0, |p| p.generation + 1);
            WalWriter::create_at(wal_path, arity, generation)?
        };
        if dbhist_telemetry::enabled() {
            wellknown().ingest_recoveries.increment();
        }
        let session = Self {
            maintained,
            marginals: None,
            wal: Some(wal),
            cfg,
            batches_applied: report.batches_replayed,
            ops_applied: report.ops_replayed,
            resplits: 0,
        };
        Ok((session, report))
    }

    /// Applies one batch of tuple operations: journals it to the WAL
    /// (fsync'd) **first**, then updates every clique factor and the
    /// maintained marginals. Returns the number of batches applied so
    /// far (== the WAL sequence number + 1 when durable).
    ///
    /// # Errors
    ///
    /// [`SynopsisError::InvalidConfig`] if any op's arity disagrees with
    /// the schema (checked up front — nothing is journaled or applied),
    /// or a [`SynopsisError::Persist`] WAL failure (nothing is applied:
    /// a batch that isn't durable must not move the estimates).
    pub fn apply_batch(&mut self, ops: &[WalOp]) -> Result<u64, SynopsisError> {
        let arity = self.maintained.synopsis().model().schema().arity();
        for op in ops {
            if op.row().len() != arity {
                return Err(SynopsisError::InvalidConfig {
                    parameter: "ops",
                    reason: format!(
                        "op arity {} does not match the schema arity {arity}",
                        op.row().len()
                    ),
                });
            }
        }
        if let Some(wal) = &mut self.wal {
            let before = wal.appended_bytes();
            let seq = wal.append(ops)?;
            journal().publish(JournalEvent::WalAppend {
                seq,
                ops: ops.len() as u64,
                bytes: wal.appended_bytes() - before,
            });
            if dbhist_telemetry::enabled() {
                wellknown().ingest_wal_bytes.set(wal.appended_bytes() as f64);
            }
        }
        let cliques = self.maintained.synopsis().model().cliques().to_vec();
        for op in ops {
            let (row, delta) = match op {
                WalOp::Insert(row) => (row, 1.0),
                WalOp::Delete(row) => (row, -1.0),
            };
            if delta > 0.0 {
                self.maintained.insert(row);
            } else {
                self.maintained.delete(row);
            }
            if let Some(marginals) = &mut self.marginals {
                for (clique, marginal) in cliques.iter().zip(marginals.iter_mut()) {
                    let key: Vec<u32> = clique.iter().map(|a| row[usize::from(a)]).collect();
                    marginal.add(&key, delta);
                }
            }
        }
        self.ops_applied += ops.len() as u64;
        self.batches_applied += 1;
        self.enforce_marginal_budget();
        if dbhist_telemetry::enabled() {
            let w = wellknown();
            w.ingest_batches.increment();
            w.ingest_ops.add(ops.len() as u64);
        }
        Ok(self.batches_applied)
    }

    /// Feeds an executed query's actual cardinality into the per-clique
    /// drift monitor — the signal [`IngestSession::tune`] acts on.
    pub fn record_feedback(&self, query: &Query, actual: f64) {
        self.maintained.record_feedback(query, actual);
    }

    /// Runs the re-split decision ladder (see the module docs): `Idle`
    /// when nothing tripped, `Resplit` when one clique's error tail can
    /// be fixed from its maintained marginal, `RebuildRecommended` when
    /// only full re-selection will help. A re-split checkpoints
    /// (snapshot + WAL truncation) before returning, so recovery always
    /// replays onto the *current* structure.
    ///
    /// # Errors
    ///
    /// Propagates re-split construction and checkpoint I/O failures.
    pub fn tune(&mut self) -> Result<TuneOutcome, SynopsisError> {
        let monitor = self.maintained.synopsis().drift_monitor();
        if monitor.observations() < self.cfg.min_observations {
            return Ok(TuneOutcome::Idle);
        }
        let drift = self.maintained.drift();
        if drift > self.cfg.rebuild_drift_threshold {
            return Ok(TuneOutcome::RebuildRecommended { drift });
        }
        let worst = (0..monitor.n_cliques())
            .max_by(|&a, &b| {
                let qa = monitor.error_quantile(a, TRIGGER_QUANTILE).unwrap_or(0.0);
                let qb = monitor.error_quantile(b, TRIGGER_QUANTILE).unwrap_or(0.0);
                qa.total_cmp(&qb)
            })
            .unwrap_or(0);
        let q95 = monitor.error_quantile(worst, TRIGGER_QUANTILE).unwrap_or(0.0);
        if q95 <= self.cfg.resplit_threshold {
            return Ok(TuneOutcome::Idle);
        }
        let Some(compacted) = self.compacted_marginal(worst) else {
            // Nothing to re-split from: marginals were dropped to the
            // budget cap, lost to a crash, or deletes emptied the
            // clique. Only a rebuild re-derives the boundaries.
            return Ok(TuneOutcome::RebuildRecommended { drift: q95 });
        };
        let buckets = self.maintained.resplit_clique(worst, &compacted)?;
        self.checkpoint()?;
        self.resplits += 1;
        if dbhist_telemetry::enabled() {
            wellknown().ingest_resplits.increment();
        }
        Ok(TuneOutcome::Resplit { clique: worst, buckets })
    }

    /// Re-persists the snapshot (if durability is attached) with the
    /// WAL's current position embedded, then atomically truncates the
    /// WAL to its next generation: the snapshot now embodies every
    /// applied batch, so the old tail is dead weight. Crash-safe at
    /// every step — the position rides inside the snapshot's own
    /// fsync'd atomic write, so a crash *between* the save and the
    /// truncation leaves a snapshot that names exactly the batches it
    /// absorbed and recovery skips them instead of double-applying
    /// (module docs, "Crash recovery"). The save must come first and
    /// this method does not reorder the two.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-save and WAL I/O failures.
    pub fn checkpoint(&mut self) -> Result<(), SynopsisError> {
        match &mut self.wal {
            Some(wal) => {
                let position = wal.position();
                self.maintained.refresh_snapshot_with_wal(position)?;
                let batches = wal.next_seq();
                wal.truncate()?;
                journal().publish(JournalEvent::WalTruncate { batches });
                if dbhist_telemetry::enabled() {
                    wellknown().ingest_wal_bytes.set(0.0);
                }
            }
            None => self.maintained.refresh_snapshot()?,
        }
        Ok(())
    }

    /// The wrapped estimator (answers queries, exposes drift gauges).
    #[must_use]
    pub fn estimator(&self) -> &MaintainedDbHistogram {
        &self.maintained
    }

    /// Consumes the session, returning the maintained synopsis (e.g. to
    /// hand to [`crate::service::EstimatorService::swap_rebuilt`] after
    /// a `RebuildRecommended`).
    #[must_use]
    pub fn into_inner(self) -> MaintainedDbHistogram {
        self.maintained
    }

    /// Batches applied (including replayed ones after a recovery).
    #[must_use]
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// Tuple operations applied (including replayed ones).
    #[must_use]
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Feedback-triggered re-splits performed by this session.
    #[must_use]
    pub fn resplits(&self) -> u64 {
        self.resplits
    }

    /// `true` while per-clique marginals are still maintained (re-split
    /// available); `false` after the budget cap dropped them or a
    /// recovery started without them.
    #[must_use]
    pub fn marginals_tracked(&self) -> bool {
        self.marginals.is_some()
    }

    /// The maintained marginal for `clique`, if tracking is alive —
    /// exposed for equivalence testing and benchmarks.
    #[must_use]
    pub fn marginal(&self, clique: usize) -> Option<&Distribution> {
        self.marginals.as_ref().and_then(|m| m.get(clique))
    }

    /// Total resident cells across all maintained marginals (0 once
    /// tracking is dropped).
    #[must_use]
    pub fn marginal_cells(&self) -> usize {
        self.marginals.as_ref().map_or(0, |m| m.iter().map(Distribution::support_size).sum())
    }

    fn arity_u16(&self) -> Result<u16, SynopsisError> {
        let arity = self.maintained.synopsis().model().schema().arity();
        u16::try_from(arity).map_err(|_| SynopsisError::InvalidConfig {
            parameter: "schema",
            reason: format!("arity {arity} exceeds the WAL's u16 bound"),
        })
    }

    /// Drops marginal tracking once its resident support exceeds the
    /// budget cap. Deterministic: the same op stream always drops at
    /// the same batch, so replicas and recoveries agree.
    fn enforce_marginal_budget(&mut self) {
        if self.marginal_cells() > self.cfg.marginal_budget_cells {
            self.marginals = None;
        }
    }

    /// A positive-mass copy of `clique`'s maintained marginal, ready
    /// for the split-tree allocator (deletes can leave zero or
    /// transiently negative cells resident; a histogram builder wants
    /// neither). `None` when tracking is off or no positive mass
    /// remains.
    fn compacted_marginal(&self, clique: usize) -> Option<Distribution> {
        let tracked = self.marginals.as_ref()?.get(clique)?;
        let mut compact =
            Distribution::empty(tracked.schema().clone(), tracked.attrs().clone()).ok()?;
        for (key, w) in tracked.iter() {
            if w > 0.0 {
                compact.add(key, w);
            }
        }
        if compact.support_size() == 0 {
            return None;
        }
        Some(compact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::SelectivityEstimator;
    use dbhist_distribution::Schema;

    /// a == b (8 values), c independent.
    fn relation(rows: u32) -> Relation {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let data: Vec<Vec<u32>> = (0..rows).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        Relation::from_rows(schema, data).unwrap()
    }

    fn session(rows: u32) -> IngestSession {
        let rel = relation(rows);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        IngestSession::begin(m, &rel, IngestConfig::default()).unwrap()
    }

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dbhist-ingest-{}-{tag}", std::process::id()))
    }

    #[test]
    fn batches_match_one_shot_updates() {
        let rel = relation(4096);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let mut reference = m.clone();
        let mut s = IngestSession::begin(m, &rel, IngestConfig::default()).unwrap();
        let ops: Vec<WalOp> = (0..300u32)
            .map(|i| {
                if i % 5 == 4 {
                    WalOp::Delete(vec![i % 8, i % 8, 0])
                } else {
                    WalOp::Insert(vec![i % 8, (i + 1) % 8, (i / 8) % 4])
                }
            })
            .collect();
        for chunk in ops.chunks(37) {
            s.apply_batch(chunk).unwrap();
        }
        for op in &ops {
            match op {
                WalOp::Insert(row) => reference.insert(row),
                WalOp::Delete(row) => reference.delete(row),
            }
        }
        for q in [Query::all(), Query::range(0, 3, 3), Query::equals(1, 5)] {
            assert_eq!(
                s.estimator().estimate(&q).to_bits(),
                reference.estimate(&q).to_bits(),
                "batched ingest must be bit-identical to one-shot updates"
            );
        }
        assert_eq!(s.ops_applied(), 300);
        assert_eq!(s.batches_applied(), 300_u64.div_ceil(37));
    }

    #[test]
    fn marginals_track_the_stream() {
        let mut s = session(512);
        s.apply_batch(&[WalOp::Insert(vec![2, 6, 1]), WalOp::Insert(vec![2, 6, 1])]).unwrap();
        s.apply_batch(&[WalOp::Delete(vec![2, 6, 1])]).unwrap();
        assert!(s.marginals_tracked());
        let cliques = s.estimator().synopsis().model().cliques().to_vec();
        for (i, clique) in cliques.iter().enumerate() {
            let tracked = s.marginal(i).expect("tracking alive");
            let key: Vec<u32> = clique.iter().map(|a| [2u32, 6, 1][usize::from(a)]).collect();
            // Net one insert of [2,6,1] relative to the 512-row seed.
            let seeded = relation(512).marginal(clique).unwrap().frequency(&key);
            assert_eq!(tracked.frequency(&key).to_bits(), (seeded + 1.0).to_bits());
        }
    }

    #[test]
    fn budget_cap_drops_tracking_deterministically() {
        let rel = relation(256);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let cfg = IngestConfig { marginal_budget_cells: 40, ..IngestConfig::default() };
        let mut s = IngestSession::begin(m, &rel, cfg).unwrap();
        assert!(s.marginals_tracked(), "seed support fits the cap");
        // Widen the support past the cap: all 64 (a, b) combinations.
        for v in 0..64u32 {
            s.apply_batch(&[WalOp::Insert(vec![v % 8, v / 8, v % 4])]).unwrap();
        }
        assert!(!s.marginals_tracked(), "cap exceeded: tracking dropped");
        assert_eq!(s.marginal_cells(), 0);
        // Tuning degrades to a rebuild recommendation once tripped.
        for i in 0..64u32 {
            let q = Query::equals(0, i % 8);
            let est = s.estimator().estimate(&q).max(1.0);
            s.record_feedback(&q, est * 10.0);
        }
        // Structural drift may or may not trip here; both remaining
        // outcomes are escalations, never a re-split.
        match s.tune().unwrap() {
            TuneOutcome::RebuildRecommended { .. } => {}
            other => panic!("expected RebuildRecommended, got {other:?}"),
        }
    }

    #[test]
    fn arity_mismatch_is_typed_and_applies_nothing() {
        let mut s = session(256);
        let before = s.estimator().estimate(&Query::all()).to_bits();
        let err =
            s.apply_batch(&[WalOp::Insert(vec![1, 1, 1]), WalOp::Insert(vec![1, 1])]).unwrap_err();
        assert!(matches!(err, SynopsisError::InvalidConfig { parameter: "ops", .. }));
        assert_eq!(s.estimator().estimate(&Query::all()).to_bits(), before);
        assert_eq!(s.batches_applied(), 0);
    }

    #[test]
    fn tune_is_idle_without_feedback() {
        let mut s = session(512);
        assert_eq!(s.tune().unwrap(), TuneOutcome::Idle);
    }

    #[test]
    fn feedback_trip_resplits_only_the_worst_clique() {
        let rel = relation(4096);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let cfg = IngestConfig { min_observations: 16, ..IngestConfig::default() };
        let mut s = IngestSession::begin(m, &rel, cfg).unwrap();
        // Shift the data: column a's distribution concentrates on value
        // 7, which the seeded bucketization under-resolves.
        for _ in 0..1500 {
            s.apply_batch(&[WalOp::Insert(vec![7, 7, 0])]).unwrap();
        }
        // Feedback on the shifted region reports large errors.
        for _ in 0..32 {
            let q = Query::equals(0, 7);
            let est = s.estimator().estimate(&q).max(1.0);
            let actual = rel.count_range(&[(0, 7, 7)]) as f64 + 1500.0;
            s.record_feedback(&q, actual.max(est * 2.0));
        }
        let outcome = s.tune().unwrap();
        match outcome {
            TuneOutcome::Resplit { clique, buckets } => {
                assert!(buckets > 0);
                assert!(clique < s.estimator().synopsis().model().cliques().len());
                assert_eq!(s.resplits(), 1);
                // The re-split clique's drift stats were reset.
                let monitor = s.estimator().synopsis().drift_monitor();
                assert!(monitor.error_quantile(clique, TRIGGER_QUANTILE).is_none());
            }
            TuneOutcome::RebuildRecommended { drift } => {
                // Acceptable only if structural drift genuinely tripped.
                assert!(drift > 0.0);
            }
            TuneOutcome::Idle => panic!("feedback this bad must not be idle"),
        }
    }

    #[test]
    fn durable_session_round_trips_through_recovery() {
        let snap = temp("roundtrip.dbhs");
        let wal = temp("roundtrip.wal");
        let rel = relation(2048);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let mut s = IngestSession::begin(m, &rel, IngestConfig::default())
            .unwrap()
            .with_durability(&snap, &wal)
            .unwrap();
        for i in 0..20u32 {
            s.apply_batch(&[
                WalOp::Insert(vec![i % 8, (i + 2) % 8, i % 4]),
                WalOp::Insert(vec![i % 8, i % 8, 0]),
                WalOp::Delete(vec![i % 8, i % 8, (i / 8) % 4]),
            ])
            .unwrap();
        }
        let live: Vec<u64> = [Query::all(), Query::range(0, 2, 6), Query::equals(2, 1)]
            .iter()
            .map(|q| s.estimator().estimate(q).to_bits())
            .collect();
        drop(s); // simulate the process dying (WAL already fsync'd per batch)
        let (r, report) =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap();
        assert_eq!(report.batches_replayed, 20);
        assert_eq!(report.ops_replayed, 60);
        assert!(report.tail_discarded.is_none());
        let recovered: Vec<u64> = [Query::all(), Query::range(0, 2, 6), Query::equals(2, 1)]
            .iter()
            .map(|q| r.estimator().estimate(q).to_bits())
            .collect();
        assert_eq!(live, recovered, "recovery must be bit-identical");
        assert!(!r.marginals_tracked(), "marginals do not survive a crash");
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn crash_between_snapshot_and_truncate_does_not_double_apply() {
        let snap = temp("midckpt.dbhs");
        let wal = temp("midckpt.wal");
        let rel = relation(1024);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let mut s = IngestSession::begin(m, &rel, IngestConfig::default())
            .unwrap()
            .with_durability(&snap, &wal)
            .unwrap();
        for _ in 0..6 {
            s.apply_batch(&[WalOp::Insert(vec![2, 2, 1])]).unwrap();
        }
        // Simulate a checkpoint that crashed after its snapshot save but
        // before the WAL truncation: persist with the current position,
        // leave the log untouched. The log now holds 6 batches the
        // snapshot already absorbed.
        let position = s.wal.as_ref().unwrap().position();
        s.maintained.refresh_snapshot_with_wal(position).unwrap();
        // One more batch lands after the interrupted checkpoint.
        s.apply_batch(&[WalOp::Insert(vec![2, 2, 1])]).unwrap();
        let q = Query::equals(0, 2);
        let live = s.estimator().estimate(&q).to_bits();
        drop(s);
        let (r, report) =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap();
        assert_eq!(report.batches_skipped, 6, "snapshot-absorbed batches must not replay");
        assert_eq!(report.batches_replayed, 1, "the post-save batch must replay");
        assert_eq!(
            r.estimator().estimate(&q).to_bits(),
            live,
            "skip-aware replay must be bit-identical, not double-applied"
        );
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn mismatched_wal_generation_is_rejected() {
        let snap = temp("genmismatch.dbhs");
        let wal = temp("genmismatch.wal");
        let rel = relation(512);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let mut s = IngestSession::begin(m, &rel, IngestConfig::default())
            .unwrap()
            .with_durability(&snap, &wal)
            .unwrap();
        s.apply_batch(&[WalOp::Insert(vec![1, 1, 1])]).unwrap();
        drop(s);
        // Replace the log with one from a generation the snapshot (cut
        // at generation 0) cannot have produced.
        let mut foreign = WalWriter::create_at(&wal, 3, 7).unwrap();
        foreign.append(&[WalOp::Insert(vec![1, 1, 1])]).unwrap();
        drop(foreign);
        let err =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap_err();
        assert!(matches!(err, SynopsisError::Persist(PersistError::Corrupt { .. })), "{err:?}");
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn positionless_snapshot_refuses_a_nonempty_wal() {
        let snap = temp("nopos.dbhs");
        let wal = temp("nopos.wal");
        let rel = relation(512);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        // A plain save (service/rebuild path) records no WAL position.
        m.persist_to(&snap).unwrap();
        let mut w = WalWriter::create(&wal, 3).unwrap();
        w.append(&[WalOp::Insert(vec![1, 1, 1])]).unwrap();
        drop(w);
        let err =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap_err();
        assert!(matches!(err, SynopsisError::Persist(PersistError::Corrupt { .. })), "{err:?}");
        // An *empty* log beside a positionless snapshot is harmless:
        // nothing to replay, so recovery proceeds.
        let w = WalWriter::create(&wal, 3).unwrap();
        drop(w);
        let (_, report) =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap();
        assert_eq!(report.batches_replayed, 0);
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }

    #[test]
    fn checkpoint_truncates_the_wal() {
        let snap = temp("ckpt.dbhs");
        let wal = temp("ckpt.wal");
        let rel = relation(1024);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        let mut s = IngestSession::begin(m, &rel, IngestConfig::default())
            .unwrap()
            .with_durability(&snap, &wal)
            .unwrap();
        for _ in 0..5 {
            s.apply_batch(&[WalOp::Insert(vec![1, 1, 1])]).unwrap();
        }
        let q = Query::equals(0, 1);
        let live = s.estimator().estimate(&q).to_bits();
        s.checkpoint().unwrap();
        s.apply_batch(&[WalOp::Insert(vec![1, 1, 1])]).unwrap();
        // The log holds only the post-checkpoint batch.
        let contents =
            dbhist_persist::wal::read(&dbhist_persist::read_file(&wal).unwrap()).unwrap();
        assert_eq!(contents.batches.len(), 1);
        // Recovery = checkpointed snapshot + 1-batch tail.
        let live2 = s.estimator().estimate(&q).to_bits();
        drop(s);
        let (r, report) =
            IngestSession::recover(&snap, &wal, DbConfig::new(600), IngestConfig::default())
                .unwrap();
        assert_eq!(report.batches_replayed, 1);
        assert_eq!(r.estimator().estimate(&q).to_bits(), live2);
        assert_ne!(live, live2, "the post-checkpoint insert moved the estimate");
        std::fs::remove_file(&snap).ok();
        std::fs::remove_file(&wal).ok();
    }
}
