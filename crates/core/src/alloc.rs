//! Storage allocation across clique histograms (paper §3.2).
//!
//! Given a byte budget `B` and one incremental builder per model clique,
//! decide how many buckets each clique histogram gets so the total
//! approximation error `Σ ERR_i(β_i)` is minimized subject to
//! `Σ β_i·s_i ≤ B`:
//!
//! * [`incremental_gains`] — the paper's Fig. 2 greedy: repeatedly fund
//!   the split with the best error decrease per byte. `O(|C| + B log |C|)`
//!   and *optimal* whenever the error curves obey diminishing returns.
//! * [`incremental_gains_parallel`] — the same allocation computed from
//!   per-clique *proposal tables* recorded concurrently, then merged by a
//!   serial cursor walk that replays the live greedy decision-for-decision
//!   (bit-identical output; see the function docs for the argument).
//! * [`optimal_dp`] — the pseudo-polynomial dynamic program over the
//!   precomputed error curves, `O(|C| · B²)` in budget units; exact
//!   regardless of curve shape.

use rayon::prelude::*;

use crate::build::IncrementalBuilder;
use crate::error::SynopsisError;

/// Runs `op` under a worker pool of `threads` threads.
pub(crate) fn with_pool<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    match rayon::ThreadPoolBuilder::new().num_threads(threads).build() {
        Ok(pool) => pool.install(op),
        Err(_) => op(),
    }
}

/// The outcome of an allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationReport {
    /// Final bucket count per builder.
    pub buckets: Vec<usize>,
    /// Total bytes consumed.
    pub bytes_used: usize,
    /// Total approximation error after allocation.
    pub total_error: f64,
    /// Number of splits funded.
    pub splits: usize,
}

impl AllocationReport {
    /// Budget-conservation check (see DESIGN.md, "Invariants & lint
    /// policy"): the allocation must fit within `budget_bytes`, fund every
    /// clique with at least one bucket, and report a finite, non-negative
    /// total error. Run automatically after allocation in debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, budget_bytes: usize) -> Result<(), String> {
        if self.bytes_used > budget_bytes {
            return Err(format!(
                "allocation spent {} bytes of a {budget_bytes}-byte budget",
                self.bytes_used
            ));
        }
        if self.buckets.contains(&0) {
            return Err("a clique was allocated zero buckets".into());
        }
        if !self.total_error.is_finite() || self.total_error < 0.0 {
            return Err(format!("non-finite or negative total error {}", self.total_error));
        }
        Ok(())
    }
}

/// The paper's `IncrementalGains` algorithm (Fig. 2): all histograms start
/// as one bucket; each round funds the candidate split maximizing
/// `ΔERR / (n_i · s_i)` that still fits the budget. The builders are left
/// in their final state — call `finish()` on each to materialize.
///
/// # Errors
///
/// Returns [`SynopsisError::Budget`] if the budget cannot hold even the
/// initial one-bucket histograms.
pub fn incremental_gains<B: IncrementalBuilder>(
    builders: &mut [B],
    budget_bytes: usize,
) -> Result<AllocationReport, SynopsisError> {
    let _span = dbhist_telemetry::span!("dbhist_alloc_incremental_gains_latency_us");
    let mut used: usize = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
    if used > budget_bytes {
        return Err(SynopsisError::Budget {
            reason: format!(
                "budget of {budget_bytes} bytes cannot hold {} one-bucket histograms ({used} bytes)",
                builders.len()
            ),
        });
    }
    let mut splits = 0usize;
    loop {
        // Rank candidate splits by error decrease per byte (Fig. 2 step 8)
        // and fund the best one that fits (steps 9–10).
        let mut candidates: Vec<(usize, usize, f64)> = builders
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                b.peek().map(|p| (i, p.extra_bytes, p.error_gain / p.extra_bytes.max(1) as f64))
            })
            .collect();
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let Some(&(idx, extra, _)) =
            candidates.iter().find(|&&(_, extra, _)| used + extra <= budget_bytes)
        else {
            break;
        };
        let split_applied = builders[idx].split_once();
        debug_assert!(split_applied, "peeked split must be applicable");
        used += extra;
        splits += 1;
    }
    let report = AllocationReport {
        buckets: builders.iter().map(IncrementalBuilder::bucket_count).collect(),
        bytes_used: used,
        total_error: builders.iter().map(IncrementalBuilder::error).sum(),
        splits,
    };
    #[cfg(debug_assertions)]
    if let Err(violation) = report.validate(budget_bytes) {
        panic!("allocation invariant violated: {violation}"); // lint:allow(panic-surface): debug-only invariant validator
    }
    Ok(report)
}

/// Proposals materialized per lazy recording step in
/// [`incremental_gains_parallel`]; bounds wasted probes past the last
/// funded split at `RECORD_CHUNK · |C|`.
const RECORD_CHUNK: usize = 64;

/// A probe clone of one clique builder plus the prefix of its proposal
/// sequence recorded so far (see [`incremental_gains_parallel`]).
struct GainProbe<B> {
    builder: B,
    /// `(extra_bytes, error_gain)` of the builder's 1st, 2nd, ... split.
    table: Vec<(usize, f64)>,
    /// Bytes the recorded proposals would cumulatively cost.
    spent: usize,
    /// Saturated, or past the budget headroom — no further proposals.
    done: bool,
    /// Builder snapshot taken when the latest extension started, with
    /// exactly `.1` splits applied. Extensions only happen once the
    /// cursor walk has consumed the whole table, so `.1` never exceeds
    /// the builder's final funded split count — the apply phase replays
    /// at most one chunk forward from here instead of from scratch.
    checkpoint: Option<(B, usize)>,
}

impl<B: IncrementalBuilder + Clone> GainProbe<B> {
    fn new(builder: B) -> Self {
        Self { builder, table: Vec::new(), spent: 0, done: false, checkpoint: None }
    }

    /// `true` when the cursor walk has consumed every recorded proposal
    /// but the sequence may still continue.
    fn needs_extension(&self, cursor: usize) -> bool {
        cursor >= self.table.len() && !self.done
    }

    /// Drives a builder with `from` splits applied to `to` splits,
    /// following the same deterministic split sequence the probe took.
    fn replay(snapshot: &mut B, from: usize, to: usize) {
        for _ in from..to {
            if !snapshot.split_once() {
                break;
            }
        }
    }

    /// Leaves `real` in the state the serial greedy would: `funded`
    /// splits applied. Replays from the checkpoint snapshot when one
    /// exists (at most one chunk of splits), from `real` itself
    /// otherwise (the walk never outran the first chunk).
    fn apply(self, real: &mut B, funded: usize) {
        match self.checkpoint {
            Some((mut snapshot, at)) if at <= funded => {
                Self::replay(&mut snapshot, at, funded);
                *real = snapshot;
            }
            _ => Self::replay(real, 0, funded),
        }
    }

    /// Records up to `chunk` further proposals (stopping at saturation or
    /// the byte headroom).
    fn extend(&mut self, chunk: usize, headroom: usize) {
        self.checkpoint = Some((self.builder.clone(), self.table.len()));
        for _ in 0..chunk {
            let Some(p) = self.builder.peek() else {
                self.done = true;
                return;
            };
            if self.spent + p.extra_bytes > headroom {
                self.done = true;
                return;
            }
            self.spent += p.extra_bytes;
            self.table.push((p.extra_bytes, p.error_gain));
            if !self.builder.split_once() {
                self.done = true;
                return;
            }
        }
    }
}

/// [`incremental_gains`] computed with per-clique parallelism; the
/// allocation it returns (and the builder states it leaves behind) are
/// bit-identical to the serial greedy's. `threads <= 1` delegates to the
/// serial implementation outright.
///
/// Strategy: each builder's *proposal sequence* — the `(extra_bytes,
/// error_gain)` of its 1st, 2nd, ... split — is a pure function of the
/// builder alone, independent of how the greedy interleaves cliques. So
/// the sequences are recorded concurrently on probe clones, a serial
/// cursor walk replays the greedy's rank-and-fund loop over the recorded
/// tables (same stable sort, same first-that-fits rule, same tie
/// behaviour), and the chosen split counts are applied to the real
/// builders concurrently. Recording is *lazy*: tables grow in
/// fixed-size chunks only when the cursor walk catches up to a table's
/// end, so the total number of split probes stays proportional to the
/// splits actually funded rather than to the byte headroom. Beyond the
/// speedup from threads, that makes the table walk algorithmically
/// cheaper than the live greedy, which re-peeks every clique each round
/// (`O(rounds · |C|)` split probes).
///
/// # Errors
///
/// Returns [`SynopsisError::Budget`] if the budget cannot hold even the
/// initial one-bucket histograms.
pub fn incremental_gains_parallel<B>(
    builders: &mut [B],
    budget_bytes: usize,
    threads: usize,
) -> Result<AllocationReport, SynopsisError>
where
    B: IncrementalBuilder + Clone + Send + Sync,
{
    if threads <= 1 {
        return incremental_gains(builders, budget_bytes);
    }
    let _span = dbhist_telemetry::span!("dbhist_alloc_incremental_gains_latency_us");
    let initial: usize = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
    if initial > budget_bytes {
        return Err(SynopsisError::Budget {
            reason: format!(
                "budget of {budget_bytes} bytes cannot hold {} one-bucket histograms ({initial} bytes)",
                builders.len()
            ),
        });
    }
    // No single builder can be funded past the global headroom, so a
    // probe that has proposed `headroom` worth of splits is exhausted.
    let headroom = budget_bytes - initial;
    let mut probes: Vec<GainProbe<B>> = with_pool(threads, || {
        builders[..]
            .par_iter()
            .map(|b| {
                let mut probe = GainProbe::new(b.clone());
                probe.extend(RECORD_CHUNK, headroom);
                probe
            })
            .collect()
    });
    // Serial replay of the greedy over the tables: identical candidate
    // order (builder index), identical stable sort on the gain/byte
    // ratio, identical first-that-fits funding rule.
    let mut cursors = vec![0usize; builders.len()];
    let mut used = initial;
    let mut splits = 0usize;
    loop {
        // Materialize the next proposal of every probe the walk has
        // caught up with (concurrently — probe sequences stay pure).
        let needy: Vec<usize> =
            (0..probes.len()).filter(|&i| probes[i].needs_extension(cursors[i])).collect();
        match needy.len() {
            0 => {}
            // One table ran dry (the steady state once every probe holds
            // its first chunk): extend inline, a worker pool would cost
            // more than the chunk.
            1 => probes[needy[0]].extend(RECORD_CHUNK, headroom),
            _ => with_pool(threads, || {
                let needy: Vec<&mut GainProbe<B>> = probes
                    .iter_mut()
                    .enumerate()
                    .filter(|(i, p)| p.needs_extension(cursors[*i]))
                    .map(|(_, p)| p)
                    .collect();
                needy.into_par_iter().for_each(|p| p.extend(RECORD_CHUNK, headroom));
            }),
        }
        let mut candidates: Vec<(usize, usize, f64)> = probes
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                p.table.get(cursors[i]).map(|&(extra, gain)| (i, extra, gain / extra.max(1) as f64))
            })
            .collect();
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let Some(&(idx, extra, _)) =
            candidates.iter().find(|&&(_, extra, _)| used + extra <= budget_bytes)
        else {
            break;
        };
        cursors[idx] += 1;
        used += extra;
        splits += 1;
    }
    // Drive the real builders to their chosen split counts concurrently,
    // replaying from each probe's checkpoint snapshot.
    with_pool(threads, || {
        let work: Vec<(&mut B, GainProbe<B>, usize)> = builders
            .iter_mut()
            .zip(probes)
            .zip(cursors.iter().copied())
            .map(|((real, probe), funded)| (real, probe, funded))
            .collect();
        work.into_par_iter().for_each(|(real, probe, funded)| probe.apply(real, funded));
    });
    let report = AllocationReport {
        buckets: builders.iter().map(IncrementalBuilder::bucket_count).collect(),
        bytes_used: used,
        total_error: builders.iter().map(IncrementalBuilder::error).sum(),
        splits,
    };
    #[cfg(debug_assertions)]
    if let Err(violation) = report.validate(budget_bytes) {
        panic!("allocation invariant violated: {violation}"); // lint:allow(panic-surface): debug-only invariant validator
    }
    Ok(report)
}

/// One point of a clique histogram's error curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Bucket count at this point.
    pub buckets: usize,
    /// Storage bytes at this point.
    pub bytes: usize,
    /// Error `ERR_i(buckets)`.
    pub error: f64,
}

/// Precomputes `ERR_i(β)` for every reachable bucket count within
/// `budget_bytes`, by running the builder to saturation.
pub fn error_curve<B: IncrementalBuilder>(builder: &mut B, budget_bytes: usize) -> Vec<CurvePoint> {
    let mut curve = vec![CurvePoint {
        buckets: builder.bucket_count(),
        bytes: builder.storage_bytes(),
        error: builder.error(),
    }];
    while let Some(p) = builder.peek() {
        if builder.storage_bytes() + p.extra_bytes > budget_bytes {
            break;
        }
        builder.split_once();
        curve.push(CurvePoint {
            buckets: builder.bucket_count(),
            bytes: builder.storage_bytes(),
            error: builder.error(),
        });
    }
    curve
}

/// Precomputes every clique's error curve, fanning the independent
/// builder runs across `threads` workers (each curve is a pure function
/// of its own builder, so the result is bit-identical to the serial
/// loop). `threads <= 1` runs serially.
pub fn error_curves_parallel<B>(
    builders: &mut [B],
    budget_bytes: usize,
    threads: usize,
) -> Vec<Vec<CurvePoint>>
where
    B: IncrementalBuilder + Send,
{
    if threads <= 1 {
        return builders.iter_mut().map(|b| error_curve(b, budget_bytes)).collect();
    }
    with_pool(threads, || builders.par_iter_mut().map(|b| error_curve(b, budget_bytes)).collect())
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Optimal space allocation by dynamic programming over the precomputed
/// error curves (paper §3.2). Returns the chosen curve point per clique.
///
/// The byte axis is quantized by the greatest common divisor of all curve
/// byte counts, which recovers the natural `O(|C| · (B/s)²)` complexity
/// when every bucket costs the same `s` bytes (e.g. 9 for MHIST).
///
/// # Errors
///
/// Returns [`SynopsisError::Budget`] if even the one-bucket configuration
/// exceeds the budget.
pub fn optimal_dp(
    curves: &[Vec<CurvePoint>],
    budget_bytes: usize,
) -> Result<Vec<CurvePoint>, SynopsisError> {
    let _span = dbhist_telemetry::span!("dbhist_alloc_optimal_dp_latency_us");
    assert!(
        curves.iter().all(|c| !c.is_empty()),
        "every clique must have at least its one-bucket curve point"
    );
    let min_bytes: usize = curves.iter().map(|c| c[0].bytes).sum();
    if min_bytes > budget_bytes {
        return Err(SynopsisError::Budget {
            reason: format!(
                "budget of {budget_bytes} bytes cannot hold the one-bucket configuration ({min_bytes} bytes)"
            ),
        });
    }
    // Quantize the byte axis.
    let mut unit = budget_bytes.max(1);
    for c in curves {
        for p in c {
            if p.bytes > 0 {
                unit = gcd(unit, p.bytes);
            }
        }
    }
    let cap = budget_bytes / unit;

    // F[b] = (min error, chosen point index per processed clique) — we
    // keep a parent table for reconstruction.
    const INF: f64 = f64::INFINITY;
    let mut best = vec![INF; cap + 1];
    best[0] = 0.0;
    // choice[c][b] = index of the curve point chosen for clique c at
    // budget b (usize::MAX = unreachable).
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(curves.len());
    for curve in curves {
        let mut next = vec![INF; cap + 1];
        let mut pick = vec![usize::MAX; cap + 1];
        for b in 0..=cap {
            for (pi, p) in curve.iter().enumerate() {
                let cost = p.bytes / unit;
                if cost > b {
                    break; // curve points are sorted by bytes
                }
                let base = best[b - cost];
                if base.is_finite() {
                    let total = base + p.error;
                    if total < next[b] {
                        next[b] = total;
                        pick[b] = pi;
                    }
                }
            }
        }
        best = next;
        choice.push(pick);
    }
    // Reconstruct from the best reachable budget. The caller guarantees
    // the one-bucket-per-curve configuration fits, so some state is
    // finite; if not, the budget was unsatisfiable after all.
    let Some((mut b, _)) = best
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
    else {
        return Err(SynopsisError::Budget {
            reason: "no reachable bucket configuration under the byte budget".into(),
        });
    };
    let mut picks = vec![CurvePoint { buckets: 0, bytes: 0, error: 0.0 }; curves.len()];
    for c in (0..curves.len()).rev() {
        let pi = choice[c][b];
        debug_assert_ne!(pi, usize::MAX, "reconstruction followed reachable states");
        picks[c] = curves[c][pi];
        b -= curves[c][pi].bytes / unit;
    }
    #[cfg(debug_assertions)]
    {
        let spent: usize = picks.iter().map(|p| p.bytes).sum();
        assert!(
            spent <= budget_bytes,
            "DP allocation spent {spent} bytes of a {budget_bytes}-byte budget"
        );
        assert!(
            picks.iter().all(|p| p.buckets >= 1),
            "DP allocation must fund every clique with at least one bucket"
        );
    }
    Ok(picks)
}

/// Drives a set of builders to the bucket counts chosen by [`optimal_dp`].
pub fn apply_allocation<B: IncrementalBuilder>(builders: &mut [B], picks: &[CurvePoint]) {
    for (builder, pick) in builders.iter_mut().zip(picks) {
        while builder.bucket_count() < pick.buckets {
            if !builder.split_once() {
                break;
            }
        }
    }
}

/// [`apply_allocation`] with the per-builder split replay fanned across
/// `threads` workers. `threads <= 1` runs serially.
pub fn apply_allocation_parallel<B>(builders: &mut [B], picks: &[CurvePoint], threads: usize)
where
    B: IncrementalBuilder + Send,
{
    if threads <= 1 {
        return apply_allocation(builders, picks);
    }
    with_pool(threads, || {
        builders.iter_mut().zip(picks).collect::<Vec<_>>().into_par_iter().for_each(
            |(builder, pick)| {
                while builder.bucket_count() < pick.buckets {
                    if !builder.split_once() {
                        break;
                    }
                }
            },
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{MhistCliqueBuilder, OneDimCliqueBuilder};
    use dbhist_distribution::{AttrSet, Relation, Schema};
    use dbhist_histogram::SplitCriterion;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 16), ("b", 16), ("c", 8)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..2000u32).map(|i| vec![(i * i) % 16, (i * 7) % 16, (i / 3) % 8]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn mhist_builders(rel: &Relation) -> Vec<MhistCliqueBuilder> {
        [[0u16, 1u16], [1, 2]]
            .iter()
            .map(|pair| {
                let d = rel.marginal(&AttrSet::from_ids(pair.iter().copied())).unwrap();
                MhistCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap()
            })
            .collect()
    }

    #[test]
    fn greedy_respects_budget() {
        let rel = relation();
        for budget in [18usize, 90, 300, 900] {
            let mut builders = mhist_builders(&rel);
            let report = incremental_gains(&mut builders, budget).unwrap();
            assert!(report.bytes_used <= budget);
            let real: usize = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
            assert_eq!(report.bytes_used, real);
        }
    }

    #[test]
    fn greedy_rejects_impossible_budget() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        assert!(matches!(incremental_gains(&mut builders, 10), Err(SynopsisError::Budget { .. })));
    }

    #[test]
    fn more_budget_never_hurts_greedy() {
        let rel = relation();
        let mut prev_error = f64::INFINITY;
        for budget in [18usize, 90, 300, 900, 2700] {
            let mut builders = mhist_builders(&rel);
            let report = incremental_gains(&mut builders, budget).unwrap();
            assert!(
                report.total_error <= prev_error + 1e-9,
                "budget {budget}: {} vs {prev_error}",
                report.total_error
            );
            prev_error = report.total_error;
        }
    }

    #[test]
    fn curves_are_monotone() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        for b in &mut builders {
            let curve = error_curve(b, 600);
            assert!(curve.windows(2).all(|w| w[0].bytes < w[1].bytes));
            assert!(curve.windows(2).all(|w| w[1].error <= w[0].error + 1e-9));
            assert_eq!(curve[0].buckets, 1);
        }
    }

    #[test]
    fn dp_is_at_least_as_good_as_greedy() {
        let rel = relation();
        for budget in [90usize, 300, 600] {
            let mut greedy = mhist_builders(&rel);
            let greedy_report = incremental_gains(&mut greedy, budget).unwrap();

            let mut for_curves = mhist_builders(&rel);
            let curves: Vec<Vec<CurvePoint>> =
                for_curves.iter_mut().map(|b| error_curve(b, budget)).collect();
            let picks = optimal_dp(&curves, budget).unwrap();
            let dp_bytes: usize = picks.iter().map(|p| p.bytes).sum();
            let dp_error: f64 = picks.iter().map(|p| p.error).sum();
            assert!(dp_bytes <= budget);
            assert!(
                dp_error <= greedy_report.total_error + 1e-6,
                "budget {budget}: dp {dp_error} vs greedy {}",
                greedy_report.total_error
            );
        }
    }

    #[test]
    fn dp_exact_on_tiny_instance() {
        // Hand-checkable: two curves, budget for exactly one extra bucket.
        let curves = vec![
            vec![
                CurvePoint { buckets: 1, bytes: 9, error: 100.0 },
                CurvePoint { buckets: 2, bytes: 18, error: 10.0 },
            ],
            vec![
                CurvePoint { buckets: 1, bytes: 9, error: 50.0 },
                CurvePoint { buckets: 2, bytes: 18, error: 40.0 },
            ],
        ];
        let picks = optimal_dp(&curves, 27).unwrap();
        // Funding clique 0's split (gain 90) beats clique 1's (gain 10).
        assert_eq!(picks[0].buckets, 2);
        assert_eq!(picks[1].buckets, 1);
        assert!(optimal_dp(&curves, 17).is_err());
    }

    #[test]
    fn dp_handles_nonuniform_step_sizes() {
        // Grid-like curves where a "split" adds several buckets at once;
        // the greedy would be tempted by the first big cheap gain, DP must
        // still find the optimum.
        let curves = vec![
            vec![
                CurvePoint { buckets: 1, bytes: 4, error: 100.0 },
                CurvePoint { buckets: 4, bytes: 21, error: 5.0 },
            ],
            vec![
                CurvePoint { buckets: 1, bytes: 4, error: 60.0 },
                CurvePoint { buckets: 2, bytes: 9, error: 30.0 },
                CurvePoint { buckets: 4, bytes: 19, error: 1.0 },
            ],
        ];
        let picks = optimal_dp(&curves, 25).unwrap();
        let err: f64 = picks.iter().map(|p| p.error).sum();
        // Budget 25: {21, 4} → 65; {4, 19} → 101; {4, 9}.. wait {100+30}=130;
        // optimum is funding clique 0 fully: 5 + 60 = 65.
        assert!((err - 65.0).abs() < 1e-9, "got {err}");
    }

    #[test]
    fn apply_allocation_reaches_targets() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        let curves: Vec<Vec<CurvePoint>> = {
            let mut clones = mhist_builders(&rel);
            clones.iter_mut().map(|b| error_curve(b, 300)).collect()
        };
        let picks = optimal_dp(&curves, 300).unwrap();
        apply_allocation(&mut builders, &picks);
        for (b, p) in builders.iter().zip(&picks) {
            assert_eq!(b.bucket_count(), p.buckets);
        }
    }

    #[test]
    fn parallel_gains_bit_identical_to_serial() {
        let rel = relation();
        for budget in [18usize, 90, 300, 900, 2700] {
            let mut serial = mhist_builders(&rel);
            let serial_report = incremental_gains(&mut serial, budget).unwrap();
            for threads in [1usize, 2, 4] {
                let mut parallel = mhist_builders(&rel);
                let report = incremental_gains_parallel(&mut parallel, budget, threads).unwrap();
                assert_eq!(report.buckets, serial_report.buckets, "budget {budget} t{threads}");
                assert_eq!(report.bytes_used, serial_report.bytes_used);
                assert_eq!(report.splits, serial_report.splits);
                assert_eq!(report.total_error.to_bits(), serial_report.total_error.to_bits());
                for (a, b) in serial.iter().zip(&parallel) {
                    assert_eq!(a.bucket_count(), b.bucket_count());
                    assert_eq!(a.error().to_bits(), b.error().to_bits());
                }
            }
        }
    }

    #[test]
    fn parallel_gains_rejects_impossible_budget() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        assert!(matches!(
            incremental_gains_parallel(&mut builders, 10, 4),
            Err(SynopsisError::Budget { .. })
        ));
    }

    #[test]
    fn parallel_curves_match_serial() {
        let rel = relation();
        let mut serial = mhist_builders(&rel);
        let expected: Vec<Vec<CurvePoint>> =
            serial.iter_mut().map(|b| error_curve(b, 600)).collect();
        let mut parallel = mhist_builders(&rel);
        let got = error_curves_parallel(&mut parallel, 600, 4);
        assert_eq!(expected, got);
    }

    #[test]
    fn parallel_apply_reaches_targets() {
        let rel = relation();
        let curves = {
            let mut clones = mhist_builders(&rel);
            error_curves_parallel(&mut clones, 300, 2)
        };
        let picks = optimal_dp(&curves, 300).unwrap();
        let mut builders = mhist_builders(&rel);
        apply_allocation_parallel(&mut builders, &picks, 4);
        for (b, p) in builders.iter().zip(&picks) {
            assert_eq!(b.bucket_count(), p.buckets);
        }
    }

    #[test]
    fn greedy_works_for_ind_baseline_builders() {
        // The IND baseline funds one-dimensional histograms through the
        // same allocator (paper §4.1).
        let rel = relation();
        let joint = rel.distribution();
        let mut builders: Vec<OneDimCliqueBuilder> = (0..3u16)
            .map(|a| OneDimCliqueBuilder::start(&joint, a, SplitCriterion::MaxDiff).unwrap())
            .collect();
        let report = incremental_gains(&mut builders, 200).unwrap();
        assert!(report.bytes_used <= 200);
        assert_eq!(report.buckets.len(), 3);
        assert!(report.buckets.iter().all(|&b| b >= 1));
    }
}
