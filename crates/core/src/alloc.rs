//! Storage allocation across clique histograms (paper §3.2).
//!
//! Given a byte budget `B` and one incremental builder per model clique,
//! decide how many buckets each clique histogram gets so the total
//! approximation error `Σ ERR_i(β_i)` is minimized subject to
//! `Σ β_i·s_i ≤ B`:
//!
//! * [`incremental_gains`] — the paper's Fig. 2 greedy: repeatedly fund
//!   the split with the best error decrease per byte. `O(|C| + B log |C|)`
//!   and *optimal* whenever the error curves obey diminishing returns.
//! * [`optimal_dp`] — the pseudo-polynomial dynamic program over the
//!   precomputed error curves, `O(|C| · B²)` in budget units; exact
//!   regardless of curve shape.

use crate::build::IncrementalBuilder;
use crate::error::SynopsisError;

/// The outcome of an allocation run.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationReport {
    /// Final bucket count per builder.
    pub buckets: Vec<usize>,
    /// Total bytes consumed.
    pub bytes_used: usize,
    /// Total approximation error after allocation.
    pub total_error: f64,
    /// Number of splits funded.
    pub splits: usize,
}

impl AllocationReport {
    /// Budget-conservation check (see DESIGN.md, "Invariants & lint
    /// policy"): the allocation must fit within `budget_bytes`, fund every
    /// clique with at least one bucket, and report a finite, non-negative
    /// total error. Run automatically after allocation in debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self, budget_bytes: usize) -> Result<(), String> {
        if self.bytes_used > budget_bytes {
            return Err(format!(
                "allocation spent {} bytes of a {budget_bytes}-byte budget",
                self.bytes_used
            ));
        }
        if self.buckets.contains(&0) {
            return Err("a clique was allocated zero buckets".into());
        }
        if !self.total_error.is_finite() || self.total_error < 0.0 {
            return Err(format!("non-finite or negative total error {}", self.total_error));
        }
        Ok(())
    }
}

/// The paper's `IncrementalGains` algorithm (Fig. 2): all histograms start
/// as one bucket; each round funds the candidate split maximizing
/// `ΔERR / (n_i · s_i)` that still fits the budget. The builders are left
/// in their final state — call `finish()` on each to materialize.
///
/// # Errors
///
/// Returns [`SynopsisError::Budget`] if the budget cannot hold even the
/// initial one-bucket histograms.
pub fn incremental_gains<B: IncrementalBuilder>(
    builders: &mut [B],
    budget_bytes: usize,
) -> Result<AllocationReport, SynopsisError> {
    let mut used: usize = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
    if used > budget_bytes {
        return Err(SynopsisError::Budget {
            reason: format!(
                "budget of {budget_bytes} bytes cannot hold {} one-bucket histograms ({used} bytes)",
                builders.len()
            ),
        });
    }
    let mut splits = 0usize;
    loop {
        // Rank candidate splits by error decrease per byte (Fig. 2 step 8)
        // and fund the best one that fits (steps 9–10).
        let mut candidates: Vec<(usize, usize, f64)> = builders
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                b.peek().map(|p| (i, p.extra_bytes, p.error_gain / p.extra_bytes.max(1) as f64))
            })
            .collect();
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        let Some(&(idx, extra, _)) =
            candidates.iter().find(|&&(_, extra, _)| used + extra <= budget_bytes)
        else {
            break;
        };
        let split_applied = builders[idx].split_once();
        debug_assert!(split_applied, "peeked split must be applicable");
        used += extra;
        splits += 1;
    }
    let report = AllocationReport {
        buckets: builders.iter().map(IncrementalBuilder::bucket_count).collect(),
        bytes_used: used,
        total_error: builders.iter().map(IncrementalBuilder::error).sum(),
        splits,
    };
    #[cfg(debug_assertions)]
    if let Err(violation) = report.validate(budget_bytes) {
        panic!("allocation invariant violated: {violation}"); // lint:allow(no-panic): debug-only invariant validator
    }
    Ok(report)
}

/// One point of a clique histogram's error curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Bucket count at this point.
    pub buckets: usize,
    /// Storage bytes at this point.
    pub bytes: usize,
    /// Error `ERR_i(buckets)`.
    pub error: f64,
}

/// Precomputes `ERR_i(β)` for every reachable bucket count within
/// `budget_bytes`, by running the builder to saturation.
pub fn error_curve<B: IncrementalBuilder>(builder: &mut B, budget_bytes: usize) -> Vec<CurvePoint> {
    let mut curve = vec![CurvePoint {
        buckets: builder.bucket_count(),
        bytes: builder.storage_bytes(),
        error: builder.error(),
    }];
    while let Some(p) = builder.peek() {
        if builder.storage_bytes() + p.extra_bytes > budget_bytes {
            break;
        }
        builder.split_once();
        curve.push(CurvePoint {
            buckets: builder.bucket_count(),
            bytes: builder.storage_bytes(),
            error: builder.error(),
        });
    }
    curve
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Optimal space allocation by dynamic programming over the precomputed
/// error curves (paper §3.2). Returns the chosen curve point per clique.
///
/// The byte axis is quantized by the greatest common divisor of all curve
/// byte counts, which recovers the natural `O(|C| · (B/s)²)` complexity
/// when every bucket costs the same `s` bytes (e.g. 9 for MHIST).
///
/// # Errors
///
/// Returns [`SynopsisError::Budget`] if even the one-bucket configuration
/// exceeds the budget.
pub fn optimal_dp(
    curves: &[Vec<CurvePoint>],
    budget_bytes: usize,
) -> Result<Vec<CurvePoint>, SynopsisError> {
    assert!(
        curves.iter().all(|c| !c.is_empty()),
        "every clique must have at least its one-bucket curve point"
    );
    let min_bytes: usize = curves.iter().map(|c| c[0].bytes).sum();
    if min_bytes > budget_bytes {
        return Err(SynopsisError::Budget {
            reason: format!(
                "budget of {budget_bytes} bytes cannot hold the one-bucket configuration ({min_bytes} bytes)"
            ),
        });
    }
    // Quantize the byte axis.
    let mut unit = budget_bytes.max(1);
    for c in curves {
        for p in c {
            if p.bytes > 0 {
                unit = gcd(unit, p.bytes);
            }
        }
    }
    let cap = budget_bytes / unit;

    // F[b] = (min error, chosen point index per processed clique) — we
    // keep a parent table for reconstruction.
    const INF: f64 = f64::INFINITY;
    let mut best = vec![INF; cap + 1];
    best[0] = 0.0;
    // choice[c][b] = index of the curve point chosen for clique c at
    // budget b (usize::MAX = unreachable).
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(curves.len());
    for curve in curves {
        let mut next = vec![INF; cap + 1];
        let mut pick = vec![usize::MAX; cap + 1];
        for b in 0..=cap {
            for (pi, p) in curve.iter().enumerate() {
                let cost = p.bytes / unit;
                if cost > b {
                    break; // curve points are sorted by bytes
                }
                let base = best[b - cost];
                if base.is_finite() {
                    let total = base + p.error;
                    if total < next[b] {
                        next[b] = total;
                        pick[b] = pi;
                    }
                }
            }
        }
        best = next;
        choice.push(pick);
    }
    // Reconstruct from the best reachable budget. The caller guarantees
    // the one-bucket-per-curve configuration fits, so some state is
    // finite; if not, the budget was unsatisfiable after all.
    let Some((mut b, _)) = best
        .iter()
        .enumerate()
        .filter(|(_, e)| e.is_finite())
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
    else {
        return Err(SynopsisError::Budget {
            reason: "no reachable bucket configuration under the byte budget".into(),
        });
    };
    let mut picks = vec![CurvePoint { buckets: 0, bytes: 0, error: 0.0 }; curves.len()];
    for c in (0..curves.len()).rev() {
        let pi = choice[c][b];
        debug_assert_ne!(pi, usize::MAX, "reconstruction followed reachable states");
        picks[c] = curves[c][pi];
        b -= curves[c][pi].bytes / unit;
    }
    #[cfg(debug_assertions)]
    {
        let spent: usize = picks.iter().map(|p| p.bytes).sum();
        assert!(
            spent <= budget_bytes,
            "DP allocation spent {spent} bytes of a {budget_bytes}-byte budget"
        );
        assert!(
            picks.iter().all(|p| p.buckets >= 1),
            "DP allocation must fund every clique with at least one bucket"
        );
    }
    Ok(picks)
}

/// Drives a set of builders to the bucket counts chosen by [`optimal_dp`].
pub fn apply_allocation<B: IncrementalBuilder>(builders: &mut [B], picks: &[CurvePoint]) {
    for (builder, pick) in builders.iter_mut().zip(picks) {
        while builder.bucket_count() < pick.buckets {
            if !builder.split_once() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{MhistCliqueBuilder, OneDimCliqueBuilder};
    use dbhist_distribution::{AttrSet, Relation, Schema};
    use dbhist_histogram::SplitCriterion;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 16), ("b", 16), ("c", 8)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..2000u32).map(|i| vec![(i * i) % 16, (i * 7) % 16, (i / 3) % 8]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn mhist_builders(rel: &Relation) -> Vec<MhistCliqueBuilder> {
        [[0u16, 1u16], [1, 2]]
            .iter()
            .map(|pair| {
                let d = rel.marginal(&AttrSet::from_ids(pair.iter().copied())).unwrap();
                MhistCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap()
            })
            .collect()
    }

    #[test]
    fn greedy_respects_budget() {
        let rel = relation();
        for budget in [18usize, 90, 300, 900] {
            let mut builders = mhist_builders(&rel);
            let report = incremental_gains(&mut builders, budget).unwrap();
            assert!(report.bytes_used <= budget);
            let real: usize = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
            assert_eq!(report.bytes_used, real);
        }
    }

    #[test]
    fn greedy_rejects_impossible_budget() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        assert!(matches!(incremental_gains(&mut builders, 10), Err(SynopsisError::Budget { .. })));
    }

    #[test]
    fn more_budget_never_hurts_greedy() {
        let rel = relation();
        let mut prev_error = f64::INFINITY;
        for budget in [18usize, 90, 300, 900, 2700] {
            let mut builders = mhist_builders(&rel);
            let report = incremental_gains(&mut builders, budget).unwrap();
            assert!(
                report.total_error <= prev_error + 1e-9,
                "budget {budget}: {} vs {prev_error}",
                report.total_error
            );
            prev_error = report.total_error;
        }
    }

    #[test]
    fn curves_are_monotone() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        for b in &mut builders {
            let curve = error_curve(b, 600);
            assert!(curve.windows(2).all(|w| w[0].bytes < w[1].bytes));
            assert!(curve.windows(2).all(|w| w[1].error <= w[0].error + 1e-9));
            assert_eq!(curve[0].buckets, 1);
        }
    }

    #[test]
    fn dp_is_at_least_as_good_as_greedy() {
        let rel = relation();
        for budget in [90usize, 300, 600] {
            let mut greedy = mhist_builders(&rel);
            let greedy_report = incremental_gains(&mut greedy, budget).unwrap();

            let mut for_curves = mhist_builders(&rel);
            let curves: Vec<Vec<CurvePoint>> =
                for_curves.iter_mut().map(|b| error_curve(b, budget)).collect();
            let picks = optimal_dp(&curves, budget).unwrap();
            let dp_bytes: usize = picks.iter().map(|p| p.bytes).sum();
            let dp_error: f64 = picks.iter().map(|p| p.error).sum();
            assert!(dp_bytes <= budget);
            assert!(
                dp_error <= greedy_report.total_error + 1e-6,
                "budget {budget}: dp {dp_error} vs greedy {}",
                greedy_report.total_error
            );
        }
    }

    #[test]
    fn dp_exact_on_tiny_instance() {
        // Hand-checkable: two curves, budget for exactly one extra bucket.
        let curves = vec![
            vec![
                CurvePoint { buckets: 1, bytes: 9, error: 100.0 },
                CurvePoint { buckets: 2, bytes: 18, error: 10.0 },
            ],
            vec![
                CurvePoint { buckets: 1, bytes: 9, error: 50.0 },
                CurvePoint { buckets: 2, bytes: 18, error: 40.0 },
            ],
        ];
        let picks = optimal_dp(&curves, 27).unwrap();
        // Funding clique 0's split (gain 90) beats clique 1's (gain 10).
        assert_eq!(picks[0].buckets, 2);
        assert_eq!(picks[1].buckets, 1);
        assert!(optimal_dp(&curves, 17).is_err());
    }

    #[test]
    fn dp_handles_nonuniform_step_sizes() {
        // Grid-like curves where a "split" adds several buckets at once;
        // the greedy would be tempted by the first big cheap gain, DP must
        // still find the optimum.
        let curves = vec![
            vec![
                CurvePoint { buckets: 1, bytes: 4, error: 100.0 },
                CurvePoint { buckets: 4, bytes: 21, error: 5.0 },
            ],
            vec![
                CurvePoint { buckets: 1, bytes: 4, error: 60.0 },
                CurvePoint { buckets: 2, bytes: 9, error: 30.0 },
                CurvePoint { buckets: 4, bytes: 19, error: 1.0 },
            ],
        ];
        let picks = optimal_dp(&curves, 25).unwrap();
        let err: f64 = picks.iter().map(|p| p.error).sum();
        // Budget 25: {21, 4} → 65; {4, 19} → 101; {4, 9}.. wait {100+30}=130;
        // optimum is funding clique 0 fully: 5 + 60 = 65.
        assert!((err - 65.0).abs() < 1e-9, "got {err}");
    }

    #[test]
    fn apply_allocation_reaches_targets() {
        let rel = relation();
        let mut builders = mhist_builders(&rel);
        let curves: Vec<Vec<CurvePoint>> = {
            let mut clones = mhist_builders(&rel);
            clones.iter_mut().map(|b| error_curve(b, 300)).collect()
        };
        let picks = optimal_dp(&curves, 300).unwrap();
        apply_allocation(&mut builders, &picks);
        for (b, p) in builders.iter().zip(&picks) {
            assert_eq!(b.bucket_count(), p.buckets);
        }
    }

    #[test]
    fn greedy_works_for_ind_baseline_builders() {
        // The IND baseline funds one-dimensional histograms through the
        // same allocator (paper §4.1).
        let rel = relation();
        let joint = rel.distribution();
        let mut builders: Vec<OneDimCliqueBuilder> = (0..3u16)
            .map(|a| OneDimCliqueBuilder::start(&joint, a, SplitCriterion::MaxDiff).unwrap())
            .collect();
        let report = incremental_gains(&mut builders, 200).unwrap();
        assert!(report.bytes_used <= 200);
        assert_eq!(report.buckets.len(), 3);
        assert!(report.buckets.iter().all(|&b| b >= 1));
    }
}
