//! A common interface for selectivity estimators.
//!
//! The paper's evaluation compares four estimators — `DB₁`, `DB₂`,
//! `MHIST`, and `IND` (plus random sampling, which it dismisses) — on the
//! same workloads. [`SelectivityEstimator`] is what the experiment harness
//! in `dbhist-bench` (and any downstream query optimizer) programs
//! against.

use dbhist_distribution::AttrId;

use crate::builder::BuildTrace;
use crate::plan::QueryTrace;

/// An object that can estimate the result size of a conjunctive
/// range-selection predicate.
pub trait SelectivityEstimator {
    /// Estimated number of tuples satisfying every `(attr, lo, hi)`
    /// inclusive range. An empty predicate estimates the table size `N`.
    fn estimate(&self, ranges: &[(AttrId, u32, u32)]) -> f64;

    /// Bytes of synopsis storage consumed (paper §4.1 accounting).
    fn storage_bytes(&self) -> usize;

    /// A short display name (e.g. `"DB2"`, `"MHIST"`, `"IND"`).
    fn name(&self) -> &str;

    /// Cumulative operation/cache counters of the estimator's query
    /// engine, when it has one. Baselines without a junction-tree engine
    /// return `None` (the default).
    fn query_trace(&self) -> Option<QueryTrace> {
        None
    }

    /// Per-phase construction instrumentation, when the estimator records
    /// it. Baselines built outside the instrumented pipeline return
    /// `None` (the default).
    fn build_trace(&self) -> Option<BuildTrace> {
        None
    }
}
