//! A common interface for selectivity estimators.
//!
//! The paper's evaluation compares four estimators — `DB₁`, `DB₂`,
//! `MHIST`, and `IND` (plus random sampling, which it dismisses) — on the
//! same workloads. [`SelectivityEstimator`] is what the experiment harness
//! in `dbhist-bench` (and any downstream query optimizer) programs
//! against.

use crate::builder::BuildTrace;
use crate::plan::QueryTrace;
use crate::query::Query;

/// An object that can estimate the result size of a conjunctive
/// range-selection predicate.
///
/// Queries arrive as typed [`Query`] values (see [`crate::query`]); raw
/// `(attr, lo, hi)` triples convert losslessly via
/// `Query::from(&ranges[..])`.
pub trait SelectivityEstimator {
    /// Estimated number of tuples satisfying every predicate of `query`.
    /// The unconstrained query estimates the table size `N`.
    fn estimate(&self, query: &Query) -> f64;

    /// Bytes of synopsis storage consumed (paper §4.1 accounting).
    fn storage_bytes(&self) -> usize;

    /// A short display name (e.g. `"DB2"`, `"MHIST"`, `"IND"`).
    fn name(&self) -> &str;

    /// Cumulative operation/cache counters of the estimator's query
    /// engine, when it has one. Baselines without a junction-tree engine
    /// return `None` (the default).
    ///
    /// Reading is **non-destructive**: the snapshot is a copy, the
    /// underlying counters keep accumulating, and repeated calls between
    /// queries observe monotonically non-decreasing values until
    /// [`SelectivityEstimator::reset_trace`] zeroes them.
    fn query_trace(&self) -> Option<QueryTrace> {
        None
    }

    /// Zeroes the counters behind
    /// [`SelectivityEstimator::query_trace`]. A no-op (the default) for
    /// estimators without an instrumented engine. Only the estimator's
    /// own counters are affected; the process-wide telemetry registry is
    /// left untouched.
    fn reset_trace(&self) {}

    /// Per-phase construction instrumentation, when the estimator records
    /// it. Baselines built outside the instrumented pipeline return
    /// `None` (the default).
    fn build_trace(&self) -> Option<BuildTrace> {
        None
    }

    /// Feeds an observed (actual) result cardinality for `query` back to
    /// the estimator so it can track its own accuracy drift. Estimators
    /// without a drift monitor ignore the call (the default).
    fn record_feedback(&self, _query: &Query, _actual: f64) {}

    /// Worst per-clique rolling mean absolute relative error observed via
    /// [`SelectivityEstimator::record_feedback`], when the estimator
    /// tracks one. `None` (the default) when drift is not monitored;
    /// `Some(0.0)` before any feedback arrives.
    fn feedback_drift(&self) -> Option<f64> {
        None
    }
}
