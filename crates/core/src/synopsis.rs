//! The DEPENDENCY-BASED histogram synopsis (paper Definition 2.1).
//!
//! [`DbHistogram`] couples a decomposable model `M` (discovered by forward
//! selection) with one clique factor per generator of `M`. Construction
//! (paper §3.1–3.2) proceeds in three phases:
//!
//! 1. **Model selection** — [`dbhist_model::selection::ForwardSelector`]
//!    with the configured heuristic (`DB₁`/`DB₂`), `k_max`, and `θ`.
//! 2. **Clique-histogram construction under a byte budget** — incremental
//!    builders over each generator marginal, funded by
//!    [`crate::alloc::incremental_gains`] or the optimal DP.
//! 3. **Assembly** — the junction tree plus finished histograms.
//!
//! Estimation (paper §3.3) goes through a per-synopsis
//! [`QueryEngine`]: the Fig. 3 recursion is compiled once per query
//! *shape* into a [`crate::plan::MarginalPlan`]/[`crate::plan::MassPlan`]
//! (memoized in a bounded LRU), then executed with zero-clone `Cow`
//! operand passing. Repeated workloads pay compilation once; an optional
//! marginal cache ([`DbHistogram::enable_marginal_cache`]) additionally
//! memoizes materialized group marginals. [`DbHistogram::query_trace`]
//! exposes the engine's cumulative operation counters.

use std::time::Duration;

use dbhist_distribution::{AttrSet, Distribution, Relation};
use dbhist_histogram::{GridHistogram, SplitCriterion, SplitTree};
use dbhist_model::selection::{ForwardSelector, SelectionConfig, SelectionResult};
use dbhist_model::DecomposableModel;
use dbhist_telemetry::span::SpanRecord;
use dbhist_telemetry::{DriftMonitor, SpanCollector};
use rayon::prelude::*;

use crate::alloc::{
    apply_allocation_parallel, error_curves_parallel, incremental_gains_parallel, optimal_dp,
    with_pool,
};
use crate::build::{GridCliqueBuilder, IncrementalBuilder, MhistCliqueBuilder};
use crate::builder::BuildTrace;
use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::explain::{ExplainRecorder, ExplainReport};
use crate::factor::{ExactFactor, Factor};
use crate::plan::{QueryEngine, QueryTrace};
use crate::query::Query;

/// How the storage budget is distributed across clique histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationStrategy {
    /// The paper's Fig. 2 greedy (default; optimal under diminishing
    /// returns and what the experiments use).
    #[default]
    IncrementalGains,
    /// The exact pseudo-polynomial dynamic program.
    OptimalDp,
}

/// Default work-size floor for parallel clique-histogram construction
/// and assembly (see [`DbConfig::parallel_clique_floor`]): builds with
/// fewer cliques run those phases serially regardless of the configured
/// thread count.
pub const MIN_PARALLEL_CLIQUES: usize = 8;

/// Configuration for building a [`DbHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct DbConfig {
    /// Total storage budget in bytes for the clique-histogram collection.
    pub budget_bytes: usize,
    /// Forward-selection configuration (heuristic, `k_max`, `θ`).
    pub selection: SelectionConfig,
    /// Histogram partitioning constraint.
    pub criterion: SplitCriterion,
    /// Budget distribution strategy.
    pub allocation: AllocationStrategy,
    /// Work-size floor for parallel clique-histogram construction and
    /// assembly: builds with fewer cliques than this run those phases
    /// serially even when `selection.threads > 1` (see
    /// [`MIN_PARALLEL_CLIQUES`]). Serial and parallel are bit-identical;
    /// the floor only avoids paying thread fan-out for tiny builds.
    pub parallel_clique_floor: usize,
}

impl DbConfig {
    /// A configuration with the paper's defaults (`DB₂`, `k_max = 2`,
    /// `θ = 0.90`, MaxDiff, IncrementalGains) and the given byte budget.
    #[must_use]
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            selection: SelectionConfig::default(),
            criterion: SplitCriterion::default(),
            allocation: AllocationStrategy::default(),
            parallel_clique_floor: MIN_PARALLEL_CLIQUES,
        }
    }
}

/// Rolling-window length for per-clique feedback-drift statistics.
pub const DRIFT_WINDOW: usize = dbhist_telemetry::drift::DEFAULT_WINDOW;

/// A DEPENDENCY-BASED histogram synopsis `H = <M, C>`.
#[derive(Debug, Clone)]
pub struct DbHistogram<F: Factor> {
    model: DecomposableModel,
    factors: Vec<F>,
    bytes: usize,
    name: String,
    engine: QueryEngine<F>,
    trace: BuildTrace,
    drift: DriftMonitor,
}

impl<F: Factor> DbHistogram<F> {
    /// The interaction model `M`.
    #[must_use]
    pub fn model(&self) -> &DecomposableModel {
        &self.model
    }

    /// The clique factors `C`, aligned with `model().cliques()`.
    #[must_use]
    pub fn factors(&self) -> &[F] {
        &self.factors
    }

    /// Mutable access for incremental maintenance (crate-internal: bucket
    /// counts may move, but the factor set must stay aligned with the
    /// model's cliques). Invalidates cached materialized marginals and
    /// lowered kernels — compiled plans survive, they depend only on the
    /// model structure.
    pub(crate) fn factors_mut(&mut self) -> &mut [F] {
        self.engine.invalidate_marginals();
        &mut self.factors
    }

    /// Replaces one clique's factor wholesale (a feedback-triggered
    /// re-split installing fresh bucket boundaries). Goes through
    /// [`DbHistogram::factors_mut`], so cached materialized marginals
    /// and lowered kernels are invalidated; compiled plans survive (the
    /// model structure is unchanged). Returns `false` for an
    /// out-of-range index, leaving the synopsis untouched.
    pub(crate) fn replace_factor(&mut self, clique: usize, factor: F) -> bool {
        match self.factors_mut().get_mut(clique) {
            Some(slot) => {
                *slot = factor;
                true
            }
            None => false,
        }
    }

    /// The plan-based query engine answering this synopsis's queries.
    #[must_use]
    pub fn engine(&self) -> &QueryEngine<F> {
        &self.engine
    }

    /// Enables the engine's materialized-marginal LRU: repeated query
    /// shapes skip factor algebra entirely. Worth it for workloads that
    /// hammer a few attribute subsets; off by default because cached
    /// marginals cost memory beyond the synopsis budget.
    pub fn enable_marginal_cache(&self, capacity: usize) {
        self.engine.enable_marginal_cache(capacity);
    }

    /// Snapshot of the engine's cumulative operation and cache counters.
    ///
    /// Non-destructive and lock-free: the engine's counters keep
    /// accumulating across calls until [`DbHistogram::reset_query_trace`]
    /// zeroes them.
    #[must_use]
    pub fn query_trace(&self) -> QueryTrace {
        self.engine.trace()
    }

    /// Per-phase construction instrumentation recorded when this synopsis
    /// was built (all-zero for synopses assembled from externally
    /// provided factors, e.g. [`DbHistogram::exact_for_model`]).
    #[must_use]
    pub fn build_trace(&self) -> BuildTrace {
        self.trace.clone()
    }

    pub(crate) fn set_trace(&mut self, trace: BuildTrace) {
        self.trace = trace;
    }

    /// Resets the engine's cumulative counters to zero.
    pub fn reset_query_trace(&self) {
        self.engine.reset_trace();
    }

    /// Estimates the marginal factor over an arbitrary attribute subset
    /// (paper §3.3.1), through the plan cache.
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures and rejects attributes the
    /// model does not cover.
    pub fn marginal(&self, attrs: &AttrSet) -> Result<F, SynopsisError> {
        self.engine.marginal(self.model.junction_tree(), &self.factors, attrs)
    }

    /// Estimates the selectivity of a conjunctive range predicate,
    /// returning an error instead of panicking on structural failures.
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures.
    pub fn try_estimate(&self, query: &Query) -> Result<f64, SynopsisError> {
        let attrs = AttrSet::from_ids(
            query
                .ranges()
                .iter()
                .map(|&(a, _, _)| a)
                .filter(|&a| usize::from(a) < self.model.schema().arity()),
        );
        if attrs.is_empty() {
            // No constrained attribute: the estimate is the table size.
            return Ok(self.factors.first().map_or(0.0, Factor::total));
        }
        self.engine.estimate_mass(self.model.junction_tree(), &self.factors, &attrs, query)
    }

    /// [`DbHistogram::try_estimate`] plus a per-query [`ExplainReport`]
    /// describing how the engine resolved it. The estimate is
    /// bit-identical to the unexplained call (probes only observe; see
    /// [`crate::explain`]).
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures.
    pub fn try_estimate_explained(
        &self,
        query: &Query,
    ) -> Result<(f64, ExplainReport), SynopsisError> {
        let attrs = AttrSet::from_ids(
            query
                .ranges()
                .iter()
                .map(|&(a, _, _)| a)
                .filter(|&a| usize::from(a) < self.model.schema().arity()),
        );
        if attrs.is_empty() {
            // No constrained attribute: the estimate is the table size and
            // no engine machinery runs — the report says exactly that.
            let estimate = self.factors.first().map_or(0.0, Factor::total);
            let recorder = ExplainRecorder::new(&attrs);
            return Ok((estimate, recorder.finish(estimate, 0)));
        }
        self.engine.estimate_mass_explained(
            self.model.junction_tree(),
            &self.factors,
            &attrs,
            query,
        )
    }

    /// Feeds an observed cardinality back into the synopsis's
    /// accuracy-drift monitor: the query is re-estimated, the absolute
    /// relative error `|estimate − actual| / actual` is computed (via
    /// [`dbhist_data::metrics::relative_error`]), and the observation is
    /// attributed to the cliques whose factors the query's compiled plan
    /// actually loads ([`QueryEngine::loaded_cliques`]) — blame lands on
    /// the factors that produced the estimate, so feedback-driven
    /// re-splitting ([`crate::ingest::IngestSession::tune`]) targets a
    /// clique whose boundaries the failing queries actually consult.
    ///
    /// Non-positive or non-finite `actual` values are ignored (relative
    /// error is undefined at zero), as are queries the synopsis cannot
    /// estimate.
    pub fn record_feedback(&self, query: &Query, actual: f64) {
        if actual <= 0.0 || !actual.is_finite() {
            return;
        }
        let Ok(est) = self.try_estimate(query) else { return };
        let err = dbhist_data::metrics::relative_error(est, actual);
        let attrs = AttrSet::from_ids(
            query
                .ranges()
                .iter()
                .map(|&(a, _, _)| a)
                .filter(|&a| usize::from(a) < self.model.schema().arity()),
        );
        if !attrs.is_empty() {
            match self.engine.loaded_cliques(self.model.junction_tree(), &attrs) {
                Ok(cliques) => {
                    for i in cliques {
                        self.drift.record(i, err);
                    }
                }
                // `try_estimate` succeeded, so the plan compiles; this
                // arm is unreachable in practice, but attr-overlap
                // attribution keeps the observation from vanishing if a
                // future planner rejects a target the estimator accepts.
                Err(_) => {
                    for (i, clique) in self.model.cliques().iter().enumerate() {
                        if !clique.is_disjoint(&attrs) {
                            self.drift.record(i, err);
                        }
                    }
                }
            }
        }
        if dbhist_telemetry::enabled() {
            dbhist_telemetry::wellknown::wellknown().estimator_feedback.increment();
        }
    }

    /// The per-clique accuracy-drift monitor fed by
    /// [`DbHistogram::record_feedback`].
    #[must_use]
    pub fn drift_monitor(&self) -> &DriftMonitor {
        &self.drift
    }

    fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Reassembles a synopsis from snapshot-loaded parts. Mirrors the
    /// tail of `build_for_model`: the query engine's `RootedViews` and
    /// plan cache start empty and fill lazily, exactly as after a fresh
    /// build, and the build trace is all-zero (nothing was built). The
    /// caller (the snapshot loader) has already validated that `factors`
    /// aligns one-to-one with the model's cliques.
    pub(crate) fn from_loaded_parts(
        model: DecomposableModel,
        factors: Vec<F>,
        bytes: usize,
        name: String,
    ) -> Self {
        let engine = QueryEngine::new(model.junction_tree());
        let drift = DriftMonitor::new(model.cliques().len(), DRIFT_WINDOW);
        Self { model, factors, bytes, name, engine, trace: BuildTrace::default(), drift }
    }
}

impl<F: Factor> SelectivityEstimator for DbHistogram<F> {
    fn estimate(&self, query: &Query) -> f64 {
        // The trait signature is infallible; a failure here means the
        // synopsis is structurally corrupt, and aborting beats silently
        // returning garbage estimates. Fallible callers should prefer
        // `try_estimate`.
        #[allow(clippy::expect_used)]
        self.try_estimate(query)
            // lint:allow-next-line(panic-surface): infallible trait contract; corrupt synopsis must not yield silent garbage
            .expect("DB-histogram estimation failed on a structurally valid synopsis")
    }

    fn storage_bytes(&self) -> usize {
        self.bytes
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn query_trace(&self) -> Option<QueryTrace> {
        Some(self.engine.trace())
    }

    fn reset_trace(&self) {
        self.reset_query_trace();
    }

    fn build_trace(&self) -> Option<BuildTrace> {
        Some(self.trace.clone())
    }

    fn record_feedback(&self, query: &Query, actual: f64) {
        DbHistogram::record_feedback(self, query, actual);
    }

    fn feedback_drift(&self) -> Option<f64> {
        Some(self.drift.max_drift())
    }
}

/// Starts one incremental builder per model clique, computing the clique
/// marginals concurrently when `threads > 1` and the model has at least
/// `clique_floor` cliques (each marginal is a pure projection of the
/// relation, so results are identical to the serial loop; errors surface
/// in clique order either way). Below the floor the serial loop wins:
/// projecting a handful of small marginals is microseconds of work,
/// while spinning a pool and distributing chunks is not
/// (`BENCH_build.json` measured 0.91x at 4 threads on a 5-clique build
/// before the floor existed).
fn start_builders<B>(
    relation: &Relation,
    model: &DecomposableModel,
    threads: usize,
    clique_floor: usize,
    start: &(impl Fn(&Distribution) -> Result<B, SynopsisError> + Sync),
) -> Result<Vec<B>, SynopsisError>
where
    B: Send,
{
    let cliques = model.cliques();
    if threads <= 1 || cliques.len() < clique_floor.max(2) {
        return cliques
            .iter()
            .map(|c| {
                let marginal = relation.marginal(c)?;
                start(&marginal)
            })
            .collect();
    }
    let started: Vec<Result<B, SynopsisError>> = with_pool(threads, || {
        cliques
            .par_iter()
            .map(|c| relation.marginal(c).map_err(SynopsisError::from).and_then(|m| start(&m)))
            .collect()
    });
    started.into_iter().collect()
}

/// Shared construction pipeline: select a model, then build the clique
/// histograms within the budget using `start` to create each builder and
/// `finish` to materialize it. The worker-thread count comes from
/// `config.selection.threads` and governs every phase; the result is
/// bit-identical across thread counts. Phase wall times and task counts
/// are recorded on the returned synopsis's [`BuildTrace`].
fn build_generic<B, F>(
    relation: &Relation,
    config: &DbConfig,
    start: impl Fn(&Distribution) -> Result<B, SynopsisError> + Sync,
) -> Result<(DbHistogram<F>, SelectionResult), SynopsisError>
where
    B: IncrementalBuilder<Histogram = F> + Clone + Send + Sync,
    F: Factor + Send,
{
    config.selection.validate()?;
    // Phase wall times are derived from the span stream rather than
    // hand-threaded `Instant` pairs: a thread-local collector captures
    // every span this thread emits, and the `BuildTrace` is assembled
    // from the records afterwards.
    let collector = SpanCollector::install();
    let selection = {
        let _span = dbhist_telemetry::span!("dbhist_build_selection_latency_us");
        ForwardSelector::new(relation, config.selection).run()
    };
    let selection_time = span_total(&collector.finish(), "dbhist_build_selection_latency_us");
    let mut synopsis = build_for_model(relation, selection.model.clone(), config, start)?;
    let mut trace = synopsis.build_trace();
    trace.selection = selection_time;
    trace.total = selection_time + trace.total;
    trace.selection_steps = selection.steps.len();
    trace.peak_candidates = selection.peak_candidates;
    trace.entropy_computations = selection.entropy_computations;
    synopsis.set_trace(trace);
    Ok((synopsis, selection))
}

/// Sums the durations of every collected span named `name`.
fn span_total(records: &[SpanRecord], name: &str) -> Duration {
    records.iter().filter(|r| r.name == name).map(|r| r.duration).sum()
}

/// Builds the clique-histogram collection for an already-selected model.
fn build_for_model<B, F>(
    relation: &Relation,
    model: DecomposableModel,
    config: &DbConfig,
    start: impl Fn(&Distribution) -> Result<B, SynopsisError> + Sync,
) -> Result<DbHistogram<F>, SynopsisError>
where
    B: IncrementalBuilder<Histogram = F> + Clone + Send + Sync,
    F: Factor + Send,
{
    let threads = config.selection.threads.max(1);
    let clique_floor = config.parallel_clique_floor;
    let collector = SpanCollector::install();

    let mut builders: Vec<B> = {
        let _span = dbhist_telemetry::span!("dbhist_build_construction_latency_us");
        start_builders(relation, &model, threads, clique_floor, &start)?
    };

    let splits_funded = {
        let _span = dbhist_telemetry::span!("dbhist_build_allocation_latency_us");
        match config.allocation {
            AllocationStrategy::IncrementalGains => {
                incremental_gains_parallel(&mut builders, config.budget_bytes, threads)?.splits
            }
            AllocationStrategy::OptimalDp => {
                // Measuring the error curves drives the builders to
                // saturation; fresh builders are created below for the
                // actual allocation.
                let curves = error_curves_parallel(&mut builders, config.budget_bytes, threads);
                builders = start_builders(relation, &model, threads, clique_floor, &start)?;
                let picks = optimal_dp(&curves, config.budget_bytes)?;
                apply_allocation_parallel(&mut builders, &picks, threads);
                picks.iter().map(|p| p.buckets.saturating_sub(1)).sum()
            }
        }
    };

    let (bytes, factors, engine): (usize, Vec<F>, QueryEngine<F>) = {
        let _span = dbhist_telemetry::span!("dbhist_build_assembly_latency_us");
        let bytes = builders.iter().map(IncrementalBuilder::storage_bytes).sum();
        // Same work-size floor as construction: finishing a few small
        // builders serially beats paying pool fan-out for them.
        let factors: Vec<F> = if threads <= 1 || builders.len() < clique_floor.max(2) {
            builders.iter().map(IncrementalBuilder::finish).collect()
        } else {
            with_pool(threads, || builders.par_iter().map(IncrementalBuilder::finish).collect())
        };
        let engine = QueryEngine::new(model.junction_tree());
        (bytes, factors, engine)
    };

    let records = collector.finish();
    let construction = span_total(&records, "dbhist_build_construction_latency_us");
    let allocation = span_total(&records, "dbhist_build_allocation_latency_us");
    let assembly = span_total(&records, "dbhist_build_assembly_latency_us");

    if dbhist_telemetry::enabled() {
        let w = dbhist_telemetry::wellknown::wellknown();
        w.build_builds.increment();
        w.build_splits_funded.add(u64::try_from(splits_funded).unwrap_or(u64::MAX));
    }

    let trace = BuildTrace {
        threads,
        construction,
        allocation,
        assembly,
        total: construction + allocation + assembly,
        cliques: factors.len(),
        splits_funded,
        ..BuildTrace::default()
    };
    let drift = DriftMonitor::new(model.cliques().len(), DRIFT_WINDOW);
    Ok(DbHistogram { model, factors, bytes, name: "DB".into(), engine, trace, drift })
}

/// Internal entry for MHIST synopses; [`crate::builder::SynopsisBuilder`]
/// and incremental maintenance funnel through here.
pub(crate) fn build_mhist_pipeline(
    relation: &Relation,
    config: &DbConfig,
) -> Result<DbHistogram<SplitTree>, SynopsisError> {
    let (mut synopsis, _selection) = build_generic(relation, config, |marginal| {
        MhistCliqueBuilder::start(marginal, config.criterion)
    })?;
    synopsis.set_name(match config.selection.heuristic {
        dbhist_model::selection::EdgeHeuristic::Db1 => "DB1",
        dbhist_model::selection::EdgeHeuristic::Db2 => "DB2",
    });
    Ok(synopsis)
}

/// Internal entry for grid synopses.
pub(crate) fn build_grid_pipeline(
    relation: &Relation,
    config: &DbConfig,
) -> Result<DbHistogram<GridHistogram>, SynopsisError> {
    let (mut synopsis, _) = build_generic(relation, config, |marginal| {
        GridCliqueBuilder::start(marginal, config.criterion)
    })?;
    synopsis.set_name("DB-grid");
    Ok(synopsis)
}

/// Internal entry for wavelet synopses.
pub(crate) fn build_wavelet_pipeline(
    relation: &Relation,
    config: &DbConfig,
) -> Result<DbHistogram<crate::wavelet_factor::WaveletFactor>, SynopsisError> {
    let (mut synopsis, _) = build_generic(relation, config, |marginal| {
        crate::wavelet_factor::WaveletCliqueBuilder::start(marginal)
    })?;
    synopsis.set_name("DB-wavelet");
    Ok(synopsis)
}

impl DbHistogram<SplitTree> {
    /// Builds MHIST clique histograms for an externally selected model
    /// (used by experiments that sweep model complexity).
    ///
    /// # Errors
    ///
    /// Fails on impossible budgets or degenerate inputs.
    pub fn for_model(
        relation: &Relation,
        model: DecomposableModel,
        config: DbConfig,
    ) -> Result<Self, SynopsisError> {
        build_for_model(relation, model, &config, |marginal| {
            MhistCliqueBuilder::start(marginal, config.criterion)
        })
    }
}

impl DbHistogram<ExactFactor> {
    /// Pairs an externally selected model with *exact* clique marginals —
    /// "clique histograms with an unlimited number of buckets" — so that
    /// query error reflects the model alone (the paper's Fig. 6 setup).
    ///
    /// # Errors
    ///
    /// Propagates marginal-computation failures.
    pub fn exact_for_model(
        relation: &Relation,
        model: DecomposableModel,
    ) -> Result<Self, SynopsisError> {
        let factors: Vec<ExactFactor> = model
            .cliques()
            .iter()
            .map(|c| relation.marginal(c).map(ExactFactor))
            .collect::<Result<_, _>>()?;
        // Storage accounting for exact marginals: 4 bytes per stored value
        // plus 4 per frequency (informational only; Fig. 6 ignores space).
        let bytes = factors.iter().map(|f| f.0.support_size() * 4 * (f.0.attrs().len() + 1)).sum();
        let engine = QueryEngine::new(model.junction_tree());
        let drift = DriftMonitor::new(model.cliques().len(), DRIFT_WINDOW);
        Ok(DbHistogram {
            model,
            factors,
            bytes,
            name: "DB-exact".into(),
            engine,
            trace: BuildTrace::default(),
            drift,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SynopsisBuilder;
    use dbhist_model::selection::EdgeHeuristic;

    /// a == b (8 values), c independent; N = 4096.
    fn relation() -> Relation {
        let schema = dbhist_distribution::Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..4096u32).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn build_discovers_model_and_respects_budget() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(300).threads(1).build_mhist().unwrap();
        assert!(db.storage_bytes() <= 300);
        assert!(db.model().graph().has_edge(0, 1));
        assert_eq!(db.model().edge_count(), 1);
        assert_eq!(db.factors().len(), db.model().cliques().len());
        assert_eq!(db.name(), "DB2");
    }

    #[test]
    fn estimates_correlated_pair_well() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_mhist().unwrap();
        // The model captures a == b. Point queries on a perfectly uniform
        // diagonal are MHIST's worst case (intra-bucket uniformity spreads
        // mass over the box), so — like the paper — we evaluate range
        // queries, where the spreading averages out.
        let q = Query::range(0, 0, 3).and(1, 0, 3);
        let est = db.estimate(&q);
        let exact = rel.count_range(q.ranges()) as f64;
        assert!(exact > 0.0);
        assert!((est - exact).abs() / exact < 0.6, "est {est} vs exact {exact}");
        // Cross-clique query (a with c) goes through the junction tree.
        let q = Query::range(0, 0, 3).eq(2, 1);
        let est = db.estimate(&q);
        let exact = rel.count_range(q.ranges()) as f64;
        assert!((est - exact).abs() / exact < 0.5, "est {est} vs exact {exact}");
    }

    #[test]
    fn empty_predicate_estimates_table_size() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(300).threads(1).build_mhist().unwrap();
        assert!((db.estimate(&Query::all()) - 4096.0).abs() < 1e-6);
        // Unknown attributes are ignored, falling back to N.
        assert!((db.estimate(&Query::range(99, 0, 1)) - 4096.0).abs() < 1e-6);
    }

    #[test]
    fn db1_heuristic_and_dp_allocation() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel)
            .budget(300)
            .threads(1)
            .heuristic(EdgeHeuristic::Db1)
            .allocation(AllocationStrategy::OptimalDp)
            .build_mhist()
            .unwrap();
        assert_eq!(db.name(), "DB1");
        assert!(db.storage_bytes() <= 300);
        assert!(db.model().graph().has_edge(0, 1));
    }

    #[test]
    fn grid_variant_builds_and_estimates() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(300).threads(1).build_grid().unwrap();
        assert!(db.storage_bytes() <= 300);
        let est = db.estimate(&Query::range(2, 0, 1));
        let exact = rel.count_range(&[(2, 0, 1)]) as f64;
        assert!((est - exact).abs() / exact < 0.3);
    }

    #[test]
    fn exact_factors_reproduce_model_estimates() {
        let rel = relation();
        let model = {
            let g = dbhist_model::MarkovGraph::from_edges(3, [(0, 1)]).unwrap();
            DecomposableModel::new(rel.schema().clone(), g).unwrap()
        };
        let db = DbHistogram::exact_for_model(&rel, model).unwrap();
        // The model [ab][c] is the true structure, so every query is exact.
        for ranges in [
            vec![(0u16, 1u32, 3u32)],
            vec![(0, 2, 2), (1, 2, 2)],
            vec![(0, 0, 3), (2, 1, 1)],
            vec![(1, 4, 7), (2, 0, 2)],
        ] {
            let est = db.estimate(&Query::from(ranges.clone()));
            let exact = rel.count_range(&ranges) as f64;
            assert!((est - exact).abs() < 1e-6 * (1.0 + exact), "{ranges:?}: {est} vs {exact}");
        }
    }

    #[test]
    fn wavelet_variant_builds_and_estimates() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_wavelet().unwrap();
        assert!(db.storage_bytes() <= 400);
        assert_eq!(db.name(), "DB-wavelet");
        assert!(db.model().graph().has_edge(0, 1));
        let q = Query::range(0, 0, 3).eq(2, 1);
        let est = db.estimate(&q);
        let exact = rel.count_range(q.ranges()) as f64;
        assert!((est - exact).abs() / exact < 0.5, "est {est} vs exact {exact}");
    }

    #[test]
    fn repeated_workload_rides_the_kernel_without_clones() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_mhist().unwrap();
        db.reset_query_trace();
        // Eight queries, one attribute-set shape {a, b} — a single clique
        // of the discovered model. The first compiles a plan and lowers a
        // kernel; the rest skip plans and factors entirely. No query
        // clones a stored factor.
        for i in 0..8u32 {
            db.try_estimate(&Query::range(0, 0, 3).and(1, i % 8, 7)).unwrap();
        }
        let t = db.query_trace();
        assert_eq!(t.plan_cache_misses, 1, "{t:?}");
        assert_eq!(t.kernel_hits, 7, "repeats must ride the lowered kernel: {t:?}");
        assert!(t.kernel_lowered_dense + t.kernel_lowered_sparse >= 1, "{t:?}");
        assert_eq!(t.factor_clones, 0, "estimation must not clone stored factors: {t:?}");
        assert!(t.clique_loads >= 1);
        db.reset_query_trace();
        assert_eq!(db.query_trace(), crate::plan::QueryTrace::default());
        // The estimator trait exposes the same counters.
        assert_eq!(db.query_trace(), SelectivityEstimator::query_trace(&db).unwrap());
    }

    #[test]
    fn budget_too_small_is_an_error() {
        let rel = relation();
        assert!(matches!(
            SynopsisBuilder::new(&rel).budget(8).build_mhist(),
            Err(SynopsisError::Budget { .. })
        ));
    }

    #[test]
    fn bigger_budget_no_worse_on_average() {
        let rel = relation();
        let queries: Vec<Vec<(u16, u32, u32)>> =
            (0..16).map(|i| vec![(0u16, i % 8, i % 8), (2, i % 4, i % 4)]).collect();
        let mut errors = Vec::new();
        for budget in [200usize, 800] {
            let db = SynopsisBuilder::new(&rel).budget(budget).threads(1).build_mhist().unwrap();
            let mean: f64 = queries
                .iter()
                .map(|q| {
                    let exact = rel.count_range(q) as f64;
                    let est = db.estimate(&Query::from(q.as_slice()));
                    if exact > 0.0 {
                        (est - exact).abs() / exact
                    } else {
                        est
                    }
                })
                .sum::<f64>()
                / queries.len() as f64;
            errors.push(mean);
        }
        assert!(errors[1] <= errors[0] + 0.05, "{errors:?}");
    }
}
