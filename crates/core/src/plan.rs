//! The plan-based query engine: compile `ComputeMarginal` once, execute
//! it many times.
//!
//! The paper's `ComputeMarginal` (§3.3.1, Fig. 3) is a recursion over the
//! junction tree whose *structure* depends only on the tree and the query
//! attribute set — never on the factor contents. A steady-state
//! selectivity workload repeats the same attribute subsets endlessly, so
//! re-walking the recursion (re-rooting the tree, re-deriving covers,
//! re-testing subset relations) per query is pure overhead. This module
//! splits the work into three layers:
//!
//! 1. **Planner** — [`MarginalPlan::compile`] runs the Fig. 3 recursion
//!    once and records it as a linear program of [`PlanStep`]s over a
//!    small operand stack; [`MassPlan::compile`] additionally performs
//!    the independent-component factorization of the selectivity fast
//!    path. Rooted views come from a per-synopsis
//!    [`dbhist_model::RootedViews`] cache, so covers/children are derived
//!    once per synopsis instead of once per query.
//! 2. **Executor** — [`execute_marginal`] runs a plan over any
//!    [`Factor`] slice with [`Cow`]-based operands: clique loads and
//!    identity projections *borrow* the stored factors (zero clones);
//!    only genuine products and projections materialize new factors.
//! 3. **Workload cache** — [`QueryEngine`] memoizes compiled plans in a
//!    bounded [`LruCache`] keyed by canonical [`AttrSet`] and, when
//!    enabled, caches materialized group marginals so repeated query
//!    shapes skip execution entirely. Every operation is counted in a
//!    [`QueryTrace`] for tests, benches, and production introspection.
//! 4. **Lowered kernels** — for factor representations with a
//!    bit-identical lowering ([`Factor::lower_index`]), the first
//!    execution of a mass-plan shape lowers each group's loose marginal
//!    into a flattened [`MassKernel`](crate::kernel::MassKernel); every
//!    subsequent query with that shape skips plan execution *and*
//!    `mass_in_box` tree recursion, answering from two flat arrays with
//!    pooled scratch ([`crate::scratch`]) — no per-query allocation.
//!
//! Planned execution is *operation-identical* to the recursive
//! interpreter ([`crate::marginal::compute_marginal_interpreted`]): the
//! same products, projections, and shed decisions run in the same order
//! on the same operands, so results match bit-for-bit (property-tested in
//! `tests/plan_equivalence.rs`).

use std::borrow::Cow;
use std::sync::Arc;
use std::time::Instant;

use dbhist_distribution::AttrSet;
use dbhist_histogram::{IndexLayout, TreeIndex};
use dbhist_model::junction::{RootedJunctionTree, RootedViews};
use dbhist_model::JunctionTree;
use dbhist_telemetry::registry::Counter;
use dbhist_telemetry::wellknown::wellknown;

use crate::error::SynopsisError;
use crate::explain::{
    ExplainProbe, ExplainRecorder, ExplainReport, NoProbe, QueryPath, ShedSkip, StepKind,
};
use crate::factor::Factor;
use crate::kernel::MassKernel;
use crate::query::Query;
use crate::scratch::ScratchPool;
pub use crate::sharded::LruCache;
use crate::sharded::ShardedLru;

/// Intermediate factors larger than this skip "tidying" (shed)
/// projections: carrying a few extra attributes through `mass_in_box` is
/// linear in the factor size, while the projection overlay can be
/// quadratic.
pub const SHED_LIMIT: usize = 2048;

/// Default capacity of a [`QueryEngine`]'s plan cache (distinct query
/// attribute-set shapes retained).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Operation counters for the plan-based query path.
///
/// Grows the old `MarginalStats` pair into a full engine trace: per-step
/// execution counts plus plan-cache and marginal-cache hit/miss counters.
/// Counters are cumulative where the engine accumulates them (see
/// [`QueryEngine::trace`]) and per-call where an executor fills a fresh
/// one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Factor multiplications performed.
    pub products: usize,
    /// Proper (non-identity) projections performed.
    pub projections: usize,
    /// Identity projections resolved as zero-clone borrows.
    pub identity_projections: usize,
    /// Shed (tidying) projections applied.
    pub sheds: usize,
    /// Shed steps skipped (factor too large, already tidy, or nothing to
    /// keep).
    pub sheds_skipped: usize,
    /// Clique factors loaded by borrow (never cloned).
    pub clique_loads: usize,
    /// Whole-factor clones performed (materializing a borrowed result or
    /// seeding the marginal cache). Pure estimation never clones.
    pub factor_clones: usize,
    /// Queries answered with an already-compiled plan.
    pub plan_cache_hits: usize,
    /// Queries that had to compile a fresh plan.
    pub plan_cache_misses: usize,
    /// Group marginals served from the materialized-marginal cache.
    pub marginal_cache_hits: usize,
    /// Group marginals executed and (when enabled) inserted into the
    /// cache.
    pub marginal_cache_misses: usize,
    /// Queries answered entirely by a lowered [`crate::kernel::MassKernel`]
    /// (no plan execution, no tree recursion).
    pub kernel_hits: usize,
    /// Group marginals lowered into dense flat indices.
    pub kernel_lowered_dense: usize,
    /// Group marginals lowered into sparse (zero-subtree-collapsed) flat
    /// indices.
    pub kernel_lowered_sparse: usize,
    /// Mass-plan executions that could not lower every group (factor
    /// representation has no bit-identical lowering); the engine keeps
    /// executing those plans directly.
    pub kernel_fallbacks: usize,
}

impl QueryTrace {
    /// Adds every counter of `other` into `self`.
    pub fn absorb(&mut self, other: &Self) {
        self.products += other.products;
        self.projections += other.projections;
        self.identity_projections += other.identity_projections;
        self.sheds += other.sheds;
        self.sheds_skipped += other.sheds_skipped;
        self.clique_loads += other.clique_loads;
        self.factor_clones += other.factor_clones;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.marginal_cache_hits += other.marginal_cache_hits;
        self.marginal_cache_misses += other.marginal_cache_misses;
        self.kernel_hits += other.kernel_hits;
        self.kernel_lowered_dense += other.kernel_lowered_dense;
        self.kernel_lowered_sparse += other.kernel_lowered_sparse;
        self.kernel_fallbacks += other.kernel_fallbacks;
    }
}

fn to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

fn to_usize(n: u64) -> usize {
    usize::try_from(n).unwrap_or(usize::MAX)
}

/// The engine's cumulative counters, one lock-free
/// [`Counter`] per [`QueryTrace`] field. Executors still fill a local
/// `QueryTrace` (exact, single-threaded accounting); the engine absorbs
/// it here with relaxed `fetch_add`s, so concurrent queries never
/// serialize on a trace mutex. When global telemetry is enabled
/// ([`dbhist_telemetry::set_enabled`]), every absorbed delta is mirrored
/// into the process-wide `dbhist_query_*` metrics as well.
#[derive(Debug, Default)]
struct EngineMetrics {
    products: Counter,
    projections: Counter,
    identity_projections: Counter,
    sheds: Counter,
    sheds_skipped: Counter,
    clique_loads: Counter,
    factor_clones: Counter,
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    marginal_cache_hits: Counter,
    marginal_cache_misses: Counter,
    kernel_hits: Counter,
    kernel_lowered_dense: Counter,
    kernel_lowered_sparse: Counter,
    kernel_fallbacks: Counter,
}

impl EngineMetrics {
    /// Adds a per-call trace into the cumulative counters (and mirrors it
    /// globally when telemetry is on).
    fn absorb(&self, t: &QueryTrace) {
        self.products.add(to_u64(t.products));
        self.projections.add(to_u64(t.projections));
        self.identity_projections.add(to_u64(t.identity_projections));
        self.sheds.add(to_u64(t.sheds));
        self.sheds_skipped.add(to_u64(t.sheds_skipped));
        self.clique_loads.add(to_u64(t.clique_loads));
        self.factor_clones.add(to_u64(t.factor_clones));
        self.plan_cache_hits.add(to_u64(t.plan_cache_hits));
        self.plan_cache_misses.add(to_u64(t.plan_cache_misses));
        self.marginal_cache_hits.add(to_u64(t.marginal_cache_hits));
        self.marginal_cache_misses.add(to_u64(t.marginal_cache_misses));
        self.kernel_hits.add(to_u64(t.kernel_hits));
        self.kernel_lowered_dense.add(to_u64(t.kernel_lowered_dense));
        self.kernel_lowered_sparse.add(to_u64(t.kernel_lowered_sparse));
        self.kernel_fallbacks.add(to_u64(t.kernel_fallbacks));
        if dbhist_telemetry::enabled() {
            let w = wellknown();
            w.query_products.add(to_u64(t.products));
            w.query_projections.add(to_u64(t.projections));
            w.query_identity_projections.add(to_u64(t.identity_projections));
            w.query_sheds.add(to_u64(t.sheds));
            w.query_sheds_skipped.add(to_u64(t.sheds_skipped));
            w.query_clique_loads.add(to_u64(t.clique_loads));
            w.query_factor_clones.add(to_u64(t.factor_clones));
            w.query_plan_cache_hits.add(to_u64(t.plan_cache_hits));
            w.query_plan_cache_misses.add(to_u64(t.plan_cache_misses));
            // Every plan-cache miss compiles exactly one plan.
            w.query_plans_compiled.add(to_u64(t.plan_cache_misses));
            w.query_marginal_cache_hits.add(to_u64(t.marginal_cache_hits));
            w.query_marginal_cache_misses.add(to_u64(t.marginal_cache_misses));
            w.query_kernel_hits.add(to_u64(t.kernel_hits));
            w.query_kernel_lowered_dense.add(to_u64(t.kernel_lowered_dense));
            w.query_kernel_lowered_sparse.add(to_u64(t.kernel_lowered_sparse));
            w.query_kernel_fallbacks.add(to_u64(t.kernel_fallbacks));
        }
    }

    /// Reads the counters into a [`QueryTrace`] value. Non-destructive:
    /// reading never changes the counters. Each field is individually
    /// exact; under concurrent absorption the fields may reflect
    /// different instants (no global atomic cut).
    fn snapshot(&self) -> QueryTrace {
        QueryTrace {
            products: to_usize(self.products.value()),
            projections: to_usize(self.projections.value()),
            identity_projections: to_usize(self.identity_projections.value()),
            sheds: to_usize(self.sheds.value()),
            sheds_skipped: to_usize(self.sheds_skipped.value()),
            clique_loads: to_usize(self.clique_loads.value()),
            factor_clones: to_usize(self.factor_clones.value()),
            plan_cache_hits: to_usize(self.plan_cache_hits.value()),
            plan_cache_misses: to_usize(self.plan_cache_misses.value()),
            marginal_cache_hits: to_usize(self.marginal_cache_hits.value()),
            marginal_cache_misses: to_usize(self.marginal_cache_misses.value()),
            kernel_hits: to_usize(self.kernel_hits.value()),
            kernel_lowered_dense: to_usize(self.kernel_lowered_dense.value()),
            kernel_lowered_sparse: to_usize(self.kernel_lowered_sparse.value()),
            kernel_fallbacks: to_usize(self.kernel_fallbacks.value()),
        }
    }

    fn reset(&self) {
        self.products.reset();
        self.projections.reset();
        self.identity_projections.reset();
        self.sheds.reset();
        self.sheds_skipped.reset();
        self.clique_loads.reset();
        self.factor_clones.reset();
        self.plan_cache_hits.reset();
        self.plan_cache_misses.reset();
        self.marginal_cache_hits.reset();
        self.marginal_cache_misses.reset();
        self.kernel_hits.reset();
        self.kernel_lowered_dense.reset();
        self.kernel_lowered_sparse.reset();
        self.kernel_fallbacks.reset();
    }
}

impl Clone for EngineMetrics {
    fn clone(&self) -> Self {
        let fresh = Self::default();
        let snap = self.snapshot();
        fresh.products.add(to_u64(snap.products));
        fresh.projections.add(to_u64(snap.projections));
        fresh.identity_projections.add(to_u64(snap.identity_projections));
        fresh.sheds.add(to_u64(snap.sheds));
        fresh.sheds_skipped.add(to_u64(snap.sheds_skipped));
        fresh.clique_loads.add(to_u64(snap.clique_loads));
        fresh.factor_clones.add(to_u64(snap.factor_clones));
        fresh.plan_cache_hits.add(to_u64(snap.plan_cache_hits));
        fresh.plan_cache_misses.add(to_u64(snap.plan_cache_misses));
        fresh.marginal_cache_hits.add(to_u64(snap.marginal_cache_hits));
        fresh.marginal_cache_misses.add(to_u64(snap.marginal_cache_misses));
        fresh.kernel_hits.add(to_u64(snap.kernel_hits));
        fresh.kernel_lowered_dense.add(to_u64(snap.kernel_lowered_dense));
        fresh.kernel_lowered_sparse.add(to_u64(snap.kernel_lowered_sparse));
        fresh.kernel_fallbacks.add(to_u64(snap.kernel_fallbacks));
        fresh
    }
}

/// One instruction of a compiled marginal plan, executed over an operand
/// stack of [`Cow`]-wrapped factors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanStep {
    /// Push clique `clique`'s stored factor onto the stack *by borrow*.
    Load {
        /// Index of the clique whose factor is loaded.
        clique: usize,
    },
    /// Project the top of the stack onto `attrs`. Identity projections
    /// (the operand already covers exactly `attrs`) pass the borrow
    /// through without cloning.
    Project {
        /// The projection target.
        attrs: AttrSet,
    },
    /// Pop the two topmost operands and push their product
    /// (`second.product(&top)`, preserving the interpreter's operand
    /// order).
    Product,
    /// Variable-elimination tidying: project the top of the stack onto
    /// `keep ∩ attrs` *if* the factor is small enough for the projection
    /// to pay off (see [`SHED_LIMIT`]); otherwise leave it untouched.
    Shed {
        /// Attributes the remainder of the plan still needs (computed at
        /// plan time assuming no earlier shed fired; intersected with the
        /// runtime attribute set before use).
        keep: AttrSet,
    },
}

/// A compiled `ComputeMarginal` invocation: the Fig. 3 recursion for one
/// target attribute set, flattened into a stack program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarginalPlan {
    target: AttrSet,
    root: usize,
    loose: bool,
    steps: Vec<PlanStep>,
    result_attrs: AttrSet,
}

impl MarginalPlan {
    /// Compiles the strict Fig. 3 recursion for `target`: the executed
    /// result covers exactly `target`.
    ///
    /// Rooted views are fetched from (and cached in) `views`, which must
    /// originate from `tree` (see [`JunctionTree::rooted_views`]).
    ///
    /// # Errors
    ///
    /// Rejects empty junction trees and targets with attributes no clique
    /// covers.
    pub fn compile(
        tree: &JunctionTree,
        views: &RootedViews,
        target: &AttrSet,
    ) -> Result<Self, SynopsisError> {
        // Root at the clique overlapping the target most (never hurts).
        let Some(root) = (0..tree.len())
            .max_by_key(|&i| (tree.cliques()[i].intersection(target).len(), usize::MAX - i))
        else {
            return Err(SynopsisError::Budget { reason: "empty junction tree".into() });
        };
        let rooted = views.get(tree, root);
        if let Some(missing) = target.iter().find(|&a| !rooted.cover[root].contains(a)) {
            return Err(SynopsisError::Budget {
                reason: format!("attribute {missing} is not covered by the model"),
            });
        }
        Ok(Self::compile_rooted(tree, rooted, root, target, false))
    }

    /// Compiles the recursion rooted at `root` over an already-derived
    /// rooted view. `loose` selects the shed-friendly variant whose result
    /// may cover a superset of `target` (the selectivity fast path).
    /// Precondition: `target ⊆ cover(root)`.
    #[must_use]
    pub fn compile_rooted(
        tree: &JunctionTree,
        rooted: &RootedJunctionTree,
        root: usize,
        target: &AttrSet,
        loose: bool,
    ) -> Self {
        let mut planner = Planner {
            cliques: tree.cliques(),
            children: &rooted.children,
            cover: &rooted.cover,
            loose,
            steps: Vec::new(),
        };
        let result_attrs = planner.go(root, target);
        Self { target: target.clone(), root, loose, steps: planner.steps, result_attrs }
    }

    /// The query attribute set the plan computes a marginal over.
    #[must_use]
    pub fn target(&self) -> &AttrSet {
        &self.target
    }

    /// The clique the recursion was rooted at.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// `true` for the loose (shed-friendly) variant whose result may
    /// cover a superset of the target.
    #[must_use]
    pub fn is_loose(&self) -> bool {
        self.loose
    }

    /// The compiled instruction sequence.
    #[must_use]
    pub fn steps(&self) -> &[PlanStep] {
        &self.steps
    }

    /// The largest attribute set the executed result can carry (equals
    /// the target for strict plans; a superset bound for loose plans).
    #[must_use]
    pub fn result_attrs(&self) -> &AttrSet {
        &self.result_attrs
    }
}

/// The Fig. 3 recursion, re-expressed as plan emission. Mirrors
/// `Ctx::go`/`Ctx::go_loose` in `crate::marginal` exactly — every branch
/// decision here depends only on tree structure and the target, so it can
/// run at plan time.
struct Planner<'a> {
    cliques: &'a [AttrSet],
    children: &'a [Vec<usize>],
    cover: &'a [AttrSet],
    loose: bool,
    steps: Vec<PlanStep>,
}

impl Planner<'_> {
    /// Emits steps computing the subtree marginal over `sq` from `node`;
    /// returns the maximal attribute set the produced operand may carry
    /// (exact when no runtime shed fires). Precondition: `sq ⊆
    /// cover(node)`.
    fn go(&mut self, node: usize, sq: &AttrSet) -> AttrSet {
        let clique = &self.cliques[node];
        // Fig. 3 step 1: the clique alone suffices.
        if sq.is_subset(clique) {
            self.steps.push(PlanStep::Load { clique: node });
            if sq != clique {
                self.steps.push(PlanStep::Project { attrs: sq.clone() });
            }
            return sq.clone();
        }
        let int_empty = clique.is_disjoint(sq);
        let diff = sq.difference(clique);
        debug_assert!(!diff.is_empty());

        // Steps 4–10: a single child's subtree covers everything missing.
        let single = self.children[node].iter().copied().find(|&j| diff.is_subset(&self.cover[j]));
        if let Some(j) = single {
            if int_empty {
                // Step 5: delegate wholesale.
                return self.go(j, sq);
            }
            // Steps 7–9: own factor × child marginal, then cut to sq.
            let sij = clique.intersection(&self.cliques[j]);
            self.steps.push(PlanStep::Load { clique: node });
            let mut child_target = diff;
            child_target.union_with(&sij);
            let h1 = self.go(j, &child_target);
            self.steps.push(PlanStep::Product);
            let mut result = clique.clone();
            result.union_with(&h1);
            return self.tail(result, sq);
        }

        // Steps 11–19: split `diff` across the children that cover parts
        // of it (each attribute lives in exactly one subtree by the
        // clique-intersection property).
        let parts: Vec<(usize, AttrSet, AttrSet)> = self.children[node]
            .iter()
            .copied()
            .filter_map(|j| {
                let mut part = self.cover[j].clone();
                part.intersect_with(&diff);
                if part.is_empty() {
                    None
                } else {
                    let sij = clique.intersection(&self.cliques[j]);
                    Some((j, part, sij))
                }
            })
            .collect();
        self.steps.push(PlanStep::Load { clique: node });
        let mut h_max = clique.clone();
        for (idx, (j, part, sij)) in parts.iter().enumerate() {
            let mut child_target = part.clone();
            child_target.union_with(sij);
            let h1 = self.go(*j, &child_target);
            self.steps.push(PlanStep::Product);
            h_max.union_with(&h1);
            // Shed attributes the query and the remaining separators no
            // longer need — runtime-gated on factor size.
            let mut keep = sq.intersection(&h_max);
            for (_, _, s) in &parts[idx + 1..] {
                keep.union_with(s);
            }
            if !keep.is_empty() {
                self.steps.push(PlanStep::Shed { keep });
            }
        }
        self.tail(h_max, sq)
    }

    /// Emits the closing cut of a recursion level: a strict projection to
    /// `sq`, or a shed in loose mode (which may retain extra attributes
    /// on large factors).
    fn tail(&mut self, attrs_max: AttrSet, sq: &AttrSet) -> AttrSet {
        if self.loose {
            self.steps.push(PlanStep::Shed { keep: sq.clone() });
            attrs_max
        } else {
            self.steps.push(PlanStep::Project { attrs: sq.clone() });
            sq.clone()
        }
    }
}

fn malformed(reason: &str) -> SynopsisError {
    SynopsisError::Budget { reason: format!("malformed marginal plan: {reason}") }
}

/// Executes a compiled plan over the clique factors, counting every
/// operation into `trace`.
///
/// Clique loads and identity projections *borrow*: a plan that resolves
/// within one clique returns `Cow::Borrowed` and performs zero factor
/// clones — callers that only need `mass_in_box` never materialize
/// anything.
///
/// # Errors
///
/// Propagates factor-operation failures; rejects plans inconsistent with
/// the factor slice (wrong clique indices or malformed stack shape).
pub fn execute_marginal<'a, F: Factor>(
    plan: &MarginalPlan,
    factors: &'a [F],
    trace: &mut QueryTrace,
) -> Result<Cow<'a, F>, SynopsisError> {
    execute_marginal_probed(plan, factors, trace, &mut NoProbe)
}

/// [`execute_marginal`] with an [`ExplainProbe`] observing every step.
///
/// With [`NoProbe`] (what [`execute_marginal`] instantiates) every probe
/// site is compiled out — `P::ACTIVE` is a monomorphization-time
/// constant — so the unprobed path carries no clock reads or recording.
/// Probes observe only; operands and results are untouched, keeping
/// explained execution bit-identical.
///
/// # Errors
///
/// Propagates factor-operation failures; rejects plans inconsistent with
/// the factor slice (wrong clique indices or malformed stack shape).
pub fn execute_marginal_probed<'a, F: Factor, P: ExplainProbe>(
    plan: &MarginalPlan,
    factors: &'a [F],
    trace: &mut QueryTrace,
    probe: &mut P,
) -> Result<Cow<'a, F>, SynopsisError> {
    let _span = dbhist_telemetry::span!("dbhist_query_plan_exec_latency_ns");
    let mut stack: Vec<Cow<'a, F>> = Vec::new();
    for step in plan.steps() {
        let started = if P::ACTIVE { Some(Instant::now()) } else { None };
        let kind = match step {
            PlanStep::Load { clique } => {
                let f =
                    factors.get(*clique).ok_or_else(|| malformed("clique index out of range"))?;
                trace.clique_loads += 1;
                stack.push(Cow::Borrowed(f));
                StepKind::Load { clique: *clique }
            }
            PlanStep::Project { attrs } => {
                let top = stack.last_mut().ok_or_else(|| malformed("project on empty stack"))?;
                if top.attrs() == attrs {
                    trace.identity_projections += 1;
                    StepKind::IdentityProject
                } else {
                    trace.projections += 1;
                    *top = Cow::Owned(top.project(attrs)?);
                    StepKind::Project
                }
            }
            PlanStep::Product => {
                let rhs = stack.pop().ok_or_else(|| malformed("product on empty stack"))?;
                let lhs = stack.pop().ok_or_else(|| malformed("product on 1-operand stack"))?;
                trace.products += 1;
                stack.push(Cow::Owned(lhs.product(&rhs)?));
                StepKind::Product
            }
            PlanStep::Shed { keep } => {
                let top = stack.last_mut().ok_or_else(|| malformed("shed on empty stack"))?;
                let mut cut = keep.clone();
                cut.intersect_with(top.attrs());
                if cut.is_empty() || &cut == top.attrs() || top.len_hint() > SHED_LIMIT {
                    trace.sheds_skipped += 1;
                    StepKind::ShedSkipped(if cut.is_empty() {
                        ShedSkip::NothingToKeep
                    } else if &cut == top.attrs() {
                        ShedSkip::AlreadyTidy
                    } else {
                        ShedSkip::TooLarge
                    })
                } else {
                    trace.sheds += 1;
                    *top = Cow::Owned(top.project(&cut)?);
                    StepKind::Shed
                }
            }
        };
        if P::ACTIVE {
            let ns =
                started.map_or(0, |t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            probe.step(kind, ns, stack.last().map_or(0, |f| f.len_hint()));
        }
    }
    let result = stack.pop().ok_or_else(|| malformed("empty plan"))?;
    if !stack.is_empty() {
        return Err(malformed("leftover operands"));
    }
    Ok(result)
}

/// One independent model component of a [`MassPlan`]: the target
/// attributes falling in that component and the loose plan computing
/// their (superset) marginal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// The target attributes this component covers.
    pub attrs: AttrSet,
    /// The loose marginal plan for `attrs`.
    pub plan: MarginalPlan,
}

/// A compiled selectivity estimation: the independent-component
/// factorization of `estimate_mass`, with one loose [`MarginalPlan`] per
/// component that intersects the target.
///
/// The plan depends only on the junction tree and the target attribute
/// set — the query's concrete ranges are supplied at execution time, so
/// one plan serves every query over the same attribute subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MassPlan {
    target: AttrSet,
    groups: Vec<GroupPlan>,
}

impl MassPlan {
    /// Compiles the estimation plan for `target`.
    ///
    /// # Errors
    ///
    /// Rejects targets with attributes no clique covers.
    pub fn compile(
        tree: &JunctionTree,
        views: &RootedViews,
        target: &AttrSet,
    ) -> Result<Self, SynopsisError> {
        // Model components (cliques connected by *non-empty* separators)
        // are mutually independent by construction: the estimate
        // factorizes as N · Π (mass_component / N).
        let n_cliques = tree.len();
        let mut comp = vec![usize::MAX; n_cliques];
        let mut next_comp = 0usize;
        for start in 0..n_cliques {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![start];
            comp[start] = next_comp;
            while let Some(c) = stack.pop() {
                for (other, sep) in tree.neighbors(c) {
                    if !sep.is_empty() && comp[other] == usize::MAX {
                        comp[other] = next_comp;
                        stack.push(other);
                    }
                }
            }
            next_comp += 1;
        }
        // Group target attributes by the component that covers them.
        let mut group_attrs: Vec<AttrSet> = vec![AttrSet::empty(); next_comp];
        'attrs: for a in target.iter() {
            for (i, clique) in tree.cliques().iter().enumerate() {
                if clique.contains(a) {
                    group_attrs[comp[i]] = group_attrs[comp[i]].with(a);
                    continue 'attrs;
                }
            }
            return Err(SynopsisError::Budget {
                reason: format!("attribute {a} is not covered by the model"),
            });
        }
        let mut groups = Vec::new();
        for (g, attrs) in group_attrs.into_iter().enumerate() {
            if attrs.is_empty() {
                continue;
            }
            // Root this component's loose recursion at its
            // best-overlapping clique.
            let Some(root) = (0..n_cliques)
                .filter(|&i| comp[i] == g)
                .max_by_key(|&i| (tree.cliques()[i].intersection(&attrs).len(), usize::MAX - i))
            else {
                continue;
            };
            let rooted = views.get(tree, root);
            let plan = MarginalPlan::compile_rooted(tree, rooted, root, &attrs, true);
            groups.push(GroupPlan { attrs, plan });
        }
        Ok(Self { target: target.clone(), groups })
    }

    /// The query attribute set the plan estimates over.
    #[must_use]
    pub fn target(&self) -> &AttrSet {
        &self.target
    }

    /// The per-component sub-plans.
    #[must_use]
    pub fn groups(&self) -> &[GroupPlan] {
        &self.groups
    }
}

/// Executes a [`MassPlan`] for one concrete [`Query`].
///
/// # Errors
///
/// Propagates factor-operation failures.
pub fn execute_mass<F: Factor>(
    plan: &MassPlan,
    factors: &[F],
    query: &Query,
    trace: &mut QueryTrace,
) -> Result<f64, SynopsisError> {
    execute_mass_probed(plan, factors, query, trace, &mut NoProbe)
}

/// [`execute_mass`] with an [`ExplainProbe`] observing per-group
/// execution (see [`execute_marginal_probed`] for the zero-cost
/// contract).
///
/// # Errors
///
/// Propagates factor-operation failures.
pub fn execute_mass_probed<F: Factor, P: ExplainProbe>(
    plan: &MassPlan,
    factors: &[F],
    query: &Query,
    trace: &mut QueryTrace,
    probe: &mut P,
) -> Result<f64, SynopsisError> {
    let ranges = query.ranges();
    let total = factors.first().map_or(0.0, Factor::total);
    let mut mass = total;
    for group in plan.groups() {
        if P::ACTIVE {
            probe.group(&group.attrs);
        }
        let loose = execute_marginal_probed(&group.plan, factors, trace, probe)?;
        let group_mass = loose.mass_in_box(ranges);
        if P::ACTIVE {
            probe.group_mass(group_mass, false);
        }
        if total > 0.0 {
            mass *= group_mass / total;
        } else {
            return Ok(0.0);
        }
    }
    Ok(mass)
}

/// Cache key: the canonical (sorted, deduplicated) query attribute set
/// plus the plan variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PlanKey {
    attrs: AttrSet,
    loose: bool,
}

#[derive(Debug, Clone)]
enum CachedPlan {
    Strict(Arc<MarginalPlan>),
    Mass(Arc<MassPlan>),
}

/// The per-synopsis workload cache: rooted views computed once, compiled
/// plans memoized by query shape, optionally materialized marginals, and
/// cumulative [`QueryTrace`] counters.
///
/// Interior-mutable behind **sharded** caches ([`ShardedLru`]) so
/// estimation keeps its `&self` signature and many reader threads can
/// query concurrently without serializing on one cache mutex; all
/// methods are safe under concurrent use. Cached entries are pure
/// memoization of values recomputed from the immutable factors, so
/// concurrency changes hit rates, never estimates.
#[derive(Debug)]
pub struct QueryEngine<F: Factor> {
    views: RootedViews,
    plans: ShardedLru<PlanKey, CachedPlan>,
    /// Materialized-marginal cache; capacity 0 = disabled (the default).
    marginals: ShardedLru<PlanKey, F>,
    /// Lowered [`MassKernel`]s keyed by loose query shape; populated on
    /// the first execution of a shape whose factors all lower
    /// ([`Factor::lower_index`]). Always enabled — a kernel is strictly
    /// cheaper than the plan execution it replaces.
    kernels: ShardedLru<PlanKey, Arc<MassKernel>>,
    /// Pooled per-query walk scratch for kernel evaluations.
    scratch: ScratchPool,
    metrics: EngineMetrics,
}

impl<F: Factor> Clone for QueryEngine<F> {
    fn clone(&self) -> Self {
        Self {
            views: self.views.clone(),
            plans: self.plans.clone(),
            marginals: self.marginals.clone(),
            kernels: self.kernels.clone(),
            scratch: ScratchPool::default(),
            metrics: self.metrics.clone(),
        }
    }
}

impl<F: Factor> QueryEngine<F> {
    /// Creates an engine for `tree` with the default plan-cache capacity
    /// and the marginal cache disabled.
    #[must_use]
    pub fn new(tree: &JunctionTree) -> Self {
        Self::with_plan_capacity(tree, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Creates an engine whose plan cache retains at most `capacity`
    /// distinct query shapes (split across the cache's shards).
    #[must_use]
    pub fn with_plan_capacity(tree: &JunctionTree, capacity: usize) -> Self {
        Self {
            views: tree.rooted_views(),
            plans: ShardedLru::new(capacity.max(1)),
            marginals: ShardedLru::new(0),
            kernels: ShardedLru::new(capacity.max(1)),
            scratch: ScratchPool::default(),
            metrics: EngineMetrics::default(),
        }
    }

    /// The cached rooted views (computed once per root, on demand).
    #[must_use]
    pub fn rooted_views(&self) -> &RootedViews {
        &self.views
    }

    /// Enables the materialized-marginal LRU with the given capacity,
    /// dropping any previously cached marginals.
    pub fn enable_marginal_cache(&self, capacity: usize) {
        self.marginals.set_capacity(capacity.max(1));
        self.marginals.clear();
    }

    /// Disables (and drops) the materialized-marginal cache.
    pub fn disable_marginal_cache(&self) {
        self.marginals.set_capacity(0);
    }

    /// Drops cached materialized marginals **and lowered kernels** while
    /// keeping the caches enabled. Call after mutating the underlying
    /// factors (plans stay valid — they depend only on model structure;
    /// marginals and kernels are derived from factor contents).
    pub fn invalidate_marginals(&self) {
        self.marginals.clear();
        self.kernels.clear();
    }

    /// A snapshot of the cumulative operation counters.
    ///
    /// Reading is **non-destructive** — the counters keep accumulating
    /// across calls until [`QueryEngine::reset_trace`] zeroes them — and
    /// lock-free: counters are relaxed atomics, so a snapshot taken under
    /// concurrent queries has each field individually exact but no global
    /// atomic cut across fields.
    #[must_use]
    pub fn trace(&self) -> QueryTrace {
        self.metrics.snapshot()
    }

    /// Resets the cumulative counters to zero. Only this engine's local
    /// counters are affected; the process-wide telemetry registry (when
    /// enabled) stays cumulative.
    pub fn reset_trace(&self) {
        self.metrics.reset();
    }

    /// Fetches (or compiles and caches) the plan for `target`.
    fn plan_for(
        &self,
        tree: &JunctionTree,
        target: &AttrSet,
        loose: bool,
        trace: &mut QueryTrace,
    ) -> Result<CachedPlan, SynopsisError> {
        let key = PlanKey { attrs: target.clone(), loose };
        {
            let _lookup = dbhist_telemetry::span!("dbhist_query_plan_cache_lookup_latency_ns");
            if let Some(hit) = self.plans.get(&key) {
                trace.plan_cache_hits += 1;
                return Ok(hit);
            }
        }
        // Compile outside any shard lock: compilation is read-only over
        // the tree, so a racing duplicate compile is benign.
        let _compile = dbhist_telemetry::span!("dbhist_query_plan_compile_latency_ns");
        let compiled = if loose {
            CachedPlan::Mass(Arc::new(MassPlan::compile(tree, &self.views, target)?))
        } else {
            CachedPlan::Strict(Arc::new(MarginalPlan::compile(tree, &self.views, target)?))
        };
        trace.plan_cache_misses += 1;
        self.plans.insert(key, compiled.clone());
        Ok(compiled)
    }

    /// The clique indices the compiled (loose) estimation plan for
    /// `target` actually loads, sorted and deduplicated.
    ///
    /// This is the attribution set for executed-query feedback: an
    /// estimate only reflects the factors its plan reads, so error
    /// observations should land on exactly those cliques — not on every
    /// clique that happens to share an attribute with the query. (With
    /// cliques `{a,b}` and `{a,c}`, a query on `a` alone is answered
    /// from whichever clique the planner rooted at; blaming the other
    /// one would steer re-splitting toward a factor the estimate never
    /// consulted.) The kernel fast path lowers the same plan, so the
    /// compile-time load set is authoritative for every execution mode.
    ///
    /// # Errors
    ///
    /// Rejects targets the model does not cover.
    pub fn loaded_cliques(
        &self,
        tree: &JunctionTree,
        target: &AttrSet,
    ) -> Result<Vec<usize>, SynopsisError> {
        let mut t = QueryTrace::default();
        let CachedPlan::Mass(plan) = self.plan_for(tree, target, true, &mut t)? else {
            return Err(malformed("loose key resolved to a strict plan"));
        };
        let mut cliques: Vec<usize> = plan
            .groups()
            .iter()
            .flat_map(|g| g.plan.steps().iter())
            .filter_map(|s| match *s {
                PlanStep::Load { clique } => Some(clique),
                _ => None,
            })
            .collect();
        cliques.sort_unstable();
        cliques.dedup();
        Ok(cliques)
    }

    /// Computes the marginal factor over `target` through the plan cache
    /// (and the marginal cache, when enabled).
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures; rejects targets the model
    /// does not cover.
    pub fn marginal(
        &self,
        tree: &JunctionTree,
        factors: &[F],
        target: &AttrSet,
    ) -> Result<F, SynopsisError> {
        let mut t = QueryTrace::default();
        let key = PlanKey { attrs: target.clone(), loose: false };
        if let Some(cached) = self.marginals.get(&key) {
            t.marginal_cache_hits += 1;
            self.metrics.absorb(&t);
            return Ok(cached);
        }
        let result = (|| {
            let CachedPlan::Strict(plan) = self.plan_for(tree, target, false, &mut t)? else {
                return Err(malformed("strict key resolved to a mass plan"));
            };
            let out = match execute_marginal(&plan, factors, &mut t)? {
                Cow::Borrowed(f) => {
                    t.factor_clones += 1;
                    f.clone()
                }
                Cow::Owned(f) => f,
            };
            if self.marginals.enabled() {
                t.marginal_cache_misses += 1;
                t.factor_clones += 1;
                self.marginals.insert(key, out.clone());
            }
            Ok(out)
        })();
        self.metrics.absorb(&t);
        result
    }

    /// Estimates the frequency mass of the marginal over `target` inside
    /// the conjunctive `query`, through the lowered-kernel cache, the
    /// plan cache, and the per-group marginal cache (when enabled).
    ///
    /// The kernel cache is consulted first: a hit answers the query from
    /// flat arrays with pooled scratch and touches no plan, factor, or
    /// tree. A kernel exists only after a prior execution of the same
    /// shape lowered every group bit-identically, so the fast path cannot
    /// change any estimate (pinned by `tests/plan_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures; rejects targets the model
    /// does not cover.
    pub fn estimate_mass(
        &self,
        tree: &JunctionTree,
        factors: &[F],
        target: &AttrSet,
        query: &Query,
    ) -> Result<f64, SynopsisError> {
        self.estimate_mass_probed(tree, factors, target, query, &mut NoProbe)
    }

    /// [`QueryEngine::estimate_mass`] with an [`ExplainReport`] of the
    /// actual execution: the resolved path, per-step timings, layout and
    /// shed decisions, and scratch reuse.
    ///
    /// The returned estimate is bit-identical to the plain call — the
    /// recording probe observes without touching any operand (pinned by
    /// a proptest in `tests/plan_equivalence.rs`).
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures; rejects targets the model
    /// does not cover.
    pub fn estimate_mass_explained(
        &self,
        tree: &JunctionTree,
        factors: &[F],
        target: &AttrSet,
        query: &Query,
    ) -> Result<(f64, ExplainReport), SynopsisError> {
        let started = Instant::now();
        let mut probe = ExplainRecorder::new(target);
        let mass = self.estimate_mass_probed(tree, factors, target, query, &mut probe)?;
        let total_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok((mass, probe.finish(mass, total_ns)))
    }

    /// The probed body behind [`QueryEngine::estimate_mass`] (instantiated
    /// with [`NoProbe`]) and [`QueryEngine::estimate_mass_explained`]
    /// (instantiated with a recorder). Probe sites are gated on
    /// `P::ACTIVE`, so the unprobed monomorphization is the pre-explain
    /// code.
    fn estimate_mass_probed<P: ExplainProbe>(
        &self,
        tree: &JunctionTree,
        factors: &[F],
        target: &AttrSet,
        query: &Query,
        probe: &mut P,
    ) -> Result<f64, SynopsisError> {
        // Inert unless telemetry is on (or a span collector is
        // installed): the registry's per-query latency histogram
        // (`dbhist_query_estimate_latency_ns`) is fed by this guard.
        let _span = dbhist_telemetry::span!("dbhist_query_estimate_latency_ns");
        if dbhist_telemetry::enabled() {
            wellknown().query_estimates.increment();
        }
        let ranges = query.ranges();
        let mut t = QueryTrace::default();
        let kernel_key = PlanKey { attrs: target.clone(), loose: true };
        if let Some(kernel) = self.kernels.get(&kernel_key) {
            t.kernel_hits += 1;
            if P::ACTIVE {
                probe.resolved_path(QueryPath::KernelHit);
                probe.kernel_lowered(true);
                for group in kernel.groups() {
                    probe.layout(group.layout());
                }
            }
            let mut scratch;
            if P::ACTIVE {
                let (tracked, reused) = self.scratch.acquire_tracked();
                probe.scratch(reused);
                scratch = tracked;
            } else {
                scratch = self.scratch.acquire();
            }
            let mass = kernel.evaluate_ranges_probed(ranges, &mut scratch, probe);
            self.scratch.release(scratch);
            self.metrics.absorb(&t);
            return Ok(mass);
        }
        let result = (|| {
            let hits_before = t.plan_cache_hits;
            let CachedPlan::Mass(plan) = self.plan_for(tree, target, true, &mut t)? else {
                return Err(malformed("loose key resolved to a strict plan"));
            };
            if P::ACTIVE {
                probe.resolved_path(if t.plan_cache_hits > hits_before {
                    QueryPath::PlanCacheHit
                } else {
                    QueryPath::PlanCompiled
                });
            }
            let total = factors.first().map_or(0.0, Factor::total);
            let mut mass = total;
            // Lower each group's loose marginal as it is produced; a
            // kernel is cached only when *every* group lowers (otherwise
            // the representation has no bit-identical flat form and the
            // engine keeps executing this plan directly).
            let mut lowered: Vec<TreeIndex> = Vec::with_capacity(plan.groups().len());
            let mut lowerable = true;
            for group in plan.groups() {
                if P::ACTIVE {
                    probe.group(&group.attrs);
                }
                let group_key = PlanKey { attrs: group.attrs.clone(), loose: true };
                let mut from_cache = false;
                let group_mass = if self.marginals.enabled() {
                    if let Some(f) = self.marginals.get(&group_key) {
                        t.marginal_cache_hits += 1;
                        from_cache = true;
                        if lowerable {
                            match f.lower_index() {
                                Some(ix) => lowered.push(ix),
                                None => lowerable = false,
                            }
                        }
                        f.mass_in_box(ranges)
                    } else {
                        t.marginal_cache_misses += 1;
                        let cow = execute_marginal_probed(&group.plan, factors, &mut t, probe)?;
                        let owned = match cow {
                            Cow::Borrowed(f) => {
                                t.factor_clones += 1;
                                f.clone()
                            }
                            Cow::Owned(f) => f,
                        };
                        if lowerable {
                            match owned.lower_index() {
                                Some(ix) => lowered.push(ix),
                                None => lowerable = false,
                            }
                        }
                        let gm = owned.mass_in_box(ranges);
                        self.marginals.insert(group_key, owned);
                        gm
                    }
                } else {
                    let loose = execute_marginal_probed(&group.plan, factors, &mut t, probe)?;
                    if lowerable {
                        match loose.lower_index() {
                            Some(ix) => lowered.push(ix),
                            None => lowerable = false,
                        }
                    }
                    loose.mass_in_box(ranges)
                };
                if P::ACTIVE {
                    probe.group_mass(group_mass, from_cache);
                }
                if total > 0.0 {
                    mass *= group_mass / total;
                } else {
                    return Ok(0.0);
                }
            }
            if lowerable {
                for ix in &lowered {
                    match ix.layout() {
                        IndexLayout::Dense => t.kernel_lowered_dense += 1,
                        IndexLayout::Sparse => t.kernel_lowered_sparse += 1,
                    }
                    if P::ACTIVE {
                        probe.layout(ix.layout());
                    }
                }
                self.kernels.insert(kernel_key, Arc::new(MassKernel::new(total, lowered)));
            } else {
                t.kernel_fallbacks += 1;
            }
            if P::ACTIVE {
                probe.kernel_lowered(lowerable);
            }
            Ok(mass)
        })();
        self.metrics.absorb(&t);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::ExactFactor;
    use crate::marginal::{compute_marginal_interpreted, estimate_mass_interpreted};
    use dbhist_distribution::{Relation, Schema};
    use dbhist_model::{DecomposableModel, MarkovGraph};

    /// 5 attributes with chain dependencies 0-1, 1-2, plus pair 3-4 (the
    /// same fixture as `crate::marginal`'s tests).
    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 4), ("d", 3), ("e", 3)]).unwrap();
        let mut rows = Vec::new();
        let mut state = 988_777u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2500 {
            let a = (next() % 4) as u32;
            let b = if next() % 3 == 0 { (next() % 4) as u32 } else { a };
            let c = if next() % 3 == 0 { (next() % 4) as u32 } else { b };
            let d = (next() % 3) as u32;
            let e = if next() % 4 == 0 { (next() % 3) as u32 } else { d };
            rows.push(vec![a, b, c, d, e]);
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    fn model(rel: &Relation) -> DecomposableModel {
        let g = MarkovGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        DecomposableModel::new(rel.schema().clone(), g).unwrap()
    }

    fn exact_factors(rel: &Relation, m: &DecomposableModel) -> Vec<ExactFactor> {
        m.cliques().iter().map(|c| ExactFactor(rel.marginal(c).unwrap())).collect()
    }

    fn targets() -> Vec<AttrSet> {
        vec![
            AttrSet::from_ids([0]),
            AttrSet::from_ids([0, 1]),
            AttrSet::from_ids([0, 2]),
            AttrSet::from_ids([0, 4]),
            AttrSet::from_ids([2, 3]),
            AttrSet::from_ids([0, 2, 4]),
            AttrSet::from_ids([0, 1, 2, 3, 4]),
        ]
    }

    #[test]
    fn planned_marginal_is_bit_identical_to_interpreter() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let views = tree.rooted_views();
        for target in targets() {
            let plan = MarginalPlan::compile(tree, &views, &target).unwrap();
            let mut trace = QueryTrace::default();
            let planned = execute_marginal(&plan, &factors, &mut trace).unwrap();
            let (interp, stats) = compute_marginal_interpreted(tree, &factors, &target).unwrap();
            assert_eq!(planned.attrs(), interp.attrs(), "{target}");
            for (k, v) in interp.0.iter() {
                let got = planned.0.frequency(k);
                assert_eq!(got.to_bits(), v.to_bits(), "{target}: key {k:?}: {got} vs {v}");
            }
            // Operation counts match the interpreter's accounting.
            assert_eq!(trace.products, stats.products, "{target}");
            assert_eq!(trace.projections + trace.sheds, stats.projections, "{target}");
        }
    }

    #[test]
    fn planned_mass_is_bit_identical_to_interpreter() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let views = tree.rooted_views();
        let queries: Vec<Vec<(u16, u32, u32)>> = vec![
            vec![(0, 0, 1)],
            vec![(0, 0, 2), (2, 1, 3)],
            vec![(0, 1, 2), (3, 0, 1), (4, 1, 2)],
            vec![(1, 2, 2), (4, 0, 0)],
            vec![(0, 0, 3), (1, 0, 3), (2, 0, 3), (3, 0, 2), (4, 0, 2)],
        ];
        for ranges in queries {
            let target = AttrSet::from_ids(ranges.iter().map(|r| r.0));
            let query = Query::from(ranges);
            let plan = MassPlan::compile(tree, &views, &target).unwrap();
            let mut trace = QueryTrace::default();
            let planned = execute_mass(&plan, &factors, &query, &mut trace).unwrap();
            let interp = estimate_mass_interpreted(tree, &factors, &target, &query).unwrap();
            assert_eq!(planned.to_bits(), interp.to_bits(), "{query:?}: {planned} vs {interp}");
        }
    }

    #[test]
    fn single_clique_plan_borrows_without_cloning() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let views = tree.rooted_views();
        // {0,1} is exactly a clique of the chain model: the plan is a bare
        // load and the executed result borrows the stored factor.
        let target = AttrSet::from_ids([0, 1]);
        let plan = MarginalPlan::compile(tree, &views, &target).unwrap();
        assert_eq!(plan.steps().len(), 1, "{:?}", plan.steps());
        let mut trace = QueryTrace::default();
        let result = execute_marginal(&plan, &factors, &mut trace).unwrap();
        assert!(matches!(result, Cow::Borrowed(_)));
        assert_eq!(trace.products, 0);
        assert_eq!(trace.projections, 0);
        assert_eq!(trace.factor_clones, 0);
        assert_eq!(trace.clique_loads, 1);
    }

    #[test]
    fn uncovered_attribute_fails_compilation() {
        let rel = relation();
        let m = model(&rel);
        let tree = m.junction_tree();
        let views = tree.rooted_views();
        let bad = AttrSet::from_ids([0, 9]);
        assert!(MarginalPlan::compile(tree, &views, &bad).is_err());
        assert!(MassPlan::compile(tree, &views, &bad).is_err());
    }

    #[test]
    fn engine_caches_plans_and_marginals_bit_identically() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        let target = AttrSet::from_ids([0, 2, 4]);
        let query = Query::range(0, 0, 2).and(2, 1, 3).and(4, 0, 1);

        let cold = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t0 = engine.trace();
        assert_eq!(t0.plan_cache_misses, 1);
        assert_eq!(t0.plan_cache_hits, 0);

        let warm = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t1 = engine.trace();
        assert_eq!(t1.plan_cache_hits, 1, "second identical query must hit the plan cache");
        assert_eq!(cold.to_bits(), warm.to_bits(), "plan-cache hit must be bit-identical");

        // Enable the marginal cache: first query materializes, second
        // skips execution entirely.
        engine.enable_marginal_cache(8);
        let seeded = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t2 = engine.trace();
        assert!(t2.marginal_cache_misses >= 1);
        let cached = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t3 = engine.trace();
        assert!(t3.marginal_cache_hits >= 1, "repeat must hit the marginal cache: {t3:?}");
        assert_eq!(
            t3.products, t2.products,
            "marginal-cache hit must not execute any factor products"
        );
        assert_eq!(seeded.to_bits(), cold.to_bits());
        assert_eq!(cached.to_bits(), cold.to_bits(), "marginal-cache hit must be bit-identical");

        // Invalidation drops materialized marginals but keeps plans.
        engine.invalidate_marginals();
        let after = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        assert_eq!(after.to_bits(), cold.to_bits());
        let t4 = engine.trace();
        assert_eq!(t4.plan_cache_misses, 1, "plans survive marginal invalidation");
    }

    #[test]
    fn engine_repeated_identity_workload_never_clones() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        // Both targets live inside single cliques: execution is pure
        // borrowing — zero factor clones across the whole workload.
        let workload: Vec<Vec<(u16, u32, u32)>> = (0..32)
            .map(|i| {
                if i % 2 == 0 {
                    vec![(0u16, 0u32, i % 4), (1, 0, 3)]
                } else {
                    vec![(3u16, 0u32, i % 3), (4, 0, 2)]
                }
            })
            .collect();
        for q in &workload {
            let target = AttrSet::from_ids(q.iter().map(|r| r.0));
            let query = Query::from(q.as_slice());
            engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        }
        let t = engine.trace();
        assert_eq!(t.factor_clones, 0, "identity workload must not clone factors: {t:?}");
        assert_eq!(t.products, 0);
        assert_eq!(t.projections, 0);
        assert_eq!(t.plan_cache_misses, 2, "two distinct shapes");
        assert_eq!(t.plan_cache_hits, 30, "every repeat hits the plan cache");
        assert_eq!(t.clique_loads, 32);
    }

    #[test]
    fn engine_marginal_matches_free_function_and_caches() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        engine.enable_marginal_cache(4);
        let target = AttrSet::from_ids([0, 2]);
        let a = engine.marginal(tree, &factors, &target).unwrap();
        let b = engine.marginal(tree, &factors, &target).unwrap();
        let t = engine.trace();
        assert_eq!(t.marginal_cache_hits, 1);
        let (interp, _) = compute_marginal_interpreted(tree, &factors, &target).unwrap();
        for (k, v) in interp.0.iter() {
            assert_eq!(a.0.frequency(k).to_bits(), v.to_bits());
            assert_eq!(b.0.frequency(k).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn engine_kernel_path_is_bit_identical_and_skips_plan_execution() {
        use dbhist_histogram::mhist::MhistBuilder;
        use dbhist_histogram::{SplitCriterion, SplitTree};
        let rel = relation();
        let m = model(&rel);
        let tree = m.junction_tree();
        let factors: Vec<SplitTree> = m
            .cliques()
            .iter()
            .map(|c| {
                MhistBuilder::build(&rel.marginal(c).unwrap(), 32, SplitCriterion::MaxDiff).unwrap()
            })
            .collect();
        let engine: QueryEngine<SplitTree> = QueryEngine::new(tree);
        let target = AttrSet::from_ids([0, 2, 4]);
        let query = Query::range(0, 0, 2).and(2, 1, 3).and(4, 0, 1);

        let cold = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t0 = engine.trace();
        assert_eq!(t0.kernel_hits, 0);
        assert!(t0.kernel_lowered_dense + t0.kernel_lowered_sparse >= 1, "{t0:?}");
        assert_eq!(t0.kernel_fallbacks, 0, "split trees always lower: {t0:?}");

        let warm = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        let t1 = engine.trace();
        assert_eq!(t1.kernel_hits, 1, "repeat shape must hit the kernel: {t1:?}");
        assert_eq!(t1.clique_loads, t0.clique_loads, "kernel hit must not touch factors");
        assert_eq!(warm.to_bits(), cold.to_bits(), "kernel hit must be bit-identical");

        // A *different* query over the same shape rides the kernel and
        // still matches direct plan execution bit-for-bit.
        let query2 = Query::range(0, 1, 3).and(2, 0, 2).and(4, 1, 2);
        let via_kernel = engine.estimate_mass(tree, &factors, &target, &query2).unwrap();
        let views = tree.rooted_views();
        let plan = MassPlan::compile(tree, &views, &target).unwrap();
        let mut trace = QueryTrace::default();
        let direct = execute_mass(&plan, &factors, &query2, &mut trace).unwrap();
        assert_eq!(via_kernel.to_bits(), direct.to_bits());

        // Invalidation drops kernels; the next query re-lowers.
        engine.invalidate_marginals();
        let again = engine.estimate_mass(tree, &factors, &target, &query).unwrap();
        assert_eq!(again.to_bits(), cold.to_bits());
        let t2 = engine.trace();
        assert!(
            t2.kernel_lowered_dense + t2.kernel_lowered_sparse
                > t1.kernel_lowered_dense + t1.kernel_lowered_sparse,
            "invalidation must force a re-lowering: {t2:?}"
        );
    }

    #[test]
    fn engine_is_callable_from_many_threads_through_shared_ref() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let tree = m.junction_tree();
        let engine: QueryEngine<ExactFactor> = QueryEngine::new(tree);
        engine.enable_marginal_cache(16);
        let queries: Vec<Vec<(u16, u32, u32)>> = vec![
            vec![(0, 0, 1)],
            vec![(0, 0, 2), (2, 1, 3)],
            vec![(0, 1, 2), (3, 0, 1), (4, 1, 2)],
            vec![(1, 2, 2), (4, 0, 0)],
        ];
        // Serial reference answers.
        let expected: Vec<f64> = queries
            .iter()
            .map(|q| {
                let target = AttrSet::from_ids(q.iter().map(|r| r.0));
                engine.estimate_mass(tree, &factors, &target, &Query::from(q.as_slice())).unwrap()
            })
            .collect();
        // Four threads hammer the same engine through `&self`; every
        // answer must stay bit-identical to the serial pass.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let engine = &engine;
                let factors = &factors;
                let queries = &queries;
                let expected = &expected;
                s.spawn(move || {
                    for round in 0..25 {
                        let i = round % queries.len();
                        let q = &queries[i];
                        let target = AttrSet::from_ids(q.iter().map(|r| r.0));
                        let query = Query::from(q.as_slice());
                        let got = engine.estimate_mass(tree, factors, &target, &query).unwrap();
                        assert_eq!(got.to_bits(), expected[i].to_bits(), "query {i}");
                    }
                });
            }
        });
    }
}
