//! Dependency-based *wavelet* synopses (the paper's §5 extension).
//!
//! The paper closes by arguing that the model-based methodology "can be
//! used to enhance the performance of other synopsis techniques that are
//! based on data-space partitioning (e.g., wavelets)". This module
//! realizes that claim: clique marginals are compressed with truncated
//! Haar decompositions ([`dbhist_histogram::wavelet`]) instead of
//! histograms, and the same junction-tree `ComputeMarginal` machinery
//! combines them.
//!
//! A [`WaveletFactor`] carries the reconstruction of a truncated synopsis
//! as a sparse distribution (cheap: clique marginals are low-dimensional
//! by construction — the whole point of the model), so the factor algebra
//! is the exact-distribution one; the *approximation* lives entirely in
//! the coefficient truncation, exactly as bucket truncation does for
//! histograms.

use dbhist_distribution::{AttrId, AttrSet, Distribution};
use dbhist_histogram::wavelet::{HaarBuilder, HaarSynopsis, WAVELET_BYTES_PER_COEFF};

use crate::build::{IncrementalBuilder, SplitProposal};
use crate::error::SynopsisError;
use crate::factor::{ExactFactor, Factor};

/// Cap on the padded dense state space a clique wavelet may occupy. With
/// `k_max = 2` and the paper's widest attribute (industry, 237 → 256
/// padded), the largest clique tensor is 256×128 = 32K cells; the default
/// cap leaves ample headroom while still refusing full-joint tensors.
pub const DEFAULT_WAVELET_CELL_CAP: usize = 1 << 22;

/// A clique factor backed by a truncated Haar synopsis.
#[derive(Debug, Clone)]
pub struct WaveletFactor {
    reconstruction: ExactFactor,
    coefficients: usize,
    /// The underlying coefficient synopsis. `Some` for clique factors
    /// produced by the builder (or a snapshot load); `None` for derived
    /// factors from `project`/`product`, which exist only transiently
    /// inside marginal computations and are never persisted.
    synopsis: Option<HaarSynopsis>,
}

impl WaveletFactor {
    /// Number of retained Haar coefficients.
    #[must_use]
    pub fn coefficient_count(&self) -> usize {
        self.coefficients
    }

    /// The reconstructed marginal distribution.
    #[must_use]
    pub fn reconstruction(&self) -> &Distribution {
        &self.reconstruction.0
    }

    /// The underlying coefficient synopsis, when this is a primary clique
    /// factor rather than a derived intermediate.
    #[must_use]
    pub fn haar(&self) -> Option<&HaarSynopsis> {
        self.synopsis.as_ref()
    }

    /// Rebuilds a clique factor from a decoded Haar synopsis by replaying
    /// the same reconstruction the builder performs — the dense inverse
    /// transform iterates cells in a fixed order, so the resulting sparse
    /// distribution (and every estimate derived from it) is bit-identical
    /// to the factor that was saved.
    ///
    /// # Errors
    ///
    /// Propagates reconstruction failures (synopsis/schema mismatch).
    pub(crate) fn from_synopsis(
        syn: HaarSynopsis,
        schema: &dbhist_distribution::Schema,
    ) -> Result<Self, SynopsisError> {
        let reconstruction = syn.reconstruct(schema)?;
        let coefficients = syn.coefficient_count();
        Ok(Self { reconstruction: ExactFactor(reconstruction), coefficients, synopsis: Some(syn) })
    }
}

impl Factor for WaveletFactor {
    fn attrs(&self) -> &AttrSet {
        self.reconstruction.attrs()
    }

    fn total(&self) -> f64 {
        self.reconstruction.total()
    }

    fn len_hint(&self) -> usize {
        self.reconstruction.len_hint()
    }

    fn mass_in_box(&self, ranges: &[(AttrId, u32, u32)]) -> f64 {
        self.reconstruction.mass_in_box(ranges)
    }

    fn project(&self, attrs: &AttrSet) -> Result<Self, SynopsisError> {
        Ok(Self {
            reconstruction: self.reconstruction.project(attrs)?,
            coefficients: self.coefficients,
            synopsis: None,
        })
    }

    fn product(&self, other: &Self) -> Result<Self, SynopsisError> {
        Ok(Self {
            reconstruction: self.reconstruction.product(&other.reconstruction)?,
            coefficients: self.coefficients + other.coefficients,
            synopsis: None,
        })
    }
}

/// [`IncrementalBuilder`] over truncated Haar synopses: every "split" adds
/// the next-largest coefficient, whose squared magnitude is exactly the
/// SSE gain (orthonormality), making `IncrementalGains` provably optimal
/// for this family.
#[derive(Debug, Clone)]
pub struct WaveletCliqueBuilder {
    inner: HaarBuilder,
    schema: dbhist_distribution::Schema,
}

impl WaveletCliqueBuilder {
    /// Starts a builder over a clique marginal.
    ///
    /// # Errors
    ///
    /// Propagates wavelet-construction errors (including the state-space
    /// cap — wavelets need the model's low-dimensional marginals just as
    /// histograms do).
    pub fn start(dist: &Distribution) -> Result<Self, SynopsisError> {
        Ok(Self {
            inner: HaarBuilder::new(dist, DEFAULT_WAVELET_CELL_CAP)?,
            schema: dist.schema().clone(),
        })
    }
}

impl IncrementalBuilder for WaveletCliqueBuilder {
    type Histogram = WaveletFactor;

    fn bucket_count(&self) -> usize {
        self.inner.retained().max(1)
    }

    fn storage_bytes(&self) -> usize {
        WAVELET_BYTES_PER_COEFF * self.inner.retained().max(1)
    }

    fn error(&self) -> f64 {
        self.inner.error()
    }

    fn peek(&self) -> Option<SplitProposal> {
        // The first coefficient is charged at start (every synopsis stores
        // at least one), so the proposal covers coefficient `retained+1`.
        let gain = self.inner.peek_gain()?;
        Some(SplitProposal {
            extra_buckets: 1,
            extra_bytes: WAVELET_BYTES_PER_COEFF,
            error_gain: gain,
        })
    }

    fn split_once(&mut self) -> bool {
        self.inner.add_next()
    }

    fn finish(&self) -> WaveletFactor {
        // Ensure at least one coefficient is retained (the storage floor
        // already paid for it).
        let mut inner = self.inner.clone();
        if inner.retained() == 0 {
            inner.add_next();
        }
        let syn = inner.finish();
        let coefficients = syn.coefficient_count();
        // `finish` is infallible by the builder contract, and the synopsis
        // was built from `self.schema` moments ago — a failure here is a
        // broken builder, not a recoverable condition.
        #[allow(clippy::expect_used)]
        let reconstruction =
            syn.reconstruct(&self.schema).expect("reconstruction over the synopsis attrs is valid"); // lint:allow(panic-surface): infallible builder contract over its own schema
        WaveletFactor {
            reconstruction: ExactFactor(reconstruction),
            coefficients,
            synopsis: Some(syn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    fn dist() -> Distribution {
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..640u32).map(|i| vec![(i * i) % 8, (i / 3) % 8]).collect();
        Relation::from_rows(schema, rows).unwrap().distribution()
    }

    #[test]
    fn builder_contract() {
        let d = dist();
        let mut b = WaveletCliqueBuilder::start(&d).unwrap();
        assert_eq!(b.storage_bytes(), 8, "one-coefficient floor");
        let mut prev = b.error();
        for _ in 0..6 {
            let Some(p) = b.peek() else { break };
            let before = b.error();
            assert!(b.split_once());
            assert!((p.error_gain - (before - b.error())).abs() < 1e-6 * (1.0 + p.error_gain));
            assert!(b.error() <= prev + 1e-9);
            prev = b.error();
        }
    }

    #[test]
    fn factor_roundtrip_full_retention() {
        let d = dist();
        let mut b = WaveletCliqueBuilder::start(&d).unwrap();
        while b.split_once() {}
        let f = b.finish();
        assert!((f.total() - d.total()).abs() < 1e-6);
        assert_eq!(f.attrs(), d.attrs());
        // Fully retained synopsis answers exactly.
        let mass = f.mass_in_box(&[(0, 0, 3)]);
        assert!((mass - d.range_mass(&[(0, 0, 3)])).abs() < 1e-6);
        // Factor algebra works.
        let p = f.project(&AttrSet::singleton(0)).unwrap();
        assert!((p.total() - d.total()).abs() < 1e-6);
        let prod = p.product(&f.project(&AttrSet::singleton(1)).unwrap()).unwrap();
        assert!((prod.total() - d.total()).abs() / d.total() < 0.01);
    }

    #[test]
    fn truncated_factor_still_reasonable() {
        let d = dist();
        let mut b = WaveletCliqueBuilder::start(&d).unwrap();
        for _ in 0..8 {
            b.split_once();
        }
        let f = b.finish();
        assert_eq!(f.coefficient_count(), 8);
        // Total mass is preserved up to truncation noise (the average
        // coefficient — the largest — is always kept first).
        assert!((f.total() - d.total()).abs() / d.total() < 0.25);
    }
}
