//! The concurrent estimation service: one immutable synopsis shared by
//! many reader threads, swapped out from under them with zero downtime.
//!
//! [`EstimatorService`] is the serving layer the ROADMAP north star
//! ("heavy traffic from millions of users") plugs into. Clients submit
//! *batches* of range predicates; a pool of worker threads answers them
//! against an immutable `Arc<`[`Generation`]`>` snapshot of the current
//! [`Synopsis`]. [`EstimatorService::swap`] installs a replacement —
//! a drift-triggered rebuild from [`MaintainedDbHistogram`] or a
//! [`persist` snapshot](crate::snapshot) — without dropping an in-flight
//! query: workers that already hold the old `Arc` finish their batch on
//! it, and the old synopsis is retired when the last holder releases it.
//!
//! # Swap protocol (epoch-style hot swap without `arc-swap`)
//!
//! The workspace forbids `unsafe` code, so a true lock-free pointer swap
//! is off the table. The service gets the same steady-state behaviour
//! with a generation counter:
//!
//! * `generation: AtomicU64` — bumped with `Release` after a new
//!   `Arc<Generation>` is installed under the `current` mutex.
//! * Each worker caches its own `Arc<Generation>` locally. Per batch it
//!   does one `Acquire` load of the counter; only when the number moved
//!   does it take the `current` lock to re-clone the `Arc`.
//!
//! Steady state (no swap in progress) is therefore **lock-free on the
//! read path**: one atomic load per batch, zero mutex acquisitions. The
//! `current` mutex is touched only on the swap edge, and is held just
//! long enough to clone an `Arc`.
//!
//! Estimates are **bit-identical to the serial engine** at any reader
//! count: workers call the same [`SelectivityEstimator::estimate`] on
//! the same immutable synopsis, and the engine's sharded caches
//! ([`crate::sharded`]) are pure memoization. `tests/concurrent_equivalence.rs`
//! pins this with a proptest that hammers one service from many threads
//! across mid-run swaps.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use dbhist_distribution::Relation;
use dbhist_telemetry::journal::{journal, JournalEvent};
use dbhist_telemetry::registry::{Counter, HistogramSnapshot, LatencyHistogram};
use dbhist_telemetry::wellknown::wellknown;

use crate::builder::{Synopsis, SynopsisBuilder};
use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::explain::ExplainReport;
use crate::maintenance::MaintainedDbHistogram;
use crate::query::Query;
use crate::sharded::lock;

/// Sampled [`ExplainReport`]s retained for
/// [`EstimatorService::recent_explains`] (older reports are evicted).
pub const EXPLAIN_RING_CAPACITY: usize = 32;

/// Configuration for [`EstimatorService::start`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads answering batches (minimum 1).
    pub workers: usize,
    /// Explain sampling rate: every `explain_sample`-th served query is
    /// answered through the explained path, its [`ExplainReport`]
    /// retained for [`EstimatorService::recent_explains`] and a
    /// [`JournalEvent::QuerySampled`] published. `0` (the default)
    /// disables sampling entirely — the serving path is then byte-for-byte
    /// the unprobed engine code.
    pub explain_sample: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self { workers: 2, explain_sample: 0 }
    }
}

/// One immutable, numbered snapshot of the serving synopsis. Readers
/// hold it through an `Arc`; the synopsis inside is never mutated.
#[derive(Debug)]
pub struct Generation {
    /// Monotonic generation number (the initial synopsis is 1).
    pub number: u64,
    /// The synopsis answering queries for this generation.
    pub synopsis: Synopsis,
}

/// A batch of answered queries, tagged with the generation that served
/// it (every estimate in one batch comes from the same snapshot).
#[derive(Debug, Clone)]
pub struct BatchReply {
    /// Generation whose synopsis produced `estimates`.
    pub generation: u64,
    /// Per-query estimates, in submission order.
    pub estimates: Vec<f64>,
}

/// Handle to an in-flight batch submitted via
/// [`EstimatorService::submit`].
#[derive(Debug)]
pub struct BatchTicket {
    rx: mpsc::Receiver<BatchReply>,
}

impl BatchTicket {
    /// Blocks until the batch is answered. `None` only if the service
    /// was torn down before the reply could be produced.
    #[must_use]
    pub fn wait(self) -> Option<BatchReply> {
        self.rx.recv().ok()
    }
}

/// Cumulative service counters (see [`EstimatorService::stats`]).
#[derive(Debug, Clone)]
pub struct ServeStats {
    /// Individual queries answered.
    pub requests: u64,
    /// Batches answered.
    pub batches: u64,
    /// Generations installed by [`EstimatorService::swap`] (the initial
    /// synopsis does not count).
    pub swaps: u64,
    /// Replies whose client hung up before delivery. Always 0 unless a
    /// submitter drops its [`BatchTicket`] early — `swap()` never drops
    /// an in-flight query.
    pub dropped_replies: u64,
    /// Queries answered per generation, as `(generation, count)` pairs in
    /// ascending generation order. A swap never zeroes earlier entries,
    /// so the distribution shows exactly how traffic straddled each
    /// handover.
    pub per_generation: Vec<(u64, u64)>,
    /// Distribution of [`EstimatorService::swap`] install latencies
    /// (nanoseconds from entry to the new generation being published).
    pub swap_latency: HistogramSnapshot,
}

/// Always-on service metrics, mirrored into the process-wide
/// `dbhist_serve_*` registry handles when global telemetry is enabled.
#[derive(Debug, Default)]
struct ServiceMetrics {
    requests: Counter,
    batches: Counter,
    swaps: Counter,
    dropped_replies: Counter,
    latency: LatencyHistogram,
    swap_latency: LatencyHistogram,
}

struct Job {
    queries: Vec<Query>,
    enqueued: Instant,
    reply: mpsc::Sender<BatchReply>,
}

pub(crate) struct Shared {
    /// Current generation number; `Release`-stored after the matching
    /// `Arc` is installed in `current`, `Acquire`-loaded by workers.
    generation: AtomicU64,
    /// The currently serving snapshot. Locked only to swap or to
    /// re-clone after the generation counter moved.
    current: Mutex<Arc<Generation>>,
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
    metrics: ServiceMetrics,
    /// Queries served per generation; touched once per batch, not per
    /// query.
    per_generation: Mutex<BTreeMap<u64, u64>>,
    /// Explain sampling rate (0 = off); see
    /// [`ServiceConfig::explain_sample`].
    explain_sample: usize,
    /// Monotonic served-query sequence driving explain sampling. Workers
    /// claim one span per batch with a single `fetch_add`.
    served_seq: AtomicU64,
    /// Last-N sampled explain reports, newest last.
    explains: Mutex<VecDeque<ExplainReport>>,
}

impl Shared {
    pub(crate) fn current_snapshot(&self) -> Arc<Generation> {
        Arc::clone(&lock(&self.current))
    }

    pub(crate) fn generation_number(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    pub(crate) fn pending(&self) -> usize {
        lock(&self.queue).len()
    }

    pub(crate) fn stats(&self) -> ServeStats {
        ServeStats {
            requests: self.metrics.requests.value(),
            batches: self.metrics.batches.value(),
            swaps: self.metrics.swaps.value(),
            dropped_replies: self.metrics.dropped_replies.value(),
            per_generation: lock(&self.per_generation)
                .iter()
                .map(|(&generation, &count)| (generation, count))
                .collect(),
            swap_latency: self.metrics.swap_latency.snapshot(),
        }
    }

    pub(crate) fn recent_explains(&self) -> Vec<ExplainReport> {
        lock(&self.explains).iter().cloned().collect()
    }
}

/// The concurrent estimation service. See the module docs for the swap
/// protocol and concurrency guarantees.
pub struct EstimatorService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for EstimatorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EstimatorService")
            .field("workers", &self.workers.len())
            .field("generation", &self.generation())
            .finish()
    }
}

impl EstimatorService {
    /// Starts a service answering batches against `synopsis` (installed
    /// as generation 1) with `config.workers` worker threads.
    #[must_use]
    pub fn start(synopsis: Synopsis, config: ServiceConfig) -> Self {
        let shared = Arc::new(Shared {
            generation: AtomicU64::new(1),
            current: Mutex::new(Arc::new(Generation { number: 1, synopsis })),
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            metrics: ServiceMetrics::default(),
            per_generation: Mutex::new(BTreeMap::new()),
            explain_sample: config.explain_sample,
            served_seq: AtomicU64::new(0),
            explains: Mutex::new(VecDeque::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self { shared, workers }
    }

    /// The current generation number (1 until the first swap).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.shared.generation.load(Ordering::Acquire)
    }

    /// The currently serving snapshot. The returned `Arc` stays valid —
    /// and its synopsis immutable — even across later swaps.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Generation> {
        self.shared.current_snapshot()
    }

    /// Batches not yet picked up by a worker.
    #[must_use]
    pub fn pending(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Submits a batch of typed [`Query`] values; returns a ticket
    /// redeemable for the [`BatchReply`]. Empty batches are answered
    /// immediately by a worker with an empty estimate list. Raw range
    /// triples convert via `Query::from(&ranges[..])`.
    #[must_use]
    pub fn submit(&self, queries: Vec<Query>) -> BatchTicket {
        let (tx, rx) = mpsc::channel();
        let n = u64::try_from(queries.len()).unwrap_or(u64::MAX);
        self.shared.metrics.requests.add(n);
        self.shared.metrics.batches.increment();
        if dbhist_telemetry::enabled() {
            let w = wellknown();
            w.serve_requests.add(n);
            w.serve_batches.increment();
        }
        lock(&self.shared.queue).push_back(Job { queries, enqueued: Instant::now(), reply: tx });
        self.shared.ready.notify_one();
        BatchTicket { rx }
    }

    /// Submits `queries` and blocks for the reply.
    ///
    /// # Errors
    ///
    /// Returns an error only if the service is torn down mid-request.
    pub fn estimate_batch(&self, queries: Vec<Query>) -> Result<BatchReply, SynopsisError> {
        self.submit(queries).wait().ok_or_else(|| SynopsisError::InvalidConfig {
            parameter: "service",
            reason: "estimator service shut down before answering".to_string(),
        })
    }

    /// Installs `synopsis` as the new serving generation and returns its
    /// number. In-flight batches finish on the generation they started
    /// with; the old synopsis is dropped when its last holder releases
    /// it. No query is ever dropped by a swap.
    pub fn swap(&self, synopsis: Synopsis) -> u64 {
        let started = Instant::now();
        let mut current = lock(&self.shared.current);
        let number = current.number + 1;
        *current = Arc::new(Generation { number, synopsis });
        // Publish after the Arc is installed: a worker that sees the new
        // number will find (at least) this generation under the lock.
        self.shared.generation.store(number, Ordering::Release);
        drop(current);
        let latency_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.shared.metrics.swaps.increment();
        self.shared.metrics.swap_latency.record(latency_ns);
        journal().publish(JournalEvent::GenerationSwap { generation: number, latency_ns });
        if dbhist_telemetry::enabled() {
            let w = wellknown();
            w.serve_swaps.increment();
            w.serve_swap_latency.record(latency_ns);
            w.serve_journal_events.increment();
        }
        number
    }

    /// Rebuilds `maintained` from `relation` (re-persisting if it has a
    /// snapshot path) and swaps the rebuilt synopsis in. Returns the new
    /// generation number.
    ///
    /// # Errors
    ///
    /// Propagates rebuild/persist failures; the serving generation is
    /// untouched on error.
    pub fn swap_rebuilt(
        &self,
        maintained: &mut MaintainedDbHistogram,
        relation: &Relation,
    ) -> Result<u64, SynopsisError> {
        maintained.rebuild(relation)?;
        Ok(self.swap(Synopsis::Mhist(maintained.synopsis().clone())))
    }

    /// Swaps in a clone of an ingest session's current synopsis, so
    /// readers see every batch applied so far without interrupting the
    /// stream (the session keeps ingesting into its own copy; swap
    /// again after further batches or a re-split). Returns the new
    /// generation number.
    pub fn swap_ingested(&self, session: &crate::ingest::IngestSession) -> u64 {
        self.swap(Synopsis::Mhist(session.estimator().synopsis().clone()))
    }

    /// Loads a persisted synopsis from `path` and swaps it in. Returns
    /// the new generation number.
    ///
    /// # Errors
    ///
    /// Propagates snapshot load/validation failures; the serving
    /// generation is untouched on error.
    pub fn swap_from_snapshot(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<u64, SynopsisError> {
        Ok(self.swap(SynopsisBuilder::from_snapshot(path)?))
    }

    /// Cumulative request/batch/swap counters, the per-generation served
    /// distribution, and the swap-latency histogram.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        self.shared.stats()
    }

    /// The most recent sampled [`ExplainReport`]s (oldest first, at most
    /// [`EXPLAIN_RING_CAPACITY`]). Empty unless
    /// [`ServiceConfig::explain_sample`] is non-zero.
    #[must_use]
    pub fn recent_explains(&self) -> Vec<ExplainReport> {
        self.shared.recent_explains()
    }

    /// The service's shared state, for the observability endpoint
    /// ([`crate::observe`]).
    pub(crate) fn shared(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Snapshot of the submission-to-reply latency histogram (one record
    /// per request), for p50/p99/p999 reporting.
    #[must_use]
    pub fn latency(&self) -> HistogramSnapshot {
        self.shared.metrics.latency.snapshot()
    }
}

impl Drop for EstimatorService {
    /// Graceful teardown: workers drain every queued batch before
    /// exiting, so no submitted query is lost.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Retains a sampled explain report in the last-N ring and publishes the
/// matching [`JournalEvent::QuerySampled`].
fn publish_sampled(shared: &Shared, generation: u64, report: ExplainReport) {
    journal().publish(JournalEvent::QuerySampled {
        generation,
        estimate: report.estimate,
        path: report.path.as_str().to_string(),
    });
    if dbhist_telemetry::enabled() {
        wellknown().serve_journal_events.increment();
    }
    let mut ring = lock(&shared.explains);
    if ring.len() >= EXPLAIN_RING_CAPACITY {
        ring.pop_front();
    }
    ring.push_back(report);
}

fn worker_loop(shared: &Shared) {
    let mut snapshot = shared.current_snapshot();
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.ready.wait(queue).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { break };
        // Acquire a snapshot per batch: one atomic load; the mutex is
        // taken only when a swap actually happened.
        if shared.generation.load(Ordering::Acquire) != snapshot.number {
            snapshot = shared.current_snapshot();
        }
        let n = u64::try_from(job.queries.len()).unwrap_or(u64::MAX);
        let sample = u64::try_from(shared.explain_sample).unwrap_or(u64::MAX);
        // Claim this batch's span of the served-query sequence with one
        // atomic op; individual queries are then sampled positionally.
        let first_seq =
            if sample > 0 { shared.served_seq.fetch_add(n, Ordering::AcqRel) } else { 0 };
        let estimates: Vec<f64> = job
            .queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let seq = first_seq.wrapping_add(u64::try_from(i).unwrap_or(u64::MAX));
                if sample > 0 && seq % sample == 0 {
                    if let Ok((est, report)) = snapshot.synopsis.try_estimate_explained(q) {
                        publish_sampled(shared, snapshot.number, report);
                        return est;
                    }
                }
                snapshot.synopsis.estimate(q)
            })
            .collect();
        *lock(&shared.per_generation).entry(snapshot.number).or_insert(0) += n;
        let elapsed_ns = u64::try_from(job.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let telemetry = dbhist_telemetry::enabled();
        for _ in 0..job.queries.len() {
            shared.metrics.latency.record(elapsed_ns);
            if telemetry {
                wellknown().serve_latency.record(elapsed_ns);
            }
        }
        if job.reply.send(BatchReply { generation: snapshot.number, estimates }).is_err() {
            shared.metrics.dropped_replies.increment();
            if telemetry {
                wellknown().serve_dropped_replies.increment();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    fn relation(seed: u64) -> Relation {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..2048)
            .map(|i| {
                let i = i + seed;
                vec![(i % 8) as u32, ((i / 2) % 8) as u32, ((i / 8) % 4) as u32]
            })
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    fn build(seed: u64, budget: usize) -> Synopsis {
        SynopsisBuilder::new(&relation(seed)).budget(budget).build().unwrap()
    }

    fn queries() -> Vec<Query> {
        vec![
            Query::range(0, 0, 3),
            Query::range(0, 0, 3).eq(2, 1),
            Query::range(1, 2, 5).and(2, 0, 2),
            Query::range(0, 1, 6).and(1, 0, 7).and(2, 0, 3),
        ]
    }

    #[test]
    fn batches_match_direct_estimation() {
        let synopsis = build(0, 512);
        let expected: Vec<f64> = queries().iter().map(|q| synopsis.estimate(q)).collect();
        let service = EstimatorService::start(
            synopsis,
            ServiceConfig { workers: 2, ..ServiceConfig::default() },
        );
        let reply = service.estimate_batch(queries()).unwrap();
        assert_eq!(reply.generation, 1);
        for (got, want) in reply.estimates.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits(), "service must be bit-identical");
        }
        let stats = service.stats();
        assert_eq!(stats.requests, queries().len() as u64);
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.dropped_replies, 0);
        assert_eq!(service.latency().count, queries().len() as u64);
    }

    #[test]
    fn swap_installs_new_generation_without_dropping_queries() {
        let old = build(0, 512);
        let new = build(1, 768);
        let old_expected: Vec<f64> = queries().iter().map(|q| old.estimate(q)).collect();
        let new_expected: Vec<f64> = queries().iter().map(|q| new.estimate(q)).collect();

        let service =
            EstimatorService::start(old, ServiceConfig { workers: 2, ..ServiceConfig::default() });
        // Hold the old snapshot across the swap: it must stay readable.
        let held = service.snapshot();
        let before = service.estimate_batch(queries()).unwrap();
        let gen2 = service.swap(new);
        assert_eq!(gen2, 2);
        assert_eq!(service.generation(), 2);
        let after = service.estimate_batch(queries()).unwrap();

        assert_eq!(before.generation, 1);
        assert_eq!(after.generation, 2);
        for ((got, want_old), want_new) in
            before.estimates.iter().zip(&old_expected).zip(&new_expected)
        {
            assert_eq!(got.to_bits(), want_old.to_bits());
            let _ = want_new;
        }
        for (got, want) in after.estimates.iter().zip(&new_expected) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        // The retired generation is still answerable through the held Arc.
        for (q, want) in queries().iter().zip(&old_expected) {
            assert_eq!(held.synopsis.estimate(q).to_bits(), want.to_bits());
        }
        assert_eq!(service.stats().swaps, 1);
        assert_eq!(service.stats().dropped_replies, 0);
    }

    #[test]
    fn concurrent_submitters_get_generation_consistent_answers() {
        let synopsis = build(0, 512);
        let gens = [build(0, 512), build(1, 512), build(2, 768)];
        // expected[g][q]: generation g+1 answered serially.
        let mut expected: Vec<Vec<f64>> =
            vec![queries().iter().map(|q| synopsis.estimate(q)).collect()];
        for g in &gens {
            expected.push(queries().iter().map(|q| g.estimate(q)).collect());
        }
        let service = EstimatorService::start(
            synopsis,
            ServiceConfig { workers: 3, ..ServiceConfig::default() },
        );
        std::thread::scope(|s| {
            for _ in 0..4 {
                let service = &service;
                let expected = &expected;
                s.spawn(move || {
                    for _ in 0..40 {
                        let reply = service.estimate_batch(queries()).unwrap();
                        let g = usize::try_from(reply.generation).unwrap_or(0);
                        let want = &expected[g - 1];
                        for (got, want) in reply.estimates.iter().zip(want) {
                            assert_eq!(
                                got.to_bits(),
                                want.to_bits(),
                                "generation {g} must answer bit-identically"
                            );
                        }
                    }
                });
            }
            for g in gens {
                service.swap(g);
            }
        });
        assert_eq!(service.stats().swaps, 3);
        assert_eq!(service.stats().dropped_replies, 0);
    }

    #[test]
    fn swap_from_persisted_snapshot_round_trips() {
        let dir = std::env::temp_dir().join("dbhist-service-swap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("gen2.dbhs");
        let next = build(1, 768);
        next.save(&path).unwrap();
        let expected: Vec<f64> = queries().iter().map(|q| next.estimate(q)).collect();

        let service = EstimatorService::start(build(0, 512), ServiceConfig::default());
        let gen = service.swap_from_snapshot(&path).unwrap();
        assert_eq!(gen, 2);
        let reply = service.estimate_batch(queries()).unwrap();
        assert_eq!(reply.generation, 2);
        for (got, want) in reply.estimates.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits(), "loaded snapshot must be bit-identical");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn explain_sampling_collects_reports_and_per_generation_counts() {
        use crate::explain::QueryPath;
        let synopsis = build(0, 512);
        let expected: Vec<f64> = queries().iter().map(|q| synopsis.estimate(q)).collect();
        let service =
            EstimatorService::start(synopsis, ServiceConfig { workers: 1, explain_sample: 1 });
        let reply = service.estimate_batch(queries()).unwrap();
        for (got, want) in reply.estimates.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits(), "sampled answers stay bit-identical");
        }
        let reports = service.recent_explains();
        assert_eq!(reports.len(), queries().len(), "sample=1 explains every query");
        for r in &reports {
            assert!(
                matches!(
                    r.path,
                    QueryPath::KernelHit
                        | QueryPath::PlanCacheHit
                        | QueryPath::PlanCompiled
                        | QueryPath::TableTotal
                ),
                "report must carry the resolved path"
            );
        }
        let stats = service.stats();
        assert_eq!(stats.per_generation, vec![(1, queries().len() as u64)]);
        assert_eq!(stats.swap_latency.count, 0);

        service.swap(build(1, 768));
        let _ = service.estimate_batch(queries()).unwrap();
        let stats = service.stats();
        assert_eq!(stats.per_generation.len(), 2, "traffic is split by generation");
        assert_eq!(stats.per_generation[1].0, 2);
        assert_eq!(stats.swap_latency.count, 1, "each swap records its install latency");
    }

    #[test]
    fn sampling_off_keeps_explain_ring_empty() {
        let service = EstimatorService::start(build(0, 512), ServiceConfig::default());
        let _ = service.estimate_batch(queries()).unwrap();
        assert!(service.recent_explains().is_empty());
    }

    #[test]
    fn drop_drains_queued_batches() {
        let service = EstimatorService::start(
            build(0, 512),
            ServiceConfig { workers: 1, ..ServiceConfig::default() },
        );
        let tickets: Vec<BatchTicket> = (0..16).map(|_| service.submit(queries())).collect();
        drop(service);
        for t in tickets {
            assert!(t.wait().is_some(), "teardown must drain queued batches, not drop them");
        }
    }
}
