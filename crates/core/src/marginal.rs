//! The paper's `ComputeMarginal` algorithm (§3.3.1, Fig. 3).
//!
//! Given the junction tree `J(M)` of a decomposable model, one factor per
//! clique, and a target attribute set `S_Q`, computes (an approximation
//! of) the marginal frequency distribution over `S_Q` while minimizing the
//! number of factor multiplications and projections — instead of naively
//! reconstructing the full joint via Eq. 2 and projecting it down.
//!
//! Two small deviations from the published pseudo-code, both corrections:
//!
//! * Steps 13/15 test and recurse on `C_j ∩ diff`; attributes of `diff`
//!   that live *deeper* in `C_j`'s subtree (but not in `C_j` itself) would
//!   be missed. We use `cover(C_j) ∩ diff`, consistent with the cover
//!   machinery the paper itself introduces.
//! * The root is chosen as the clique sharing the most attributes with
//!   `S_Q` (the paper roots arbitrarily); this only reduces work.
//!
//! Since the plan-based query engine landed (see [`crate::plan`]), the
//! public entry points here — [`compute_marginal`],
//! [`compute_marginal_with_stats`], [`estimate_mass`] — compile the
//! recursion into a [`crate::plan::MarginalPlan`] / [`crate::plan::MassPlan`]
//! and execute it. The direct recursion is retained as
//! [`compute_marginal_interpreted`] / [`estimate_mass_interpreted`]: it is
//! the executable specification the planner is property-tested against
//! (`tests/plan_equivalence.rs`) and the baseline the benches compare
//! planned execution to.
//!
//! [`compute_marginal_naive`] implements the baseline the paper argues
//! against — build the estimate over *all* attributes, then project — and
//! is used by tests and benches to quantify the savings.

use dbhist_distribution::AttrSet;
use dbhist_model::JunctionTree;

use crate::error::SynopsisError;
use crate::factor::Factor;
use crate::plan::{execute_marginal, execute_mass, MarginalPlan, MassPlan, QueryTrace, SHED_LIMIT};
use crate::query::Query;

/// Operation counts of a marginal computation.
///
/// The coarse, historical counter pair; the plan path records the richer
/// [`QueryTrace`] and folds it down via `From<QueryTrace>` (applied sheds
/// count as projections, exactly as the interpreter counted them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MarginalStats {
    /// Factor multiplications performed.
    pub products: usize,
    /// Proper projections performed (projections onto the full attribute
    /// set are free and not counted).
    pub projections: usize,
}

impl From<QueryTrace> for MarginalStats {
    fn from(t: QueryTrace) -> Self {
        Self { products: t.products, projections: t.projections + t.sheds }
    }
}

struct Ctx<'a, F> {
    tree: &'a JunctionTree,
    factors: &'a [F],
    children: Vec<Vec<usize>>,
    cover: Vec<AttrSet>,
    stats: MarginalStats,
}

impl<'a, F: Factor> Ctx<'a, F> {
    fn project(&mut self, factor: &F, attrs: &AttrSet) -> Result<F, SynopsisError> {
        if factor.attrs() == attrs {
            return Ok(factor.clone());
        }
        self.stats.projections += 1;
        factor.project(attrs)
    }

    fn product(&mut self, a: &F, b: &F) -> Result<F, SynopsisError> {
        self.stats.products += 1;
        a.product(b)
    }

    /// Fig. 3 recursion: the marginal over `sq` from the subtree rooted at
    /// clique `node`. Precondition: `sq ⊆ cover(node)`.
    fn go(&mut self, node: usize, sq: &AttrSet) -> Result<F, SynopsisError> {
        // Copy the `'a` references out of `self` so clique/factor borrows
        // don't conflict with the `&mut self` helper calls below.
        let cliques: &'a [AttrSet] = self.tree.cliques();
        let factors: &'a [F] = self.factors;
        let clique = &cliques[node];
        // Step 1: the clique alone suffices.
        if sq.is_subset(clique) {
            return self.project(&factors[node], sq);
        }
        let int = clique.intersection(sq);
        let diff = sq.difference(clique);
        debug_assert!(!diff.is_empty());

        // Steps 4–10: a single child's subtree covers everything missing.
        let single = self.children[node].iter().copied().find(|&j| diff.is_subset(&self.cover[j]));
        if let Some(j) = single {
            if int.is_empty() {
                // Step 5: delegate wholesale.
                return self.go(j, sq);
            }
            // Steps 7–9.
            let sij = clique.intersection(&cliques[j]);
            let h1 = self.go(j, &diff.union(&sij))?;
            let prod = self.product(&factors[node], &h1)?;
            return self.project(&prod, sq);
        }

        // Steps 11–19: split `diff` across the children that cover parts
        // of it (each attribute lives in exactly one subtree by the
        // clique-intersection property).
        let parts: Vec<(usize, AttrSet, AttrSet)> = self.children[node]
            .iter()
            .copied()
            .filter_map(|j| {
                let part = self.cover[j].intersection(&diff);
                if part.is_empty() {
                    None
                } else {
                    let sij = clique.intersection(&cliques[j]);
                    Some((j, part, sij))
                }
            })
            .collect();
        debug_assert_eq!(
            parts.iter().fold(AttrSet::empty(), |acc, (_, p, _)| acc.union(p)),
            diff,
            "diff attributes must be covered by children"
        );
        let mut h = factors[node].clone();
        for (idx, (j, part, sij)) in parts.iter().enumerate() {
            let h1 = self.go(*j, &part.union(sij))?;
            h = self.product(&h, &h1)?;
            // Variable-elimination optimization: shed attributes that
            // neither the query nor the separators of the remaining
            // children need — while the factor is small enough for the
            // projection to pay off (one of the paper's deferred
            // "practical optimizations").
            let mut keep = sq.intersection(h.attrs());
            for (_, _, s) in &parts[idx + 1..] {
                keep = keep.union(s);
            }
            if !keep.is_empty() {
                h = self.project_if_cheap(h, &keep)?;
            }
        }
        self.project(&h, sq)
    }
}

impl<'a, F: Factor> Ctx<'a, F> {
    /// Projects `factor` onto `attrs` only when the factor is small enough
    /// for the projection to pay off; otherwise returns it unchanged (its
    /// attribute set is a superset of what was asked for, which the loose
    /// recursion tolerates).
    fn project_if_cheap(&mut self, factor: F, attrs: &AttrSet) -> Result<F, SynopsisError> {
        if factor.attrs() == attrs || factor.len_hint() > SHED_LIMIT {
            Ok(factor)
        } else {
            self.project(&factor, attrs)
        }
    }

    /// Like [`Ctx::go`], but may return a factor over a *superset* of
    /// `sq`, skipping projections on large intermediates. Soundness: a
    /// retained extra attribute always lives in exactly one subtree (by
    /// the clique-intersection property), so it can never appear on both
    /// sides of a later product — product separators stay exactly the
    /// model separators, and `mass_in_box` simply ignores unconstrained
    /// extra attributes.
    fn go_loose(&mut self, node: usize, sq: &AttrSet) -> Result<F, SynopsisError> {
        let cliques: &'a [AttrSet] = self.tree.cliques();
        let factors: &'a [F] = self.factors;
        let clique = &cliques[node];
        // Clique factors are small; project eagerly as in Fig. 3 step 1.
        if sq.is_subset(clique) {
            return self.project(&factors[node], sq);
        }
        let int = clique.intersection(sq);
        let diff = sq.difference(clique);
        let single = self.children[node].iter().copied().find(|&j| diff.is_subset(&self.cover[j]));
        if let Some(j) = single {
            if int.is_empty() {
                return self.go_loose(j, sq);
            }
            let sij = clique.intersection(&cliques[j]);
            let h1 = self.go_loose(j, &diff.union(&sij))?;
            let prod = self.product(&factors[node], &h1)?;
            return self.project_if_cheap(prod, sq);
        }
        let parts: Vec<(usize, AttrSet, AttrSet)> = self.children[node]
            .iter()
            .copied()
            .filter_map(|j| {
                let part = self.cover[j].intersection(&diff);
                if part.is_empty() {
                    None
                } else {
                    let sij = clique.intersection(&cliques[j]);
                    Some((j, part, sij))
                }
            })
            .collect();
        let mut h = factors[node].clone();
        for (idx, (j, part, sij)) in parts.iter().enumerate() {
            let h1 = self.go_loose(*j, &part.union(sij))?;
            h = self.product(&h, &h1)?;
            // Shed attributes the query and the remaining separators no
            // longer need — but only while the factor is small.
            let mut keep = sq.intersection(h.attrs());
            for (_, _, s) in &parts[idx + 1..] {
                keep = keep.union(s);
            }
            if !keep.is_empty() {
                h = self.project_if_cheap(h, &keep)?;
            }
        }
        self.project_if_cheap(h, sq)
    }
}

/// Estimates the frequency mass of the model's marginal over `target`
/// inside the conjunctive `query` — the selectivity-estimation fast path.
///
/// Computes the same model estimate as
/// `compute_marginal(tree, factors, target)?.mass_in_box(query.ranges())` while
/// (1) factorizing over independent model components (exact under the
/// model; avoids cross-component products entirely) and (2) skipping the
/// final projected-histogram materialization, whose overlay construction
/// dominates query time on multi-clique targets. For exact factors the
/// two paths agree to rounding; for histogram factors this path is both
/// faster and — by skipping needless approximate operations — at least
/// as accurate.
///
/// One-shot wrapper over the plan engine: compiles a
/// [`crate::plan::MassPlan`] and executes it once. Workloads that repeat
/// query shapes should go through a [`crate::plan::QueryEngine`] (as
/// [`crate::synopsis::DbHistogram`] does) to amortize compilation.
///
/// # Errors
///
/// Propagates factor operation failures; rejects targets with attributes
/// the model does not cover.
pub fn estimate_mass<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
    query: &Query,
) -> Result<f64, SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    assert!(!target.is_empty(), "target attribute set must be non-empty");
    let views = tree.rooted_views();
    let plan = MassPlan::compile(tree, &views, target)?;
    let mut trace = QueryTrace::default();
    execute_mass(&plan, factors, query, &mut trace)
}

/// [`estimate_mass`] via the direct recursive interpreter — the executable
/// specification the plan path is verified against.
///
/// # Errors
///
/// Propagates factor operation failures; rejects targets with attributes
/// the model does not cover.
pub fn estimate_mass_interpreted<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
    query: &Query,
) -> Result<f64, SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    assert!(!target.is_empty(), "target attribute set must be non-empty");
    let ranges = query.ranges();

    // Model components (cliques connected by *non-empty* separators) are
    // mutually independent by construction: the estimate factorizes as
    // N · Π (mass_component / N). Evaluating per component sidesteps the
    // cross-component factor products entirely — they carry no
    // information and their intermediate blow-up only compounds
    // approximation error.
    let n_cliques = tree.len();
    let mut comp = vec![usize::MAX; n_cliques];
    let mut next_comp = 0usize;
    for start in 0..n_cliques {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![start];
        comp[start] = next_comp;
        while let Some(c) = stack.pop() {
            for (other, sep) in tree.neighbors(c) {
                if !sep.is_empty() && comp[other] == usize::MAX {
                    comp[other] = next_comp;
                    stack.push(other);
                }
            }
        }
        next_comp += 1;
    }
    // Group target attributes by the component that covers them.
    let mut groups: Vec<AttrSet> = vec![AttrSet::empty(); next_comp];
    'attrs: for a in target.iter() {
        for (i, clique) in tree.cliques().iter().enumerate() {
            if clique.contains(a) {
                groups[comp[i]] = groups[comp[i]].with(a);
                continue 'attrs;
            }
        }
        return Err(SynopsisError::Budget {
            reason: format!("attribute {a} is not covered by the model"),
        });
    }

    let total = factors.first().map_or(0.0, Factor::total);
    let mut mass = total;
    for (g, group) in groups.iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        // Evaluate this component's marginal mass with the loose
        // recursion, rooted at its best-overlapping clique.
        // A non-empty group implies a populated component, so the max
        // always exists; skipping is the safe degenerate answer anyway.
        let Some(root) = (0..n_cliques)
            .filter(|&i| comp[i] == g)
            .max_by_key(|&i| (tree.cliques()[i].intersection(group).len(), usize::MAX - i))
        else {
            continue;
        };
        let rooted = tree.rooted(root);
        let mut ctx = Ctx {
            tree,
            factors,
            children: rooted.children,
            cover: rooted.cover,
            stats: MarginalStats::default(),
        };
        let loose = ctx.go_loose(root, group)?;
        let group_mass = loose.mass_in_box(ranges);
        if total > 0.0 {
            mass *= group_mass / total;
        } else {
            return Ok(0.0);
        }
    }
    Ok(mass)
}

/// Computes the marginal factor over `target` from a junction tree and its
/// clique factors, returning the factor and operation counts.
///
/// One-shot wrapper over the plan engine: compiles a
/// [`crate::plan::MarginalPlan`] and executes it once (identical results
/// and operation counts to the interpreter, see
/// [`compute_marginal_interpreted`]).
///
/// # Errors
///
/// Propagates factor operation failures; returns a budget-style error if
/// `target` mentions attributes not covered by any clique.
pub fn compute_marginal_with_stats<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
) -> Result<(F, MarginalStats), SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    assert!(!target.is_empty(), "target attribute set must be non-empty");
    let views = tree.rooted_views();
    let plan = MarginalPlan::compile(tree, &views, target)?;
    let mut trace = QueryTrace::default();
    let f = execute_marginal(&plan, factors, &mut trace)?.into_owned();
    Ok((f, MarginalStats::from(trace)))
}

/// [`compute_marginal_with_stats`] via the direct recursive interpreter —
/// the executable specification the plan path is verified against.
///
/// # Errors
///
/// Propagates factor operation failures; returns a budget-style error if
/// `target` mentions attributes not covered by any clique.
pub fn compute_marginal_interpreted<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
) -> Result<(F, MarginalStats), SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    assert!(!target.is_empty(), "target attribute set must be non-empty");
    // Root at the clique overlapping the target most (never hurts).
    let Some(root) = (0..tree.len())
        .max_by_key(|&i| (tree.cliques()[i].intersection(target).len(), usize::MAX - i))
    else {
        return Err(SynopsisError::Budget { reason: "empty junction tree".into() });
    };
    let rooted = tree.rooted(root);
    if let Some(missing) = target.iter().find(|&a| !rooted.cover[root].contains(a)) {
        return Err(SynopsisError::Budget {
            reason: format!("attribute {missing} is not covered by the model"),
        });
    }
    let mut ctx = Ctx {
        tree,
        factors,
        children: rooted.children,
        cover: rooted.cover,
        stats: MarginalStats::default(),
    };
    let f = ctx.go(root, target)?;
    Ok((f, ctx.stats))
}

/// Computes the marginal factor over `target` (see
/// [`compute_marginal_with_stats`]).
///
/// # Errors
///
/// Propagates factor operation failures.
pub fn compute_marginal<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
) -> Result<F, SynopsisError> {
    compute_marginal_with_stats(tree, factors, target).map(|(f, _)| f)
}

/// Exact selectivity evaluation for **exact** clique factors via
/// junction-tree message passing with evidence.
///
/// Computes `Σ_{x ∈ box} Π_C f_C(x_C) / Π_S f_S(x_S)` — the paper's
/// closed-form estimate (Eq. 2) summed over the query box — in a single
/// pass over each clique's support: messages flow leaf-to-root indexed by
/// separator values, so no joint is ever materialized. This is the
/// numerically identical but asymptotically optimal route for the Fig. 6
/// "unlimited-bucket clique histograms" configuration (the generic
/// factor-algebra route materializes cross products whose size explodes
/// with model complexity).
///
/// Constraints on attributes outside the model's cliques are ignored
/// (they would be unconstrained marginals), matching the behaviour of
/// `mass_in_box` on factors.
///
/// # Errors
///
/// Currently infallible (the `Result` reserves room for factor-layer
/// failures); contradictory constraints yield `Ok(0.0)`.
pub fn exact_box_mass(
    tree: &JunctionTree,
    factors: &[crate::factor::ExactFactor],
    ranges: &[(dbhist_distribution::AttrId, u32, u32)],
) -> Result<f64, SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    use std::collections::BTreeMap;

    // Fold the constraints: attr → intersected (lo, hi).
    let mut constraint: BTreeMap<u16, (u32, u32)> = BTreeMap::new();
    for &(a, lo, hi) in ranges {
        let c = constraint.entry(a).or_insert((lo, hi));
        *c = (c.0.max(lo), c.1.min(hi));
        if c.0 > c.1 {
            return Ok(0.0);
        }
    }

    let rooted = tree.rooted(0);
    // Post-order evaluation without recursion (tree is tiny, but avoid
    // borrow juggling): process children before parents.
    let mut order = vec![rooted.root];
    let mut i = 0;
    while i < order.len() {
        order.extend(rooted.children[order[i]].iter().copied());
        i += 1;
    }
    // messages[c] = map from c's separator-with-parent key → weight.
    // Ordered maps keep the message fold deterministic: the division pass
    // below visits separator keys in the same order on every run.
    let mut messages: Vec<Option<BTreeMap<Vec<u32>, f64>>> = vec![None; tree.len()];
    let mut root_mass = 0.0;
    for &node in order.iter().rev() {
        let factor = &factors[node].0;
        let attrs = factor.attrs().clone();
        // Positions of each child's separator within this clique's key.
        let mut child_seps: Vec<(usize, Vec<usize>)> =
            Vec::with_capacity(rooted.children[node].len());
        for &ch in &rooted.children[node] {
            let sep = tree.cliques()[node].intersection(&tree.cliques()[ch]);
            child_seps.push((ch, positions_of(&attrs, &sep)?));
        }
        // Constraint positions within this clique.
        let cell_ok = |key: &[u32]| -> bool {
            attrs.iter().enumerate().all(|(p, a)| {
                constraint.get(&a).is_none_or(|&(lo, hi)| key[p] >= lo && key[p] <= hi)
            })
        };
        let parent = rooted.parent[node];
        if parent == usize::MAX {
            // Root (processed last: `order` is parent-before-child and we
            // iterate it in reverse): the final mass.
            for (key, f) in factor.iter() {
                if cell_ok(key) {
                    root_mass += folded_weight(f, key, &child_seps, &messages);
                }
            }
            continue;
        }
        // Non-root: message over the separator with the parent.
        let parent_sep = tree.cliques()[node].intersection(&tree.cliques()[parent]);
        let sep_pos = positions_of(&attrs, &parent_sep)?;
        // Unrestricted separator marginal of this clique (the divisor).
        let mut sep_marginal: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (key, f) in factor.iter() {
            let sub: Vec<u32> = sep_pos.iter().map(|&p| key[p]).collect();
            *sep_marginal.entry(sub).or_insert(0.0) += f;
        }
        let divisor_for_empty = factor.total();
        let mut out: BTreeMap<Vec<u32>, f64> = BTreeMap::new();
        for (key, f) in factor.iter() {
            if !cell_ok(key) {
                continue;
            }
            let w = folded_weight(f, key, &child_seps, &messages);
            // lint:allow-next-line(float-cmp): skip exact-zero cells, not a tolerance test
            if w != 0.0 {
                let sub: Vec<u32> = sep_pos.iter().map(|&p| key[p]).collect();
                *out.entry(sub).or_insert(0.0) += w;
            }
        }
        for (sub, w) in &mut out {
            let divisor = if sub.is_empty() {
                divisor_for_empty
            } else {
                sep_marginal.get(sub).copied().unwrap_or(0.0)
            };
            *w = if divisor > 0.0 { *w / divisor } else { 0.0 };
        }
        messages[node] = Some(out);
    }
    Ok(root_mass)
}

/// Positions of each of `sep`'s attributes within `attrs`.
///
/// # Errors
///
/// Errors if a separator attribute is missing from the clique factor —
/// the factor/tree pairing handed in is inconsistent.
fn positions_of(attrs: &AttrSet, sep: &AttrSet) -> Result<Vec<usize>, SynopsisError> {
    sep.iter()
        .map(|a| {
            attrs.position(a).ok_or_else(|| SynopsisError::Budget {
                reason: format!("separator attribute {a} missing from clique factor"),
            })
        })
        .collect()
}

/// Folds child messages into a clique cell's weight. A missing message
/// (impossible under the parent-before-child evaluation order) contributes
/// zero mass rather than aborting.
fn folded_weight(
    base: f64,
    key: &[u32],
    child_seps: &[(usize, Vec<usize>)],
    messages: &[Option<std::collections::BTreeMap<Vec<u32>, f64>>],
) -> f64 {
    let mut w = base;
    for (ch, pos) in child_seps {
        let sub: Vec<u32> = pos.iter().map(|&p| key[p]).collect();
        let msg = messages.get(*ch).and_then(Option::as_ref);
        w *= msg.map_or(0.0, |m| m.get(&sub).copied().unwrap_or(0.0));
        // lint:allow-next-line(float-cmp): exact multiplicative zero short-circuit
        if w == 0.0 {
            break;
        }
    }
    w
}

/// The naive strategy (paper §3.3.1): multiply out the *entire* junction
/// tree into the full joint estimate of Eq. 2, then project onto `target`.
///
/// # Errors
///
/// Propagates factor operation failures.
pub fn compute_marginal_naive<F: Factor>(
    tree: &JunctionTree,
    factors: &[F],
    target: &AttrSet,
) -> Result<(F, MarginalStats), SynopsisError> {
    assert_eq!(tree.len(), factors.len(), "one factor per clique");
    let mut stats = MarginalStats::default();
    let rooted = tree.rooted(0);
    // Multiply cliques in a parent-before-child order so every product's
    // operands share exactly the junction-tree separator.
    let mut order = vec![rooted.root];
    let mut i = 0;
    while i < order.len() {
        order.extend(rooted.children[order[i]].iter().copied());
        i += 1;
    }
    let mut h = factors[order[0]].clone();
    for &c in &order[1..] {
        stats.products += 1;
        h = h.product(&factors[c])?;
    }
    if h.attrs() != target {
        stats.projections += 1;
        h = h.project(target)?;
    }
    Ok((h, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factor::ExactFactor;
    use dbhist_distribution::{Relation, Schema};
    use dbhist_model::{DecomposableModel, MarkovGraph};

    /// 5 attributes with chain dependencies 0-1, 1-2, plus pair 3-4.
    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 4), ("d", 3), ("e", 3)]).unwrap();
        let mut rows = Vec::new();
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..3000 {
            let a = (next() % 4) as u32;
            // b correlates with a; c with b; e with d.
            let b = if next() % 3 == 0 { (next() % 4) as u32 } else { a };
            let c = if next() % 3 == 0 { (next() % 4) as u32 } else { b };
            let d = (next() % 3) as u32;
            let e = if next() % 4 == 0 { (next() % 3) as u32 } else { d };
            rows.push(vec![a, b, c, d, e]);
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    fn model(rel: &Relation) -> DecomposableModel {
        let g = MarkovGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        DecomposableModel::new(rel.schema().clone(), g).unwrap()
    }

    fn exact_factors(rel: &Relation, m: &DecomposableModel) -> Vec<ExactFactor> {
        m.cliques().iter().map(|c| ExactFactor(rel.marginal(c).unwrap())).collect()
    }

    #[test]
    fn marginal_within_one_clique_is_exact() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let target = AttrSet::from_ids([0, 1]);
        let (f, stats) = compute_marginal_with_stats(m.junction_tree(), &factors, &target).unwrap();
        let truth = rel.marginal(&target).unwrap();
        for (k, v) in truth.iter() {
            assert!((f.0.frequency(k) - v).abs() < 1e-9);
        }
        assert_eq!(stats.products, 0, "single-clique targets need no products");
    }

    #[test]
    fn cross_clique_marginal_matches_model_estimate() {
        // Target {0, 2} spans the chain cliques {0,1} and {1,2}; the
        // result must equal the model's closed-form estimate marginalized.
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let target = AttrSet::from_ids([0, 2]);
        let (f, _) = compute_marginal_with_stats(m.junction_tree(), &factors, &target).unwrap();

        let f01 = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let f12 = rel.marginal(&AttrSet::from_ids([1, 2])).unwrap();
        let f1 = rel.marginal(&AttrSet::singleton(1)).unwrap();
        for a in 0..4u32 {
            for c in 0..4u32 {
                let expect: f64 = (0..4u32)
                    .map(|b| {
                        let den = f1.frequency(&[b]);
                        if den <= 0.0 {
                            0.0
                        } else {
                            f01.frequency(&[a, b]) * f12.frequency(&[b, c]) / den
                        }
                    })
                    .sum();
                assert!(
                    (f.0.frequency(&[a, c]) - expect).abs() < 1e-9,
                    "({a},{c}): {} vs {expect}",
                    f.0.frequency(&[a, c])
                );
            }
        }
    }

    #[test]
    fn efficient_equals_naive() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        for target in [
            AttrSet::from_ids([0]),
            AttrSet::from_ids([0, 2]),
            AttrSet::from_ids([0, 4]),
            AttrSet::from_ids([2, 3]),
            AttrSet::from_ids([0, 2, 4]),
        ] {
            let (fast, fast_stats) =
                compute_marginal_with_stats(m.junction_tree(), &factors, &target).unwrap();
            let (naive, naive_stats) =
                compute_marginal_naive(m.junction_tree(), &factors, &target).unwrap();
            for (k, v) in naive.0.iter() {
                assert!(
                    (fast.0.frequency(k) - v).abs() < 1e-6 * (1.0 + v.abs()),
                    "target {target}: key {k:?}"
                );
            }
            assert!(
                fast_stats.products <= naive_stats.products,
                "target {target}: {fast_stats:?} vs {naive_stats:?}"
            );
        }
    }

    #[test]
    fn planned_entry_point_matches_interpreter() {
        // The public entry points run the plan path; the interpreter is
        // the specification. Results and operation counts must coincide.
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        for target in [
            AttrSet::from_ids([0]),
            AttrSet::from_ids([0, 2]),
            AttrSet::from_ids([0, 4]),
            AttrSet::from_ids([2, 3]),
            AttrSet::from_ids([0, 1, 2, 3, 4]),
        ] {
            let (planned, planned_stats) =
                compute_marginal_with_stats(m.junction_tree(), &factors, &target).unwrap();
            let (interp, interp_stats) =
                compute_marginal_interpreted(m.junction_tree(), &factors, &target).unwrap();
            assert_eq!(planned_stats, interp_stats, "target {target}");
            assert_eq!(planned.attrs(), interp.attrs(), "target {target}");
            for (k, v) in interp.0.iter() {
                assert_eq!(
                    planned.0.frequency(k).to_bits(),
                    v.to_bits(),
                    "target {target}: key {k:?}"
                );
            }
        }
    }

    #[test]
    fn efficient_does_less_work_on_local_targets() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        // A single-attribute query touches one clique; the naive path
        // always multiplies out all |C|−1 junction edges.
        let (_, fast) =
            compute_marginal_with_stats(m.junction_tree(), &factors, &AttrSet::singleton(3))
                .unwrap();
        let (_, naive) =
            compute_marginal_naive(m.junction_tree(), &factors, &AttrSet::singleton(3)).unwrap();
        assert_eq!(fast.products, 0);
        assert_eq!(naive.products, m.junction_tree().len() - 1);
    }

    #[test]
    fn full_joint_target_works() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let all = rel.schema().all_attrs();
        let (f, _) = compute_marginal_with_stats(m.junction_tree(), &factors, &all).unwrap();
        assert_eq!(f.attrs(), &all);
        assert!((f.total() - rel.row_count() as f64).abs() < 1e-6);
    }

    #[test]
    fn uncovered_attribute_is_an_error() {
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let bad = AttrSet::from_ids([0, 9]);
        assert!(compute_marginal(m.junction_tree(), &factors, &bad).is_err());
        assert!(compute_marginal_interpreted(m.junction_tree(), &factors, &bad).is_err());
    }

    #[test]
    fn exact_box_mass_matches_factor_algebra() {
        // Message passing with evidence must reproduce the generic
        // factor-algebra estimate exactly, across query shapes.
        let rel = relation();
        let m = model(&rel);
        let factors = exact_factors(&rel, &m);
        let queries: Vec<Vec<(u16, u32, u32)>> = vec![
            vec![(0, 0, 1)],
            vec![(0, 0, 2), (2, 1, 3)],
            vec![(0, 1, 2), (3, 0, 1), (4, 1, 2)],
            vec![(0, 0, 3), (1, 0, 3), (2, 0, 3), (3, 0, 2), (4, 0, 2)],
            vec![(1, 2, 2), (4, 0, 0)],
        ];
        for ranges in queries {
            let attrs = AttrSet::from_ids(ranges.iter().map(|r| r.0));
            let (marg, _) =
                compute_marginal_with_stats(m.junction_tree(), &factors, &attrs).unwrap();
            let via_algebra = marg.0.range_mass(&ranges);
            let via_messages = exact_box_mass(m.junction_tree(), &factors, &ranges).unwrap();
            assert!(
                (via_algebra - via_messages).abs() < 1e-6 * (1.0 + via_algebra),
                "{ranges:?}: {via_algebra} vs {via_messages}"
            );
        }
        // Contradictory constraints give zero.
        assert_eq!(
            exact_box_mass(m.junction_tree(), &factors, &[(0, 0, 1), (0, 2, 3)]).unwrap(),
            0.0
        );
        // Empty predicate gives N.
        let n = rel.row_count() as f64;
        let whole = exact_box_mass(m.junction_tree(), &factors, &[]).unwrap();
        assert!((whole - n).abs() < 1e-6);
    }

    #[test]
    fn independence_model_marginals() {
        // Full-independence model: every cross-attribute marginal is a
        // product of singletons.
        let rel = relation();
        let m = DecomposableModel::independence(rel.schema().clone());
        let factors = exact_factors(&rel, &m);
        let target = AttrSet::from_ids([0, 3]);
        let (f, _) = compute_marginal_with_stats(m.junction_tree(), &factors, &target).unwrap();
        let f0 = rel.marginal(&AttrSet::singleton(0)).unwrap();
        let f3 = rel.marginal(&AttrSet::singleton(3)).unwrap();
        let n = rel.row_count() as f64;
        for a in 0..4u32 {
            for d in 0..3u32 {
                let expect = f0.frequency(&[a]) * f3.frequency(&[d]) / n;
                assert!((f.0.frequency(&[a, d]) - expect).abs() < 1e-9);
            }
        }
    }
}
