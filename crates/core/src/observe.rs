//! Dependency-free observability endpoint for the serving layer.
//!
//! [`EstimatorService::serve_observability`] binds a plain
//! [`std::net::TcpListener`] (no HTTP framework — the workspace adds no
//! dependencies) and answers four read-only routes:
//!
//! | route      | payload |
//! |------------|---------|
//! | `/metrics` | the process-wide telemetry registry in Prometheus text format |
//! | `/health`  | one JSON object: serving generation, queued batches, worst per-clique drift, cumulative counters |
//! | `/explain` | JSON array of the last-N sampled [`ExplainReport`](crate::explain::ExplainReport)s |
//! | `/journal` | drains the global event [`journal`] as JSONL (one event per line) |
//!
//! The endpoint is **off by default**: nothing listens until
//! `serve_observability` is called explicitly, and dropping the returned
//! [`ObservabilityServer`] stops the listener. `/journal` is a *drain* —
//! each event is delivered exactly once across all drainers (the journal
//! is a bounded ring; see [`dbhist_telemetry::journal`]).
//!
//! Request handling is deliberately minimal: only the request line of a
//! `GET` is parsed (headers are consumed and ignored), every response
//! carries `Content-Length` and `Connection: close`, and each connection
//! serves one request. That is enough for `curl`, Prometheus scrapers,
//! and health probes, without pulling in an HTTP stack.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dbhist_telemetry::journal::journal;

use crate::error::SynopsisError;
use crate::service::{EstimatorService, Shared};

/// Accept-loop poll interval while idle (the listener is non-blocking so
/// shutdown is observed promptly).
const POLL: Duration = Duration::from_millis(25);

/// Per-connection read timeout: a client that stalls mid-request is
/// dropped rather than wedging the single accept thread.
const READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Upper bound on request header lines consumed before responding.
const MAX_HEADER_LINES: usize = 64;

/// A running observability listener; dropping it stops the accept thread
/// and releases the port.
#[derive(Debug)]
pub struct ObservabilityServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObservabilityServer {
    /// The bound address (useful with port `0`, which binds an ephemeral
    /// port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObservabilityServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl EstimatorService {
    /// Starts the observability endpoint on `addr` (e.g.
    /// `"127.0.0.1:9184"`, or port `0` for an ephemeral port). Off by
    /// default — serving estimates never opens a socket unless this is
    /// called. The listener runs on one background thread and stops when
    /// the returned [`ObservabilityServer`] is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`SynopsisError::InvalidConfig`] when the address cannot
    /// be bound.
    pub fn serve_observability(
        &self,
        addr: impl ToSocketAddrs,
    ) -> Result<ObservabilityServer, SynopsisError> {
        let listener = TcpListener::bind(addr).map_err(observe_error)?;
        listener.set_nonblocking(true).map_err(observe_error)?;
        let addr = listener.local_addr().map_err(observe_error)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shared = self.shared();
        let stop = Arc::clone(&shutdown);
        let thread = std::thread::spawn(move || accept_loop(&listener, &shared, &stop));
        Ok(ObservabilityServer { addr, shutdown, thread: Some(thread) })
    }
}

fn observe_error(e: std::io::Error) -> SynopsisError {
    SynopsisError::InvalidConfig { parameter: "observe", reason: e.to_string() }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, shutdown: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                // Served synchronously: all four routes render in-memory
                // state, so one connection at a time keeps the endpoint
                // trivially bounded.
                let _ = serve_connection(stream, shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(POLL);
            }
            Err(_) => {
                if shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Consume (and ignore) headers up to the blank line so the client
    // never sees a reset while still sending.
    let mut header = String::new();
    for _ in 0..MAX_HEADER_LINES {
        header.clear();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
    }
    let mut stream = reader.into_inner();
    let path = match parse_get_path(&request_line) {
        Some(path) => path,
        None => {
            return respond(
                &mut stream,
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "only GET is supported\n",
            );
        }
    };
    match path {
        "/metrics" => {
            let body = dbhist_telemetry::export::to_prometheus(&dbhist_telemetry::snapshot());
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/health" => respond(&mut stream, "200 OK", "application/json", &health_json(shared)),
        "/explain" => {
            let reports = shared.recent_explains();
            let mut body = String::from("[");
            for (i, report) in reports.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&report.to_json());
            }
            body.push_str("]\n");
            respond(&mut stream, "200 OK", "application/json", &body)
        }
        "/journal" => {
            let body = journal().drain_jsonl();
            respond(&mut stream, "200 OK", "application/x-ndjson", &body)
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /health /explain /journal\n",
        ),
    }
}

/// Extracts the path of a `GET <path> HTTP/x.y` request line (query
/// strings are stripped); `None` for any other method or a malformed
/// line.
fn parse_get_path(request_line: &str) -> Option<&str> {
    let mut parts = request_line.split_whitespace();
    if parts.next()? != "GET" {
        return None;
    }
    let target = parts.next()?;
    Some(target.split('?').next().unwrap_or(target))
}

/// JSON rendering of `f64` matching the telemetry exporter: always a
/// valid JSON number, `null` for non-finite values.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn health_json(shared: &Arc<Shared>) -> String {
    let stats = shared.stats();
    let snapshot = shared.current_snapshot();
    let monitor = snapshot.synopsis.drift_monitor();
    let mut body = format!(
        "{{\"generation\":{},\"pending\":{},\"max_drift\":{},\"error_q95\":{},\
         \"requests\":{},\"batches\":{},\"swaps\":{},\"dropped_replies\":{}",
        shared.generation_number(),
        shared.pending(),
        fmt_f64(monitor.max_drift()),
        fmt_f64(monitor.max_error_quantile(95.0)),
        stats.requests,
        stats.batches,
        stats.swaps,
        stats.dropped_replies,
    );
    body.push_str(",\"per_generation\":[");
    for (i, (generation, count)) in stats.per_generation.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!("[{generation},{count}]"));
    }
    body.push_str("]}\n");
    body
}

fn respond(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SynopsisBuilder;
    use crate::query::Query;
    use crate::service::ServiceConfig;
    use dbhist_distribution::{Relation, Schema};

    fn service(explain_sample: usize) -> EstimatorService {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..2048).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let synopsis = SynopsisBuilder::new(&rel).budget(512).build().unwrap();
        EstimatorService::start(synopsis, ServiceConfig { workers: 1, explain_sample })
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes()).unwrap();
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        // The server closes after one response, so line-reads terminate.
        let mut line = String::new();
        while reader.read_line(&mut line).unwrap_or(0) > 0 {
            response.push_str(&line);
            line.clear();
        }
        response
    }

    #[test]
    fn health_reports_generation_and_pending() {
        let service = service(0);
        let server = service.serve_observability("127.0.0.1:0").unwrap();
        let response = get(server.addr(), "/health");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.contains("\"generation\":1"), "{response}");
        assert!(response.contains("\"pending\":0"), "{response}");
        assert!(response.contains("\"max_drift\":"), "{response}");
    }

    #[test]
    fn explain_route_returns_sampled_reports() {
        let service = service(1);
        let server = service.serve_observability("127.0.0.1:0").unwrap();
        let empty = get(server.addr(), "/explain");
        assert!(empty.contains("[]"), "no samples yet: {empty}");
        let _ = service.estimate_batch(vec![Query::range(0, 0, 3)]).unwrap();
        let response = get(server.addr(), "/explain");
        assert!(response.contains("\"path\":\""), "{response}");
        assert!(response.contains("\"estimate\":"), "{response}");
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let service = service(0);
        let server = service.serve_observability("127.0.0.1:0").unwrap();
        let response = get(server.addr(), "/metrics");
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let service = service(0);
        let server = service.serve_observability("127.0.0.1:0").unwrap();
        assert!(get(server.addr(), "/nope").starts_with("HTTP/1.1 404"));
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"POST /health HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("HTTP/1.1 405"), "{line}");
    }

    #[test]
    fn server_stops_on_drop_and_releases_the_port() {
        let service = service(0);
        let server = service.serve_observability("127.0.0.1:0").unwrap();
        let addr = server.addr();
        drop(server);
        // The port must be rebindable once the accept thread exits.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port should be released after drop");
    }
}
