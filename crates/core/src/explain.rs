//! Opt-in per-query EXPLAIN: which path answered an estimate, and what
//! it cost.
//!
//! The engine resolves every `estimate_mass` through a cascade — lowered
//! kernel, cached plan, fresh compilation — and each level makes further
//! choices (dense vs sparse kernel layouts, shed projections applied or
//! skipped, scratch arenas reused or allocated). None of that is visible
//! from the estimate alone, and `QueryTrace` only shows *cumulative*
//! counters. [`ExplainReport`] captures one query's actual execution:
//! the resolved [`QueryPath`], per-group plan steps with wall-clock
//! nanoseconds and intermediate factor sizes, shed decisions with skip
//! reasons, kernel layout choices, and scratch reuse.
//!
//! # Zero-cost when off
//!
//! Probing is threaded through the executor as a *generic* parameter
//! ([`ExplainProbe`]) with an associated `ACTIVE` constant. The public
//! non-explain entry points instantiate the probed internals with
//! [`NoProbe`] (`ACTIVE = false`): every probe call site is guarded by
//! `if P::ACTIVE`, so the monomorphized non-explain code contains no
//! clock reads, no recording, and no branches — it *is* the old code.
//! Explain-on and explain-off estimates are bit-identical by
//! construction (probes only observe; they never touch operands), pinned
//! by a proptest in `tests/plan_equivalence.rs` and the explain section
//! of `query_bench`.

use std::fmt::Write as _;

use dbhist_distribution::AttrSet;
use dbhist_histogram::IndexLayout;

/// How the engine resolved a query, from fastest to slowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPath {
    /// Answered by a lowered [`crate::kernel::MassKernel`]: no plan, no
    /// factor, no tree traversal.
    KernelHit,
    /// Answered by executing an already-compiled [`crate::plan::MassPlan`].
    PlanCacheHit,
    /// The query shape was new: a plan was compiled, then executed.
    PlanCompiled,
    /// Answered by the recursive Fig. 3 interpreter (baselines and
    /// equivalence tests; the engine itself never takes this path).
    Interpreter,
    /// No constrained attribute: the estimate is the table total and no
    /// engine machinery runs.
    TableTotal,
}

impl QueryPath {
    /// The path's `snake_case` tag, as rendered in JSON and journal
    /// events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            QueryPath::KernelHit => "kernel_hit",
            QueryPath::PlanCacheHit => "plan_cache_hit",
            QueryPath::PlanCompiled => "plan_compiled",
            QueryPath::Interpreter => "interpreter",
            QueryPath::TableTotal => "table_total",
        }
    }
}

/// Why a shed (tidying) projection did not fire, mirroring the executor's
/// runtime gate in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedSkip {
    /// The keep-set does not intersect the operand's attributes.
    NothingToKeep,
    /// The operand already carries exactly the keep-set.
    AlreadyTidy,
    /// The operand exceeds [`crate::plan::SHED_LIMIT`]; projecting would
    /// cost more than carrying the extra attributes.
    TooLarge,
}

impl ShedSkip {
    /// `snake_case` tag for JSON rendering.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ShedSkip::NothingToKeep => "nothing_to_keep",
            ShedSkip::AlreadyTidy => "already_tidy",
            ShedSkip::TooLarge => "too_large",
        }
    }
}

/// One executed (or deliberately skipped) plan step, as observed by a
/// probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// A clique factor was pushed by borrow.
    Load {
        /// The loaded clique's index.
        clique: usize,
    },
    /// A proper projection materialized a new factor.
    Project,
    /// An identity projection passed the borrow through.
    IdentityProject,
    /// Two operands were multiplied.
    Product,
    /// A shed projection fired.
    Shed,
    /// A shed projection was skipped at runtime.
    ShedSkipped(ShedSkip),
}

impl StepKind {
    fn op(self) -> &'static str {
        match self {
            StepKind::Load { .. } => "load",
            StepKind::Project => "project",
            StepKind::IdentityProject => "identity_project",
            StepKind::Product => "product",
            StepKind::Shed => "shed",
            StepKind::ShedSkipped(_) => "shed_skipped",
        }
    }
}

/// Observer threaded (generically) through the probed executor internals.
///
/// Every method has an inert default body, and every call site is guarded
/// by `if P::ACTIVE`, so implementations only ever see events when they
/// opt in via `ACTIVE = true`. Probes observe — they can never influence
/// an estimate.
pub trait ExplainProbe {
    /// `true` only for recording probes; gates every probe call site (and
    /// the clock reads feeding them) at monomorphization time.
    const ACTIVE: bool;

    /// The engine resolved the query through `path`.
    fn resolved_path(&mut self, _path: QueryPath) {}

    /// Execution of the group covering `attrs` begins.
    fn group(&mut self, _attrs: &AttrSet) {}

    /// The current group produced `mass`; `from_cache` marks a
    /// materialized-marginal cache hit (no plan steps ran).
    fn group_mass(&mut self, _mass: f64, _from_cache: bool) {}

    /// One plan step executed in `ns` wall-clock nanoseconds, leaving an
    /// operand of `result_size` stored entries on top of the stack.
    fn step(&mut self, _kind: StepKind, _ns: u64, _result_size: usize) {}

    /// The kernel walk finished the `index`-th lowered group in `ns`
    /// wall-clock nanoseconds, producing `mass`.
    fn kernel_group(&mut self, _index: usize, _mass: f64, _ns: u64) {}

    /// A group marginal (or kernel group) uses the given flat layout.
    fn layout(&mut self, _layout: IndexLayout) {}

    /// After plan execution: `true` if every group lowered and a kernel
    /// was cached for this shape, `false` on an interpreter-representation
    /// fallback.
    fn kernel_lowered(&mut self, _lowered: bool) {}

    /// The kernel walk acquired scratch; `reused` when it came from the
    /// pool rather than a fresh allocation.
    fn scratch(&mut self, _reused: bool) {}
}

/// The inert probe: `ACTIVE = false` compiles every probe site out of the
/// non-explain entry points.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoProbe;

impl ExplainProbe for NoProbe {
    const ACTIVE: bool = false;
}

/// One step of a [`GroupReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// Operation tag (`load`, `project`, `identity_project`, `product`,
    /// `shed`, `shed_skipped`).
    pub op: &'static str,
    /// Loaded clique index, for `load` steps.
    pub clique: Option<usize>,
    /// Skip reason, for `shed_skipped` steps.
    pub skip: Option<&'static str>,
    /// Wall-clock nanoseconds the step took.
    pub ns: u64,
    /// Stored entries of the operand left on top of the stack.
    pub result_size: usize,
}

/// One independent component of the executed mass plan.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupReport {
    /// The group's target attribute set, rendered.
    pub attrs: String,
    /// Executed steps, in order (empty for marginal-cache hits and
    /// kernel-path groups).
    pub steps: Vec<StepReport>,
    /// The group's box mass, when observed.
    pub mass: Option<f64>,
    /// `true` when the group marginal came from the materialized-marginal
    /// cache (no steps ran).
    pub from_cache: bool,
}

/// The full record of one explained query.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// How the engine resolved the query.
    pub path: QueryPath,
    /// The query's target attribute set, rendered.
    pub target: String,
    /// Per-component execution details (empty on the kernel path — the
    /// kernel has no plan steps).
    pub groups: Vec<GroupReport>,
    /// Flat-layout choice per lowered group (`dense` / `sparse`), from
    /// the kernel on a hit or from this execution's lowering.
    pub layouts: Vec<&'static str>,
    /// Whether this execution lowered (or reused) a kernel; `None` when
    /// no lowering was attempted (e.g. [`QueryPath::TableTotal`]).
    pub kernel_lowered: Option<bool>,
    /// Whether the kernel walk reused a pooled scratch arena; `None` off
    /// the kernel path.
    pub scratch_reused: Option<bool>,
    /// End-to-end wall-clock nanoseconds of the estimate call.
    pub total_ns: u64,
    /// The estimate itself — bit-identical to the unexplained call.
    pub estimate: f64,
}

fn layout_str(layout: IndexLayout) -> &'static str {
    match layout {
        IndexLayout::Dense => "dense",
        IndexLayout::Sparse => "sparse",
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_string()
    }
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl ExplainReport {
    /// Renders the report as one JSON object (no trailing newline), for
    /// the `/explain` endpoint and journal payloads.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"path\":\"{}\",\"target\":\"{}\",\"estimate\":{},\"total_ns\":{}",
            self.path.as_str(),
            json_escape(&self.target),
            fmt_f64(self.estimate),
            self.total_ns
        );
        s.push_str(",\"layouts\":[");
        for (i, l) in self.layouts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{l}\"");
        }
        s.push(']');
        if let Some(lowered) = self.kernel_lowered {
            let _ = write!(s, ",\"kernel_lowered\":{lowered}");
        }
        if let Some(reused) = self.scratch_reused {
            let _ = write!(s, ",\"scratch_reused\":{reused}");
        }
        s.push_str(",\"groups\":[");
        for (i, g) in self.groups.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"attrs\":\"{}\",\"from_cache\":{}",
                json_escape(&g.attrs),
                g.from_cache
            );
            if let Some(mass) = g.mass {
                let _ = write!(s, ",\"mass\":{}", fmt_f64(mass));
            }
            s.push_str(",\"steps\":[");
            for (j, step) in g.steps.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{{\"op\":\"{}\"", step.op);
                if let Some(clique) = step.clique {
                    let _ = write!(s, ",\"clique\":{clique}");
                }
                if let Some(skip) = step.skip {
                    let _ = write!(s, ",\"skip\":\"{skip}\"");
                }
                let _ = write!(s, ",\"ns\":{},\"result_size\":{}}}", step.ns, step.result_size);
            }
            s.push_str("]}");
        }
        s.push_str("]}");
        s
    }
}

/// The recording probe behind
/// [`QueryEngine::estimate_mass_explained`](crate::plan::QueryEngine::estimate_mass_explained):
/// accumulates probe events into an [`ExplainReport`].
#[derive(Debug)]
pub struct ExplainRecorder {
    report: ExplainReport,
}

impl ExplainRecorder {
    /// A recorder for a query over `target`, with the path defaulting to
    /// [`QueryPath::TableTotal`] until the engine reports otherwise.
    #[must_use]
    pub fn new(target: &AttrSet) -> Self {
        Self {
            report: ExplainReport {
                path: QueryPath::TableTotal,
                target: format!("{target}"),
                groups: Vec::new(),
                layouts: Vec::new(),
                kernel_lowered: None,
                scratch_reused: None,
                total_ns: 0,
                estimate: 0.0,
            },
        }
    }

    /// Finalizes the report with the estimate and end-to-end latency.
    #[must_use]
    pub fn finish(mut self, estimate: f64, total_ns: u64) -> ExplainReport {
        self.report.estimate = estimate;
        self.report.total_ns = total_ns;
        self.report
    }
}

impl ExplainProbe for ExplainRecorder {
    const ACTIVE: bool = true;

    fn resolved_path(&mut self, path: QueryPath) {
        self.report.path = path;
    }

    fn group(&mut self, attrs: &AttrSet) {
        self.report.groups.push(GroupReport {
            attrs: format!("{attrs}"),
            steps: Vec::new(),
            mass: None,
            from_cache: false,
        });
    }

    fn group_mass(&mut self, mass: f64, from_cache: bool) {
        if let Some(g) = self.report.groups.last_mut() {
            g.mass = Some(mass);
            g.from_cache = from_cache;
        }
    }

    fn step(&mut self, kind: StepKind, ns: u64, result_size: usize) {
        let record = StepReport {
            op: kind.op(),
            clique: match kind {
                StepKind::Load { clique } => Some(clique),
                _ => None,
            },
            skip: match kind {
                StepKind::ShedSkipped(reason) => Some(reason.as_str()),
                _ => None,
            },
            ns,
            result_size,
        };
        if let Some(g) = self.report.groups.last_mut() {
            g.steps.push(record);
        } else {
            // A bare `execute_marginal_probed` call outside any group
            // (e.g. the strict-marginal path) lands in an implicit group.
            self.report.groups.push(GroupReport {
                attrs: self.report.target.clone(),
                steps: vec![record],
                mass: None,
                from_cache: false,
            });
        }
    }

    fn kernel_group(&mut self, index: usize, mass: f64, ns: u64) {
        self.report.groups.push(GroupReport {
            attrs: format!("kernel_group_{index}"),
            steps: vec![StepReport {
                op: "kernel_walk",
                clique: None,
                skip: None,
                ns,
                result_size: 0,
            }],
            mass: Some(mass),
            from_cache: false,
        });
    }

    fn layout(&mut self, layout: IndexLayout) {
        self.report.layouts.push(layout_str(layout));
    }

    fn kernel_lowered(&mut self, lowered: bool) {
        self.report.kernel_lowered = Some(lowered);
    }

    fn scratch(&mut self, reused: bool) {
        self.report.scratch_reused = Some(reused);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_snake_case() {
        for path in [
            QueryPath::KernelHit,
            QueryPath::PlanCacheHit,
            QueryPath::PlanCompiled,
            QueryPath::Interpreter,
            QueryPath::TableTotal,
        ] {
            let tag = path.as_str();
            assert!(tag.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{tag}");
        }
        for skip in [ShedSkip::NothingToKeep, ShedSkip::AlreadyTidy, ShedSkip::TooLarge] {
            let tag = skip.as_str();
            assert!(tag.chars().all(|c| c.is_ascii_lowercase() || c == '_'), "{tag}");
        }
    }

    #[test]
    fn recorder_assembles_a_report() {
        let target = AttrSet::from_ids([0, 2]);
        let mut rec = ExplainRecorder::new(&target);
        rec.resolved_path(QueryPath::PlanCompiled);
        rec.group(&target);
        rec.step(StepKind::Load { clique: 1 }, 120, 16);
        rec.step(StepKind::ShedSkipped(ShedSkip::AlreadyTidy), 40, 16);
        rec.group_mass(12.5, false);
        rec.kernel_lowered(true);
        rec.layout(IndexLayout::Dense);
        let report = rec.finish(12.5, 999);
        assert_eq!(report.path, QueryPath::PlanCompiled);
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].steps.len(), 2);
        assert_eq!(report.groups[0].steps[0].clique, Some(1));
        assert_eq!(report.groups[0].steps[1].skip, Some("already_tidy"));
        assert_eq!(report.groups[0].mass, Some(12.5));
        assert_eq!(report.layouts, vec!["dense"]);
        assert_eq!(report.kernel_lowered, Some(true));
        assert_eq!(report.total_ns, 999);
        let json = report.to_json();
        assert!(json.contains("\"path\":\"plan_compiled\""));
        assert!(json.contains("\"op\":\"load\",\"clique\":1"));
        assert!(json.contains("\"skip\":\"already_tidy\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn noprobe_is_inert() {
        // NoProbe's methods are the trait defaults: calling them is a
        // no-op and ACTIVE gates every real call site.
        const { assert!(!NoProbe::ACTIVE) };
        let mut p = NoProbe;
        p.resolved_path(QueryPath::KernelHit);
        p.step(StepKind::Product, 1, 1);
        p.scratch(true);
    }
}
