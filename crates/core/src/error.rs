//! Error type for synopsis construction and usage.

use std::fmt;

use dbhist_distribution::DistributionError;
use dbhist_histogram::HistogramError;
use dbhist_model::ModelError;
use dbhist_persist::PersistError;

/// Errors produced while building or querying synopses.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynopsisError {
    /// A distribution-layer failure.
    Distribution(DistributionError),
    /// A model-layer failure.
    Model(ModelError),
    /// A histogram-layer failure.
    Histogram(HistogramError),
    /// A snapshot save/load failure.
    Persist(PersistError),
    /// The storage budget is too small to hold even one bucket per clique
    /// histogram, or otherwise invalid.
    Budget {
        /// Human-readable description.
        reason: String,
    },
    /// A construction parameter failed validation (rejected by
    /// [`crate::builder::SynopsisBuilder::build`] before any work runs).
    InvalidConfig {
        /// The offending parameter (`"budget"`, `"k_max"`, `"theta"`, ...).
        parameter: &'static str,
        /// Human-readable description of the violation.
        reason: String,
    },
}

impl fmt::Display for SynopsisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Distribution(e) => write!(f, "distribution error: {e}"),
            Self::Model(e) => write!(f, "model error: {e}"),
            Self::Histogram(e) => write!(f, "histogram error: {e}"),
            Self::Persist(e) => write!(f, "persist error: {e}"),
            Self::Budget { reason } => write!(f, "storage budget error: {reason}"),
            Self::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration ({parameter}): {reason}")
            }
        }
    }
}

impl std::error::Error for SynopsisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Distribution(e) => Some(e),
            Self::Model(e) => Some(e),
            Self::Histogram(e) => Some(e),
            Self::Persist(e) => Some(e),
            Self::Budget { .. } | Self::InvalidConfig { .. } => None,
        }
    }
}

impl From<DistributionError> for SynopsisError {
    fn from(e: DistributionError) -> Self {
        Self::Distribution(e)
    }
}

impl From<ModelError> for SynopsisError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

impl From<HistogramError> for SynopsisError {
    fn from(e: HistogramError) -> Self {
        Self::Histogram(e)
    }
}

impl From<PersistError> for SynopsisError {
    fn from(e: PersistError) -> Self {
        Self::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: SynopsisError = ModelError::NotChordal.into();
        assert!(e.to_string().contains("model"));
        let e: SynopsisError = DistributionError::UnknownAttr { attr: 1 }.into();
        assert!(e.to_string().contains("distribution"));
        let e: SynopsisError = HistogramError::InvalidRequest { reason: "x".into() }.into();
        assert!(e.to_string().contains("histogram"));
        let e: SynopsisError = PersistError::BadMagic.into();
        assert!(e.to_string().contains("persist"));
        let e = SynopsisError::Budget { reason: "too small".into() };
        assert!(e.to_string().contains("too small"));
        let e = SynopsisError::InvalidConfig { parameter: "budget", reason: "zero".into() };
        assert!(e.to_string().contains("budget") && e.to_string().contains("zero"));
    }

    #[test]
    fn source_chains() {
        use std::error::Error;
        let e: SynopsisError = ModelError::NotChordal.into();
        assert!(e.source().is_some());
        assert!(SynopsisError::Budget { reason: "x".into() }.source().is_none());
    }
}
