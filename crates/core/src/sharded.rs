//! Sharded, internally synchronized LRU caches for the shared-read query
//! path.
//!
//! [`QueryEngine`](crate::plan::QueryEngine) memoizes compiled plans and
//! (optionally) materialized marginals. Under the concurrent
//! [`EstimatorService`](crate::service::EstimatorService) many reader
//! threads consult those caches on every query, so a single global mutex
//! would serialize the whole read path. [`ShardedLru`] splits one logical
//! LRU into [`DEFAULT_SHARD_COUNT`] independent shards, each behind its
//! own mutex; a key's shard is chosen by hash, so concurrent lookups of
//! different keys contend only when they land on the same shard.
//!
//! Correctness note: the caches are *memoization* — a cached value is
//! bit-identical to the value recomputed from the immutable factors, so
//! shard-local eviction order, racing duplicate inserts, and
//! enable/disable races can change hit rates but never change an
//! estimate. That is what keeps concurrent estimates bit-identical to the
//! serial engine (pinned by `tests/concurrent_equivalence.rs`).
//!
//! Memory-ordering justification (this module is on the `atomic-ordering`
//! exemption list, `dbhist-analyze`): the only raw atomic here is the
//! advisory `capacity` cell. `Relaxed` is correct for it because every
//! read of cached *data* happens under a shard mutex, which already
//! provides the happens-before edge; the capacity value only steers how
//! many entries a shard retains, and a stale read merely delays an
//! eviction or skips one insert — it can never expose unsynchronized
//! data. Recency ticks live entirely inside the shard mutexes.

use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use dbhist_distribution::fxhash::{FxBuildHasher, FxHashMap};

/// Number of independent shards in a [`ShardedLru`]. Eight mutexes keep
/// contention negligible for the reader counts the service targets while
/// costing a few hundred bytes when idle.
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// Minimum entries each shard retains while the cache is enabled. Small
/// logical capacities would otherwise give every shard capacity 1 and
/// thrash whenever two hot keys hash to the same shard; the floor trades
/// a bounded retention overshoot (at most `shards × floor` entries) for
/// stable hit rates.
pub const MIN_SHARD_CAPACITY: usize = 4;

/// Locks `m`, recovering from poisoning: cache state is only ever
/// memoized derived data, so a panicking peer cannot leave it logically
/// corrupt.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small least-recently-used cache with O(1) lookups and O(capacity)
/// eviction scans (capacities here are a few hundred at most).
///
/// Single-threaded; [`ShardedLru`] wraps one per shard for concurrent
/// use.
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: FxHashMap<K, (u64, V)>,
    capacity: usize,
    tick: u64,
}

impl<K: Hash + Eq + Clone, V> LruCache<K, V> {
    /// Creates a cache retaining at most `capacity` entries (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { map: FxHashMap::default(), capacity: capacity.max(1), tick: 0 }
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Fetches `key`, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|(stamp, v)| {
            *stamp = tick;
            &*v
        })
    }

    /// Inserts `key → value`, evicting least-recently-used entries while
    /// at or over capacity.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        while self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                // lint:allow-next-line(hash-iter-order): stamps are unique, so the min is order-independent; eviction never reaches estimates
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            } else {
                break;
            }
        }
        self.map.insert(key, (self.tick, value));
    }

    /// Retargets the capacity (minimum 1), evicting down immediately if
    /// the cache is over the new bound.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            if let Some(oldest) =
                // lint:allow-next-line(hash-iter-order): stamps are unique, so the min is order-independent; eviction never reaches estimates
                self.map.iter().min_by_key(|(_, (stamp, _))| *stamp).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            } else {
                break;
            }
        }
    }

    /// Drops every entry (capacity is retained).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// A sharded LRU cache callable from many threads through `&self`.
///
/// The logical capacity is split evenly across [`DEFAULT_SHARD_COUNT`]
/// shards (`ceil(capacity / shards)` each, floored at
/// [`MIN_SHARD_CAPACITY`], so the retained total can round up — an
/// approximation standard for sharded LRUs, where the bound matters at
/// large capacities and hit-rate stability at small ones).
/// Capacity `0` disables the cache: `get` misses and
/// `insert` is a no-op, which is how the engine's optional marginal
/// cache is switched off without a type-level `Option`.
#[derive(Debug)]
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    /// Total advisory capacity across shards; 0 = disabled. See the
    /// module docs for why `Relaxed` is sufficient here.
    capacity: AtomicUsize,
    hasher: FxBuildHasher,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// Creates a cache with `capacity` total entries across
    /// [`DEFAULT_SHARD_COUNT`] shards. `capacity == 0` starts disabled.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let per_shard = Self::per_shard(capacity);
        Self {
            shards: (0..DEFAULT_SHARD_COUNT)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            capacity: AtomicUsize::new(capacity),
            hasher: FxBuildHasher::default(),
        }
    }

    fn per_shard(capacity: usize) -> usize {
        capacity.div_ceil(DEFAULT_SHARD_COUNT).max(MIN_SHARD_CAPACITY)
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        // Length is the compile-time DEFAULT_SHARD_COUNT, so the modulo
        // index is always in range.
        &self.shards[h % self.shards.len()]
    }

    /// `true` when the cache currently accepts and serves entries.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.capacity.load(Ordering::Relaxed) > 0
    }

    /// The current total advisory capacity (0 = disabled).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Retargets the total capacity. `0` disables the cache and drops
    /// every entry; a positive value re-enables it (entries are dropped
    /// on the disable edge, kept when resizing while enabled).
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        if capacity == 0 {
            self.clear();
        } else {
            let per_shard = Self::per_shard(capacity);
            for shard in &self.shards {
                lock(shard).set_capacity(per_shard);
            }
        }
    }

    /// Fetches a clone of `key`'s value, refreshing its recency. Always
    /// `None` while disabled.
    #[must_use]
    pub fn get(&self, key: &K) -> Option<V> {
        if !self.enabled() {
            return None;
        }
        lock(self.shard(key)).get(key).cloned()
    }

    /// Inserts `key → value` into its shard, evicting that shard's
    /// least-recently-used entry at capacity. No-op while disabled.
    pub fn insert(&self, key: K, value: V) {
        if !self.enabled() {
            return;
        }
        lock(self.shard(&key)).insert(key, value);
    }

    /// Drops every entry in every shard (capacity is retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            lock(shard).clear();
        }
    }

    /// Total number of cached entries across shards. Each shard is
    /// counted under its own lock, so under concurrent mutation the sum
    /// has no global atomic cut.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// `true` when no shard holds an entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| lock(s).is_empty())
    }
}

impl<K: Hash + Eq + Clone, V: Clone> Clone for ShardedLru<K, V> {
    fn clone(&self) -> Self {
        Self {
            shards: self.shards.iter().map(|s| Mutex::new(lock(s).clone())).collect(),
            capacity: AtomicUsize::new(self.capacity.load(Ordering::Relaxed)),
            hasher: FxBuildHasher::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_cache_evicts_least_recently_used() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.get(&1), Some(&10)); // refresh 1
        cache.insert(3, 30); // evicts 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.get(&1), Some(&10));
        assert_eq!(cache.get(&3), Some(&30));
        // Re-inserting an existing key must not evict.
        cache.insert(1, 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(&11));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_cache_shrink_evicts_down() {
        let mut cache: LruCache<u32, u32> = LruCache::new(4);
        for i in 0..4 {
            cache.insert(i, i);
        }
        cache.set_capacity(2);
        assert_eq!(cache.len(), 2);
        // The two most recently inserted keys survive.
        assert_eq!(cache.get(&3), Some(&3));
        assert_eq!(cache.get(&2), Some(&2));
    }

    #[test]
    fn sharded_round_trip_and_capacity_toggle() {
        let cache: ShardedLru<u32, String> = ShardedLru::new(16);
        assert!(cache.enabled());
        assert!(cache.is_empty());
        for i in 0..10u32 {
            cache.insert(i, format!("v{i}"));
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.get(&3), Some("v3".to_string()));
        assert_eq!(cache.get(&99), None);

        cache.set_capacity(0);
        assert!(!cache.enabled());
        assert!(cache.is_empty(), "disable drops entries");
        assert_eq!(cache.get(&3), None);
        cache.insert(3, "back".to_string());
        assert_eq!(cache.len(), 0, "insert is a no-op while disabled");

        cache.set_capacity(8);
        assert!(cache.enabled());
        cache.insert(3, "back".to_string());
        assert_eq!(cache.get(&3), Some("back".to_string()));
    }

    #[test]
    fn sharded_eviction_is_bounded_per_shard() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(DEFAULT_SHARD_COUNT);
        // Per-shard capacity is MIN_SHARD_CAPACITY; no shard may exceed
        // it, so the total stays ≤ shards × floor no matter how many
        // keys stream in.
        for i in 0..10_000u32 {
            cache.insert(i, i);
        }
        let bound = DEFAULT_SHARD_COUNT * MIN_SHARD_CAPACITY;
        assert!(cache.len() <= bound, "len {} exceeds {bound}", cache.len());
    }

    #[test]
    fn sharded_concurrent_smoke() {
        let cache: ShardedLru<u64, u64> = ShardedLru::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = &cache;
                s.spawn(move || {
                    for i in 0..500u64 {
                        let k = (t * 500 + i) % 97;
                        cache.insert(k, k * 2);
                        if let Some(v) = cache.get(&k) {
                            assert_eq!(v, k * 2, "a cached value is never torn");
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 64 + DEFAULT_SHARD_COUNT);
    }

    #[test]
    fn clone_carries_entries_and_capacity() {
        let cache: ShardedLru<u32, u32> = ShardedLru::new(8);
        cache.insert(1, 10);
        let copy = cache.clone();
        assert_eq!(copy.get(&1), Some(10));
        assert_eq!(copy.capacity(), 8);
        copy.insert(2, 20);
        assert_eq!(cache.get(&2), None, "clones are independent");
    }
}
