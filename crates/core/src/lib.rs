//! DEPENDENCY-BASED (DB) histogram synopses — the paper's contribution.
//!
//! A DB histogram `H = <M, C>` (Definition 2.1) pairs a decomposable
//! interaction model `M` with a collection `C` of low-dimensional
//! histograms on the marginals of `M`'s generators. This crate assembles
//! the pieces built by `dbhist-model` and `dbhist-histogram` into the full
//! synopsis, and implements everything around it:
//!
//! * [`factor::Factor`] — the abstraction `ComputeMarginal` runs over:
//!   anything supporting `project`, `product` (separation formula), and
//!   box-mass estimation. Implemented by MHIST split trees, grid
//!   histograms, and exact sparse distributions (the paper's "clique
//!   histograms with an unlimited number of buckets" used in Fig. 6).
//! * [`marginal::compute_marginal`] — the paper's `ComputeMarginal`
//!   algorithm (Fig. 3) over the junction tree, minimizing histogram
//!   multiplications/projections.
//! * [`plan`] — the plan-based query engine: compiles the Fig. 3
//!   recursion into cached [`plan::MarginalPlan`]s executed with
//!   zero-clone (`Cow`) operand passing, plus the per-synopsis
//!   [`plan::QueryEngine`] workload cache and [`plan::QueryTrace`]
//!   operation counters.
//! * [`alloc`] — storage allocation across clique histograms: the optimal
//!   pseudo-polynomial dynamic program and the `IncrementalGains` greedy
//!   (Fig. 2).
//! * [`builder::SynopsisBuilder`] — the unified construction API:
//!   `SynopsisBuilder::new(&rel).budget(b).factor(kind).threads(n).build()`
//!   runs the full pipeline (`model selection → clique-histogram building
//!   under a byte budget`), optionally fanning every phase across worker
//!   threads with bit-identical results, and records a
//!   [`builder::BuildTrace`] of per-phase wall times.
//! * [`synopsis::DbHistogram`] — the built synopsis and its
//!   range-selectivity estimation.
//! * [`baselines`] — the estimators the paper compares against: `IND`
//!   (one-dimensional histograms + full independence), full-dimensional
//!   `MHIST`, and random sampling.
//!
//! # Quickstart
//!
//! ```
//! use dbhist_core::builder::SynopsisBuilder;
//! use dbhist_core::estimator::SelectivityEstimator;
//! use dbhist_distribution::{Relation, Schema};
//!
//! // A toy relation where a == b and c is independent.
//! let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..4096)
//!     .map(|i| vec![i % 8, i % 8, (i / 8) % 4])
//!     .collect();
//! let rel = Relation::from_rows(schema, rows).unwrap();
//!
//! // Build a DB histogram within a 256-byte budget.
//! let db = SynopsisBuilder::new(&rel).budget(256).build().unwrap();
//! assert!(db.storage_bytes() <= 256);
//!
//! // Estimate the selectivity of the predicate a ∈ [0,3] ∧ c = 1.
//! use dbhist_core::query::Query;
//! let q = Query::range(0, 0, 3).eq(2, 1);
//! let est = db.estimate(&q);
//! let exact = rel.count_range(q.ranges()) as f64;
//! assert!((est - exact).abs() / exact < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod alloc;
pub mod baselines;
pub mod build;
pub mod builder;
pub mod error;
pub mod estimator;
pub mod explain;
pub mod factor;
pub mod ingest;
pub mod kernel;
pub mod maintenance;
pub mod marginal;
pub mod observe;
pub mod plan;
pub mod query;
pub mod scratch;
pub mod service;
pub mod sharded;
pub mod snapshot;
pub mod synopsis;
pub mod wavelet_factor;

pub use builder::{BuildTrace, FactorKind, Synopsis, SynopsisBuilder};
pub use error::SynopsisError;
pub use estimator::SelectivityEstimator;
pub use explain::{
    ExplainProbe, ExplainRecorder, ExplainReport, GroupReport, NoProbe, QueryPath, ShedSkip,
    StepKind, StepReport,
};
pub use factor::{ExactFactor, Factor};
pub use ingest::{IngestConfig, IngestSession, RecoveryReport, TuneOutcome};
pub use kernel::MassKernel;
pub use observe::ObservabilityServer;
pub use plan::{MarginalPlan, MassPlan, QueryEngine, QueryTrace};
pub use query::{Predicate, Query};
pub use scratch::PlanScratch;
pub use service::{
    BatchReply, BatchTicket, EstimatorService, Generation, ServeStats, ServiceConfig,
};
pub use sharded::ShardedLru;
pub use synopsis::{DbConfig, DbHistogram};
