//! The unified synopsis construction API.
//!
//! [`SynopsisBuilder`] is the single entry point for building DB
//! histogram synopses (the older `DbHistogram::build_mhist` /
//! `build_wavelet` / `build_grid` triple has been removed). It folds
//! every construction knob — byte budget, clique-factor family, selection
//! heuristic/algorithm, `k_max`, `θ`, split criterion, allocation
//! strategy, and worker threads — into fluent methods, validates the
//! whole configuration once at [`SynopsisBuilder::build`], and reports
//! per-phase instrumentation through [`BuildTrace`].
//!
//! ```
//! use dbhist_core::builder::{FactorKind, SynopsisBuilder};
//! use dbhist_core::estimator::SelectivityEstimator;
//! use dbhist_distribution::{Relation, Schema};
//!
//! let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..4096).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
//! let rel = Relation::from_rows(schema, rows).unwrap();
//!
//! let synopsis = SynopsisBuilder::new(&rel)
//!     .budget(256)
//!     .factor(FactorKind::Mhist)
//!     .threads(1)
//!     .build()
//!     .unwrap();
//! assert!(synopsis.storage_bytes() <= 256);
//! let trace = synopsis.build_trace();
//! assert_eq!(trace.threads, 1);
//! assert!(trace.cliques >= 1);
//! ```
//!
//! # Parallelism and determinism
//!
//! [`SynopsisBuilder::threads`] controls every phase: candidate-edge
//! scoring during forward selection, per-clique histogram construction,
//! and the marginal-gain tables of budget allocation. `1` runs the exact
//! serial code path; larger counts fan independent work across scoped
//! worker threads while keeping the result **bit-identical** (entropies
//! are pure functions of the relation, per-clique builder runs are
//! independent, and every ranking/reduction stays serial with the same
//! deterministic tie-breaks). `0` (the default) resolves to the machine's
//! available parallelism.

use std::time::Duration;

use dbhist_distribution::Relation;
use dbhist_histogram::{GridHistogram, SplitCriterion, SplitTree};
use dbhist_model::selection::{EdgeHeuristic, SelectionAlgorithm, SelectionConfig};
use dbhist_model::DecomposableModel;

use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::explain::ExplainReport;
use crate::plan::QueryTrace;
use crate::query::Query;
use crate::synopsis::{AllocationStrategy, DbConfig, DbHistogram};
use crate::wavelet_factor::WaveletFactor;

/// Which clique-factor family a synopsis compresses its generator
/// marginals with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorKind {
    /// MHIST split trees (9 bytes/bucket) — the paper's flagship.
    #[default]
    Mhist,
    /// Grid histograms (regular per-dimension partitioning).
    Grid,
    /// Truncated Haar wavelet synopses (the extension the paper's
    /// conclusions propose).
    Wavelet,
}

/// Per-phase instrumentation of one synopsis construction, the build-side
/// sibling of [`QueryTrace`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildTrace {
    /// Worker threads the build ran with (`1` = exact serial path).
    pub threads: usize,
    /// Wall time of forward model selection.
    pub selection: Duration,
    /// Wall time of per-clique marginal computation + builder start.
    pub construction: Duration,
    /// Wall time of budget allocation (greedy gains or DP curves).
    pub allocation: Duration,
    /// Wall time of factor materialization + engine assembly.
    pub assembly: Duration,
    /// End-to-end wall time (selection through assembly).
    pub total: Duration,
    /// Parallel tasks in the construction phase (one per model clique).
    pub cliques: usize,
    /// Accepted forward-selection steps (edges added).
    pub selection_steps: usize,
    /// Largest candidate fan-out of any selection round.
    pub peak_candidates: usize,
    /// Marginal entropies computed during selection (cache misses).
    pub entropy_computations: usize,
    /// Allocation decisions funded beyond the one-bucket baseline.
    pub splits_funded: usize,
}

/// Resolves a user-facing thread knob: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    }
}

/// A built synopsis, tagged by its clique-factor family.
#[derive(Debug, Clone)]
pub enum Synopsis {
    /// MHIST split-tree factors.
    Mhist(DbHistogram<SplitTree>),
    /// Grid histogram factors.
    Grid(DbHistogram<GridHistogram>),
    /// Truncated wavelet factors.
    Wavelet(DbHistogram<WaveletFactor>),
}

macro_rules! delegate {
    ($self:expr, $db:ident => $body:expr) => {
        match $self {
            Synopsis::Mhist($db) => $body,
            Synopsis::Grid($db) => $body,
            Synopsis::Wavelet($db) => $body,
        }
    };
}

impl Synopsis {
    /// The factor family this synopsis was built with.
    #[must_use]
    pub fn factor_kind(&self) -> FactorKind {
        match self {
            Self::Mhist(_) => FactorKind::Mhist,
            Self::Grid(_) => FactorKind::Grid,
            Self::Wavelet(_) => FactorKind::Wavelet,
        }
    }

    /// The interaction model `M`.
    #[must_use]
    pub fn model(&self) -> &DecomposableModel {
        delegate!(self, db => db.model())
    }

    /// Per-phase construction instrumentation.
    #[must_use]
    pub fn build_trace(&self) -> BuildTrace {
        delegate!(self, db => db.build_trace())
    }

    /// Snapshot of the query engine's cumulative counters.
    ///
    /// Non-destructive: counters keep accumulating across calls until
    /// [`Synopsis::reset_query_trace`] zeroes them.
    #[must_use]
    pub fn query_trace(&self) -> QueryTrace {
        delegate!(self, db => db.query_trace())
    }

    /// Zeroes the query engine's cumulative counters (this synopsis only;
    /// the process-wide telemetry registry is untouched).
    pub fn reset_query_trace(&self) {
        delegate!(self, db => db.reset_query_trace());
    }

    /// Feeds an observed cardinality back to the underlying histogram's
    /// accuracy-drift monitor; see [`DbHistogram::record_feedback`].
    pub fn record_feedback(&self, query: &Query, actual: f64) {
        delegate!(self, db => db.record_feedback(query, actual));
    }

    /// Worst per-clique rolling mean absolute relative error observed via
    /// [`Synopsis::record_feedback`].
    #[must_use]
    pub fn feedback_drift(&self) -> f64 {
        delegate!(self, db => db.drift_monitor().max_drift())
    }

    /// Estimates the marginal mass of a conjunctive range predicate,
    /// propagating structural failures instead of panicking.
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures.
    pub fn try_estimate(&self, query: &Query) -> Result<f64, SynopsisError> {
        delegate!(self, db => db.try_estimate(query))
    }

    /// [`Synopsis::try_estimate`] plus a per-query
    /// [`ExplainReport`] describing the resolved execution path; see
    /// [`DbHistogram::try_estimate_explained`]. The estimate is
    /// bit-identical to the unexplained call.
    ///
    /// # Errors
    ///
    /// Propagates factor-operation failures.
    pub fn try_estimate_explained(
        &self,
        query: &Query,
    ) -> Result<(f64, ExplainReport), SynopsisError> {
        delegate!(self, db => db.try_estimate_explained(query))
    }

    /// The per-clique accuracy-drift monitor fed by
    /// [`Synopsis::record_feedback`]; exposes rolling means *and* full
    /// error distributions (quantiles) per model clique.
    #[must_use]
    pub fn drift_monitor(&self) -> &dbhist_telemetry::DriftMonitor {
        delegate!(self, db => db.drift_monitor())
    }

    /// The MHIST-backed histogram, if this synopsis was built with
    /// [`FactorKind::Mhist`].
    #[must_use]
    pub fn as_mhist(&self) -> Option<&DbHistogram<SplitTree>> {
        match self {
            Self::Mhist(db) => Some(db),
            _ => None,
        }
    }

    /// Unwraps into the MHIST-backed histogram, if built with
    /// [`FactorKind::Mhist`].
    #[must_use]
    pub fn into_mhist(self) -> Option<DbHistogram<SplitTree>> {
        match self {
            Self::Mhist(db) => Some(db),
            _ => None,
        }
    }

    /// The grid-backed histogram, if built with [`FactorKind::Grid`].
    #[must_use]
    pub fn as_grid(&self) -> Option<&DbHistogram<GridHistogram>> {
        match self {
            Self::Grid(db) => Some(db),
            _ => None,
        }
    }

    /// The wavelet-backed histogram, if built with
    /// [`FactorKind::Wavelet`].
    #[must_use]
    pub fn as_wavelet(&self) -> Option<&DbHistogram<WaveletFactor>> {
        match self {
            Self::Wavelet(db) => Some(db),
            _ => None,
        }
    }
}

impl SelectivityEstimator for Synopsis {
    fn estimate(&self, query: &Query) -> f64 {
        delegate!(self, db => db.estimate(query))
    }

    fn storage_bytes(&self) -> usize {
        delegate!(self, db => SelectivityEstimator::storage_bytes(db))
    }

    fn name(&self) -> &str {
        delegate!(self, db => SelectivityEstimator::name(db))
    }

    fn query_trace(&self) -> Option<QueryTrace> {
        Some(self.query_trace())
    }

    fn reset_trace(&self) {
        self.reset_query_trace();
    }

    fn build_trace(&self) -> Option<BuildTrace> {
        Some(self.build_trace())
    }

    fn record_feedback(&self, query: &Query, actual: f64) {
        Synopsis::record_feedback(self, query, actual);
    }

    fn feedback_drift(&self) -> Option<f64> {
        Some(Synopsis::feedback_drift(self))
    }
}

/// Fluent construction of DB histogram synopses; see the [module
/// docs](crate::builder) for an example.
///
/// All knobs default to the paper's flagship configuration (`DB₂`
/// heuristic, Efficient algorithm, `k_max = 2`, `θ = 0.90`, MaxDiff,
/// `IncrementalGains`, MHIST factors); only [`SynopsisBuilder::budget`]
/// is mandatory. Validation happens once, inside
/// [`SynopsisBuilder::build`], returning typed
/// [`SynopsisError::InvalidConfig`] values instead of panicking.
#[derive(Debug, Clone)]
pub struct SynopsisBuilder<'a> {
    relation: &'a Relation,
    budget_bytes: Option<usize>,
    factor: FactorKind,
    threads: usize,
    selection: SelectionConfig,
    criterion: SplitCriterion,
    allocation: AllocationStrategy,
    clique_floor: usize,
}

impl<'a> SynopsisBuilder<'a> {
    /// Starts a builder over `relation` with the paper's defaults.
    #[must_use]
    pub fn new(relation: &'a Relation) -> Self {
        Self {
            relation,
            budget_bytes: None,
            factor: FactorKind::default(),
            threads: 0,
            selection: SelectionConfig::default(),
            criterion: SplitCriterion::default(),
            allocation: AllocationStrategy::default(),
            clique_floor: crate::synopsis::MIN_PARALLEL_CLIQUES,
        }
    }

    /// Total storage budget in bytes for the clique-histogram collection.
    /// Mandatory; zero is rejected at [`SynopsisBuilder::build`].
    #[must_use]
    pub fn budget(mut self, bytes: usize) -> Self {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Clique-factor family (default: [`FactorKind::Mhist`]).
    #[must_use]
    pub fn factor(mut self, kind: FactorKind) -> Self {
        self.factor = kind;
        self
    }

    /// Worker threads for every build phase. `0` (default) resolves to
    /// the machine's available parallelism; `1` forces the exact serial
    /// path. Any setting produces bit-identical synopses.
    #[must_use]
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Work-size floors for the parallel phases: rounds with fewer than
    /// `candidates` addable edges score serially, and builds with fewer
    /// than `cliques` clique histograms construct/assemble serially,
    /// even when `threads > 1`. Defaults are
    /// [`dbhist_model::selection::MIN_PARALLEL_CANDIDATES`] and
    /// [`crate::synopsis::MIN_PARALLEL_CLIQUES`], below which pool
    /// spin-up costs more than the parallelism returns
    /// (`BENCH_build.json` records the measurements). Path choice never
    /// affects results — serial and parallel are bit-identical. Mostly a
    /// testing hook: equivalence suites lower the floors to force the
    /// parallel paths on small fixtures.
    #[must_use]
    pub fn parallel_floors(mut self, candidates: usize, cliques: usize) -> Self {
        self.selection.parallel_candidate_floor = candidates;
        self.clique_floor = cliques;
        self
    }

    /// Upper bound on generator (clique) size (default 2, the paper's
    /// headline setting). Values below 2 are rejected at build time.
    #[must_use]
    pub fn k_max(mut self, k_max: usize) -> Self {
        self.selection.k_max = k_max;
        self
    }

    /// Statistical-significance threshold `θ` in `[0, 1)` (default 0.90).
    #[must_use]
    pub fn theta(mut self, theta: f64) -> Self {
        self.selection.theta = theta;
        self
    }

    /// Edge-scoring heuristic (default `DB₂`).
    #[must_use]
    pub fn heuristic(mut self, heuristic: EdgeHeuristic) -> Self {
        self.selection.heuristic = heuristic;
        self
    }

    /// Candidate-search algorithm (default Efficient).
    #[must_use]
    pub fn algorithm(mut self, algorithm: SelectionAlgorithm) -> Self {
        self.selection.algorithm = algorithm;
        self
    }

    /// Hard cap on the number of interaction edges added (default: none).
    #[must_use]
    pub fn max_edges(mut self, max_edges: usize) -> Self {
        self.selection.max_edges = Some(max_edges);
        self
    }

    /// Histogram partitioning constraint (default MaxDiff).
    #[must_use]
    pub fn criterion(mut self, criterion: SplitCriterion) -> Self {
        self.criterion = criterion;
        self
    }

    /// Budget distribution strategy (default `IncrementalGains`).
    #[must_use]
    pub fn allocation(mut self, allocation: AllocationStrategy) -> Self {
        self.allocation = allocation;
        self
    }

    /// Validates every knob and assembles the internal configuration.
    fn validated_config(&self) -> Result<DbConfig, SynopsisError> {
        let Some(budget_bytes) = self.budget_bytes else {
            return Err(SynopsisError::InvalidConfig {
                parameter: "budget",
                reason: "a byte budget is mandatory: call .budget(bytes) before .build()".into(),
            });
        };
        if budget_bytes == 0 {
            return Err(SynopsisError::InvalidConfig {
                parameter: "budget",
                reason: "budget must be positive".into(),
            });
        }
        if self.selection.k_max < 2 {
            return Err(SynopsisError::InvalidConfig {
                parameter: "k_max",
                reason: format!("k_max must be at least 2, got {}", self.selection.k_max),
            });
        }
        if !self.selection.theta.is_finite() {
            return Err(SynopsisError::InvalidConfig {
                parameter: "theta",
                reason: format!("theta must be finite, got {}", self.selection.theta),
            });
        }
        if !(0.0..1.0).contains(&self.selection.theta) {
            return Err(SynopsisError::InvalidConfig {
                parameter: "theta",
                reason: format!("theta must lie in [0, 1), got {}", self.selection.theta),
            });
        }
        let selection =
            SelectionConfig { threads: resolve_threads(self.threads), ..self.selection };
        // Re-run the model layer's own validation so the two can never
        // drift apart silently.
        selection.validate()?;
        Ok(DbConfig {
            budget_bytes,
            selection,
            criterion: self.criterion,
            allocation: self.allocation,
            parallel_clique_floor: self.clique_floor,
        })
    }

    /// Builds the synopsis, dispatching on the configured
    /// [`FactorKind`].
    ///
    /// # Errors
    ///
    /// Returns [`SynopsisError::InvalidConfig`] for rejected parameters
    /// (missing/zero budget, `k_max < 2`, non-finite or out-of-range
    /// `theta`) and propagates budget or construction failures.
    pub fn build(self) -> Result<Synopsis, SynopsisError> {
        let config = self.validated_config()?;
        match self.factor {
            FactorKind::Mhist => {
                crate::synopsis::build_mhist_pipeline(self.relation, &config).map(Synopsis::Mhist)
            }
            FactorKind::Grid => {
                crate::synopsis::build_grid_pipeline(self.relation, &config).map(Synopsis::Grid)
            }
            FactorKind::Wavelet => crate::synopsis::build_wavelet_pipeline(self.relation, &config)
                .map(Synopsis::Wavelet),
        }
    }

    /// Builds with MHIST factors regardless of [`SynopsisBuilder::factor`],
    /// returning the concrete histogram type (convenient when downstream
    /// code needs `DbHistogram<SplitTree>` rather than the [`Synopsis`]
    /// enum).
    ///
    /// # Errors
    ///
    /// As for [`SynopsisBuilder::build`].
    pub fn build_mhist(self) -> Result<DbHistogram<SplitTree>, SynopsisError> {
        let config = self.validated_config()?;
        crate::synopsis::build_mhist_pipeline(self.relation, &config)
    }

    /// Builds with grid factors, returning the concrete histogram type.
    ///
    /// # Errors
    ///
    /// As for [`SynopsisBuilder::build`].
    pub fn build_grid(self) -> Result<DbHistogram<GridHistogram>, SynopsisError> {
        let config = self.validated_config()?;
        crate::synopsis::build_grid_pipeline(self.relation, &config)
    }

    /// Builds with wavelet factors, returning the concrete histogram
    /// type.
    ///
    /// # Errors
    ///
    /// As for [`SynopsisBuilder::build`].
    pub fn build_wavelet(self) -> Result<DbHistogram<WaveletFactor>, SynopsisError> {
        let config = self.validated_config()?;
        crate::synopsis::build_wavelet_pipeline(self.relation, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    fn relation() -> Relation {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..4096u32).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn builds_each_factor_kind() {
        let rel = relation();
        for kind in [FactorKind::Mhist, FactorKind::Grid, FactorKind::Wavelet] {
            let synopsis =
                SynopsisBuilder::new(&rel).budget(400).factor(kind).threads(1).build().unwrap();
            assert_eq!(synopsis.factor_kind(), kind);
            assert!(synopsis.storage_bytes() <= 400);
            assert!(synopsis.model().graph().has_edge(0, 1));
            let trace = synopsis.build_trace();
            assert_eq!(trace.threads, 1);
            assert_eq!(trace.cliques, synopsis.model().cliques().len());
            assert!(trace.total >= trace.selection);
            assert!(trace.selection_steps >= 1);
            assert!(trace.peak_candidates >= 1);
            assert!(trace.entropy_computations >= 1);
        }
    }

    #[test]
    fn typed_builds_return_concrete_histograms() {
        let rel = relation();
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_mhist().unwrap();
        assert_eq!(db.name(), "DB2");
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_grid().unwrap();
        assert_eq!(db.name(), "DB-grid");
        let db = SynopsisBuilder::new(&rel).budget(400).threads(1).build_wavelet().unwrap();
        assert_eq!(db.name(), "DB-wavelet");
    }

    #[test]
    fn validation_rejects_bad_knobs() {
        let rel = relation();
        let missing = SynopsisBuilder::new(&rel).build();
        assert!(matches!(missing, Err(SynopsisError::InvalidConfig { parameter: "budget", .. })));
        let zero = SynopsisBuilder::new(&rel).budget(0).build();
        assert!(matches!(zero, Err(SynopsisError::InvalidConfig { parameter: "budget", .. })));
        let k = SynopsisBuilder::new(&rel).budget(256).k_max(0).build();
        assert!(matches!(k, Err(SynopsisError::InvalidConfig { parameter: "k_max", .. })));
        let t = SynopsisBuilder::new(&rel).budget(256).theta(f64::NAN).build();
        assert!(matches!(t, Err(SynopsisError::InvalidConfig { parameter: "theta", .. })));
        let t = SynopsisBuilder::new(&rel).budget(256).theta(1.5).build();
        assert!(matches!(t, Err(SynopsisError::InvalidConfig { parameter: "theta", .. })));
    }

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(7), 7);
        let rel = relation();
        let synopsis = SynopsisBuilder::new(&rel).budget(300).build().unwrap();
        assert!(synopsis.build_trace().threads >= 1);
    }

    #[test]
    fn parallel_build_matches_serial_build() {
        let rel = relation();
        let serial = SynopsisBuilder::new(&rel).budget(400).threads(1).build_mhist().unwrap();
        let parallel = SynopsisBuilder::new(&rel).budget(400).threads(4).build_mhist().unwrap();
        assert_eq!(serial.model().graph(), parallel.model().graph());
        assert_eq!(
            SelectivityEstimator::storage_bytes(&serial),
            SelectivityEstimator::storage_bytes(&parallel)
        );
        assert_eq!(format!("{:?}", serial.factors()), format!("{:?}", parallel.factors()));
        assert_eq!(serial.build_trace().splits_funded, parallel.build_trace().splits_funded);
        assert_eq!(
            serial.build_trace().entropy_computations,
            parallel.build_trace().entropy_computations
        );
    }

    #[test]
    fn synopsis_enum_accessors() {
        let rel = relation();
        let synopsis = SynopsisBuilder::new(&rel).budget(300).threads(1).build().unwrap();
        assert!(synopsis.as_mhist().is_some());
        assert!(synopsis.as_grid().is_none());
        assert!(synopsis.as_wavelet().is_none());
        assert!(synopsis.try_estimate(&Query::range(0, 0, 3)).is_ok());
        assert!(SelectivityEstimator::query_trace(&synopsis).is_some());
        assert!(SelectivityEstimator::build_trace(&synopsis).is_some());
        assert!(synopsis.clone().into_mhist().is_some());
    }
}
