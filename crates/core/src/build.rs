//! Incremental clique-histogram builders with byte-level cost accounting.
//!
//! The space-allocation algorithms (paper §3.2) interleave the
//! construction of all clique histograms: at each step they ask every
//! builder what its *next split* would cost (buckets × bytes-per-bucket)
//! and gain (error decrease), then fund the best one. [`IncrementalBuilder`]
//! is that interface; this module implements it for the three clique
//! histogram families:
//!
//! * [`MhistCliqueBuilder`] — MHIST split trees, `9` bytes per bucket;
//! * [`GridCliqueBuilder`] — grid histograms (a split may add many
//!   buckets at once, producing the paper's "piecewise constant" error
//!   curves);
//! * [`OneDimCliqueBuilder`] — one-dimensional histograms, `8` bytes per
//!   bucket (used by the `IND` baseline through the same allocator).

use dbhist_distribution::{AttrId, Distribution};
use dbhist_histogram::grid::GridBuilder;
use dbhist_histogram::mhist::MhistBuilder;
use dbhist_histogram::one_dim::OneDimBuilder;
use dbhist_histogram::{GridHistogram, OneDimHistogram, SplitCriterion, SplitTree};

use crate::error::SynopsisError;

/// A split the builder could perform next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitProposal {
    /// Buckets the split would add (the paper's `n_i`).
    pub extra_buckets: usize,
    /// Bytes the split would add (`n_i · s_i`).
    pub extra_bytes: usize,
    /// Decrease in the histogram's error (`−ΔERR_i ≥ 0`).
    pub error_gain: f64,
}

/// A histogram builder that grows one split at a time under external
/// storage control.
pub trait IncrementalBuilder {
    /// The finished histogram type.
    type Histogram;

    /// Current bucket count.
    fn bucket_count(&self) -> usize;

    /// Bytes the histogram would occupy if finished now.
    fn storage_bytes(&self) -> usize;

    /// Current approximation error (total variance / SSE).
    fn error(&self) -> f64;

    /// The next split, if any.
    fn peek(&self) -> Option<SplitProposal>;

    /// Applies the next split. Returns `false` when saturated.
    fn split_once(&mut self) -> bool;

    /// Materializes the histogram.
    fn finish(&self) -> Self::Histogram;
}

/// Bytes per MHIST split-tree bucket under the paper's accounting (§4.1).
pub const MHIST_BYTES_PER_BUCKET: usize = 9;
/// Bytes per one-dimensional histogram bucket (§4.1).
pub const ONE_DIM_BYTES_PER_BUCKET: usize = 8;
/// Bytes per grid bucket (4-byte frequency; boundary storage is charged
/// with the buckets it creates, see `GridCliqueBuilder::storage_bytes`).
pub const GRID_BYTES_PER_BUCKET: usize = 4;

/// [`IncrementalBuilder`] over MHIST split trees.
#[derive(Debug, Clone)]
pub struct MhistCliqueBuilder {
    inner: MhistBuilder,
}

impl MhistCliqueBuilder {
    /// Starts a builder over a clique marginal.
    ///
    /// # Errors
    ///
    /// Propagates histogram-construction errors.
    pub fn start(dist: &Distribution, criterion: SplitCriterion) -> Result<Self, SynopsisError> {
        Ok(Self { inner: MhistBuilder::new(dist, criterion)? })
    }
}

impl IncrementalBuilder for MhistCliqueBuilder {
    type Histogram = SplitTree;

    fn bucket_count(&self) -> usize {
        self.inner.bucket_count()
    }

    fn storage_bytes(&self) -> usize {
        MHIST_BYTES_PER_BUCKET * self.inner.bucket_count()
    }

    fn error(&self) -> f64 {
        self.inner.error()
    }

    fn peek(&self) -> Option<SplitProposal> {
        let gain = self.inner.peek_gain()?;
        Some(SplitProposal {
            extra_buckets: 1,
            extra_bytes: MHIST_BYTES_PER_BUCKET,
            error_gain: gain,
        })
    }

    fn split_once(&mut self) -> bool {
        self.inner.split_once()
    }

    fn finish(&self) -> SplitTree {
        self.inner.finish()
    }
}

/// [`IncrementalBuilder`] over grid histograms.
#[derive(Debug, Clone)]
pub struct GridCliqueBuilder {
    inner: GridBuilder,
}

impl GridCliqueBuilder {
    /// Starts a builder over a clique marginal.
    ///
    /// # Errors
    ///
    /// Propagates histogram-construction errors.
    pub fn start(dist: &Distribution, criterion: SplitCriterion) -> Result<Self, SynopsisError> {
        Ok(Self { inner: GridBuilder::new(dist, criterion)? })
    }
}

impl IncrementalBuilder for GridCliqueBuilder {
    type Histogram = GridHistogram;

    fn bucket_count(&self) -> usize {
        self.inner.bucket_count()
    }

    fn storage_bytes(&self) -> usize {
        // 4 bytes per bucket plus 5 bytes per placed boundary, matching
        // `GridHistogram::storage_bytes`, without materializing the grid.
        self.inner.storage_bytes()
    }

    fn error(&self) -> f64 {
        self.inner.error()
    }

    fn peek(&self) -> Option<SplitProposal> {
        let (_, _, extra) = self.inner.peek_split()?;
        let gain = self.inner.peek_gain()?;
        Some(SplitProposal {
            extra_buckets: extra,
            extra_bytes: GRID_BYTES_PER_BUCKET * extra + 5,
            error_gain: gain,
        })
    }

    fn split_once(&mut self) -> bool {
        self.inner.split_once()
    }

    fn finish(&self) -> GridHistogram {
        self.inner.finish()
    }
}

/// [`IncrementalBuilder`] over one-dimensional histograms.
#[derive(Debug, Clone)]
pub struct OneDimCliqueBuilder {
    inner: OneDimBuilder,
}

impl OneDimCliqueBuilder {
    /// Starts a builder over attribute `attr` of `dist`.
    ///
    /// # Errors
    ///
    /// Propagates histogram-construction errors.
    pub fn start(
        dist: &Distribution,
        attr: AttrId,
        criterion: SplitCriterion,
    ) -> Result<Self, SynopsisError> {
        Ok(Self { inner: OneDimBuilder::new(dist, attr, criterion)? })
    }
}

impl IncrementalBuilder for OneDimCliqueBuilder {
    type Histogram = OneDimHistogram;

    fn bucket_count(&self) -> usize {
        self.inner.bucket_count()
    }

    fn storage_bytes(&self) -> usize {
        ONE_DIM_BYTES_PER_BUCKET * self.inner.bucket_count()
    }

    fn error(&self) -> f64 {
        self.inner.error()
    }

    fn peek(&self) -> Option<SplitProposal> {
        let gain = self.inner.peek_gain()?;
        Some(SplitProposal {
            extra_buckets: 1,
            extra_bytes: ONE_DIM_BYTES_PER_BUCKET,
            error_gain: gain,
        })
    }

    fn split_once(&mut self) -> bool {
        self.inner.split_once()
    }

    fn finish(&self) -> OneDimHistogram {
        self.inner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::{Relation, Schema};

    fn dist() -> Distribution {
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..512u32).map(|i| vec![(i * i) % 8, (i * 3) % 8]).collect();
        Relation::from_rows(schema, rows).unwrap().distribution()
    }

    fn exercise<B: IncrementalBuilder>(mut b: B) {
        assert_eq!(b.bucket_count(), 1);
        let mut prev_err = b.error();
        let mut prev_bytes = b.storage_bytes();
        for _ in 0..5 {
            let Some(p) = b.peek() else { break };
            assert!(p.extra_buckets >= 1);
            assert!(p.extra_bytes >= p.extra_buckets);
            let before = b.error();
            assert!(b.split_once());
            assert!((p.error_gain - (before - b.error())).abs() < 1e-9);
            assert!(b.error() <= prev_err + 1e-9);
            assert!(b.storage_bytes() >= prev_bytes);
            prev_err = b.error();
            prev_bytes = b.storage_bytes();
        }
    }

    #[test]
    fn mhist_builder_contract() {
        let d = dist();
        exercise(MhistCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap());
        let b = MhistCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(b.storage_bytes(), 9);
        let tree = b.finish();
        assert_eq!(tree.bucket_count(), 1);
    }

    #[test]
    fn grid_builder_contract() {
        let d = dist();
        exercise(GridCliqueBuilder::start(&d, SplitCriterion::MaxDiff).unwrap());
    }

    #[test]
    fn one_dim_builder_contract() {
        let d = dist();
        exercise(OneDimCliqueBuilder::start(&d, 0, SplitCriterion::MaxDiff).unwrap());
        let b = OneDimCliqueBuilder::start(&d, 1, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(b.storage_bytes(), 8);
        assert_eq!(b.finish().attr(), 1);
    }
}
