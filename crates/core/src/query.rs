//! The typed query surface: [`Query`] and [`Predicate`].
//!
//! Every estimator entry point ([`crate::estimator::SelectivityEstimator`],
//! [`crate::plan::QueryEngine`], [`crate::service::EstimatorService`])
//! takes a `&Query` — a validated conjunction of per-attribute range
//! predicates — instead of a raw `&[(AttrId, u32, u32)]` slice. The
//! builder chains fluently:
//!
//! ```
//! use dbhist_core::query::Query;
//!
//! // a ∈ [0, 3] ∧ c = 1
//! let q = Query::range(0, 0, 3).eq(2, 1);
//! assert_eq!(q.ranges(), &[(0, 0, 3), (2, 1, 1)]);
//! ```
//!
//! Semantics are unchanged from the raw-slice era and defined by the
//! estimators themselves: attributes a synopsis does not cover are
//! ignored, repeated attributes intersect, and an inverted range (`lo >
//! hi`) selects nothing. [`Query::validate`] optionally pins a query to a
//! concrete [`Schema`] at construction time, rejecting unknown attributes
//! and out-of-domain values before they silently estimate zero.
//!
//! Migration from raw slices is one mechanical step: `From<&[(AttrId,
//! u32, u32)]>` (and the `Vec`/array equivalents) convert verbatim.

use dbhist_distribution::{AttrId, Schema};

use crate::error::SynopsisError;

/// One conjunct of a [`Query`]: an inclusive value range on a single
/// attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// The constrained attribute.
    pub attr: AttrId,
    /// Smallest selected value.
    pub lo: u32,
    /// Largest selected value (inclusive).
    pub hi: u32,
}

impl Predicate {
    /// A range predicate `attr ∈ [lo, hi]`.
    #[must_use]
    pub fn range(attr: AttrId, lo: u32, hi: u32) -> Self {
        Self { attr, lo, hi }
    }

    /// An equality predicate `attr = value`.
    #[must_use]
    pub fn eq(attr: AttrId, value: u32) -> Self {
        Self { attr, lo: value, hi: value }
    }
}

/// A conjunctive range query over attribute ranges, the argument type of
/// every estimator; see the [module docs](crate::query).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Query {
    ranges: Vec<(AttrId, u32, u32)>,
}

impl Query {
    /// The unconstrained query (every estimator maps it to the full table
    /// mass).
    #[must_use]
    pub fn all() -> Self {
        Self::default()
    }

    /// Starts a query with the range predicate `attr ∈ [lo, hi]`.
    #[must_use]
    pub fn range(attr: AttrId, lo: u32, hi: u32) -> Self {
        Self { ranges: vec![(attr, lo, hi)] }
    }

    /// Starts a query with the equality predicate `attr = value`.
    #[must_use]
    pub fn equals(attr: AttrId, value: u32) -> Self {
        Self::range(attr, value, value)
    }

    /// Adds the range predicate `attr ∈ [lo, hi]`.
    #[must_use]
    pub fn and(mut self, attr: AttrId, lo: u32, hi: u32) -> Self {
        self.ranges.push((attr, lo, hi));
        self
    }

    /// Adds the equality predicate `attr = value`.
    #[must_use]
    pub fn eq(self, attr: AttrId, value: u32) -> Self {
        self.and(attr, value, value)
    }

    /// Adds a [`Predicate`].
    #[must_use]
    pub fn with(self, p: Predicate) -> Self {
        self.and(p.attr, p.lo, p.hi)
    }

    /// Checks every predicate against `schema`: the attribute must exist
    /// and both endpoints must lie inside its domain. Returns the query
    /// unchanged on success, so construction chains end in one validation
    /// step: `Query::range(0, 0, 3).eq(2, 1).validate(&schema)?`.
    ///
    /// # Errors
    ///
    /// Returns [`SynopsisError::InvalidConfig`] naming the offending
    /// predicate.
    pub fn validate(self, schema: &Schema) -> Result<Self, SynopsisError> {
        for &(attr, lo, hi) in &self.ranges {
            if usize::from(attr) >= schema.arity() {
                return Err(SynopsisError::InvalidConfig {
                    parameter: "query",
                    reason: format!(
                        "attribute {attr} does not exist (schema arity {})",
                        schema.arity()
                    ),
                });
            }
            let domain = schema.domain_size(attr);
            if lo >= domain || hi >= domain {
                return Err(SynopsisError::InvalidConfig {
                    parameter: "query",
                    reason: format!(
                        "range [{lo}, {hi}] on attribute {attr} exceeds its domain [0, {})",
                        domain
                    ),
                });
            }
        }
        Ok(self)
    }

    /// The predicates as raw `(attr, lo, hi)` triples, in insertion
    /// order — the representation the histogram algebra consumes.
    #[must_use]
    pub fn ranges(&self) -> &[(AttrId, u32, u32)] {
        &self.ranges
    }

    /// The predicates as typed [`Predicate`]s, in insertion order.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.ranges.iter().map(|&(attr, lo, hi)| Predicate { attr, lo, hi })
    }

    /// Number of predicates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// `true` for the unconstrained query.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

impl From<&[(AttrId, u32, u32)]> for Query {
    fn from(ranges: &[(AttrId, u32, u32)]) -> Self {
        Self { ranges: ranges.to_vec() }
    }
}

impl From<Vec<(AttrId, u32, u32)>> for Query {
    fn from(ranges: Vec<(AttrId, u32, u32)>) -> Self {
        Self { ranges }
    }
}

impl<const N: usize> From<[(AttrId, u32, u32); N]> for Query {
    fn from(ranges: [(AttrId, u32, u32); N]) -> Self {
        Self { ranges: ranges.to_vec() }
    }
}

impl<const N: usize> From<&[(AttrId, u32, u32); N]> for Query {
    fn from(ranges: &[(AttrId, u32, u32); N]) -> Self {
        Self { ranges: ranges.to_vec() }
    }
}

impl FromIterator<Predicate> for Query {
    fn from_iter<I: IntoIterator<Item = Predicate>>(iter: I) -> Self {
        Self { ranges: iter.into_iter().map(|p| (p.attr, p.lo, p.hi)).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains_in_order() {
        let q = Query::range(0, 0, 3).eq(2, 1).and(0, 1, 2);
        assert_eq!(q.ranges(), &[(0, 0, 3), (2, 1, 1), (0, 1, 2)]);
        assert_eq!(q.len(), 3);
        assert!(!q.is_empty());
        assert!(Query::all().is_empty());
        assert_eq!(Query::equals(4, 7).ranges(), &[(4, 7, 7)]);
        let via_predicates: Query =
            [Predicate::range(0, 0, 3), Predicate::eq(2, 1)].into_iter().collect();
        assert_eq!(via_predicates, Query::range(0, 0, 3).eq(2, 1));
        assert_eq!(Query::all().with(Predicate::eq(1, 2)).ranges(), &[(1, 2, 2)]);
        let preds: Vec<Predicate> = via_predicates.predicates().collect();
        assert_eq!(preds, vec![Predicate::range(0, 0, 3), Predicate::eq(2, 1)]);
    }

    #[test]
    fn conversions_are_verbatim() {
        let raw = vec![(0u16, 0u32, 3u32), (2, 1, 1)];
        let from_slice = Query::from(raw.as_slice());
        let from_vec = Query::from(raw.clone());
        let from_array = Query::from([(0, 0, 3), (2, 1, 1)]);
        assert_eq!(from_slice, from_vec);
        assert_eq!(from_slice, from_array);
        assert_eq!(from_slice.ranges(), raw.as_slice());
    }

    #[test]
    fn validation_rejects_bad_predicates() {
        let schema = Schema::new(vec![("a", 8), ("b", 4)]).unwrap();
        assert!(Query::range(0, 0, 7).eq(1, 3).validate(&schema).is_ok());
        assert!(Query::range(2, 0, 1).validate(&schema).is_err(), "unknown attribute");
        assert!(Query::range(0, 0, 8).validate(&schema).is_err(), "hi outside domain");
        assert!(Query::equals(1, 4).validate(&schema).is_err(), "lo outside domain");
        // Inverted ranges are in-domain and legal (they select nothing).
        assert!(Query::range(0, 5, 2).validate(&schema).is_ok());
    }
}
