//! Reusable per-query scratch buffers for kernel walks.
//!
//! A lowered-kernel evaluation ([`crate::kernel::MassKernel`]) needs two
//! small `(lo, hi)` vectors per walk — the descending node box and the
//! intersected query constraint. Allocating them per query would put two
//! heap round-trips on the hottest path in the engine, so the
//! [`QueryEngine`](crate::plan::QueryEngine) owns a [`ScratchPool`] of
//! [`PlanScratch`] arenas: a walk pops one (or creates the first), reuses
//! its capacity, and pushes it back. Buffers are cleared and refilled at
//! the start of every walk, so reuse can never leak state between
//! queries — pinned by the interleaved-query proptests in
//! `tests/plan_equivalence.rs`.

use std::sync::Mutex;

use crate::sharded::lock;

/// Retained arenas per pool; beyond this, returned scratch is dropped.
/// Bounds worst-case idle memory at `MAX_POOLED ×` a few hundred bytes
/// while still covering every realistic reader-thread count.
const MAX_POOLED: usize = 64;

/// One query's worth of kernel-walk scratch: the mutable node box and the
/// query constraint, both indexed by attribute position.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Current node bounds during the walk (mutated and restored).
    pub(crate) bounds: Vec<(u32, u32)>,
    /// The query box intersected with the factor domain.
    pub(crate) constraint: Vec<(u32, u32)>,
}

impl PlanScratch {
    /// A fresh, empty arena.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// A small free-list of [`PlanScratch`] arenas shared by every query on
/// one engine; `&self` access from any thread.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    pool: Mutex<Vec<PlanScratch>>,
}

impl ScratchPool {
    /// Pops a pooled arena, or creates one when the pool is empty.
    pub(crate) fn acquire(&self) -> PlanScratch {
        lock(&self.pool).pop().unwrap_or_default()
    }

    /// [`ScratchPool::acquire`] plus whether the arena was reused from
    /// the pool (`false` = freshly allocated). Only the explain path
    /// calls this; the plain path keeps its branch-free `acquire`.
    pub(crate) fn acquire_tracked(&self) -> (PlanScratch, bool) {
        match lock(&self.pool).pop() {
            Some(scratch) => (scratch, true),
            None => (PlanScratch::default(), false),
        }
    }

    /// Returns an arena to the pool (dropped when the pool is full).
    pub(crate) fn release(&self, scratch: PlanScratch) {
        let mut pool = lock(&self.pool);
        if pool.len() < MAX_POOLED {
            pool.push(scratch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_recycles_capacity() {
        let pool = ScratchPool::default();
        let mut s = pool.acquire();
        s.bounds.extend_from_slice(&[(0, 7), (0, 7)]);
        s.constraint.extend_from_slice(&[(1, 3), (0, 7)]);
        let ptr = s.bounds.as_ptr();
        pool.release(s);
        let s2 = pool.acquire();
        assert_eq!(s2.bounds.as_ptr(), ptr, "the same allocation comes back");
        assert_eq!(s2.bounds.len(), 2, "contents are cleared by the walk, not the pool");
    }

    #[test]
    fn tracked_acquire_reports_reuse() {
        let pool = ScratchPool::default();
        let (s, reused) = pool.acquire_tracked();
        assert!(!reused, "empty pool allocates fresh scratch");
        pool.release(s);
        let (_, reused) = pool.acquire_tracked();
        assert!(reused, "the pooled arena is reported as reused");
    }

    #[test]
    fn pool_is_bounded() {
        let pool = ScratchPool::default();
        let many: Vec<PlanScratch> = (0..200).map(|_| pool.acquire()).collect();
        for s in many {
            pool.release(s);
        }
        assert!(lock(&pool.pool).len() <= MAX_POOLED);
    }
}
