//! Incremental maintenance of DB histograms (paper §5 future work).
//!
//! The paper closes by naming "incremental maintenance … of
//! DEPENDENCY-BASED synopses" as an open avenue. This module implements
//! the natural first-order scheme:
//!
//! * **Counts move, structure stays.** A tuple insert/delete updates the
//!   bucket counts of every clique histogram (each clique sees the
//!   tuple's projection onto its attributes). The model `M` and the
//!   bucketization are untouched, so updates are `O(|C| · depth)`.
//! * **Staleness is tracked, not guessed.** The maintainer records the
//!   churn since the last build and a small reservoir sample of recent
//!   inserts; [`MaintainedDbHistogram::drift`] measures how badly the
//!   current model fits the sampled recent data (mean absolute relative
//!   error of model estimates on sampled tuples' clique projections),
//!   giving a principled rebuild trigger.
//!
//! When [`MaintainedDbHistogram::needs_rebuild`] trips, rebuild from the
//! current base table with [`MaintainedDbHistogram::rebuild`].

use std::sync::atomic::{AtomicBool, Ordering};

use dbhist_distribution::{AttrId, Distribution, Relation};
use dbhist_histogram::SplitTree;
use dbhist_telemetry::journal::{journal, JournalEvent};

use crate::build::{IncrementalBuilder as _, MhistCliqueBuilder};
use crate::error::SynopsisError;
use crate::estimator::SelectivityEstimator;
use crate::query::Query;

use crate::synopsis::{DbConfig, DbHistogram};

/// Tail quantile (percentile) of the per-clique error distribution that
/// participates in the rebuild trigger: a synopsis whose q95 error
/// exceeds the drift threshold is rebuilt even when its rolling *mean*
/// still looks healthy (a few catastrophic estimates hide in a mean).
pub const TRIGGER_QUANTILE: f64 = 95.0;

/// A DB histogram plus the bookkeeping to keep it fresh under updates.
#[derive(Debug)]
pub struct MaintainedDbHistogram {
    synopsis: DbHistogram<SplitTree>,
    config: DbConfig,
    /// Tuples in the synopsis's view of the table.
    row_count: f64,
    /// Inserts + deletes applied since the last (re)build.
    churn: usize,
    /// Row count at the last (re)build.
    built_rows: f64,
    /// Reservoir of recently inserted rows (for drift measurement).
    reservoir: Vec<Vec<u32>>,
    reservoir_seen: usize,
    /// Where to persist a snapshot after every rebuild, if set — so
    /// drift-triggered rebuilds can happen offline and replicas restart
    /// from the snapshot instead of the base table.
    snapshot_path: Option<std::path::PathBuf>,
    /// Set the first time [`MaintainedDbHistogram::needs_rebuild`] trips
    /// (so the journal sees one [`JournalEvent::DriftTrip`] per episode,
    /// not one per poll); cleared by a successful rebuild.
    trip_latched: AtomicBool,
}

impl Clone for MaintainedDbHistogram {
    fn clone(&self) -> Self {
        Self {
            synopsis: self.synopsis.clone(),
            config: self.config.clone(),
            row_count: self.row_count,
            churn: self.churn,
            built_rows: self.built_rows,
            reservoir: self.reservoir.clone(),
            reservoir_seen: self.reservoir_seen,
            snapshot_path: self.snapshot_path.clone(),
            trip_latched: AtomicBool::new(self.trip_latched.load(Ordering::Acquire)),
        }
    }
}

/// Size of the insert reservoir used for drift measurement.
const RESERVOIR: usize = 256;

impl MaintainedDbHistogram {
    /// Builds the initial synopsis.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn build(relation: &Relation, config: DbConfig) -> Result<Self, SynopsisError> {
        let synopsis = crate::synopsis::build_mhist_pipeline(relation, &config)?;
        let rows = relation.row_count() as f64;
        Ok(Self {
            synopsis,
            config,
            row_count: rows,
            churn: 0,
            built_rows: rows,
            reservoir: Vec::new(),
            reservoir_seen: 0,
            snapshot_path: None,
            trip_latched: AtomicBool::new(false),
        })
    }

    /// Restores a maintained synopsis from a snapshot written by
    /// [`MaintainedDbHistogram::persist_to`] (or a session checkpoint):
    /// no model re-selection, no base-table scan. The snapshot path is
    /// registered for future rebuild re-saves, and the row count is
    /// recovered from the synopsis's own total mass. The reservoir and
    /// churn counters restart empty — they inform *drift measurement*
    /// cadence, never estimates, so recovery stays bit-identical where
    /// it matters.
    ///
    /// # Errors
    ///
    /// Propagates snapshot load failures;
    /// [`SynopsisError::InvalidConfig`] if the snapshot does not hold an
    /// MHIST synopsis.
    pub fn from_snapshot(
        path: impl Into<std::path::PathBuf>,
        config: DbConfig,
    ) -> Result<Self, SynopsisError> {
        let path = path.into();
        let synopsis = crate::builder::Synopsis::load(&path)?.into_mhist().ok_or(
            SynopsisError::InvalidConfig {
                parameter: "path",
                reason: "snapshot does not hold an MHIST synopsis".to_string(),
            },
        )?;
        let rows = synopsis.estimate(&Query::all()).max(0.0);
        Ok(Self {
            synopsis,
            config,
            row_count: rows,
            churn: 0,
            built_rows: rows,
            reservoir: Vec::new(),
            reservoir_seen: 0,
            snapshot_path: Some(path),
            trip_latched: AtomicBool::new(false),
        })
    }

    /// The wrapped synopsis.
    #[must_use]
    pub fn synopsis(&self) -> &DbHistogram<SplitTree> {
        &self.synopsis
    }

    /// The build configuration (criterion, budget, selection knobs).
    #[must_use]
    pub fn config(&self) -> &DbConfig {
        &self.config
    }

    /// Tuples currently represented.
    #[must_use]
    pub fn row_count(&self) -> f64 {
        self.row_count
    }

    /// Updates applied since the last build.
    #[must_use]
    pub fn churn(&self) -> usize {
        self.churn
    }

    /// Applies one row update to every clique histogram.
    fn apply(&mut self, row: &[u32], delta: f64) {
        let model = self.synopsis.model().clone();
        for (clique, factor) in model.cliques().iter().zip(self.synopsis.factors_mut()) {
            let key: Vec<u32> = clique.iter().map(|a| row[usize::from(a)]).collect();
            factor.update(&key, delta);
        }
        self.row_count = (self.row_count + delta).max(0.0);
        self.churn += 1;
    }

    /// Registers an inserted tuple.
    ///
    /// # Panics
    ///
    /// Panics if the row does not match the schema.
    pub fn insert(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.synopsis.model().schema().arity(), "row arity mismatch");
        self.apply(row, 1.0);
        // Reservoir sampling of inserts (deterministic Fibonacci-hash
        // position so maintenance stays reproducible).
        self.reservoir_seen += 1;
        if self.reservoir.len() < RESERVOIR {
            self.reservoir.push(row.to_vec());
        } else {
            let slot = (self.reservoir_seen as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) as usize
                % self.reservoir_seen;
            if slot < RESERVOIR {
                self.reservoir[slot] = row.to_vec();
            }
        }
    }

    /// Registers a deleted tuple.
    ///
    /// # Panics
    ///
    /// Panics if the row does not match the schema.
    pub fn delete(&mut self, row: &[u32]) {
        assert_eq!(row.len(), self.synopsis.model().schema().arity(), "row arity mismatch");
        self.apply(row, -1.0);
    }

    /// Fraction of the table churned since the last build.
    #[must_use]
    pub fn staleness(&self) -> f64 {
        if self.built_rows <= 0.0 {
            return if self.churn > 0 { 1.0 } else { 0.0 };
        }
        self.churn as f64 / self.built_rows
    }

    /// How badly the current synopsis describes *recent* data: the mean of
    /// `1 / (1 + f̂)` over the reservoir of recent inserts, where `f̂` is
    /// the synopsis's full-tuple point estimate at each sampled row.
    ///
    /// Inserts that follow the modeled correlation pattern land in
    /// well-populated regions (`f̂ ≫ 1`, contribution ≈ 0); inserts that
    /// contradict the model land where its cross-clique products predict
    /// near-zero mass (contribution → 1). Returns 0 when no inserts have
    /// been observed.
    #[must_use]
    pub fn drift(&self) -> f64 {
        if self.reservoir.is_empty() {
            return 0.0;
        }
        let mut sum = 0.0;
        for row in &self.reservoir {
            let query: Query = row
                .iter()
                .enumerate()
                .filter_map(|(a, &v)| AttrId::try_from(a).ok().map(|a| (a, v, v)))
                .collect::<Vec<_>>()
                .into();
            let est = self.synopsis.estimate(&query).max(0.0);
            sum += 1.0 / (1.0 + est);
        }
        sum / self.reservoir.len() as f64
    }

    /// Feeds an observed (actual) result cardinality back to the wrapped
    /// synopsis's accuracy-drift monitor; see
    /// [`DbHistogram::record_feedback`]. Feedback accumulated here is the
    /// third rebuild trigger consulted by
    /// [`MaintainedDbHistogram::needs_rebuild`].
    pub fn record_feedback(&self, query: &Query, actual: f64) {
        self.synopsis.record_feedback(query, actual);
    }

    /// Worst per-clique rolling mean absolute relative error reported by
    /// executed queries via [`MaintainedDbHistogram::record_feedback`].
    /// Zero until any feedback arrives.
    #[must_use]
    pub fn feedback_drift(&self) -> f64 {
        self.synopsis.drift_monitor().max_drift()
    }

    /// `true` once churn exceeds `churn_threshold` (fraction of the base
    /// table) — the simple trigger — or measured drift exceeds
    /// `drift_threshold`. Drift is measured three ways: against the
    /// reservoir of recent inserts ([`MaintainedDbHistogram::drift`]),
    /// against the rolling mean of executed-query feedback
    /// ([`MaintainedDbHistogram::feedback_drift`]), and against the
    /// *tail* of the per-clique feedback error distribution (the
    /// [`TRIGGER_QUANTILE`]-th percentile) — so a clique whose worst 5%
    /// of estimates go bad trips the trigger even while its mean stays
    /// under the threshold. Feedback gauges only participate once
    /// feedback has actually been recorded, so feedback-free workloads
    /// behave exactly as before.
    ///
    /// The first poll that trips publishes a [`JournalEvent::DriftTrip`]
    /// naming the worst clique; further polls of the same episode stay
    /// silent until a rebuild resets the latch.
    #[must_use]
    pub fn needs_rebuild(&self, churn_threshold: f64, drift_threshold: f64) -> bool {
        let monitor = self.synopsis.drift_monitor();
        let feedback_tripped = monitor.observations() > 0
            && (monitor.max_drift() > drift_threshold
                || monitor.max_error_quantile(TRIGGER_QUANTILE) > drift_threshold);
        let tripped = self.staleness() > churn_threshold
            || self.drift() > drift_threshold
            || feedback_tripped;
        if tripped && !self.trip_latched.swap(true, Ordering::AcqRel) {
            // Attribute the trip to the worst clique by rolling mean.
            let worst = (0..monitor.n_cliques())
                .max_by(|&a, &b| monitor.drift(a).total_cmp(&monitor.drift(b)))
                .unwrap_or(0);
            journal().publish(JournalEvent::DriftTrip {
                clique: worst,
                drift: monitor.drift(worst).max(self.drift()),
            });
        }
        tripped
    }

    /// Rebuilds the synopsis (model selection + histograms) from the
    /// current base table and resets the bookkeeping.
    ///
    /// # Errors
    ///
    /// Propagates construction failures.
    pub fn rebuild(&mut self, relation: &Relation) -> Result<(), SynopsisError> {
        let max_drift = self.synopsis.drift_monitor().max_drift();
        self.synopsis = crate::synopsis::build_mhist_pipeline(relation, &self.config)?;
        self.row_count = relation.row_count() as f64;
        self.built_rows = self.row_count;
        self.churn = 0;
        self.reservoir.clear();
        self.reservoir_seen = 0;
        if let Some(path) = &self.snapshot_path {
            crate::snapshot::save_db(&self.synopsis, path)?;
        }
        self.trip_latched.store(false, Ordering::Release);
        journal().publish(JournalEvent::Rebuild { rows: relation.row_count() as u64, max_drift });
        Ok(())
    }

    /// Persists a snapshot to `path` after every successful
    /// [`MaintainedDbHistogram::rebuild`] (atomic temp-file + rename, so
    /// readers never observe a torn snapshot), and writes one immediately
    /// so the file exists before the first rebuild fires.
    ///
    /// # Errors
    ///
    /// Propagates the initial save's failure.
    pub fn persist_to(&mut self, path: impl Into<std::path::PathBuf>) -> Result<(), SynopsisError> {
        let path = path.into();
        crate::snapshot::save_db(&self.synopsis, &path)?;
        self.snapshot_path = Some(path);
        Ok(())
    }

    /// [`MaintainedDbHistogram::persist_to`] with a WAL position
    /// recorded atomically inside the snapshot — the durable ingest
    /// session's entry point, so recovery can prove which WAL batches
    /// the snapshot already absorbed.
    pub(crate) fn persist_to_with_wal(
        &mut self,
        path: impl Into<std::path::PathBuf>,
        wal: dbhist_persist::WalPosition,
    ) -> Result<(), SynopsisError> {
        let path = path.into();
        crate::snapshot::save_db_with_wal(&self.synopsis, &path, Some(wal))?;
        self.snapshot_path = Some(path);
        Ok(())
    }

    /// The snapshot path registered via
    /// [`MaintainedDbHistogram::persist_to`], if any.
    #[must_use]
    pub fn snapshot_path(&self) -> Option<&std::path::Path> {
        self.snapshot_path.as_deref()
    }

    /// Re-saves the registered snapshot so it reflects every update
    /// applied since the last save. A no-op without a registered path.
    ///
    /// # Errors
    ///
    /// Propagates the save's failure.
    pub fn refresh_snapshot(&self) -> Result<(), SynopsisError> {
        if let Some(path) = &self.snapshot_path {
            crate::snapshot::save_db(&self.synopsis, path)?;
        }
        Ok(())
    }

    /// [`MaintainedDbHistogram::refresh_snapshot`] with a WAL position
    /// recorded atomically inside the snapshot. The ingest checkpoint
    /// calls this **before** truncating the WAL: a crash between the
    /// two leaves a snapshot that names exactly the batches it absorbed,
    /// so recovery skips them instead of double-applying.
    pub(crate) fn refresh_snapshot_with_wal(
        &self,
        wal: dbhist_persist::WalPosition,
    ) -> Result<(), SynopsisError> {
        if let Some(path) = &self.snapshot_path {
            crate::snapshot::save_db_with_wal(&self.synopsis, path, Some(wal))?;
        }
        Ok(())
    }

    /// Rebuilds **one clique's** bucketization from `marginal` (its
    /// up-to-date marginal distribution) through the same split-tree
    /// allocator a full build uses, targeting the bucket count the
    /// clique already owns — the model, every other factor, and the
    /// storage allocation stay untouched. This is the cheap remedy when
    /// query feedback says one clique's buckets no longer resolve the
    /// data: `O(one clique)` instead of full re-selection.
    ///
    /// The replaced clique's feedback-drift statistics are reset (they
    /// described the old buckets) and the trip latch is released, so
    /// the next degradation journals a fresh
    /// [`JournalEvent::DriftTrip`]. Returns the replacement factor's
    /// bucket count.
    ///
    /// # Errors
    ///
    /// [`SynopsisError::InvalidConfig`] for an out-of-range clique
    /// index or a marginal whose attributes are not exactly the
    /// clique's; propagates histogram-construction failures.
    pub fn resplit_clique(
        &mut self,
        clique: usize,
        marginal: &Distribution,
    ) -> Result<usize, SynopsisError> {
        let cliques = self.synopsis.model().cliques();
        let Some(attrs) = cliques.get(clique) else {
            return Err(SynopsisError::InvalidConfig {
                parameter: "clique",
                reason: format!("clique index {clique} out of range ({})", cliques.len()),
            });
        };
        if marginal.attrs() != attrs {
            return Err(SynopsisError::InvalidConfig {
                parameter: "marginal",
                reason: format!(
                    "marginal attrs {:?} are not the clique's {attrs:?}",
                    marginal.attrs()
                ),
            });
        }
        let target = self.synopsis.factors().get(clique).map_or(1, SplitTree::bucket_count);
        let mut builder = MhistCliqueBuilder::start(marginal, self.config.criterion)?;
        while builder.bucket_count() < target && builder.split_once() {}
        let buckets = builder.bucket_count();
        self.synopsis.replace_factor(clique, builder.finish());
        self.synopsis.drift_monitor().reset_clique(clique);
        self.trip_latched.store(false, Ordering::Release);
        journal().publish(JournalEvent::Resplit { clique, buckets: buckets as u64 });
        Ok(buckets)
    }
}

impl SelectivityEstimator for MaintainedDbHistogram {
    fn estimate(&self, query: &Query) -> f64 {
        self.synopsis.estimate(query)
    }

    fn storage_bytes(&self) -> usize {
        self.synopsis.storage_bytes()
    }

    fn name(&self) -> &str {
        "DB-maintained"
    }

    fn query_trace(&self) -> Option<crate::plan::QueryTrace> {
        self.synopsis.query_trace().into()
    }

    fn reset_trace(&self) {
        self.synopsis.reset_query_trace();
    }

    fn record_feedback(&self, query: &Query, actual: f64) {
        MaintainedDbHistogram::record_feedback(self, query, actual);
    }

    fn feedback_drift(&self) -> Option<f64> {
        Some(MaintainedDbHistogram::feedback_drift(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    /// a == b (8 values), c independent.
    fn relation(rows: u32) -> Relation {
        let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
        let data: Vec<Vec<u32>> = (0..rows).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
        Relation::from_rows(schema, data).unwrap()
    }

    #[test]
    fn inserts_move_estimates() {
        let rel = relation(4096);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        let before = m.estimate(&Query::range(0, 3, 3));
        for _ in 0..500 {
            m.insert(&[3, 3, 0]);
        }
        let after = m.estimate(&Query::range(0, 3, 3));
        assert!(after > before + 400.0, "estimate should absorb the inserts: {before} → {after}");
        assert_eq!(m.churn(), 500);
        assert!((m.row_count() - 4596.0).abs() < 1e-9);
    }

    #[test]
    fn deletes_reverse_inserts() {
        let rel = relation(4096);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        let baseline = m.estimate(&Query::range(0, 2, 5));
        for _ in 0..100 {
            m.insert(&[4, 4, 1]);
        }
        for _ in 0..100 {
            m.delete(&[4, 4, 1]);
        }
        let roundtrip = m.estimate(&Query::range(0, 2, 5));
        assert!(
            (roundtrip - baseline).abs() < 1e-6 * (1.0 + baseline),
            "{baseline} vs {roundtrip}"
        );
        assert!((m.row_count() - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn deletes_clamp_at_zero() {
        let rel = relation(64);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        for _ in 0..10_000 {
            m.delete(&[0, 0, 0]);
        }
        assert!(m.estimate(&Query::all()) >= 0.0);
    }

    #[test]
    fn staleness_and_rebuild() {
        let rel = relation(1000);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        assert_eq!(m.staleness(), 0.0);
        assert!(!m.needs_rebuild(0.1, 0.99));
        for i in 0..200u32 {
            m.insert(&[i % 8, (i + 1) % 8, 0]);
        }
        assert!((m.staleness() - 0.2).abs() < 1e-9);
        assert!(m.needs_rebuild(0.1, 0.99));
        // Rebuild resets.
        let rel2 = relation(1200);
        m.rebuild(&rel2).unwrap();
        assert_eq!(m.churn(), 0);
        assert_eq!(m.staleness(), 0.0);
        assert!((m.row_count() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn drift_detects_pattern_shift() {
        let rel = relation(4096);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        // Inserts that FOLLOW the old pattern (a == b): low drift.
        for i in 0..200u32 {
            m.insert(&[i % 8, i % 8, (i / 8) % 4]);
        }
        let aligned_drift = m.drift();
        // Now inserts that BREAK the pattern (a != b lands in buckets the
        // old model considers empty): drift rises.
        for i in 0..200u32 {
            m.insert(&[i % 8, (i + 3) % 8, (i / 8) % 4]);
        }
        let broken_drift = m.drift();
        assert!(
            broken_drift > aligned_drift,
            "drift should rise when new data contradicts the model: \
             {aligned_drift} vs {broken_drift}"
        );
    }

    #[test]
    fn updates_invalidate_cached_marginals() {
        let rel = relation(4096);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        // With the materialized-marginal cache on, an update must not let
        // a stale cached marginal answer the next query.
        m.synopsis().enable_marginal_cache(8);
        let before = m.estimate(&Query::range(0, 3, 3));
        for _ in 0..500 {
            m.insert(&[3, 3, 0]);
        }
        let after = m.estimate(&Query::range(0, 3, 3));
        assert!(after > before + 400.0, "stale cached marginal served after update: {after}");
    }

    #[test]
    fn feedback_drift_triggers_rebuild() {
        let rel = relation(4096);
        let mut m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        assert!(m.feedback_drift().abs() < 1e-12);
        assert!(!m.needs_rebuild(10.0, 0.5), "no trigger before any feedback");
        // Executed queries report actuals 10x the estimates: relative
        // error 0.9 per observation, well past the 0.5 threshold.
        for i in 0..32u32 {
            let q = Query::equals(0, i % 8);
            let est = m.estimate(&q).max(1.0);
            m.record_feedback(&q, est * 10.0);
        }
        assert!(m.feedback_drift() > 0.5, "drift gauge: {}", m.feedback_drift());
        assert!(m.needs_rebuild(10.0, 0.5), "feedback drift must trip the trigger");
        // Rebuilding installs a fresh monitor and clears the trigger.
        m.rebuild(&rel).unwrap();
        assert!(m.feedback_drift().abs() < 1e-12);
        assert!(!m.needs_rebuild(10.0, 0.5));
    }

    #[test]
    fn tail_quantile_trips_before_the_mean() {
        let rel = relation(4096);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(600)).unwrap();
        // 29 accurate estimates and 3 catastrophic ones (relative error
        // 0.9): the rolling mean stays well under the 0.5 threshold, but
        // the q95 of the error distribution sits in the bad tail.
        for i in 0..32u32 {
            let q = Query::equals(0, i % 8);
            let est = m.estimate(&q).max(1.0);
            let actual = if i < 3 { est * 10.0 } else { est };
            m.record_feedback(&q, actual);
        }
        assert!(m.feedback_drift() < 0.5, "mean must stay under threshold: {}", m.feedback_drift());
        let q95 = m.synopsis().drift_monitor().max_error_quantile(TRIGGER_QUANTILE);
        assert!(q95 > 0.5, "q95 must sit in the bad tail: {q95}");
        assert!(
            m.needs_rebuild(10.0, 0.5),
            "tail quantile must trip the trigger while the mean is healthy"
        );
    }

    #[test]
    fn estimator_interface() {
        let rel = relation(512);
        let m = MaintainedDbHistogram::build(&rel, DbConfig::new(400)).unwrap();
        assert_eq!(m.name(), "DB-maintained");
        assert!(m.storage_bytes() > 0);
        assert!((m.estimate(&Query::all()) - 512.0).abs() < 1e-6);
    }
}
