//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * **A1** — split-tree vs. naive `b(2n+1)` MHIST storage (the paper's
//!   §3.3.2 claim), reported as bytes and benchmarked as codec time;
//! * **A2** — IncrementalGains vs. the optimal DP allocator: solution
//!   quality and running time;
//! * **A3** — `k_max` = 2 vs. 3 (the paper found 3-dimensional clique
//!   histograms counterproductive at tight budgets).

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench drivers: abort on a broken build

use criterion::{criterion_group, BenchmarkId, Criterion};
use dbhist_bench::experiments::Scale;
use dbhist_core::alloc::{error_curve, incremental_gains, optimal_dp};
use dbhist_core::build::MhistCliqueBuilder;
use dbhist_core::Query;
use dbhist_core::SelectivityEstimator;
use dbhist_core::SynopsisBuilder;
use dbhist_data::metrics::ErrorSummary;
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::AttrSet;
use dbhist_histogram::codec::{encode_split_tree, naive_mhist_bytes, split_tree_bytes};
use dbhist_histogram::mhist::MhistBuilder;
use dbhist_histogram::SplitCriterion;

fn ablation_split_tree(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let pair = rel.marginal(&AttrSet::from_ids([1, 2])).unwrap();
    for buckets in [64usize, 256] {
        let tree = MhistBuilder::build(&pair, buckets, SplitCriterion::MaxDiff).unwrap();
        eprintln!(
            "A1 split-tree storage at b={}: {} bytes vs naive {} bytes ({}x smaller)",
            tree.bucket_count(),
            split_tree_bytes(tree.bucket_count()),
            naive_mhist_bytes(tree.bucket_count(), tree.attrs().len()),
            naive_mhist_bytes(tree.bucket_count(), tree.attrs().len()) as f64
                / split_tree_bytes(tree.bucket_count()) as f64
        );
    }
    let tree = MhistBuilder::build(&pair, 256, SplitCriterion::MaxDiff).unwrap();
    let mut group = c.benchmark_group("a1_codec");
    group.sample_size(20);
    group.bench_function("encode_256_buckets", |b| b.iter(|| encode_split_tree(&tree)));
    group.finish();
}

fn ablation_allocation(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let cliques = [
        AttrSet::from_ids([1, 2]),
        AttrSet::from_ids([2, 3]),
        AttrSet::from_ids([1, 4]),
        AttrSet::from_ids([5]),
    ];
    let marginals: Vec<_> = cliques.iter().map(|c| rel.marginal(c).unwrap()).collect();
    let budget = 2 * 1024;

    let mut group = c.benchmark_group("a2_allocation");
    group.sample_size(10);
    group.bench_function("incremental_gains", |b| {
        b.iter(|| {
            let mut builders: Vec<_> = marginals
                .iter()
                .map(|m| MhistCliqueBuilder::start(m, SplitCriterion::MaxDiff).unwrap())
                .collect();
            incremental_gains(&mut builders, budget).unwrap()
        });
    });
    group.bench_function("optimal_dp", |b| {
        b.iter(|| {
            let curves: Vec<_> = marginals
                .iter()
                .map(|m| {
                    let mut builder =
                        MhistCliqueBuilder::start(m, SplitCriterion::MaxDiff).unwrap();
                    error_curve(&mut builder, budget)
                })
                .collect();
            optimal_dp(&curves, budget).unwrap()
        });
    });
    group.finish();

    // Quality comparison, reported once.
    let mut builders: Vec<_> = marginals
        .iter()
        .map(|m| MhistCliqueBuilder::start(m, SplitCriterion::MaxDiff).unwrap())
        .collect();
    let greedy = incremental_gains(&mut builders, budget).unwrap();
    let curves: Vec<_> = marginals
        .iter()
        .map(|m| {
            let mut builder = MhistCliqueBuilder::start(m, SplitCriterion::MaxDiff).unwrap();
            error_curve(&mut builder, budget)
        })
        .collect();
    let picks = optimal_dp(&curves, budget).unwrap();
    let dp_error: f64 = picks.iter().map(|p| p.error).sum();
    eprintln!(
        "A2 at {budget}B: greedy error {:.1} vs optimal DP {:.1} (gap {:.2}%)",
        greedy.total_error,
        dp_error,
        100.0 * (greedy.total_error - dp_error) / dp_error.max(1e-9)
    );
}

fn ablation_kmax(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: 20, min_count: 50, seed: 31 },
    );
    let mut group = c.benchmark_group("a3_kmax");
    group.sample_size(10);
    for k_max in [2usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(k_max), &k_max, |b, &k_max| {
            b.iter(|| {
                SynopsisBuilder::new(&rel).budget(3 * 1024).k_max(k_max).build_mhist().unwrap()
            });
        });
        let db = SynopsisBuilder::new(&rel).budget(3 * 1024).k_max(k_max).build_mhist().unwrap();
        let summary = ErrorSummary::evaluate(&workload, |r| db.estimate(&Query::from(r)));
        eprintln!(
            "A3 k_max={k_max}: model {} | rel err {:.3}, mult err {:.2}",
            db.model().notation(),
            summary.mean_relative,
            summary.mean_multiplicative
        );
    }
    group.finish();
}

fn ablation_selection_direction(c: &mut Criterion) {
    // Forward selection vs. backward elimination (paper §3.1's argument):
    // same model on clear structure, radically different entropy work.
    let scale = Scale::quick();
    let rel = scale.census_1();
    let mut group = c.benchmark_group("a4_selection_direction");
    group.sample_size(10);
    group.bench_function("forward", |b| {
        b.iter(|| {
            dbhist_model::selection::ForwardSelector::new(
                &rel,
                dbhist_model::selection::SelectionConfig::default(),
            )
            .run()
        });
    });
    group.bench_function("backward", |b| {
        b.iter(|| {
            dbhist_model::backward::backward_eliminate(
                &rel,
                dbhist_model::selection::SelectionConfig::default(),
            )
        });
    });
    group.finish();
    let fwd = dbhist_model::selection::ForwardSelector::new(
        &rel,
        dbhist_model::selection::SelectionConfig::default(),
    )
    .run();
    let bwd = dbhist_model::backward::backward_eliminate(
        &rel,
        dbhist_model::selection::SelectionConfig::default(),
    );
    eprintln!(
        "A4 entropy computations: forward {} vs backward {} (models: fwd {} | bwd {})",
        fwd.entropy_computations,
        bwd.entropy_computations,
        fwd.model.notation(),
        bwd.model.notation()
    );
}

fn ablation_clique_synopsis_family(c: &mut Criterion) {
    // MHIST vs grid vs wavelet clique synopses at the same byte budget
    // (the paper's §5 wavelet-extension claim, quantified).
    let scale = Scale::quick();
    let rel = scale.census_1();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: 20, min_count: 50, seed: 77 },
    );
    let budget = 3 * 1024;
    let mut group = c.benchmark_group("a5_clique_family");
    group.sample_size(10);
    group.bench_function("build_mhist", |b| {
        b.iter(|| SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap());
    });
    group.bench_function("build_grid", |b| {
        b.iter(|| SynopsisBuilder::new(&rel).budget(budget).build_grid().unwrap());
    });
    group.bench_function("build_wavelet", |b| {
        b.iter(|| SynopsisBuilder::new(&rel).budget(budget).build_wavelet().unwrap());
    });
    group.finish();

    let mh = SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap();
    let gr = SynopsisBuilder::new(&rel).budget(budget).build_grid().unwrap();
    let wv = SynopsisBuilder::new(&rel).budget(budget).build_wavelet().unwrap();
    let report = |name: &str, s: &dyn SelectivityEstimator| {
        let e = ErrorSummary::evaluate(&workload, |r| s.estimate(&Query::from(r)));
        eprintln!(
            "A5 {name}: rel {:.3} mult {:.2} ({} bytes)",
            e.mean_relative,
            e.mean_multiplicative,
            s.storage_bytes()
        );
    };
    report("DB-mhist", &mh);
    report("DB-grid", &gr);
    report("DB-wavelet", &wv);
}

criterion_group!(
    benches,
    ablation_split_tree,
    ablation_allocation,
    ablation_kmax,
    ablation_selection_direction,
    ablation_clique_synopsis_family
);
fn main() {
    // Debug builds (`cargo test --workspace`) skip the heavy pipelines;
    // run `cargo bench` for real measurements.
    if cfg!(debug_assertions) {
        eprintln!("skipping benches in debug build; use `cargo bench`");
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
