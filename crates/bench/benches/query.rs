//! Query-answering benchmarks: per-estimator selectivity-estimation
//! latency and `ComputeMarginal` vs. the naive full-reconstruction
//! strategy (paper §3.3.1).

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench drivers: abort on a broken build

use criterion::{criterion_group, BenchmarkId, Criterion};
use dbhist_bench::experiments::Scale;
use dbhist_core::baselines::{IndEstimator, MhistEstimator};
use dbhist_core::marginal::{
    compute_marginal_naive, compute_marginal_with_stats, estimate_mass_interpreted,
};
use dbhist_core::plan::QueryEngine;
use dbhist_core::Query;
use dbhist_core::SelectivityEstimator;
use dbhist_core::SynopsisBuilder;
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::AttrSet;
use dbhist_histogram::SplitCriterion;

fn bench_estimation(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let budget = 3 * 1024;
    let db = SynopsisBuilder::new(&rel).budget(budget).build_mhist().unwrap();
    let ind = IndEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    let mhist = MhistEstimator::build(&rel, budget, SplitCriterion::MaxDiff).unwrap();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: 20, min_count: 50, seed: 5 },
    );
    // Convert once, outside the timed loop: the benchmark measures
    // estimation, not predicate construction.
    let queries: Vec<Query> =
        workload.queries.iter().map(|q| Query::from(q.ranges.as_slice())).collect();
    let estimators: Vec<(&str, &dyn SelectivityEstimator)> =
        vec![("DB2", &db), ("IND", &ind), ("MHIST", &mhist)];
    let mut group = c.benchmark_group("estimate_3d_workload");
    group.sample_size(10);
    for (name, est) in estimators {
        group.bench_with_input(BenchmarkId::from_parameter(name), &est, |b, est| {
            b.iter(|| queries.iter().map(|q| est.estimate(q)).sum::<f64>());
        });
    }
    group.finish();
}

fn bench_marginal_strategies(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(3 * 1024).build_mhist().unwrap();
    let tree = db.model().junction_tree();
    let factors = db.factors();
    // A small cross-clique target.
    let target = AttrSet::from_ids([1, 5]);
    let mut group = c.benchmark_group("compute_marginal");
    group.sample_size(10);
    group.bench_function("fig3_algorithm", |b| {
        b.iter(|| compute_marginal_with_stats(tree, factors, &target).unwrap());
    });
    group.bench_function("naive_full_joint", |b| {
        b.iter(|| compute_marginal_naive(tree, factors, &target).unwrap());
    });
    group.finish();

    let (_, fast) = compute_marginal_with_stats(tree, factors, &target).unwrap();
    let (_, naive) = compute_marginal_naive(tree, factors, &target).unwrap();
    eprintln!(
        "ops for {target}: fig3 {fast:?} vs naive {naive:?} (model {})",
        db.model().notation()
    );
}

fn bench_plan_vs_interpreter(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(3 * 1024).build_mhist().unwrap();
    let tree = db.model().junction_tree();
    let factors = db.factors();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: 20, min_count: 50, seed: 5 },
    );
    let queries: Vec<(AttrSet, Query)> = workload
        .queries
        .iter()
        .map(|q| {
            (AttrSet::from_ids(q.ranges.iter().map(|r| r.0)), Query::from(q.ranges.as_slice()))
        })
        .collect();

    let mut group = c.benchmark_group("estimate_mass_path");
    group.sample_size(10);
    group.bench_function("interpreted", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|(t, r)| estimate_mass_interpreted(tree, factors, t, r).unwrap())
                .sum::<f64>()
        });
    });
    // Warm the plan cache once so the measurement reflects the steady
    // state (replayed plans, zero-clone execution).
    let engine: QueryEngine<_> = QueryEngine::new(tree);
    for (t, r) in &queries {
        engine.estimate_mass(tree, factors, t, r).unwrap();
    }
    group.bench_function("planned_warm_cache", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|(t, r)| engine.estimate_mass(tree, factors, t, r).unwrap())
                .sum::<f64>()
        });
    });
    let cached: QueryEngine<_> = QueryEngine::new(tree);
    cached.enable_marginal_cache(64);
    for (t, r) in &queries {
        cached.estimate_mass(tree, factors, t, r).unwrap();
    }
    group.bench_function("planned_marginal_cache", |b| {
        b.iter(|| {
            queries
                .iter()
                .map(|(t, r)| cached.estimate_mass(tree, factors, t, r).unwrap())
                .sum::<f64>()
        });
    });
    group.finish();
    let trace = engine.trace();
    eprintln!(
        "plan path: {} plan-cache hits / {} misses, {} factor clones",
        trace.plan_cache_hits, trace.plan_cache_misses, trace.factor_clones
    );
}

criterion_group!(benches, bench_estimation, bench_marginal_strategies, bench_plan_vs_interpreter);
fn main() {
    // Debug builds (`cargo test --workspace`) skip the heavy pipelines;
    // run `cargo bench` for real measurements.
    if cfg!(debug_assertions) {
        eprintln!("skipping benches in debug build; use `cargo bench`");
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
