//! Criterion timing of each figure-regeneration pipeline (quick scale).
//!
//! The actual paper-scale series are produced by the `repro` binary; these
//! benches track how long each experiment pipeline takes end-to-end so
//! regressions in construction or estimation show up.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench drivers: abort on a broken build

use criterion::{criterion_group, Criterion};
use dbhist_bench::experiments::{fig6, fig7, fig8, fig9, housing_experiment, Scale};

fn bench_figures(c: &mut Criterion) {
    let scale = Scale::tiny();
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(15));
    group.bench_function("fig6_2d", |b| b.iter(|| fig6(&scale, 2, 4)));
    group.bench_function("fig7", |b| b.iter(|| fig7(&scale)));
    group.bench_function("fig8_two_budgets", |b| {
        b.iter(|| fig8(&scale, &[1024, 2048]));
    });
    group.bench_function("fig9", |b| b.iter(|| fig9(&scale)));
    group.bench_function("housing", |b| b.iter(|| housing_experiment(&scale)));
    group.finish();
}

criterion_group!(benches, bench_figures);
fn main() {
    // Debug builds (`cargo test --workspace`) skip the heavy pipelines;
    // run `cargo bench` for real measurements.
    if cfg!(debug_assertions) {
        eprintln!("skipping benches in debug build; use `cargo bench`");
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
