//! Construction-cost benchmarks (paper defers these to the full version).
//!
//! * forward model selection: naive vs. the efficient separator-based
//!   algorithm (the paper's novel contribution), including the number of
//!   marginal-entropy computations each needs;
//! * clique-histogram construction (MHIST builder) at several budgets;
//! * end-to-end DB-histogram construction.

#![allow(clippy::unwrap_used, clippy::expect_used)] // bench drivers: abort on a broken build

use criterion::{criterion_group, BenchmarkId, Criterion};
use dbhist_bench::experiments::Scale;
use dbhist_core::SynopsisBuilder;
use dbhist_distribution::AttrSet;
use dbhist_histogram::mhist::MhistBuilder;
use dbhist_histogram::SplitCriterion;
use dbhist_model::selection::{ForwardSelector, SelectionAlgorithm, SelectionConfig};

fn bench_selection(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let mut group = c.benchmark_group("model_selection");
    group.sample_size(10);
    for algorithm in [SelectionAlgorithm::Naive, SelectionAlgorithm::Efficient] {
        group.bench_with_input(
            BenchmarkId::new("census1", format!("{algorithm:?}")),
            &algorithm,
            |b, &algorithm| {
                b.iter(|| {
                    let config = SelectionConfig { algorithm, ..Default::default() };
                    ForwardSelector::new(&rel, config).run()
                });
            },
        );
    }
    group.finish();

    // Report the entropy-computation counts once (the paper's cost metric).
    for algorithm in [SelectionAlgorithm::Naive, SelectionAlgorithm::Efficient] {
        let config = SelectionConfig { algorithm, ..Default::default() };
        let result = ForwardSelector::new(&rel, config).run();
        eprintln!(
            "selection {algorithm:?}: {} edges, {} marginal-entropy computations",
            result.model.edge_count(),
            result.entropy_computations
        );
    }
}

fn bench_mhist_build(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let pair = rel.marginal(&AttrSet::from_ids([1, 2])).expect("country/mother marginal");
    let mut group = c.benchmark_group("mhist_build");
    group.sample_size(10);
    for buckets in [32usize, 128, 512] {
        group.bench_with_input(BenchmarkId::from_parameter(buckets), &buckets, |b, &n| {
            b.iter(|| MhistBuilder::build(&pair, n, SplitCriterion::MaxDiff).unwrap());
        });
    }
    group.finish();
}

fn bench_db_build(c: &mut Criterion) {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let mut group = c.benchmark_group("db_build");
    group.sample_size(10);
    for kb in [1usize, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(kb), &kb, |b, &kb| {
            b.iter(|| SynopsisBuilder::new(&rel).budget(kb * 1024).build_mhist().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection, bench_mhist_build, bench_db_build);
fn main() {
    // Debug builds (`cargo test --workspace`) skip the heavy pipelines;
    // run `cargo bench` for real measurements.
    if cfg!(debug_assertions) {
        eprintln!("skipping benches in debug build; use `cargo bench`");
        return;
    }
    benches();
    Criterion::default().configure_from_args().final_summary();
}
