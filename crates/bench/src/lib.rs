//! Experiment harness reproducing the paper's evaluation (§4).
//!
//! Each function in [`experiments`] regenerates one of the paper's
//! figures — same data-set shapes, same workloads, same metrics, same
//! synopsis budgets — and returns the series as plain data that the
//! `repro` binary prints and `EXPERIMENTS.md` records:
//!
//! | Function | Paper figure | What it shows |
//! |---|---|---|
//! | [`experiments::fig6`] | Fig. 6 | decomposable-model error vs. #edges (DB₁/DB₂, exact clique marginals) |
//! | [`experiments::fig7`] | Fig. 7 | rel. + mult. error vs. query dimensionality at 3 KB (IND/MHIST/DB₁/DB₂) |
//! | [`experiments::fig8`] | Fig. 8 | error vs. storage budget on a 3-D workload |
//! | [`experiments::fig9`] | Fig. 9 | the 12-attribute data set at 20 KB |
//! | [`experiments::housing_experiment`] | full-paper extra | California-housing-like data at 3 KB |
//!
//! [`Scale`] lets the same code run at the paper's full sizes (the
//! `repro` binary's default) or at a reduced scale for tests and timing
//! benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod report;

pub use experiments::Scale;
