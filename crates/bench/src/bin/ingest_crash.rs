//! Crash-recovery harness: SIGKILLs a mid-stream ingester and asserts
//! the WAL replay restores bit-identical estimates.
//!
//! ```text
//! ingest_crash                 # parent: spawn child, kill -9, recover, verify
//! ingest_crash --child S W     # child: durable ingest loop (never exits)
//! ```
//!
//! The parent re-invokes its own executable as the child, so the killed
//! process is a *real* separate OS process — nothing it buffered in user
//! space survives, exactly like a production crash. The child streams
//! deterministic batches through a durable [`IngestSession`] (snapshot +
//! fsync'd WAL) forever; the parent waits until the WAL has grown past a
//! few committed batches, SIGKILLs the child, recovers from
//! last-snapshot-plus-tail, and checks the recovered estimates
//! bit-for-bit against a reference session that applied the same first
//! `N` batches without ever crashing. Exits non-zero (panics) on any
//! divergence, so CI can run it as a plain step.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::time::{Duration, Instant};

use dbhist_core::ingest::{IngestConfig, IngestSession};
use dbhist_core::maintenance::MaintainedDbHistogram;
use dbhist_core::synopsis::DbConfig;
use dbhist_core::{Query, SelectivityEstimator};
use dbhist_distribution::{Relation, Schema};
use dbhist_persist::wal::WalOp;

const ROWS: usize = 4_000;
const DOMAIN: u32 = 16;
const BUDGET: usize = 4 * 1024;
const OPS_PER_BATCH: usize = 32;
const SEED: u64 = 0xC4A5_4B11u64;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic base relation shared by the child and the reference.
fn seed_relation() -> Relation {
    let mut state = SEED | 1;
    let schema = Schema::new((0..3).map(|i| (format!("a{i}"), DOMAIN))).unwrap();
    let rows: Vec<Vec<u32>> = (0..ROWS)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            vec![base, base, (xorshift(&mut state) % u64::from(DOMAIN)) as u32]
        })
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

/// Deterministic ingest batch `i` — the child journals these, the parent
/// replays the same function to build the reference.
fn batch(i: u64) -> Vec<WalOp> {
    let mut state = SEED ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..OPS_PER_BATCH)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            WalOp::Insert(vec![base, base, (xorshift(&mut state) % u64::from(DOMAIN)) as u32])
        })
        .collect()
}

fn probe_queries() -> Vec<Query> {
    vec![
        Query::all(),
        Query::equals(0, 3),
        Query::range(0, 1, 5),
        Query::range(1, DOMAIN / 2, DOMAIN - 1),
        Query::range(2, 0, 2),
    ]
}

/// Child mode: build, attach durability, stream batches until killed.
fn run_child(snap: &str, wal: &str) -> ! {
    let rel = seed_relation();
    let built = MaintainedDbHistogram::build(&rel, DbConfig::new(BUDGET)).unwrap();
    let mut session = IngestSession::begin(built, &rel, IngestConfig::default())
        .unwrap()
        .with_durability(snap, wal)
        .unwrap();
    for i in 0.. {
        session.apply_batch(&batch(i)).unwrap();
    }
    unreachable!("the ingest loop only ends by SIGKILL");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 4 && args[1] == "--child" {
        run_child(&args[2], &args[3]);
    }

    let dir = std::env::temp_dir();
    let snap = dir.join(format!("ingestcrash_{}.dbhs", std::process::id()));
    let walp = dir.join(format!("ingestcrash_{}.wal", std::process::id()));
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&walp).ok();

    let exe = std::env::current_exe().unwrap();
    let mut child = std::process::Command::new(&exe)
        .arg("--child")
        .arg(&snap)
        .arg(&walp)
        .spawn()
        .expect("spawn ingest child");

    // Wait until the child has committed a healthy WAL tail (well past
    // the 20-byte header), then let it run a touch longer so the kill
    // lands mid-stream — possibly mid-record, which recovery must trim.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let wal_len = std::fs::metadata(&walp).map(|m| m.len()).unwrap_or(0);
        if wal_len > 16 * 1024 {
            break;
        }
        assert!(Instant::now() < deadline, "child never committed a WAL tail");
        assert!(child.try_wait().unwrap().is_none(), "child died before the kill");
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(150));
    child.kill().expect("SIGKILL the ingester"); // SIGKILL on unix: no atexit, no flush
    child.wait().expect("reap the ingester");

    let start = Instant::now();
    let (recovered, report) =
        IngestSession::recover(&snap, &walp, DbConfig::new(BUDGET), IngestConfig::default())
            .expect("recover from last-snapshot-plus-tail");
    let elapsed = start.elapsed();
    let n = report.batches_replayed;
    assert!(n > 0, "the kill must land after at least one committed batch");

    // Reference: the same first `n` batches applied to an uncrashed
    // session built from the same deterministic relation.
    let rel = seed_relation();
    let built = MaintainedDbHistogram::build(&rel, DbConfig::new(BUDGET)).unwrap();
    let mut reference = IngestSession::begin(built, &rel, IngestConfig::default()).unwrap();
    for i in 0..n {
        reference.apply_batch(&batch(i)).unwrap();
    }

    let queries = probe_queries();
    let recovered_bits: Vec<u64> =
        queries.iter().map(|q| recovered.estimator().estimate(q).to_bits()).collect();
    let reference_bits: Vec<u64> =
        queries.iter().map(|q| reference.estimator().estimate(q).to_bits()).collect();
    assert_eq!(
        recovered_bits, reference_bits,
        "recovered estimates diverge from the uncrashed reference"
    );

    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&walp).ok();
    println!(
        "crash recovery OK: {n} batches ({} ops) replayed in {:.1}ms, \
         estimates bit-identical across {} probe queries{}",
        report.ops_replayed,
        elapsed.as_secs_f64() * 1e3,
        queries.len(),
        if report.tail_discarded.is_some() { ", torn tail trimmed" } else { "" },
    );
}
