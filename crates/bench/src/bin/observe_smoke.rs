//! Serves the observability endpoint for a smoke window so CI can probe
//! `/health` and `/metrics` from the outside with curl.
//!
//! ```text
//! observe_smoke [ADDR] [SECONDS]    (defaults: 127.0.0.1:9187 5)
//! ```
//!
//! Builds a small synopsis, starts an [`EstimatorService`] with explain
//! sampling on, answers one warm-up batch (so `/health` reports served
//! traffic and `/explain` holds real reports), prints the bound address
//! on stdout, and keeps serving for the window before shutting down.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::time::Duration;

use dbhist_core::service::{EstimatorService, ServiceConfig};
use dbhist_core::{Predicate, Query, SynopsisBuilder};
use dbhist_distribution::{Relation, Schema};

fn main() {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:9187".into());
    let seconds: u64 = args.next().map_or(5, |v| v.parse().expect("SECONDS must be a number"));
    dbhist_telemetry::set_enabled(true);

    let schema = Schema::new(vec![("a", 8), ("b", 8), ("c", 4)]).unwrap();
    let rows: Vec<Vec<u32>> = (0..4096).map(|i| vec![i % 8, i % 8, (i / 8) % 4]).collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let synopsis = SynopsisBuilder::new(&rel).budget(512).build().unwrap();

    let service =
        EstimatorService::start(synopsis, ServiceConfig { workers: 2, explain_sample: 1 });
    let queries: Vec<Query> = (0..4u32)
        .map(|i| std::iter::once(Predicate::range(0, 0, i + 1)).collect::<Query>())
        .collect();
    let reply = service.submit(queries).wait().expect("warm-up batch dropped");
    assert_eq!(reply.estimates.len(), 4, "warm-up batch must be answered in full");

    let server = service.serve_observability(&addr).expect("cannot bind observability endpoint");
    println!("{}", server.addr());
    std::thread::sleep(Duration::from_secs(seconds));
    drop(server);
    eprintln!("observe_smoke: served /health and friends on {addr} for {seconds}s");
}
