//! Emits `BENCH_serve.json`: concurrent serving throughput and latency
//! for [`EstimatorService`] under an open-loop load with mid-run hot
//! swaps.
//!
//! ```text
//! serve_bench [OUTPUT_PATH] [READERS] [DURATION_MS]
//!             (defaults: BENCH_serve.json 4 2000)
//! ```
//!
//! Each reader offers a fixed 400 queries/s (`POOL` queries every
//! `TICK`); total offered load scales with `READERS`.
//!
//! Two phases run against identical service configurations:
//!
//! 1. **single** — one client thread submits batches at the target rate
//!    against a fixed generation. This is the per-reader baseline.
//! 2. **concurrent** — `READERS` client threads offer the same per-reader
//!    rate simultaneously while the main thread installs two hot swaps
//!    (`swap()`) a third and two thirds of the way through the window.
//!
//! Load is **open-loop**: clients submit on a fixed 20 ms tick whether or
//! not earlier batches have been answered, so throughput measures what
//! the service *sustains*, not how fast one caller can ping-pong. When
//! the service keeps up, achieved ≈ offered and throughput scales with
//! the number of clients even on a single-core host — which is exactly
//! the claim being pinned: the shared-read engine and snapshot-per-batch
//! swap protocol add no cross-reader serialization of their own.
//!
//! Reported gates:
//! - `speedup.concurrent_vs_single` — concurrent/single achieved QPS
//!   (≈ `READERS` when the service sustains the offered load);
//! - `speedup.per_reader` — the same normalized by `READERS` (≈ 1.0,
//!   *independent of the reader count*, so a 2-reader CI smoke run can
//!   be bench-diffed against the committed 4-reader baseline).
//!
//! Besides timing, the run asserts that every reply is bit-identical to
//! the serial answer of the generation that served it and that the two
//! swaps dropped zero in-flight queries.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dbhist_core::service::{EstimatorService, ServiceConfig};
use dbhist_core::{Predicate, Query, SelectivityEstimator, Synopsis, SynopsisBuilder};
use dbhist_distribution::{AttrId, Relation, Schema};

/// Clients submit one batch per tick; 20 ms is coarse enough that sleep
/// granularity on shared runners does not distort the offered rate.
const TICK: Duration = Duration::from_millis(20);
/// Worker threads answering batches, both phases.
const WORKERS: usize = 3;
/// Query pool size; each batch submits the whole pool.
const POOL: usize = 8;
/// Synopsis byte budgets for the three prebuilt generations.
const BUDGETS: [usize; 3] = [1024, 1280, 1536];

const ROWS: usize = 4_000;
const DOMAIN: u32 = 16;
const ARITY: usize = 4;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic table with one correlated pair and independent noise.
fn build_relation() -> Relation {
    let mut state = 0x5E27_EBE4u64;
    let schema = Schema::new((0..ARITY).map(|i| (format!("a{i}"), DOMAIN))).unwrap();
    let rows: Vec<Vec<u32>> = (0..ROWS)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            (0..ARITY)
                .map(|i| {
                    if i < 2 && !xorshift(&mut state).is_multiple_of(3) {
                        base
                    } else {
                        (xorshift(&mut state) % u64::from(DOMAIN)) as u32
                    }
                })
                .collect()
        })
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

/// Random conjunctive boxes over random attribute subsets.
fn build_queries(state: &mut u64) -> Vec<Query> {
    let mut queries = Vec::new();
    while queries.len() < POOL {
        let mask = xorshift(state) % (1u64 << ARITY);
        if mask == 0 {
            continue;
        }
        queries.push(
            (0..ARITY as AttrId)
                .filter(|&a| mask & (1 << u64::from(a)) != 0)
                .map(|a| {
                    let lo = (xorshift(state) % u64::from(DOMAIN)) as u32;
                    let width = (xorshift(state) % u64::from(DOMAIN)) as u32;
                    Predicate::range(a, lo, (lo + width).min(DOMAIN - 1))
                })
                .collect::<Query>(),
        );
    }
    queries
}

/// One open-loop client: submits the pool once per tick for `duration`,
/// then drains every ticket, asserting each reply bit-identical to the
/// serial answer of the generation that produced it. Returns the number
/// of queries answered.
fn run_client(
    service: &EstimatorService,
    queries: &[Query],
    expected: &[Vec<u64>],
    duration: Duration,
) -> u64 {
    let start = Instant::now();
    let mut next = start;
    let mut tickets = Vec::new();
    while start.elapsed() < duration {
        let now = Instant::now();
        if now < next {
            std::thread::sleep(next - now);
        }
        next += TICK;
        tickets.push(service.submit(queries.to_vec()));
    }
    let mut answered = 0u64;
    for ticket in tickets {
        let reply = ticket.wait().expect("service dropped an in-flight batch");
        let g = usize::try_from(reply.generation).unwrap();
        assert!(g >= 1 && g <= expected.len(), "generation {g} out of range");
        assert_eq!(reply.estimates.len(), queries.len(), "no query may be dropped");
        for (i, est) in reply.estimates.iter().enumerate() {
            assert_eq!(
                est.to_bits(),
                expected[g - 1][i],
                "gen {g}, query {i}: served answer diverged from serial"
            );
        }
        answered += reply.estimates.len() as u64;
    }
    answered
}

struct PhaseResult {
    answered: u64,
    elapsed: Duration,
    achieved_qps: f64,
}

/// Runs `clients` open-loop readers for `duration`; `swap_plan` holds
/// the generations the main thread installs mid-run (evenly spaced).
fn run_phase(
    generations: &[Synopsis],
    queries: &[Query],
    expected: &[Vec<u64>],
    clients: usize,
    duration: Duration,
    swaps: bool,
) -> (PhaseResult, EstimatorService) {
    let service = EstimatorService::start(
        generations[0].clone(),
        ServiceConfig { workers: WORKERS, ..ServiceConfig::default() },
    );
    let start = Instant::now();
    let answered: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let service = &service;
                s.spawn(move || run_client(service, queries, expected, duration))
            })
            .collect();
        if swaps {
            // Two hot swaps, a third and two thirds into the window.
            for synopsis in &generations[1..] {
                std::thread::sleep(duration / generations.len() as u32);
                service.swap(synopsis.clone());
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed = start.elapsed();
    let achieved_qps = answered as f64 / elapsed.as_secs_f64();
    (PhaseResult { answered, elapsed, achieved_qps }, service)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let out_path = args.next().unwrap_or_else(|| "BENCH_serve.json".into());
    let readers: usize = args.next().map_or(4, |v| v.parse().expect("READERS must be a number"));
    let duration = Duration::from_millis(
        args.next().map_or(2_000, |v| v.parse().expect("DURATION_MS must be a number")),
    );
    assert!(readers >= 1, "need at least one reader");
    let telemetry_env = std::env::var("DBHIST_TELEMETRY").is_ok_and(|v| v != "0");
    dbhist_telemetry::set_enabled(telemetry_env);

    // The offered rate is fixed by the tick: POOL queries per tick.
    let offered_per_reader = POOL as f64 / TICK.as_secs_f64();

    let rel = build_relation();
    let mut state = 0x5E27_BEEFu64;
    let queries = build_queries(&mut state);

    // Three prebuilt generations (different budgets → distinguishable
    // bucketizations) and their serial reference answers.
    let generations: Vec<Synopsis> =
        BUDGETS.iter().map(|&b| SynopsisBuilder::new(&rel).budget(b).build().unwrap()).collect();
    let expected: Vec<Vec<u64>> = generations
        .iter()
        .map(|s| queries.iter().map(|q| s.estimate(q).to_bits()).collect())
        .collect();
    let checksum: f64 = queries.iter().map(|q| generations[0].estimate(q)).sum();

    let (single, _single_service) =
        run_phase(&generations, &queries, &expected, 1, duration, false);
    let (concurrent, service) =
        run_phase(&generations, &queries, &expected, readers, duration, true);

    let stats = service.stats();
    assert_eq!(stats.swaps, 2, "both hot swaps must land inside the window");
    assert_eq!(stats.dropped_replies, 0, "swap must never drop an in-flight query");
    assert_eq!(stats.requests, concurrent.answered, "every submitted query must be answered");
    let per_generation_total: u64 = stats.per_generation.iter().map(|&(_, n)| n).sum();
    assert_eq!(
        per_generation_total, stats.requests,
        "per-generation served counts must partition the request total"
    );
    assert_eq!(stats.swap_latency.count, 2, "both swaps must be timed");

    let latency = service.latency();
    let pct = |q: f64| latency.percentile(q).unwrap_or(0.0);

    let concurrent_vs_single = concurrent.achieved_qps / single.achieved_qps;
    let per_reader = concurrent_vs_single / readers as f64;
    if readers >= 4 {
        assert!(
            concurrent_vs_single >= 2.0,
            "{readers} concurrent readers must sustain at least 2x single-reader \
             throughput, got {concurrent_vs_single:.2}x"
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"synthetic_correlated_pair\", \"rows\": {ROWS}, \
         \"domain\": {DOMAIN}, \"arity\": {ARITY}, \"pool\": {POOL}, \"tick_ms\": {}, \
         \"workers\": {WORKERS}, \"readers\": {readers}, \"duration_ms\": {}, \
         \"offered_qps_per_reader\": {offered_per_reader:.0}, \"generations\": {}}},",
        TICK.as_millis(),
        duration.as_millis(),
        BUDGETS.len()
    );
    let _ = writeln!(
        json,
        "  \"single\": {{\"readers\": 1, \"requests\": {}, \"elapsed_ms\": {}, \
         \"achieved_qps\": {:.1}, \"sustained\": {:.4}}},",
        single.answered,
        single.elapsed.as_millis(),
        single.achieved_qps,
        single.achieved_qps / offered_per_reader
    );
    let _ = writeln!(
        json,
        "  \"concurrent\": {{\"readers\": {readers}, \"requests\": {}, \"batches\": {}, \
         \"swaps\": {}, \"dropped_replies\": {}, \"elapsed_ms\": {}, \
         \"achieved_qps\": {:.1}, \"sustained\": {:.4}}},",
        stats.requests,
        stats.batches,
        stats.swaps,
        stats.dropped_replies,
        concurrent.elapsed.as_millis(),
        concurrent.achieved_qps,
        concurrent.achieved_qps / (offered_per_reader * readers as f64)
    );
    let _ = writeln!(
        json,
        "  \"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {:.0}, \"p99\": {:.0}, \
         \"p999\": {:.0}}},",
        latency.count,
        latency.mean().unwrap_or(0.0),
        pct(50.0),
        pct(99.0),
        pct(99.9)
    );
    let per_generation_json = stats
        .per_generation
        .iter()
        .map(|&(g, n)| format!("[{g}, {n}]"))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(json, "  \"served_per_generation\": [{per_generation_json}],");
    let _ = writeln!(
        json,
        "  \"swap_latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"max\": {:.0}}},",
        stats.swap_latency.count,
        stats.swap_latency.mean().unwrap_or(0.0),
        stats.swap_latency.percentile(100.0).unwrap_or(0.0)
    );
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"concurrent_vs_single\": {concurrent_vs_single:.3}, \
         \"per_reader\": {per_reader:.3}}},"
    );
    let _ = writeln!(json, "  \"estimate_checksum\": {checksum:.6}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap();
    if telemetry_env {
        let snap = dbhist_telemetry::snapshot();
        std::fs::write(
            format!("{out_path}.telemetry.json"),
            dbhist_telemetry::export::to_json(&snap),
        )
        .unwrap();
        std::fs::write(
            format!("{out_path}.telemetry.prom"),
            dbhist_telemetry::export::to_prometheus(&snap),
        )
        .unwrap();
    }
    eprintln!(
        "wrote {out_path}: {readers} readers sustained {:.0} qps ({:.2}x single, \
         {:.2}x per reader), p50 {:.0}ns p99 {:.0}ns p999 {:.0}ns, \
         2 swaps (mean {:.0}ns) over {} generation(s), 0 dropped, bit-identical to serial",
        concurrent.achieved_qps,
        concurrent_vs_single,
        per_reader,
        pct(50.0),
        pct(99.0),
        pct(99.9),
        stats.swap_latency.mean().unwrap_or(0.0),
        stats.per_generation.len()
    );
}
