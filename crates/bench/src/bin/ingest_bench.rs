//! Emits `BENCH_ingest.json`: streaming-ingest throughput, WAL crash
//! recovery, and feedback-driven re-split accuracy.
//!
//! ```text
//! ingest_bench [OUTPUT_PATH] [BATCHES]    (default: BENCH_ingest.json 512)
//! ```
//!
//! CI smoke mode passes a small batch count; the committed baseline uses
//! the default. Three phases:
//!
//! 1. **Throughput** — a durable `IngestSession` (snapshot + fsync'd
//!    WAL) absorbing `BATCHES` × 64-op batches: batches/sec, ops/sec.
//! 2. **Recovery** — drop the session mid-stream (files survive, like a
//!    `kill -9`) and recover from last-snapshot-plus-tail: replay time,
//!    and a bit-identity assertion against the uninterrupted estimates.
//! 3. **Self-tuning** — inject a correlated hotspot the seeded
//!    bucketization cannot resolve, feed query feedback until the q95
//!    error trips, and let `tune()` re-split that one clique: mean
//!    abs-rel-error before vs after (the gated
//!    `accuracy.resplit_error_reduction`), re-split latency vs a full
//!    rebuild.
//!
//! Set `DBHIST_TELEMETRY=1` to dump the registry snapshot next to the
//! output (`<OUTPUT_PATH>.telemetry.json` / `.prom`).

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::Instant;

use dbhist_core::ingest::{IngestConfig, IngestSession, TuneOutcome};
use dbhist_core::maintenance::MaintainedDbHistogram;
use dbhist_core::synopsis::DbConfig;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_distribution::{AttrId, Relation, Schema};
use dbhist_persist::wal::WalOp;

const ROWS: usize = 12_000;
const DOMAIN: u32 = 32;
const BUDGET: usize = 12 * 1024;
/// Coarse budget for the self-tuning phase: few enough buckets that the
/// seeded boundaries smear an injected hotspot, so re-splitting (same
/// storage, new boundaries) has something to fix.
const TUNE_BUDGET: usize = 2 * 1024;
const OPS_PER_BATCH: usize = 64;
const SEED: u64 = 0x001A_6E57;
/// The injected hotspot cell (correlated, so the *model* keeps fitting
/// and only the bucketization goes stale).
const HOT: u32 = DOMAIN - 3;
/// Hotspot rows injected in the tuning phase.
const HOT_ROWS: usize = 24_000;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Deterministic 4-attribute relation: a0 ≈ a1 correlated, a2/a3 noise.
fn seed_relation() -> Relation {
    let mut state = SEED | 1;
    let schema = Schema::new((0..4).map(|i| (format!("a{i}"), DOMAIN))).unwrap();
    let rows: Vec<Vec<u32>> = (0..ROWS)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            vec![
                base,
                if xorshift(&mut state).is_multiple_of(4) {
                    (xorshift(&mut state) % u64::from(DOMAIN)) as u32
                } else {
                    base
                },
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
            ]
        })
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

/// Deterministic ingest batch `i` (shared with the recovery replay).
fn batch(i: u64) -> Vec<WalOp> {
    let mut state = SEED ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..OPS_PER_BATCH)
        .map(|_| {
            let base = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            WalOp::Insert(vec![
                base,
                base,
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
            ])
        })
        .collect()
}

fn probe_queries() -> Vec<Query> {
    vec![
        Query::all(),
        Query::equals(0, HOT),
        Query::range(0, HOT - 1, HOT + 1),
        Query::range(1, HOT, DOMAIN - 1),
        Query::range(0, 0, DOMAIN / 2),
    ]
}

fn checksum(est: &MaintainedDbHistogram, queries: &[Query]) -> f64 {
    queries.iter().map(|q| est.estimate(q)).sum()
}

/// A typed query paired with the raw ranges `Relation::count_range`
/// answers it exactly from.
type ErrQuery = (Query, Vec<(AttrId, u32, u32)>);

/// Mean abs-rel-error of `est` against true counts from `truth`.
fn mean_error(est: &MaintainedDbHistogram, truth: &Relation, queries: &[ErrQuery]) -> f64 {
    let mut sum = 0.0;
    for (q, ranges) in queries {
        let actual = truth.count_range(ranges) as f64;
        if actual > 0.0 {
            sum += (est.estimate(q) - actual).abs() / actual;
        }
    }
    sum / queries.len() as f64
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_ingest.json".into());
    let batches: u64 = std::env::args().nth(2).and_then(|v| v.parse().ok()).unwrap_or(512);
    let telemetry_env = std::env::var("DBHIST_TELEMETRY").is_ok_and(|v| v != "0");
    dbhist_telemetry::set_enabled(telemetry_env);

    let rel = seed_relation();
    let dir = std::env::temp_dir();
    let snap = dir.join(format!("ingestbench_{}.dbhs", std::process::id()));
    let walp = dir.join(format!("ingestbench_{}.wal", std::process::id()));

    // ── Phase 1: durable ingest throughput ─────────────────────────────
    let built = MaintainedDbHistogram::build(&rel, DbConfig::new(BUDGET)).unwrap();
    let mut session = IngestSession::begin(built, &rel, IngestConfig::default())
        .unwrap()
        .with_durability(&snap, &walp)
        .unwrap();
    let start = Instant::now();
    for i in 0..batches {
        session.apply_batch(&batch(i)).unwrap();
    }
    let ingest = start.elapsed();
    let batches_per_sec = batches as f64 / ingest.as_secs_f64().max(f64::MIN_POSITIVE);
    let ops_per_sec = batches_per_sec * OPS_PER_BATCH as f64;

    // ── Phase 2: crash recovery, bit-identity asserted ─────────────────
    let queries = probe_queries();
    let live: Vec<u64> =
        queries.iter().map(|q| session.estimator().estimate(q).to_bits()).collect();
    let live_checksum = checksum(session.estimator(), &queries);
    drop(session); // the "crash": only the per-batch fsyncs survive
    let start = Instant::now();
    let (recovered, report) =
        IngestSession::recover(&snap, &walp, DbConfig::new(BUDGET), IngestConfig::default())
            .unwrap();
    let recovery = start.elapsed();
    assert_eq!(report.batches_replayed, batches, "every committed batch must replay");
    let recovered_bits: Vec<u64> =
        queries.iter().map(|q| recovered.estimator().estimate(q).to_bits()).collect();
    assert_eq!(live, recovered_bits, "recovered estimates must be bit-identical");
    drop(recovered);
    std::fs::remove_file(&snap).ok();
    std::fs::remove_file(&walp).ok();

    // ── Phase 3: feedback-driven re-split vs full rebuild ──────────────
    let built = MaintainedDbHistogram::build(&rel, DbConfig::new(TUNE_BUDGET)).unwrap();
    let cfg = IngestConfig { min_observations: 16, ..IngestConfig::default() };
    let mut session = IngestSession::begin(built, &rel, cfg).unwrap();
    // Inject a correlated hotspot: the model still fits (a0 == a1), but
    // the seeded buckets smear the spike across their extent.
    let hot_batch: Vec<WalOp> =
        (0..OPS_PER_BATCH).map(|_| WalOp::Insert(vec![HOT, HOT, 1, 2])).collect();
    for _ in 0..HOT_ROWS / OPS_PER_BATCH {
        session.apply_batch(&hot_batch).unwrap();
    }
    // The true final table, for error measurement.
    let mut final_rows: Vec<Vec<u32>> = rel.rows().map(<[u32]>::to_vec).collect();
    for _ in 0..(HOT_ROWS / OPS_PER_BATCH) * OPS_PER_BATCH {
        final_rows.push(vec![HOT, HOT, 1, 2]);
    }
    let truth = Relation::from_rows(rel.schema().clone(), final_rows).unwrap();
    let err_queries: Vec<ErrQuery> = vec![
        (Query::equals(0, HOT), vec![(0, HOT, HOT)]),
        (Query::equals(0, HOT - 1), vec![(0, HOT - 1, HOT - 1)]),
        (Query::equals(0, HOT + 1), vec![(0, HOT + 1, HOT + 1)]),
        (Query::range(0, HOT - 2, HOT), vec![(0, HOT - 2, HOT)]),
        (Query::range(1, HOT - 1, HOT + 1), vec![(1, HOT - 1, HOT + 1)]),
        (Query::range(0, HOT, DOMAIN - 1), vec![(0, HOT, DOMAIN - 1)]),
    ];
    let pre_err = mean_error(session.estimator(), &truth, &err_queries);
    // Feedback loop: executed queries report their actual cardinality.
    for _ in 0..8 {
        for (q, ranges) in &err_queries {
            session.record_feedback(q, truth.count_range(ranges) as f64);
        }
    }
    let start = Instant::now();
    let outcome = session.tune().unwrap();
    let resplit = start.elapsed();
    let TuneOutcome::Resplit { clique, buckets } = outcome else {
        panic!("hotspot feedback must trigger a re-split, got {outcome:?}");
    };
    let post_err = mean_error(session.estimator(), &truth, &err_queries);
    assert!(
        post_err < pre_err,
        "re-split must improve the tripped clique's error: {pre_err:.4} -> {post_err:.4}"
    );
    let error_reduction = pre_err / post_err.max(f64::MIN_POSITIVE);
    // The alternative remedy, for scale: a full rebuild from the table.
    let start = Instant::now();
    let rebuilt = SynopsisBuilder::new(&truth).budget(TUNE_BUDGET).build().unwrap();
    let rebuild = start.elapsed();
    let _ = rebuilt.storage_bytes();
    let resplit_vs_rebuild = rebuild.as_secs_f64() / resplit.as_secs_f64().max(f64::MIN_POSITIVE);

    // ── Report ─────────────────────────────────────────────────────────
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"synthetic_correlated_stream\", \"rows\": {}, \
         \"domain\": {DOMAIN}, \"budget_bytes\": {BUDGET}, \"batches\": {batches}, \
         \"ops_per_batch\": {OPS_PER_BATCH}, \"hot_rows\": {HOT_ROWS}, \"seed\": {SEED}}},",
        rel.row_count(),
    );
    let _ = writeln!(
        json,
        "  \"ingest\": {{\"total_ns\": {}, \"batches_per_sec\": {batches_per_sec:.1}, \
         \"ops_per_sec\": {ops_per_sec:.1}}},",
        ingest.as_nanos(),
    );
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"replay_ns\": {}, \"batches_replayed\": {}, \
         \"bit_identical\": true}},",
        recovery.as_nanos(),
        report.batches_replayed,
    );
    let _ = writeln!(
        json,
        "  \"tuning\": {{\"clique\": {clique}, \"buckets\": {buckets}, \
         \"pre_err\": {pre_err:.6}, \"post_err\": {post_err:.6}, \
         \"resplit_ns\": {}, \"rebuild_ns\": {}}},",
        resplit.as_nanos(),
        rebuild.as_nanos(),
    );
    let _ = writeln!(json, "  \"speedup\": {{\"resplit_vs_rebuild\": {resplit_vs_rebuild:.3}}},");
    let _ =
        writeln!(json, "  \"accuracy\": {{\"resplit_error_reduction\": {error_reduction:.3}}},");
    let _ = writeln!(json, "  \"estimate_checksum\": {live_checksum:.6}");
    let _ = writeln!(json, "}}");
    std::fs::write(&out_path, &json).unwrap();

    if telemetry_env {
        let snap = dbhist_telemetry::snapshot();
        std::fs::write(
            format!("{out_path}.telemetry.json"),
            dbhist_telemetry::export::to_json(&snap),
        )
        .unwrap();
        std::fs::write(
            format!("{out_path}.telemetry.prom"),
            dbhist_telemetry::export::to_prometheus(&snap),
        )
        .unwrap();
    }
    eprintln!(
        "wrote {out_path}: {batches_per_sec:.0} batches/s (fsync'd), recovery {:.1}ms \
         ({} batches, bit-identical), re-split error {pre_err:.3} -> {post_err:.3} \
         ({error_reduction:.1}x) in {:.1}ms vs {:.0}ms rebuild",
        recovery.as_secs_f64() * 1e3,
        report.batches_replayed,
        resplit.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
    );
}
