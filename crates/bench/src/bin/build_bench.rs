//! Emits `BENCH_build.json`: serial vs. parallel synopsis-construction
//! latency, per phase, on a deterministic allocation-heavy workload.
//!
//! ```text
//! build_bench [OUTPUT_PATH]    (default: BENCH_build.json)
//! ```
//!
//! Set `DBHIST_TELEMETRY=1` to run with the process-wide telemetry
//! registry enabled and dump its final snapshot next to the output file
//! (`<OUTPUT_PATH>.telemetry.json` / `.prom`).
//!
//! The workload is fixed (a deterministic wide-domain table whose clique
//! marginals support thousands of buckets, and a byte budget large
//! enough that the `IncrementalGains` phase dominates — the regime
//! parallel construction targets), so the numbers form a comparable perf
//! trajectory across commits. Besides timing, the run
//! asserts that the serial (`threads = 1`) and parallel (`threads >= 4`)
//! pipelines produce bit-identical synopses — same model, same factors,
//! same estimate checksum — making it an end-to-end determinism smoke
//! test as well.
//!
//! The parallel win has two sources: independent work (candidate
//! scoring, per-clique builders, gain tables) fans across worker
//! threads, and the allocation phase's tabulated replay performs one
//! split-probe per funded proposal where the serial greedy re-probes
//! every clique every round. The second source is machine-independent,
//! so the speedup holds even on low-core CI boxes.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::Duration;

use dbhist_core::builder::{resolve_threads, BuildTrace};
use dbhist_core::synopsis::MIN_PARALLEL_CLIQUES;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::{Relation, Schema};
use dbhist_model::selection::MIN_PARALLEL_CANDIDATES;

/// Builds per configuration; the fastest run is reported (steady-state
/// figure, robust to scheduler noise on shared CI runners).
const REPEATS: usize = 3;
/// Large enough that allocation funds thousands of splits and dominates
/// the pipeline — the regime parallel construction targets.
const BUDGET: usize = 64 * 1024;
const QUERIES: usize = 16;
const ROWS: usize = 40_000;
/// Per-attribute domain size; wide domains give the 2-D clique marginals
/// thousands of distinct cells, so the budget above funds thousands of
/// allocation rounds instead of saturating early.
const DOMAIN: u32 = 64;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// A deterministic 6-attribute table with two strongly correlated pairs
/// `(a0, a1)` and `(a2, a3)` plus two independent attributes, mirroring
/// the structure forward selection discovers on census data but with
/// wide domains.
fn build_relation() -> Relation {
    let mut state = 0xB11D_5EEDu64;
    let schema = Schema::new((0..6).map(|i| (format!("a{i}"), DOMAIN))).unwrap();
    let rows: Vec<Vec<u32>> = (0..ROWS)
        .map(|_| {
            let base_a = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            let base_b = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            let noise = |state: &mut u64, v: u32| {
                if xorshift(state).is_multiple_of(4) {
                    (v + (xorshift(state) % 3) as u32) % DOMAIN
                } else {
                    v
                }
            };
            vec![
                base_a,
                noise(&mut state, base_a),
                base_b,
                noise(&mut state, base_b),
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
            ]
        })
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

fn trace_json(t: &BuildTrace) -> String {
    format!(
        "{{\"threads\": {}, \"selection_ns\": {}, \"construction_ns\": {}, \
         \"allocation_ns\": {}, \"assembly_ns\": {}, \"total_ns\": {}, \
         \"cliques\": {}, \"selection_steps\": {}, \"peak_candidates\": {}, \
         \"entropy_computations\": {}, \"splits_funded\": {}}}",
        t.threads,
        t.selection.as_nanos(),
        t.construction.as_nanos(),
        t.allocation.as_nanos(),
        t.assembly.as_nanos(),
        t.total.as_nanos(),
        t.cliques,
        t.selection_steps,
        t.peak_candidates,
        t.entropy_computations,
        t.splits_funded,
    )
}

/// Best-of-`REPEATS` build at the given thread count, plus the estimate
/// checksum of the final run (identical across runs by determinism).
fn best_build(rel: &Relation, threads: usize, workload: &Workload) -> (BuildTrace, f64, String) {
    let mut best: Option<BuildTrace> = None;
    let mut checksum = 0.0;
    let mut factors_digest = String::new();
    for _ in 0..REPEATS {
        let db = SynopsisBuilder::new(rel).budget(BUDGET).threads(threads).build_mhist().unwrap();
        let trace = db.build_trace();
        if best.as_ref().is_none_or(|b| trace.total < b.total) {
            best = Some(trace);
        }
        checksum =
            workload.queries.iter().map(|q| db.estimate(&Query::from(q.ranges.as_slice()))).sum();
        factors_digest = format!("{:?}|{:?}", db.model().graph(), db.factors());
    }
    (best.unwrap(), checksum, factors_digest)
}

fn speedup(serial: Duration, parallel: Duration) -> f64 {
    if parallel.is_zero() {
        0.0
    } else {
        serial.as_secs_f64() / parallel.as_secs_f64()
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_build.json".into());
    let telemetry_env = std::env::var("DBHIST_TELEMETRY").is_ok_and(|v| v != "0");
    dbhist_telemetry::set_enabled(telemetry_env);

    let rel = build_relation();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: QUERIES, min_count: 50, seed: 0xB11D },
    );
    let parallel_threads = resolve_threads(0).max(4);

    let (serial, serial_sum, serial_digest) = best_build(&rel, 1, &workload);
    let (parallel, parallel_sum, parallel_digest) = best_build(&rel, parallel_threads, &workload);

    // Parallelism is an optimization, never an approximation: the two
    // pipelines must agree bit-for-bit.
    assert_eq!(
        serial_sum.to_bits(),
        parallel_sum.to_bits(),
        "parallel build diverged from serial (checksum {serial_sum} vs {parallel_sum})"
    );
    assert_eq!(serial_digest, parallel_digest, "parallel model/factors diverged from serial");
    assert_eq!(serial.splits_funded, parallel.splits_funded);
    assert_eq!(serial.entropy_computations, parallel.entropy_computations);

    let total = speedup(serial.total, parallel.total);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"synthetic_correlated_pairs\", \"rows\": {}, \
         \"domain\": {DOMAIN}, \"budget_bytes\": {BUDGET}, \"repeats\": {REPEATS}, \
         \"queries\": {QUERIES}, \"seed\": {}}},",
        rel.row_count(),
        0xB11D
    );
    let _ = writeln!(json, "  \"serial\": {},", trace_json(&serial));
    let _ = writeln!(json, "  \"parallel\": {},", trace_json(&parallel));
    // Work-size floors below which selection / construction stay serial.
    // This workload (15 peak candidates, 5 cliques) sits under both, so
    // its selection/construction speedups are expected to be ~1.0: the
    // floors exist precisely because fan-out lost time at this scale.
    let _ = writeln!(
        json,
        "  \"thresholds\": {{\"min_parallel_candidates\": {MIN_PARALLEL_CANDIDATES}, \
         \"min_parallel_cliques\": {MIN_PARALLEL_CLIQUES}}},"
    );
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"total\": {:.3}, \"selection\": {:.3}, \"construction\": {:.3}, \
         \"allocation\": {:.3}, \"assembly\": {:.3}}},",
        total,
        speedup(serial.selection, parallel.selection),
        speedup(serial.construction, parallel.construction),
        speedup(serial.allocation, parallel.allocation),
        speedup(serial.assembly, parallel.assembly)
    );
    let _ = writeln!(json, "  \"estimate_checksum\": {serial_sum:.6}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap();
    if telemetry_env {
        let snap = dbhist_telemetry::snapshot();
        std::fs::write(
            format!("{out_path}.telemetry.json"),
            dbhist_telemetry::export::to_json(&snap),
        )
        .unwrap();
        std::fs::write(
            format!("{out_path}.telemetry.prom"),
            dbhist_telemetry::export::to_prometheus(&snap),
        )
        .unwrap();
    }
    eprintln!(
        "wrote {out_path}: {total:.2}x total at {parallel_threads} threads \
         (selection {:.2}x, construction {:.2}x, allocation {:.2}x; \
         {} splits funded, bit-identical to serial)",
        speedup(serial.selection, parallel.selection),
        speedup(serial.construction, parallel.construction),
        speedup(serial.allocation, parallel.allocation),
        serial.splits_funded
    );
    assert!(
        total >= 2.0,
        "parallel pipeline must be at least 2x over serial on this workload, got {total:.2}x"
    );
}
