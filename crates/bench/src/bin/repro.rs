//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! repro [--quick] [--experiment fig6|fig7|fig8|fig9|housing|sampling|all]
//! ```
//!
//! With no arguments, runs every experiment at the paper's full scale and
//! prints one table per figure (the series `EXPERIMENTS.md` records).

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::time::Instant;

use dbhist_bench::experiments::{
    self, fig6, fig7, fig8, fig9, housing_experiment, sampling_zero_fraction, Scale,
};
use dbhist_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .position(|a| a == "--experiment")
        .and_then(|i| args.get(i + 1))
        .map_or("all", String::as_str)
        .to_string();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro [--quick] [--experiment fig6|fig7|fig8|fig9|housing|sampling|all]");
        return;
    }
    const KNOWN: [&str; 7] = ["fig6", "fig7", "fig8", "fig9", "housing", "sampling", "all"];
    if !KNOWN.contains(&which.as_str()) {
        eprintln!("unknown experiment {which:?}; expected one of {}", KNOWN.join("|"));
        std::process::exit(2);
    }
    let scale = if quick { Scale::quick() } else { Scale::paper() };
    println!(
        "# dbhist repro — scale: {} (DS1 {} rows, DS2 {} rows, {} queries/workload)",
        if quick { "quick" } else { "paper" },
        scale.rows_1,
        scale.rows_2,
        scale.queries
    );

    let run = |name: &str, f: &dyn Fn() -> experiments::Figure| {
        let start = Instant::now();
        let fig = f();
        println!("{}", report::render(&fig));
        println!("({name} took {:.1?})\n", start.elapsed());
    };

    if which == "fig6" || which == "all" {
        for k in [2usize, 3, 4] {
            run("fig6", &|| fig6(&scale, k, 6));
        }
    }
    if which == "fig7" || which == "all" {
        run("fig7", &|| fig7(&scale));
    }
    if which == "fig8" || which == "all" {
        let budgets: Vec<usize> = [1usize, 2, 3, 4, 5, 6, 8].iter().map(|kb| kb * 1024).collect();
        run("fig8", &|| fig8(&scale, &budgets));
    }
    if which == "fig9" || which == "all" {
        run("fig9", &|| fig9(&scale));
    }
    if which == "housing" || which == "all" {
        run("housing", &|| housing_experiment(&scale));
    }
    if which == "sampling" || which == "all" {
        let start = Instant::now();
        let frac = sampling_zero_fraction(&scale, 3 * 1024);
        println!(
            "== Sampling baseline (3KB, 3-D workload) ==\nzero-answer fraction: {:.2}\n({:.1?})\n",
            frac,
            start.elapsed()
        );
    }
}
