//! Emits `BENCH_query.json`: planned vs. interpreted selectivity-estimation
//! latency and cache hit rates on a deterministic smoke workload.
//!
//! ```text
//! query_bench [OUTPUT_PATH]    (default: BENCH_query.json)
//! ```
//!
//! The workload is fixed (quick-scale census data, fixed seeds), so the
//! numbers form a comparable perf trajectory across commits. Besides
//! timing, the run asserts that all four paths — interpreter, plan
//! engine (which lowers per-clique kernels on first contact), warm
//! kernel replay, and plan engine with the materialized-marginal cache —
//! produce bit-identical estimate checksums, making it an end-to-end
//! equivalence smoke test as well. A kernel micro-section reports how
//! many cliques lowered to dense vs. CSR-sparse tree indexes.
//!
//! The run also measures telemetry overhead (the planned path with the
//! process-wide registry disabled vs. enabled) and asserts it stays under
//! 5%. Set `DBHIST_TELEMETRY=1` to run the whole bench with telemetry on
//! and dump the final registry snapshot next to the output file
//! (`<OUTPUT_PATH>.telemetry.json` / `.prom`).
//!
//! An explain section times the same warm replay with explain off
//! (`estimate_mass`, the `NoProbe` monomorphization) against an identical
//! plain replay and with explain on (`estimate_mass_explained`), asserts
//! the off path costs under 2% (the machinery is compile-time gated) and
//! that recording never changes an estimate bit.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::Instant;

use dbhist_bench::experiments::Scale;
use dbhist_core::marginal::estimate_mass_interpreted;
use dbhist_core::plan::{QueryEngine, QueryTrace};
use dbhist_core::{Query, SynopsisBuilder};
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::AttrSet;

/// Passes over the workload: the first compiles plans, the rest replay
/// them (and, in the cached mode, replay materialized marginals).
const REPEATS: usize = 8;
const QUERIES: usize = 24;
const BUDGET: usize = 3 * 1024;

/// A query shape (target attributes) plus its typed conjunctive box.
type BoxQuery = (AttrSet, Query);

fn trace_json(t: &QueryTrace) -> String {
    format!(
        "{{\"products\": {}, \"projections\": {}, \"identity_projections\": {}, \
         \"sheds\": {}, \"sheds_skipped\": {}, \"clique_loads\": {}, \"factor_clones\": {}, \
         \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
         \"marginal_cache_hits\": {}, \"marginal_cache_misses\": {}, \
         \"kernel_hits\": {}, \"kernel_lowered_dense\": {}, \
         \"kernel_lowered_sparse\": {}, \"kernel_fallbacks\": {}}}",
        t.products,
        t.projections,
        t.identity_projections,
        t.sheds,
        t.sheds_skipped,
        t.clique_loads,
        t.factor_clones,
        t.plan_cache_hits,
        t.plan_cache_misses,
        t.marginal_cache_hits,
        t.marginal_cache_misses,
        t.kernel_hits,
        t.kernel_lowered_dense,
        t.kernel_lowered_sparse,
        t.kernel_fallbacks,
    )
}

fn hit_rate(hits: usize, misses: usize) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Ceiling on telemetry overhead for the planned query path: enabling the
/// registry must not cost more than this fraction of no-op latency.
const MAX_TELEMETRY_OVERHEAD: f64 = 0.05;
/// Alternating overhead trials; the minimum pairwise ratio feeds each
/// assert, so a one-off scheduler burst cannot fail the gate while a
/// real instrumentation cost (present in every pair) still does.
const OVERHEAD_TRIALS: usize = 5;
/// Ceiling on the explain machinery's cost when *disabled*. The probed
/// body monomorphizes with `NoProbe` to the pre-explain code, so the
/// explain-off replay must track an identical plain replay to within
/// measurement noise.
const MAX_EXPLAIN_OFF_OVERHEAD: f64 = 0.02;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query.json".into());
    let telemetry_env = std::env::var("DBHIST_TELEMETRY").is_ok_and(|v| v != "0");
    dbhist_telemetry::set_enabled(telemetry_env);

    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(BUDGET).build_mhist().unwrap();
    let tree = db.model().junction_tree();
    let factors = db.factors();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: QUERIES, min_count: 50, seed: 0xDB01 },
    );
    let queries: Vec<BoxQuery> = workload
        .queries
        .iter()
        .map(|q| {
            (AttrSet::from_ids(q.ranges.iter().map(|r| r.0)), Query::from(q.ranges.as_slice()))
        })
        .collect();
    let total_queries = REPEATS * queries.len();

    // 1. The recursive interpreter: re-roots the tree and re-walks the
    //    recursion on every query.
    let start = Instant::now();
    let mut interpreted_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, query) in &queries {
            interpreted_sum += estimate_mass_interpreted(tree, factors, target, query).unwrap();
        }
    }
    let interpreted_ns = start.elapsed().as_nanos();

    // 2. The plan engine: first pass compiles, later passes replay cached
    //    plans with zero-clone execution.
    let engine: QueryEngine<_> = QueryEngine::new(tree);
    let start = Instant::now();
    let mut planned_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, query) in &queries {
            planned_sum += engine.estimate_mass(tree, factors, target, query).unwrap();
        }
    }
    let planned_ns = start.elapsed().as_nanos();
    let planned_trace = engine.trace();

    // 3. The plan engine with the materialized-marginal cache: repeated
    //    shapes skip factor algebra entirely.
    let cached_engine: QueryEngine<_> = QueryEngine::new(tree);
    cached_engine.enable_marginal_cache(64);
    let start = Instant::now();
    let mut cached_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, query) in &queries {
            cached_sum += cached_engine.estimate_mass(tree, factors, target, query).unwrap();
        }
    }
    let cached_ns = start.elapsed().as_nanos();
    let cached_trace = cached_engine.trace();

    // 3b. Kernel micro-benchmark: after the first pass the engine rides
    //     the lowered per-clique kernels (dense or CSR-sparse tree
    //     indexes), so a warm replay measures pure kernel evaluation with
    //     pooled scratch and no plan execution at all.
    let start = Instant::now();
    let mut kernel_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, query) in &queries {
            kernel_sum += engine.estimate_mass(tree, factors, target, query).unwrap();
        }
    }
    let kernel_ns = start.elapsed().as_nanos();
    let kernel_trace = engine.trace();
    assert_eq!(
        kernel_sum.to_bits(),
        planned_sum.to_bits(),
        "warm kernel replay diverged from the first planned pass"
    );
    assert!(
        kernel_trace.kernel_hits > planned_trace.kernel_hits,
        "warm replay must ride the lowered kernels"
    );

    // 4. Telemetry overhead: the same planned replay with the registry
    //    disabled (inert span guards, local-only counters) vs. enabled
    //    (global mirroring + latency histograms).
    //
    //    Both modes get an untimed warm-up before the clock starts: the
    //    first enabled pass pays one-time registry setup (well-known
    //    metric construction, histogram bucket touch-in) that is not a
    //    steady-state cost, and the serially-ordered fastest-of-N this
    //    replaced let that warm-up drift make telemetry look *faster*
    //    than no-op (a negative overhead ratio). Trials then alternate
    //    (no-op, active) back to back so machine-load noise is shared
    //    within a pair and cancels in its ratio; the asserted ratio is
    //    the MINIMUM pair. A real instrumentation cost is present in
    //    every pair, so the min still bounds it from above, while a
    //    one-off scheduler burst (which the worst-pair policy this
    //    replaced turned into a flaky gate on shared runners) cannot
    //    fail the run.
    let overhead_engine: QueryEngine<_> = QueryEngine::new(tree);
    for (target, query) in &queries {
        // Compile every plan so both modes replay.
        overhead_engine.estimate_mass(tree, factors, target, query).unwrap();
    }
    let measure = || {
        let start = Instant::now();
        let mut sum = 0.0;
        for _ in 0..REPEATS {
            for (target, query) in &queries {
                sum += overhead_engine.estimate_mass(tree, factors, target, query).unwrap();
            }
        }
        (start.elapsed().as_nanos(), sum)
    };
    dbhist_telemetry::set_enabled(false);
    let (_, noop_sum) = measure();
    dbhist_telemetry::set_enabled(true);
    let (_, active_sum) = measure();
    let (mut noop_ns, mut active_ns) = (0u128, 0u128);
    let mut telemetry_overhead = f64::INFINITY;
    for _ in 0..OVERHEAD_TRIALS {
        dbhist_telemetry::set_enabled(false);
        let (pair_noop, _) = measure();
        dbhist_telemetry::set_enabled(true);
        let (pair_active, _) = measure();
        noop_ns += pair_noop;
        active_ns += pair_active;
        if pair_noop > 0 {
            telemetry_overhead =
                telemetry_overhead.min(pair_active as f64 / pair_noop as f64 - 1.0);
        }
    }
    dbhist_telemetry::set_enabled(telemetry_env);
    if !telemetry_overhead.is_finite() {
        telemetry_overhead = 0.0;
    }
    assert_eq!(
        noop_sum.to_bits(),
        active_sum.to_bits(),
        "telemetry must be observation-only: estimates changed when enabled"
    );
    assert!(
        telemetry_overhead < MAX_TELEMETRY_OVERHEAD,
        "telemetry overhead {:.2}% exceeds the {:.0}% ceiling (no-op {noop_ns}ns, \
         active {active_ns}ns)",
        100.0 * telemetry_overhead,
        100.0 * MAX_TELEMETRY_OVERHEAD
    );

    // 5. Explain overhead. Off: `estimate_mass` (the `NoProbe`
    //    monomorphization) is interleaved with an identical plain replay;
    //    min-over-trials on both sides cancels drift, and the ratio
    //    bounds what the probe refactor costs when explain is off
    //    (structurally zero — this guards the claim against regression).
    //    On: `estimate_mass_explained` replays the same workload
    //    recording full reports, and must stay bit-identical.
    // The replay window is widened over the telemetry section's: the
    // off-vs-baseline ratio compares structurally identical code, so the
    // asserted ceiling is pure measurement noise — a longer window and
    // min-over-trials keep it well under the 2% contract.
    let explain_repeats = REPEATS * 4;
    dbhist_telemetry::set_enabled(false);
    let replay_plain = || {
        let start = Instant::now();
        let mut sum = 0.0;
        for _ in 0..explain_repeats {
            for (target, query) in &queries {
                sum += overhead_engine.estimate_mass(tree, factors, target, query).unwrap();
            }
        }
        (start.elapsed().as_nanos(), sum)
    };
    let replay_explained = || {
        let start = Instant::now();
        let mut sum = 0.0;
        let mut last = None;
        for _ in 0..explain_repeats {
            for (target, query) in &queries {
                let (mass, report) =
                    overhead_engine.estimate_mass_explained(tree, factors, target, query).unwrap();
                sum += mass;
                last = Some(report);
            }
        }
        (start.elapsed().as_nanos(), sum, last)
    };
    let (mut base_ns, mut off_ns, mut on_ns) = (u128::MAX, u128::MAX, u128::MAX);
    let (mut off_sum, mut on_sum) = (0.0f64, 0.0f64);
    let mut last_report = None;
    let (mut explain_off_overhead, mut explain_on_overhead) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..OVERHEAD_TRIALS {
        let (b, _) = replay_plain();
        let (o, s) = replay_plain();
        let (e, es, report) = replay_explained();
        base_ns = base_ns.min(b);
        off_ns = off_ns.min(o);
        on_ns = on_ns.min(e);
        off_sum = s;
        on_sum = es;
        last_report = report;
        if b > 0 {
            // Pairwise within a trial: the three replays run back to
            // back, so machine-load noise is shared and cancels in the
            // ratio. A real overhead is present in EVERY pair, so the
            // min over trials still bounds it from above.
            explain_off_overhead = explain_off_overhead.min(o as f64 / b as f64 - 1.0);
            explain_on_overhead = explain_on_overhead.min(e as f64 / b as f64 - 1.0);
        }
    }
    dbhist_telemetry::set_enabled(telemetry_env);
    if !explain_off_overhead.is_finite() {
        explain_off_overhead = 0.0;
        explain_on_overhead = 0.0;
    }
    assert_eq!(
        off_sum.to_bits(),
        on_sum.to_bits(),
        "explain recording changed the estimates: the probe must observe only"
    );
    assert!(
        explain_off_overhead < MAX_EXPLAIN_OFF_OVERHEAD,
        "explain-off overhead {:.2}% exceeds the {:.0}% ceiling (baseline {base_ns}ns, \
         off {off_ns}ns)",
        100.0 * explain_off_overhead,
        100.0 * MAX_EXPLAIN_OFF_OVERHEAD
    );
    let last_report = last_report.expect("explained replay produced no report");
    assert_eq!(
        last_report.path.as_str(),
        "kernel_hit",
        "warm explained replay must resolve through the lowered kernels"
    );

    // The three paths must agree bit-for-bit — the engine is an
    // optimization, never an approximation of the interpreter.
    assert_eq!(
        interpreted_sum.to_bits(),
        planned_sum.to_bits(),
        "planned execution diverged from the interpreter"
    );
    assert_eq!(
        interpreted_sum.to_bits(),
        cached_sum.to_bits(),
        "cached execution diverged from the interpreter"
    );

    let speedup = |ns: u128| if ns == 0 { 0.0 } else { interpreted_ns as f64 / ns as f64 };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"census_1_quick\", \"rows\": {}, \"queries\": {}, \
         \"dimensionality\": 3, \"repeats\": {}, \"budget_bytes\": {}, \"seed\": {}}},",
        rel.row_count(),
        queries.len(),
        REPEATS,
        BUDGET,
        0xDB01
    );
    let _ = writeln!(
        json,
        "  \"latency_ns\": {{\"interpreted_total\": {interpreted_ns}, \
         \"planned_total\": {planned_ns}, \"planned_cached_total\": {cached_ns}, \
         \"kernel_warm_total\": {kernel_ns}, \
         \"interpreted_per_query\": {}, \"planned_per_query\": {}, \
         \"planned_cached_per_query\": {}, \"kernel_warm_per_query\": {}}},",
        interpreted_ns / total_queries as u128,
        planned_ns / total_queries as u128,
        cached_ns / total_queries as u128,
        kernel_ns / total_queries as u128
    );
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"planned_vs_interpreted\": {:.3}, \
         \"planned_cached_vs_interpreted\": {:.3}, \
         \"kernel_warm_vs_interpreted\": {:.3}}},",
        speedup(planned_ns),
        speedup(cached_ns),
        speedup(kernel_ns)
    );
    let _ = writeln!(
        json,
        "  \"kernel\": {{\"lowered_dense\": {}, \"lowered_sparse\": {}, \"hits\": {}, \
         \"fallbacks\": {}, \"warm_hits\": {}}},",
        planned_trace.kernel_lowered_dense,
        planned_trace.kernel_lowered_sparse,
        planned_trace.kernel_hits,
        planned_trace.kernel_fallbacks,
        kernel_trace.kernel_hits
    );
    let _ = writeln!(
        json,
        "  \"cache_hit_rates\": {{\"plan_cache\": {:.4}, \"marginal_cache\": {:.4}}},",
        hit_rate(planned_trace.plan_cache_hits, planned_trace.plan_cache_misses),
        hit_rate(cached_trace.marginal_cache_hits, cached_trace.marginal_cache_misses)
    );
    let _ = writeln!(json, "  \"planned_trace\": {},", trace_json(&planned_trace));
    let _ = writeln!(json, "  \"planned_cached_trace\": {},", trace_json(&cached_trace));
    let _ = writeln!(
        json,
        "  \"telemetry\": {{\"noop_total_ns\": {noop_ns}, \"active_total_ns\": {active_ns}, \
         \"overhead_ratio\": {telemetry_overhead:.4}, \"max_overhead_ratio\": \
         {MAX_TELEMETRY_OVERHEAD}}},"
    );
    let _ = writeln!(
        json,
        "  \"explain\": {{\"baseline_total_ns\": {base_ns}, \"off_total_ns\": {off_ns}, \
         \"on_total_ns\": {on_ns}, \"off_overhead_ratio\": {explain_off_overhead:.4}, \
         \"max_off_overhead_ratio\": {MAX_EXPLAIN_OFF_OVERHEAD}, \
         \"on_overhead_ratio\": {explain_on_overhead:.4}, \
         \"off_vs_baseline\": {:.4}, \"resolved_path\": \"{}\", \"report_groups\": {}}},",
        base_ns as f64 / off_ns as f64,
        last_report.path.as_str(),
        last_report.groups.len()
    );
    let _ = writeln!(json, "  \"estimate_checksum\": {interpreted_sum:.6}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap();
    if telemetry_env {
        let snap = dbhist_telemetry::snapshot();
        std::fs::write(
            format!("{out_path}.telemetry.json"),
            dbhist_telemetry::export::to_json(&snap),
        )
        .unwrap();
        std::fs::write(
            format!("{out_path}.telemetry.prom"),
            dbhist_telemetry::export::to_prometheus(&snap),
        )
        .unwrap();
    }
    eprintln!(
        "wrote {out_path}: planned {:.2}x, cached {:.2}x, warm kernels {:.2}x vs interpreted \
         ({} dense / {} sparse lowerings, plan-cache hit rate {:.1}%, \
         marginal-cache hit rate {:.1}%, telemetry overhead {:.2}%, explain off/on overhead \
         {:.2}%/{:.2}%)",
        speedup(planned_ns),
        speedup(cached_ns),
        speedup(kernel_ns),
        planned_trace.kernel_lowered_dense,
        planned_trace.kernel_lowered_sparse,
        100.0 * hit_rate(planned_trace.plan_cache_hits, planned_trace.plan_cache_misses),
        100.0 * hit_rate(cached_trace.marginal_cache_hits, cached_trace.marginal_cache_misses),
        100.0 * telemetry_overhead,
        100.0 * explain_off_overhead,
        100.0 * explain_on_overhead
    );
}
