//! Emits `BENCH_query.json`: planned vs. interpreted selectivity-estimation
//! latency and cache hit rates on a deterministic smoke workload.
//!
//! ```text
//! query_bench [OUTPUT_PATH]    (default: BENCH_query.json)
//! ```
//!
//! The workload is fixed (quick-scale census data, fixed seeds), so the
//! numbers form a comparable perf trajectory across commits. Besides
//! timing, the run asserts that all three paths — interpreter, plan
//! engine, plan engine with the materialized-marginal cache — produce
//! bit-identical estimate checksums, making it an end-to-end equivalence
//! smoke test as well.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::Instant;

use dbhist_bench::experiments::Scale;
use dbhist_core::marginal::estimate_mass_interpreted;
use dbhist_core::plan::{QueryEngine, QueryTrace};
use dbhist_core::SynopsisBuilder;
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::{AttrId, AttrSet};

/// Passes over the workload: the first compiles plans, the rest replay
/// them (and, in the cached mode, replay materialized marginals).
const REPEATS: usize = 8;
const QUERIES: usize = 24;
const BUDGET: usize = 3 * 1024;

/// A query shape (target attributes) plus its conjunctive box.
type BoxQuery = (AttrSet, Vec<(AttrId, u32, u32)>);

fn trace_json(t: &QueryTrace) -> String {
    format!(
        "{{\"products\": {}, \"projections\": {}, \"identity_projections\": {}, \
         \"sheds\": {}, \"sheds_skipped\": {}, \"clique_loads\": {}, \"factor_clones\": {}, \
         \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
         \"marginal_cache_hits\": {}, \"marginal_cache_misses\": {}}}",
        t.products,
        t.projections,
        t.identity_projections,
        t.sheds,
        t.sheds_skipped,
        t.clique_loads,
        t.factor_clones,
        t.plan_cache_hits,
        t.plan_cache_misses,
        t.marginal_cache_hits,
        t.marginal_cache_misses,
    )
}

fn hit_rate(hits: usize, misses: usize) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_query.json".into());

    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(BUDGET).build_mhist().unwrap();
    let tree = db.model().junction_tree();
    let factors = db.factors();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: QUERIES, min_count: 50, seed: 0xDB01 },
    );
    let queries: Vec<BoxQuery> = workload
        .queries
        .iter()
        .map(|q| (AttrSet::from_ids(q.ranges.iter().map(|r| r.0)), q.ranges.clone()))
        .collect();
    let total_queries = REPEATS * queries.len();

    // 1. The recursive interpreter: re-roots the tree and re-walks the
    //    recursion on every query.
    let start = Instant::now();
    let mut interpreted_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, ranges) in &queries {
            interpreted_sum += estimate_mass_interpreted(tree, factors, target, ranges).unwrap();
        }
    }
    let interpreted_ns = start.elapsed().as_nanos();

    // 2. The plan engine: first pass compiles, later passes replay cached
    //    plans with zero-clone execution.
    let engine: QueryEngine<_> = QueryEngine::new(tree);
    let start = Instant::now();
    let mut planned_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, ranges) in &queries {
            planned_sum += engine.estimate_mass(tree, factors, target, ranges).unwrap();
        }
    }
    let planned_ns = start.elapsed().as_nanos();
    let planned_trace = engine.trace();

    // 3. The plan engine with the materialized-marginal cache: repeated
    //    shapes skip factor algebra entirely.
    let cached_engine: QueryEngine<_> = QueryEngine::new(tree);
    cached_engine.enable_marginal_cache(64);
    let start = Instant::now();
    let mut cached_sum = 0.0;
    for _ in 0..REPEATS {
        for (target, ranges) in &queries {
            cached_sum += cached_engine.estimate_mass(tree, factors, target, ranges).unwrap();
        }
    }
    let cached_ns = start.elapsed().as_nanos();
    let cached_trace = cached_engine.trace();

    // The three paths must agree bit-for-bit — the engine is an
    // optimization, never an approximation of the interpreter.
    assert_eq!(
        interpreted_sum.to_bits(),
        planned_sum.to_bits(),
        "planned execution diverged from the interpreter"
    );
    assert_eq!(
        interpreted_sum.to_bits(),
        cached_sum.to_bits(),
        "cached execution diverged from the interpreter"
    );

    let speedup = |ns: u128| if ns == 0 { 0.0 } else { interpreted_ns as f64 / ns as f64 };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"census_1_quick\", \"rows\": {}, \"queries\": {}, \
         \"dimensionality\": 3, \"repeats\": {}, \"budget_bytes\": {}, \"seed\": {}}},",
        rel.row_count(),
        queries.len(),
        REPEATS,
        BUDGET,
        0xDB01
    );
    let _ = writeln!(
        json,
        "  \"latency_ns\": {{\"interpreted_total\": {interpreted_ns}, \
         \"planned_total\": {planned_ns}, \"planned_cached_total\": {cached_ns}, \
         \"interpreted_per_query\": {}, \"planned_per_query\": {}, \
         \"planned_cached_per_query\": {}}},",
        interpreted_ns / total_queries as u128,
        planned_ns / total_queries as u128,
        cached_ns / total_queries as u128
    );
    let _ = writeln!(
        json,
        "  \"speedup\": {{\"planned_vs_interpreted\": {:.3}, \
         \"planned_cached_vs_interpreted\": {:.3}}},",
        speedup(planned_ns),
        speedup(cached_ns)
    );
    let _ = writeln!(
        json,
        "  \"cache_hit_rates\": {{\"plan_cache\": {:.4}, \"marginal_cache\": {:.4}}},",
        hit_rate(planned_trace.plan_cache_hits, planned_trace.plan_cache_misses),
        hit_rate(cached_trace.marginal_cache_hits, cached_trace.marginal_cache_misses)
    );
    let _ = writeln!(json, "  \"planned_trace\": {},", trace_json(&planned_trace));
    let _ = writeln!(json, "  \"planned_cached_trace\": {},", trace_json(&cached_trace));
    let _ = writeln!(json, "  \"estimate_checksum\": {interpreted_sum:.6}");
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap();
    eprintln!(
        "wrote {out_path}: planned {:.2}x, cached {:.2}x vs interpreted \
         (plan-cache hit rate {:.1}%, marginal-cache hit rate {:.1}%)",
        speedup(planned_ns),
        speedup(cached_ns),
        100.0 * hit_rate(planned_trace.plan_cache_hits, planned_trace.plan_cache_misses),
        100.0 * hit_rate(cached_trace.marginal_cache_hits, cached_trace.marginal_cache_misses)
    );
}
