//! Rough component timing (dev tool).
#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist_bench::experiments::Scale;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_data::workload::{Workload, WorkloadConfig};
use std::time::Instant;

fn main() {
    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(3072).build_mhist().unwrap();
    println!("model {}", db.model().notation());
    for f in db.factors() {
        println!(
            "  clique {} leaves {}",
            f.attrs(),
            dbhist_histogram::MultiHistogram::bucket_count(f)
        );
    }
    println!(
        "jt edges: {:?}",
        db.model()
            .junction_tree()
            .edges()
            .iter()
            .map(|e| (e.a, e.b, e.separator.to_string()))
            .collect::<Vec<_>>()
    );
    let w = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 4, queries: 25, min_count: 50, seed: 9 },
    );
    for q in &w.queries {
        let t = Instant::now();
        let est = db.estimate(&Query::from(q.ranges.as_slice()));
        let el = t.elapsed();
        if el.as_millis() > 100 {
            println!(
                "SLOW {:?}: {:?} est {est:.0} exact {}",
                q.ranges.iter().map(|r| r.0).collect::<Vec<_>>(),
                el,
                q.exact
            );
        }
    }
}
