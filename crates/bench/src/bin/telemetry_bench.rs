//! End-to-end telemetry smoke bench: builds a DB histogram with the
//! process-wide registry enabled, replays a 100-query workload with
//! accuracy feedback, and verifies the resulting registry snapshot before
//! exporting it in both supported formats.
//!
//! ```text
//! telemetry_bench [OUTPUT_STEM]    (default: TELEMETRY_snapshot)
//! ```
//!
//! Writes `<OUTPUT_STEM>.json` and `<OUTPUT_STEM>.prom` — the same
//! snapshot rendered by both exporters — and asserts the acceptance
//! criteria of the telemetry subsystem:
//!
//! * build-path metrics (selection rounds, splits funded, builds) are
//!   non-zero after one end-to-end construction;
//! * query-path metrics (estimates, plans compiled, kernel hits) are
//!   non-zero after the workload, kernel + plan-cache traffic accounts
//!   for every estimate, and the query-latency histogram reports
//!   p50/p99;
//! * per-clique drift gauges are live after `record_feedback`;
//! * both exporters render the identical snapshot (every metric value
//!   appears in both documents).

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use dbhist_bench::experiments::Scale;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_telemetry::export::{to_json, to_prometheus};
use dbhist_telemetry::{MetricValue, Snapshot};

const BUDGET: usize = 3 * 1024;
const QUERIES: usize = 100;

/// Asserts the named counter exists and is non-zero, returning its value.
fn require_counter(snap: &Snapshot, name: &str) -> u64 {
    let v = snap.counter(name).unwrap_or_else(|| panic!("{name} missing from snapshot"));
    assert!(v > 0, "{name} must be non-zero after the workload");
    v
}

fn main() {
    let stem = std::env::args().nth(1).unwrap_or_else(|| "TELEMETRY_snapshot".into());
    dbhist_telemetry::set_enabled(true);

    // End-to-end build: forward selection, budget allocation, assembly —
    // every phase mirrors into the global registry.
    let scale = Scale::quick();
    let rel = scale.census_1();
    let db = SynopsisBuilder::new(&rel).budget(BUDGET).build_mhist().unwrap();

    // 100-query workload through the plan engine, with the exact answers
    // fed back so the drift monitor has observations.
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: QUERIES, min_count: 50, seed: 0xDB01 },
    );
    assert_eq!(workload.queries.len(), QUERIES, "workload generation fell short");
    let mut checksum = 0.0;
    for q in &workload.queries {
        let query = Query::from(q.ranges.as_slice());
        checksum += db.estimate(&query);
        db.record_feedback(&query, q.exact as f64);
    }
    assert!(checksum.is_finite());

    let snap = dbhist_telemetry::snapshot();

    // Build path.
    require_counter(&snap, "dbhist_build_builds_total");
    let rounds = require_counter(&snap, "dbhist_build_selection_rounds_total");
    require_counter(&snap, "dbhist_build_splits_funded_total");
    require_counter(&snap, "dbhist_model_entropy_computations_total");

    // Query path. Each feedback call re-estimates, so estimates ≥ 2x the
    // workload; the distinct query shapes compile one plan each, and
    // every replay afterwards is answered by the lowered kernels (MHIST
    // cliques all lower) or, for shapes that refuse lowering, by the
    // plan cache — together the three paths account for every estimate.
    let estimates = require_counter(&snap, "dbhist_query_estimates_total");
    assert!(estimates >= 2 * QUERIES as u64, "estimates {estimates} < {}", 2 * QUERIES);
    let compiled = require_counter(&snap, "dbhist_query_plans_compiled_total");
    let hits = snap.counter("dbhist_query_plan_cache_hits_total").unwrap_or(0);
    let misses = require_counter(&snap, "dbhist_query_plan_cache_misses_total");
    let kernel_hits = require_counter(&snap, "dbhist_query_kernel_hits_total");
    assert_eq!(compiled, misses, "every plan-cache miss compiles exactly one plan");
    assert_eq!(
        kernel_hits + hits + misses,
        estimates,
        "every estimate is a kernel hit, a plan-cache hit, or a miss"
    );

    // Latency percentiles from the wait-free histogram.
    let latency = snap
        .histogram("dbhist_query_estimate_latency_ns")
        .expect("query latency histogram missing");
    assert_eq!(latency.count, estimates, "one latency sample per estimate");
    let p50 = latency.percentile(50.0).expect("p50 undefined");
    let p99 = latency.percentile(99.0).expect("p99 undefined");
    assert!(p50 > 0.0 && p99 >= p50, "implausible latency percentiles p50={p50} p99={p99}");

    // Per-clique drift gauges after feedback.
    let feedback = require_counter(&snap, "dbhist_estimator_feedback_total");
    assert_eq!(feedback, QUERIES as u64);
    let drift_gauges: Vec<(&str, f64)> = snap
        .metrics
        .iter()
        .filter(|m| m.name.starts_with("dbhist_estimator_drift_ratio{"))
        .filter_map(|m| match m.value {
            MetricValue::Gauge(v) => Some((m.name.as_str(), v)),
            _ => None,
        })
        .collect();
    assert!(!drift_gauges.is_empty(), "no per-clique drift gauges published");
    assert!(
        drift_gauges.iter().any(|&(_, v)| v > 0.0),
        "feedback must move at least one drift gauge"
    );
    let max_gauge = drift_gauges.iter().fold(0.0f64, |acc, &(_, v)| acc.max(v));
    let monitor_max = db.drift_monitor().max_drift();
    assert!(
        (max_gauge - monitor_max).abs() < 1e-12,
        "published drift {max_gauge} disagrees with the monitor {monitor_max}"
    );

    // Both exporters must render the same snapshot: every counter value
    // and gauge appears in both documents under its metric name.
    let json = to_json(&snap);
    let prom = to_prometheus(&snap);
    for m in &snap.metrics {
        let base = m.name.split_once('{').map_or(m.name.as_str(), |(b, _)| b);
        assert!(json.contains(base), "{base} absent from JSON");
        assert!(prom.contains(base), "{base} absent from Prometheus text");
        if let MetricValue::Counter(v) = m.value {
            assert!(
                json.contains(&format!("\"{base}\":{{\"type\":\"counter\",\"value\":{v}}}")),
                "counter value {v} for {base} absent from JSON"
            );
            assert!(
                prom.lines().any(|l| l.starts_with(base) && l.ends_with(&format!(" {v}"))),
                "counter value {v} for {base} absent from Prometheus text"
            );
        }
    }

    std::fs::write(format!("{stem}.json"), &json).unwrap();
    std::fs::write(format!("{stem}.prom"), &prom).unwrap();
    eprintln!(
        "wrote {stem}.json/.prom: {} metrics ({rounds} selection rounds, {estimates} estimates, \
         p50 {p50:.0}ns, p99 {p99:.0}ns, max drift {monitor_max:.4})",
        snap.metrics.len()
    );
}
