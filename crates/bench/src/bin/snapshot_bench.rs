//! Emits `BENCH_persist.json`: snapshot load latency vs. cold rebuild
//! on the same deterministic workload as `build_bench`.
//!
//! ```text
//! snapshot_bench [OUTPUT_PATH]    (default: BENCH_persist.json)
//! ```
//!
//! Set `DBHIST_TELEMETRY=1` to run with the process-wide telemetry
//! registry enabled and dump its final snapshot next to the output file
//! (`<OUTPUT_PATH>.telemetry.json` / `.prom`).
//!
//! The point of the persistence layer is that a restart (or a new
//! replica) pays file-parse cost, not pipeline cost: `Synopsis::load`
//! materializes the model and factors from the snapshot container
//! without re-running model selection, clique-histogram construction,
//! or storage allocation. This bench pins that contract with numbers —
//! the headline `speedup.load_vs_rebuild` must stay ≥ 10× — and doubles
//! as an end-to-end fidelity check: the loaded synopsis must answer the
//! whole query workload bit-identically to the one it was saved from.

#![allow(clippy::unwrap_used, clippy::expect_used)] // binaries/examples: abort on a broken build

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use dbhist_core::builder::Synopsis;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::{Relation, Schema};

/// Cold rebuilds per measurement; the fastest run is reported.
const REBUILD_REPEATS: usize = 3;
/// Snapshot loads per measurement; loads are cheap, so more repeats.
const LOAD_REPEATS: usize = 5;
/// Same allocation-heavy regime as `build_bench`, so the rebuild cost
/// being amortized is the realistic one.
const BUDGET: usize = 64 * 1024;
const QUERIES: usize = 16;
const ROWS: usize = 40_000;
const DOMAIN: u32 = 64;
/// The committed contract: loading a snapshot must beat rebuilding the
/// synopsis from rows by at least this factor.
const MIN_SPEEDUP: f64 = 10.0;

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// The same deterministic 6-attribute correlated-pairs table as
/// `build_bench`: two strongly correlated pairs plus two independent
/// attributes, wide domains so allocation dominates construction.
fn build_relation() -> Relation {
    let mut state = 0xB11D_5EEDu64;
    let schema = Schema::new((0..6).map(|i| (format!("a{i}"), DOMAIN))).unwrap();
    let rows: Vec<Vec<u32>> = (0..ROWS)
        .map(|_| {
            let base_a = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            let base_b = (xorshift(&mut state) % u64::from(DOMAIN)) as u32;
            let noise = |state: &mut u64, v: u32| {
                if xorshift(state).is_multiple_of(4) {
                    (v + (xorshift(state) % 3) as u32) % DOMAIN
                } else {
                    v
                }
            };
            vec![
                base_a,
                noise(&mut state, base_a),
                base_b,
                noise(&mut state, base_b),
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
                (xorshift(&mut state) % u64::from(DOMAIN)) as u32,
            ]
        })
        .collect();
    Relation::from_rows(schema, rows).unwrap()
}

fn estimates(db: &Synopsis, workload: &Workload) -> Vec<f64> {
    workload.queries.iter().map(|q| db.estimate(&Query::from(q.ranges.as_slice()))).collect()
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_persist.json".into());
    let telemetry_env = std::env::var("DBHIST_TELEMETRY").is_ok_and(|v| v != "0");
    dbhist_telemetry::set_enabled(telemetry_env);

    let rel = build_relation();
    let workload = Workload::generate(
        &rel,
        WorkloadConfig { dimensionality: 3, queries: QUERIES, min_count: 50, seed: 0xB11D },
    );

    // Cold rebuild: the full pipeline from rows, best of REBUILD_REPEATS.
    let mut rebuild = Duration::MAX;
    let mut built: Option<Synopsis> = None;
    for _ in 0..REBUILD_REPEATS {
        let start = Instant::now();
        let db = SynopsisBuilder::new(&rel).budget(BUDGET).build().unwrap();
        rebuild = rebuild.min(start.elapsed());
        built = Some(db);
    }
    let built = built.unwrap();
    let built_estimates = estimates(&built, &workload);

    // Save once (timed, but not part of the headline ratio: saves happen
    // on the build path, loads on the restart path).
    let snap_path = std::env::temp_dir().join(format!("snapbench_{}.dbh", std::process::id()));
    let save_start = Instant::now();
    built.save(&snap_path).unwrap();
    let save = save_start.elapsed();
    let snapshot_bytes = std::fs::metadata(&snap_path).unwrap().len();

    // Load: best of LOAD_REPEATS, final loaded synopsis kept for the
    // fidelity check.
    let mut load = Duration::MAX;
    let mut loaded: Option<Synopsis> = None;
    for _ in 0..LOAD_REPEATS {
        let start = Instant::now();
        let db = Synopsis::load(&snap_path).unwrap();
        load = load.min(start.elapsed());
        loaded = Some(db);
    }
    let loaded = loaded.unwrap();
    let _ = std::fs::remove_file(&snap_path);

    // Persistence is exact: every workload estimate must round-trip by
    // bit pattern, not merely within epsilon.
    let loaded_estimates = estimates(&loaded, &workload);
    for (i, (a, b)) in built_estimates.iter().zip(&loaded_estimates).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "query {i}: loaded synopsis diverged from built ({a} vs {b})"
        );
    }

    let ratio = rebuild.as_secs_f64() / load.as_secs_f64().max(f64::MIN_POSITIVE);
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"relation\": \"synthetic_correlated_pairs\", \"rows\": {}, \
         \"domain\": {DOMAIN}, \"budget_bytes\": {BUDGET}, \"rebuild_repeats\": {REBUILD_REPEATS}, \
         \"load_repeats\": {LOAD_REPEATS}, \"queries\": {QUERIES}, \"seed\": {}}},",
        rel.row_count(),
        0xB11D
    );
    let _ = writeln!(
        json,
        "  \"rebuild\": {{\"total_ns\": {}, \"storage_bytes\": {}}},",
        rebuild.as_nanos(),
        built.storage_bytes(),
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"save_ns\": {}, \"load_ns\": {}, \"file_bytes\": {snapshot_bytes}}},",
        save.as_nanos(),
        load.as_nanos(),
    );
    let _ = writeln!(json, "  \"speedup\": {{\"load_vs_rebuild\": {ratio:.3}}},");
    let _ = writeln!(json, "  \"estimate_checksum\": {:.6}", built_estimates.iter().sum::<f64>());
    let _ = writeln!(json, "}}");

    std::fs::write(&out_path, &json).unwrap();
    if telemetry_env {
        let snap = dbhist_telemetry::snapshot();
        std::fs::write(
            format!("{out_path}.telemetry.json"),
            dbhist_telemetry::export::to_json(&snap),
        )
        .unwrap();
        std::fs::write(
            format!("{out_path}.telemetry.prom"),
            dbhist_telemetry::export::to_prometheus(&snap),
        )
        .unwrap();
    }
    eprintln!(
        "wrote {out_path}: load {:.3}ms vs rebuild {:.1}ms = {ratio:.1}x \
         ({snapshot_bytes}-byte snapshot, {QUERIES} queries bit-identical)",
        load.as_secs_f64() * 1e3,
        rebuild.as_secs_f64() * 1e3,
    );
    assert!(
        ratio >= MIN_SPEEDUP,
        "snapshot load must be at least {MIN_SPEEDUP}x faster than a cold rebuild, got {ratio:.2}x"
    );
}
