//! The paper's evaluation experiments (§4.2), parameterized by scale.

use dbhist_core::baselines::{IndEstimator, MhistEstimator, SamplingEstimator};
use dbhist_core::synopsis::DbHistogram;
use dbhist_core::{Query, SelectivityEstimator, SynopsisBuilder};
use dbhist_data::census;
use dbhist_data::housing;
use dbhist_data::metrics::ErrorSummary;
use dbhist_data::workload::{Workload, WorkloadConfig};
use dbhist_distribution::Relation;
use dbhist_histogram::SplitCriterion;
use dbhist_model::selection::{EdgeHeuristic, ForwardSelector, SelectionConfig};

/// Experiment sizing: the paper's full scale or a reduced one for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Rows of Census data set 1.
    pub rows_1: usize,
    /// Rows of Census data set 2.
    pub rows_2: usize,
    /// Rows of the housing data set.
    pub rows_housing: usize,
    /// Queries per workload.
    pub queries: usize,
    /// Minimum exact answer for a workload query.
    pub min_count: u64,
    /// Base RNG seed for workloads.
    pub seed: u64,
}

impl Scale {
    /// The paper's sizes: full data sets, 100 queries, `min_count` 100.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            rows_1: census::DATA_SET_1_ROWS,
            rows_2: census::DATA_SET_2_ROWS,
            rows_housing: housing::HOUSING_ROWS,
            queries: 100,
            min_count: 100,
            seed: 0xDB_2001,
        }
    }

    /// A reduced scale for unit tests and timing benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            rows_1: 12_000,
            rows_2: 8_000,
            rows_housing: 4_000,
            queries: 25,
            min_count: 50,
            seed: 0xDB_2001,
        }
    }

    /// A tiny scale for criterion's repeated-iteration timing of whole
    /// experiment pipelines.
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            rows_1: 4_000,
            rows_2: 3_000,
            rows_housing: 2_000,
            queries: 10,
            min_count: 25,
            seed: 0xDB_2001,
        }
    }

    /// Generates Census data set 1 at this scale.
    #[must_use]
    pub fn census_1(&self) -> Relation {
        census::census_data_set_1_with(self.rows_1, 0x2001_5161)
    }

    /// Generates Census data set 2 at this scale.
    #[must_use]
    pub fn census_2(&self) -> Relation {
        census::census_data_set_2_with(self.rows_2, 0x2001_5162)
    }

    /// Generates the housing data set at this scale.
    #[must_use]
    pub fn housing(&self) -> Relation {
        housing::california_housing_with(self.rows_housing, 0x1990_CA11)
    }

    fn workload(&self, rel: &Relation, k: usize, salt: u64) -> Workload {
        Workload::generate(
            rel,
            WorkloadConfig {
                dimensionality: k,
                queries: self.queries,
                min_count: self.min_count,
                seed: self.seed ^ (salt.wrapping_mul(0x9E37_79B9)),
            },
        )
    }
}

/// One point of a figure series.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// The x-axis value (edges for Fig. 6, query dimensionality for
    /// Figs. 7/9, storage bytes for Fig. 8).
    pub x: f64,
    /// Mean absolute relative error.
    pub relative: f64,
    /// Mean multiplicative error.
    pub multiplicative: f64,
}

/// One labelled series of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series label (estimator / heuristic name).
    pub label: String,
    /// Points in x order.
    pub points: Vec<SeriesPoint>,
}

/// A regenerated figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Figure title.
    pub title: String,
    /// Meaning of the x axis.
    pub x_label: String,
    /// The series.
    pub series: Vec<Series>,
}

fn summarize(workload: &Workload, estimator: &dyn SelectivityEstimator) -> ErrorSummary {
    ErrorSummary::evaluate(workload, |ranges| estimator.estimate(&Query::from(ranges)))
}

/// **Fig. 6 — How good are decomposable models?**
///
/// Edges are added greedily (DB₁ = by significance, DB₂ = by
/// significance per state space), *disregarding `k_max` and `θ`* as the
/// paper does for this experiment; after each step the model is paired
/// with **exact** clique marginals and evaluated on random `k`-D
/// workloads, so the measured error reflects the model alone.
#[must_use]
#[allow(clippy::expect_used)]
pub fn fig6(scale: &Scale, workload_k: usize, max_edges: usize) -> Figure {
    let rel = scale.census_1();
    let workload = scale.workload(&rel, workload_k, 600 + workload_k as u64);
    let mut series = Vec::new();
    for heuristic in [EdgeHeuristic::Db1, EdgeHeuristic::Db2] {
        let config = SelectionConfig {
            k_max: rel.schema().arity(),
            theta: 0.0,
            heuristic,
            max_edges: Some(max_edges),
            ..Default::default()
        };
        let result = ForwardSelector::new(&rel, config).run();
        let mut points = Vec::new();
        // Edge count 0 = full independence.
        let independence = dbhist_model::DecomposableModel::independence(rel.schema().clone());
        let mut models = vec![independence];
        models.extend(result.steps.iter().map(|s| s.model.clone()));
        for (edges, model) in models.into_iter().enumerate() {
            let db = DbHistogram::exact_for_model(&rel, model).expect("exact factors always build");
            // Exact clique factors admit a one-pass message-passing
            // evaluation of each query (numerically identical to the
            // factor-algebra route, asymptotically far cheaper).
            let summary = ErrorSummary::evaluate(&workload, |ranges| {
                dbhist_core::marginal::exact_box_mass(
                    db.model().junction_tree(),
                    db.factors(),
                    ranges,
                )
                .expect("exact evaluation is infallible")
            });
            points.push(SeriesPoint {
                x: edges as f64,
                relative: summary.mean_relative,
                multiplicative: summary.mean_multiplicative,
            });
        }
        series.push(Series {
            label: match heuristic {
                EdgeHeuristic::Db1 => "DB1".into(),
                EdgeHeuristic::Db2 => "DB2".into(),
            },
            points,
        });
    }
    Figure {
        title: format!(
            "Fig 6: model effectiveness ({workload_k}-D workload, exact clique marginals)"
        ),
        x_label: "model edges".into(),
        series,
    }
}

/// Builds the paper's four estimators at `budget` bytes.
#[allow(clippy::expect_used)]
fn build_estimators(rel: &Relation, budget: usize) -> Vec<Box<dyn SelectivityEstimator>> {
    let criterion = SplitCriterion::MaxDiff;
    let mut out: Vec<Box<dyn SelectivityEstimator>> = Vec::new();
    out.push(Box::new(IndEstimator::build(rel, budget, criterion).expect("IND builds")));
    out.push(Box::new(MhistEstimator::build(rel, budget, criterion).expect("MHIST builds")));
    for heuristic in [EdgeHeuristic::Db1, EdgeHeuristic::Db2] {
        out.push(Box::new(
            SynopsisBuilder::new(rel)
                .budget(budget)
                .heuristic(heuristic)
                .build_mhist()
                .expect("DB histogram builds"),
        ));
    }
    out
}

/// **Figs. 7 / 9 — answer quality vs. query dimensionality** at a fixed
/// budget (3 KB for data set 1, 20 KB for data set 2).
#[must_use]
pub fn error_vs_dimensionality(
    rel: &Relation,
    scale: &Scale,
    budget: usize,
    ks: &[usize],
    title: &str,
) -> Figure {
    let estimators = build_estimators(rel, budget);
    let mut series: Vec<Series> = estimators
        .iter()
        .map(|e| Series { label: e.name().to_string(), points: Vec::new() })
        .collect();
    for &k in ks {
        let workload = scale.workload(rel, k, 700 + k as u64);
        if workload.is_empty() {
            continue;
        }
        for (estimator, series) in estimators.iter().zip(&mut series) {
            let summary = summarize(&workload, estimator.as_ref());
            series.points.push(SeriesPoint {
                x: k as f64,
                relative: summary.mean_relative,
                multiplicative: summary.mean_multiplicative,
            });
        }
    }
    Figure { title: title.into(), x_label: "query dimensionality k".into(), series }
}

/// **Fig. 7** on Census data set 1 at 3 KB.
#[must_use]
pub fn fig7(scale: &Scale) -> Figure {
    let rel = scale.census_1();
    error_vs_dimensionality(
        &rel,
        scale,
        3 * 1024,
        &[1, 2, 3, 4],
        "Fig 7: DB-histogram accuracy, Census data set 1, 3KB",
    )
}

/// **Fig. 8 — effect of storage space** on a 3-D workload over data
/// set 1: the synopsis budget sweeps while the workload stays fixed.
#[must_use]
pub fn fig8(scale: &Scale, budgets: &[usize]) -> Figure {
    let rel = scale.census_1();
    let workload = scale.workload(&rel, 3, 800);
    let labels = ["IND", "MHIST", "DB1", "DB2"];
    let mut series: Vec<Series> =
        labels.iter().map(|l| Series { label: (*l).into(), points: Vec::new() }).collect();
    for &budget in budgets {
        let estimators = build_estimators(&rel, budget);
        for (estimator, series) in estimators.iter().zip(&mut series) {
            let summary = summarize(&workload, estimator.as_ref());
            series.points.push(SeriesPoint {
                x: budget as f64,
                relative: summary.mean_relative,
                multiplicative: summary.mean_multiplicative,
            });
        }
    }
    Figure {
        title: "Fig 8: effect of storage space (3-D workload, Census data set 1)".into(),
        x_label: "budget bytes".into(),
        series,
    }
}

/// **Fig. 9** on the 12-attribute Census data set 2 at 20 KB
/// (≈ 0.67% of the original data size).
#[must_use]
pub fn fig9(scale: &Scale) -> Figure {
    let rel = scale.census_2();
    error_vs_dimensionality(
        &rel,
        scale,
        20 * 1024,
        &[1, 2, 3, 4],
        "Fig 9: 12-D Census data set 2, 20KB",
    )
}

/// The full-paper **California housing** experiment at 3 KB.
#[must_use]
pub fn housing_experiment(scale: &Scale) -> Figure {
    let rel = scale.housing();
    error_vs_dimensionality(
        &rel,
        scale,
        3 * 1024,
        &[1, 2, 3, 4],
        "Housing: California-housing-like data, 3KB",
    )
}

/// The sampling sanity experiment (§4.1): at synopsis-scale budgets,
/// random samples answer most queries with 0. Returns the fraction of
/// 3-D workload queries for which the sample estimate is exactly zero.
#[must_use]
#[allow(clippy::expect_used)]
pub fn sampling_zero_fraction(scale: &Scale, budget: usize) -> f64 {
    let rel = scale.census_1();
    let workload = scale.workload(&rel, 3, 900);
    let sampler = SamplingEstimator::build(&rel, budget, 17).expect("sampler builds");
    let zeros = workload
        .queries
        .iter()
        .filter(|q| sampler.estimate(&Query::from(q.ranges.as_slice())) == 0.0) // lint:allow(float-cmp): the experiment counts literally-zero estimates
        .count();
    zeros as f64 / workload.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug; run `cargo test --release -p dbhist-bench`"
    )]
    fn fig6_model_error_drops_with_edges() {
        let scale = Scale { rows_1: 6_000, queries: 15, ..Scale::quick() };
        let fig = fig6(&scale, 2, 4);
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            assert!(series.points.len() >= 3);
            let first = series.points.first().unwrap().relative;
            let last = series.points.last().unwrap().relative;
            assert!(
                last <= first + 1e-9,
                "{}: error should drop with model edges ({first} → {last})",
                series.label
            );
        }
        // DB1 (pure significance) should reach a low error within a few
        // edges, echoing the paper's "<10% by 4 edges".
        let db1 = &fig.series[0];
        assert!(
            db1.points.last().unwrap().relative < db1.points[0].relative * 0.8,
            "DB1 must improve substantially"
        );
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug; run `cargo test --release -p dbhist-bench`"
    )]
    fn fig7_shape_holds_at_quick_scale() {
        let scale = Scale { rows_1: 8_000, queries: 20, ..Scale::quick() };
        let fig = fig7(&scale);
        assert_eq!(fig.series.len(), 4);
        let by_label = |l: &str| {
            fig.series.iter().find(|s| s.label == l).unwrap_or_else(|| panic!("missing series {l}"))
        };
        // Multi-dimensional queries: DB2 beats IND on the multiplicative
        // metric (the paper's headline claim).
        let db2 = by_label("DB2");
        let ind = by_label("IND");
        let at_k = |s: &Series, k: f64| {
            s.points.iter().find(|p| (p.x - k).abs() < 1e-9).map(|p| (p.relative, p.multiplicative))
        };
        if let (Some((_, db2_m)), Some((_, ind_m))) = (at_k(db2, 3.0), at_k(ind, 3.0)) {
            assert!(
                db2_m <= ind_m * 1.5,
                "DB2 multiplicative ({db2_m}) should not lose badly to IND ({ind_m})"
            );
        }
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "slow in debug; run `cargo test --release -p dbhist-bench`"
    )]
    fn sampling_mostly_zero_at_tiny_budgets() {
        let scale = Scale { rows_1: 10_000, queries: 20, ..Scale::quick() };
        let frac = sampling_zero_fraction(&scale, 512);
        assert!(frac >= 0.3, "zero fraction {frac}");
    }
}
