//! Plain-text rendering of regenerated figures.

use std::fmt::Write as _;

use crate::experiments::Figure;

/// Renders a figure as an aligned text table: one row per x value, one
/// pair of columns (relative, multiplicative) per series.
#[must_use]
pub fn render(figure: &Figure) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", figure.title);
    // Header.
    let _ = write!(out, "{:>12}", figure.x_label);
    for s in &figure.series {
        let _ = write!(out, " | {:>10} rel {:>10} mult", s.label, "");
    }
    let _ = writeln!(out);
    // Collect the x values from the longest series.
    let xs: Vec<f64> = figure
        .series
        .iter()
        .max_by_key(|s| s.points.len())
        .map(|s| s.points.iter().map(|p| p.x).collect())
        .unwrap_or_default();
    for &x in &xs {
        let _ = write!(out, "{x:>12.0}");
        for s in &figure.series {
            match s.points.iter().find(|p| (p.x - x).abs() < 1e-9) {
                Some(p) => {
                    let _ = write!(out, " | {:>14.4} {:>15.3}", p.relative, p.multiplicative);
                }
                None => {
                    let _ = write!(out, " | {:>14} {:>15}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Series, SeriesPoint};

    #[test]
    fn renders_all_points() {
        let fig = Figure {
            title: "T".into(),
            x_label: "x".into(),
            series: vec![
                Series {
                    label: "A".into(),
                    points: vec![
                        SeriesPoint { x: 1.0, relative: 0.5, multiplicative: 2.0 },
                        SeriesPoint { x: 2.0, relative: 0.25, multiplicative: 1.5 },
                    ],
                },
                Series {
                    label: "B".into(),
                    points: vec![SeriesPoint { x: 1.0, relative: 0.9, multiplicative: 9.0 }],
                },
            ],
        };
        let text = render(&fig);
        assert!(text.contains("== T =="));
        assert!(text.contains("0.5000"));
        assert!(text.contains("9.000"));
        // Missing B point at x=2 renders as a dash.
        assert!(text.lines().last().unwrap().contains('-'));
    }
}
