//! The "DBWL" write-ahead log: a replayable journal of ingest batches.
//!
//! A streaming ingester cannot afford a full snapshot per batch, so
//! durability is split in two: an occasional `DBHS` snapshot (the
//! container in [`crate::container`]) plus this append-only tail of
//! every batch applied since. A crashed ingester recovers by loading
//! the last snapshot and replaying the tail through the same update
//! path — bit-identically, because the log records the exact row
//! stream and tuple updates are deterministic.
//!
//! Layout (all integers little-endian, mirroring the snapshot format):
//!
//! ```text
//! header   := "DBWL" version:u16 arity:u16 generation:u64 crc:u32
//!             (20 bytes; crc is CRC-32 over version..generation)
//! record   := len:u32 crc:u32 payload[len]
//! payload  := seq:u64 op_count:u32 op*
//! op       := tag:u8 value:u32 × arity      (tag 1 = insert, 2 = delete)
//! ```
//!
//! Rules, matching the snapshot container's:
//!
//! - **Every failure is typed.** A torn or corrupted log produces a
//!   [`PersistError`], never a panic and never a silently divergent
//!   replay: any byte prefix of a valid log either parses to a batch
//!   prefix (ends exactly on a record boundary) or errors.
//! - **Batch boundaries are durable.** [`WalWriter::append`] issues
//!   `sync_data` after every record, so an acknowledged batch survives
//!   power loss; a batch torn mid-write is discarded by
//!   [`recover`] as an uncommitted tail.
//! - **Truncation is atomic and generation-stamped.** After each
//!   snapshot the log restarts via a fresh-header temp file renamed
//!   over the old log with the header's `generation` incremented, then
//!   the parent directory is fsync'd ([`WalWriter::truncate`]) — so a
//!   crash between snapshot and truncation leaves a *longer* log of the
//!   **old** generation, never a torn one. The checkpointing caller
//!   records a [`WalPosition`] (this log's generation plus the batch
//!   count the snapshot absorbed) inside the snapshot itself, written
//!   atomically with it; recovery compares that position against the
//!   log's header and skips every batch the snapshot already contains
//!   instead of double-applying it.
//!
//! This module is the **only** sanctioned writer of `.wal` files; the
//! `wal-append-order` rule in `dbhist-analyze` fails the gate on
//! append-mode file I/O anywhere else in the workspace.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::bytes::{Reader, Writer};
use crate::crc::crc32;
use crate::error::PersistError;

/// Magic prefix of every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"DBWL";

/// WAL format version written and accepted by this build. Version 1
/// lacked the header generation and is rejected with
/// [`PersistError::VersionMismatch`].
pub const WAL_VERSION: u16 = 2;

/// Header length in bytes: magic + version + arity + generation + CRC.
/// The CRC covers the version, arity, and generation fields, so a
/// bit-flipped generation cannot silently misdirect recovery's
/// snapshot-position comparison.
pub const WAL_HEADER_LEN: usize = 20;

/// Per-record framing overhead: length + CRC-32.
pub const WAL_RECORD_OVERHEAD: usize = 8;

/// Upper bound on one record's payload (64 MiB): a corrupted length
/// field must not drive a multi-gigabyte allocation.
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One logged tuple operation. Values follow the schema's attribute
/// order, exactly as fed to the maintenance `insert`/`delete` path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// A tuple insert.
    Insert(Vec<u32>),
    /// A tuple delete.
    Delete(Vec<u32>),
}

impl WalOp {
    /// The operation's row values.
    #[must_use]
    pub fn row(&self) -> &[u32] {
        match self {
            WalOp::Insert(row) | WalOp::Delete(row) => row,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            WalOp::Insert(_) => 1,
            WalOp::Delete(_) => 2,
        }
    }
}

/// The point in a WAL's history a snapshot absorbed: everything up to
/// (but excluding) batch `batches_covered` of log `generation` is
/// already inside the snapshot. A checkpoint stores this inside the
/// snapshot file itself — atomically with the synopsis state — so
/// recovery can prove which tail batches still need replaying instead
/// of double-applying ones the snapshot already contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    /// Header generation of the log the snapshot was cut against.
    pub generation: u64,
    /// Batches of that generation the snapshot absorbed (== the WAL's
    /// `next_seq` at snapshot time).
    pub batches_covered: u64,
}

impl WalPosition {
    /// Serialized length in bytes.
    pub const ENCODED_LEN: usize = 16;

    /// Serializes this position for the snapshot's WAL-position section.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.generation);
        w.put_u64(self.batches_covered);
        w.into_inner()
    }

    /// Deserializes a position written by [`WalPosition::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] / [`PersistError::Corrupt`]
    /// if the payload is not exactly one encoded position.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes, "wal position");
        let generation = r.u64()?;
        let batches_covered = r.u64()?;
        r.expect_end()?;
        Ok(Self { generation, batches_covered })
    }
}

/// One committed batch, as replayed from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalBatch {
    /// Zero-based sequence number within the current log generation.
    pub seq: u64,
    /// The batch's operations, in applied order.
    pub ops: Vec<WalOp>,
}

/// A fully parsed log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// Row arity recorded in the header.
    pub arity: u16,
    /// Log generation recorded in the header (bumped by truncation).
    pub generation: u64,
    /// Every committed batch, in sequence order.
    pub batches: Vec<WalBatch>,
}

/// Outcome of tolerant tail recovery: the committed prefix plus a
/// description of the discarded tail, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecovery {
    /// Row arity recorded in the header.
    pub arity: u16,
    /// Log generation recorded in the header (bumped by truncation).
    pub generation: u64,
    /// Batches that were durably committed before the crash.
    pub batches: Vec<WalBatch>,
    /// Byte length of the valid prefix (header + committed records); a
    /// writer reopening the log truncates to this offset.
    pub valid_len: usize,
    /// The typed error the torn tail produced, if the file does not end
    /// exactly on a record boundary. `None` means a clean log.
    pub tail_error: Option<PersistError>,
}

fn encode_header(arity: u16, generation: u64) -> Vec<u8> {
    let mut body = Writer::new();
    body.put_u16(WAL_VERSION);
    body.put_u16(arity);
    body.put_u64(generation);
    let body = body.into_inner();
    let mut w = Writer::new();
    w.put_bytes(&WAL_MAGIC);
    w.put_bytes(&body);
    w.put_u32(crc32(&body));
    w.into_inner()
}

/// Encodes one record (framing + payload) for `seq` and `ops`.
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if an op's arity disagrees with
/// the log's, or the batch exceeds the payload bound.
pub fn encode_record(seq: u64, arity: u16, ops: &[WalOp]) -> Result<Vec<u8>, PersistError> {
    let mut payload = Writer::new();
    payload.put_u64(seq);
    payload.put_len(ops.len())?;
    for op in ops {
        if op.row().len() != usize::from(arity) {
            return Err(PersistError::Corrupt {
                reason: format!("wal op arity {} does not match log arity {arity}", op.row().len()),
            });
        }
        payload.put_u8(op.tag());
        for &v in op.row() {
            payload.put_u32(v);
        }
    }
    let payload = payload.into_inner();
    let len = u32::try_from(payload.len()).ok().filter(|&l| l <= MAX_PAYLOAD).ok_or_else(|| {
        PersistError::Corrupt {
            reason: format!(
                "wal batch payload of {} bytes exceeds the record bound",
                payload.len()
            ),
        }
    })?;
    let mut framed = Writer::new();
    framed.put_u32(len);
    framed.put_u32(crc32(&payload));
    framed.put_bytes(&payload);
    Ok(framed.into_inner())
}

fn decode_payload(payload: &[u8], arity: u16, expected_seq: u64) -> Result<WalBatch, PersistError> {
    let mut r = Reader::new(payload, "wal record payload");
    let seq = r.u64()?;
    if seq != expected_seq {
        return Err(PersistError::Corrupt {
            reason: format!("wal record out of order: found seq {seq}, expected {expected_seq}"),
        });
    }
    let op_count = r.len(1 + usize::from(arity) * 4)?;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let tag = r.u8()?;
        let mut row = Vec::with_capacity(usize::from(arity));
        for _ in 0..usize::from(arity) {
            row.push(r.u32()?);
        }
        ops.push(match tag {
            1 => WalOp::Insert(row),
            2 => WalOp::Delete(row),
            other => {
                return Err(PersistError::Corrupt {
                    reason: format!("wal op tag {other} is not insert(1)/delete(2)"),
                })
            }
        });
    }
    r.expect_end()?;
    Ok(WalBatch { seq, ops })
}

/// Checks run in order of increasing assumption (as in the snapshot
/// container): magic and version need only the first 6 bytes, so a
/// version-1 log (whose header was 8 bytes) is reported as
/// [`PersistError::VersionMismatch`] rather than a truncation; the
/// header CRC is verified before the arity or generation is trusted.
fn parse_header(bytes: &[u8]) -> Result<(u16, u64), PersistError> {
    let mut r = Reader::new(bytes, "wal header");
    if r.take(4)? != WAL_MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u16()?;
    if version != WAL_VERSION {
        return Err(PersistError::VersionMismatch { found: version, expected: WAL_VERSION });
    }
    let arity = r.u16()?;
    let generation = r.u64()?;
    let crc = r.u32()?;
    // lint:allow-next-line(panic-surface): 4..16 is in bounds — the reader consumed 20 bytes above
    if crc32(&bytes[4..WAL_HEADER_LEN - 4]) != crc {
        return Err(PersistError::Corrupt { reason: "wal header crc mismatch".to_string() });
    }
    Ok((arity, generation))
}

/// Strictly parses a whole log: header, then records to end of input.
/// Any torn tail, bad CRC, or out-of-order record is an error — use
/// [`recover`] when a crash-torn tail is an expected, tolerable state.
///
/// # Errors
///
/// [`PersistError::BadMagic`] / [`PersistError::VersionMismatch`] for a
/// foreign file, [`PersistError::Truncated`] for a mid-record end,
/// [`PersistError::WalRecordCrc`] for a payload/CRC mismatch, and
/// [`PersistError::Corrupt`] for structural inconsistencies.
pub fn read(bytes: &[u8]) -> Result<WalContents, PersistError> {
    let recovery = scan(bytes)?;
    match recovery.tail_error {
        Some(err) => Err(err),
        None => Ok(WalContents {
            arity: recovery.arity,
            generation: recovery.generation,
            batches: recovery.batches,
        }),
    }
}

/// Parses the committed prefix of a possibly crash-torn log. Header
/// failures are still hard errors (the file is not a usable log at
/// all); a torn or corrupted *tail* is reported in
/// [`WalRecovery::tail_error`] alongside every batch committed before
/// it. Replay never silently diverges: the returned batches are always
/// an exact prefix of what [`WalWriter::append`] acknowledged.
///
/// # Errors
///
/// [`PersistError::BadMagic`], [`PersistError::VersionMismatch`], or
/// [`PersistError::Truncated`] when even the 8-byte header is absent.
pub fn recover(bytes: &[u8]) -> Result<WalRecovery, PersistError> {
    scan(bytes)
}

fn scan(bytes: &[u8]) -> Result<WalRecovery, PersistError> {
    let header = match bytes.get(..WAL_HEADER_LEN) {
        Some(header) => header,
        None => {
            // Short input: still grade magic/version before reporting
            // truncation, so a foreign or version-1 file is named as
            // such even when it is shorter than this format's header.
            if bytes.len() >= 6 {
                parse_header(bytes)?;
            }
            return Err(PersistError::Truncated { context: "wal header" });
        }
    };
    let (arity, generation) = parse_header(header)?;
    let mut batches = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    let mut tail_error = None;
    while offset < bytes.len() {
        match next_record(bytes, offset, arity, batches.len() as u64) {
            Ok((batch, end)) => {
                batches.push(batch);
                offset = end;
            }
            Err(err) => {
                tail_error = Some(err);
                break;
            }
        }
    }
    Ok(WalRecovery { arity, generation, batches, valid_len: offset, tail_error })
}

fn next_record(
    bytes: &[u8],
    offset: usize,
    arity: u16,
    expected_seq: u64,
) -> Result<(WalBatch, usize), PersistError> {
    let mut frame = Reader::new(
        bytes.get(offset..).ok_or(PersistError::Truncated { context: "wal record frame" })?,
        "wal record frame",
    );
    let len = frame.u32()?;
    if len > MAX_PAYLOAD {
        return Err(PersistError::Corrupt {
            reason: format!("wal record declares a {len}-byte payload (bound {MAX_PAYLOAD})"),
        });
    }
    let crc = frame.u32()?;
    let payload = frame.take(len as usize)?;
    if crc32(payload) != crc {
        return Err(PersistError::WalRecordCrc { seq: expected_seq });
    }
    let batch = decode_payload(payload, arity, expected_seq)?;
    let end = offset + WAL_RECORD_OVERHEAD + len as usize;
    Ok((batch, end))
}

/// The append-side handle: owns the log file, assigns sequence numbers,
/// and makes every acknowledged batch durable before returning.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    file: File,
    arity: u16,
    generation: u64,
    next_seq: u64,
    appended_bytes: u64,
}

impl WalWriter {
    fn io(path: &Path) -> impl Fn(std::io::Error) -> PersistError + '_ {
        move |e| PersistError::Io { path: path.display().to_string(), reason: e.to_string() }
    }

    /// Creates (or truncates) the log at `path` with a fresh
    /// generation-zero header and syncs it (and its directory entry) to
    /// disk.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn create(path: impl Into<PathBuf>, arity: u16) -> Result<Self, PersistError> {
        Self::create_at(path, arity, 0)
    }

    /// Creates (or truncates) the log at `path` with a fresh header
    /// carrying `generation`. Used by recovery when the log file is
    /// missing but the snapshot records a position: the replacement log
    /// starts at the generation *after* the snapshot's, which encodes
    /// "the snapshot absorbed everything; the tail is empty".
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure.
    pub fn create_at(
        path: impl Into<PathBuf>,
        arity: u16,
        generation: u64,
    ) -> Result<Self, PersistError> {
        let path = path.into();
        let mut file = File::create(&path).map_err(Self::io(&path))?;
        file.write_all(&encode_header(arity, generation)).map_err(Self::io(&path))?;
        file.sync_data().map_err(Self::io(&path))?;
        crate::sync_parent_dir(&path)?;
        Ok(Self { path, file, arity, generation, next_seq: 0, appended_bytes: 0 })
    }

    /// Opens an existing log for appending: replays its committed
    /// prefix's bookkeeping, truncates any crash-torn tail to the last
    /// committed boundary, and positions at the end. Creates a fresh
    /// log if `path` does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure, or the
    /// header's typed parse error if the file is not a WAL; a committed
    /// arity differing from `arity` is [`PersistError::Corrupt`].
    pub fn open(path: impl Into<PathBuf>, arity: u16) -> Result<Self, PersistError> {
        let path = path.into();
        if !path.exists() {
            return Self::create(path, arity);
        }
        let bytes = crate::read_file(&path)?;
        let recovery = scan(&bytes)?;
        if recovery.arity != arity {
            return Err(PersistError::Corrupt {
                reason: format!(
                    "wal arity {} does not match the schema arity {arity}",
                    recovery.arity
                ),
            });
        }
        let file = OpenOptions::new().write(true).open(&path).map_err(Self::io(&path))?;
        file.set_len(recovery.valid_len as u64).map_err(Self::io(&path))?;
        file.sync_data().map_err(Self::io(&path))?;
        let mut writer = Self {
            path,
            file,
            arity,
            generation: recovery.generation,
            next_seq: recovery.batches.len() as u64,
            appended_bytes: (recovery.valid_len - WAL_HEADER_LEN) as u64,
        };
        use std::io::Seek as _;
        writer.file.seek(std::io::SeekFrom::End(0)).map_err(Self::io(&writer.path.clone()))?;
        Ok(writer)
    }

    /// Appends one batch and syncs it to disk (`sync_data`). Returns
    /// the batch's sequence number; once this returns, [`recover`]
    /// replays the batch even across a `SIGKILL` or power loss.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] on an arity mismatch or
    /// [`PersistError::Io`] on filesystem failure; the log's committed
    /// prefix is unaffected by a failed append.
    pub fn append(&mut self, ops: &[WalOp]) -> Result<u64, PersistError> {
        let seq = self.next_seq;
        let record = encode_record(seq, self.arity, ops)?;
        self.file.write_all(&record).map_err(Self::io(&self.path))?;
        self.file.sync_data().map_err(Self::io(&self.path))?;
        self.next_seq += 1;
        self.appended_bytes += record.len() as u64;
        Ok(seq)
    }

    /// Atomically restarts the log after a snapshot: writes a fresh
    /// header carrying the **next generation** to a sibling temp file,
    /// syncs it, renames it over the log, and syncs the parent
    /// directory, so no observer ever sees a headerless or
    /// half-truncated file and the rename itself survives power loss.
    /// Sequence numbering restarts at zero.
    ///
    /// A crash before the rename leaves the old-generation log intact;
    /// recovery then matches it against the snapshot's recorded
    /// [`WalPosition`] and skips the batches the snapshot already
    /// absorbed.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Io`] on filesystem failure; the old log
    /// remains intact (and replayable) if any step fails.
    pub fn truncate(&mut self) -> Result<(), PersistError> {
        let mut tmp = self.path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let next_generation = self.generation + 1;
        let mut fresh = File::create(&tmp).map_err(Self::io(&tmp))?;
        fresh.write_all(&encode_header(self.arity, next_generation)).map_err(Self::io(&tmp))?;
        fresh.sync_data().map_err(Self::io(&tmp))?;
        std::fs::rename(&tmp, &self.path).map_err(Self::io(&self.path))?;
        crate::sync_parent_dir(&self.path)?;
        self.file = fresh;
        self.generation = next_generation;
        self.next_seq = 0;
        self.appended_bytes = 0;
        Ok(())
    }

    /// Sequence number the next [`WalWriter::append`] will assign (also
    /// the number of batches committed this log generation).
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Header generation of the current log (starts at the created
    /// value, +1 per [`WalWriter::truncate`]).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The position a snapshot cut right now would absorb: the current
    /// generation plus every batch committed so far this generation.
    #[must_use]
    pub fn position(&self) -> WalPosition {
        WalPosition { generation: self.generation, batches_covered: self.next_seq }
    }

    /// Record bytes committed in the current log generation (resets on
    /// [`WalWriter::truncate`]; reflects the on-disk committed prefix
    /// after [`WalWriter::open`]).
    #[must_use]
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Row arity this log accepts.
    #[must_use]
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// The log's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dbhist-wal-{}-{tag}.wal", std::process::id()))
    }

    fn sample_batches() -> Vec<Vec<WalOp>> {
        vec![
            vec![WalOp::Insert(vec![1, 2, 3]), WalOp::Insert(vec![4, 5, 6])],
            vec![WalOp::Delete(vec![1, 2, 3])],
            vec![
                WalOp::Insert(vec![7, 8, 9]),
                WalOp::Delete(vec![4, 5, 6]),
                WalOp::Insert(vec![0, 0, 0]),
            ],
        ]
    }

    #[test]
    fn append_read_round_trip() {
        let path = temp_path("roundtrip");
        let mut w = WalWriter::create(&path, 3).unwrap();
        for (i, ops) in sample_batches().iter().enumerate() {
            assert_eq!(w.append(ops).unwrap(), i as u64);
        }
        let bytes = crate::read_file(&path).unwrap();
        let contents = read(&bytes).unwrap();
        assert_eq!(contents.arity, 3);
        assert_eq!(contents.batches.len(), 3);
        for (i, batch) in contents.batches.iter().enumerate() {
            assert_eq!(batch.seq, i as u64);
            assert_eq!(batch.ops, sample_batches()[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_continues_sequence() {
        let path = temp_path("reopen");
        let mut w = WalWriter::create(&path, 3).unwrap();
        w.append(&sample_batches()[0]).unwrap();
        drop(w);
        let mut w = WalWriter::open(&path, 3).unwrap();
        assert_eq!(w.next_seq(), 1);
        assert_eq!(w.append(&sample_batches()[1]).unwrap(), 1);
        let contents = read(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(contents.batches.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail() {
        let path = temp_path("torn");
        let mut w = WalWriter::create(&path, 3).unwrap();
        w.append(&sample_batches()[0]).unwrap();
        w.append(&sample_batches()[1]).unwrap();
        drop(w);
        // Tear the file mid-record (drop the last 3 bytes).
        let bytes = crate::read_file(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let recovery = recover(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(recovery.batches.len(), 1, "torn second batch is discarded");
        assert!(recovery.tail_error.is_some());
        // Reopening truncates to the committed boundary and appends.
        let mut w = WalWriter::open(&path, 3).unwrap();
        assert_eq!(w.next_seq(), 1);
        w.append(&sample_batches()[2]).unwrap();
        let contents = read(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(contents.batches.len(), 2);
        assert_eq!(contents.batches[1].ops, sample_batches()[2]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_restarts_the_log() {
        let path = temp_path("truncate");
        let mut w = WalWriter::create(&path, 3).unwrap();
        assert_eq!(w.generation(), 0);
        w.append(&sample_batches()[0]).unwrap();
        assert!(w.appended_bytes() > 0);
        w.truncate().unwrap();
        assert_eq!(w.next_seq(), 0);
        assert_eq!(w.generation(), 1, "truncation bumps the header generation");
        assert_eq!(w.appended_bytes(), 0, "truncation resets the byte accounting");
        assert_eq!(w.append(&sample_batches()[1]).unwrap(), 0);
        let contents = read(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(contents.generation, 1);
        assert_eq!(contents.batches.len(), 1);
        assert_eq!(contents.batches[0].ops, sample_batches()[1]);
        // No temp file lingers.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_generation_and_byte_accounting() {
        let path = temp_path("generation");
        let mut w = WalWriter::create(&path, 3).unwrap();
        w.append(&sample_batches()[0]).unwrap();
        w.truncate().unwrap();
        w.truncate().unwrap();
        w.append(&sample_batches()[1]).unwrap();
        let record_bytes = w.appended_bytes();
        drop(w);
        let w = WalWriter::open(&path, 3).unwrap();
        assert_eq!(w.generation(), 2);
        assert_eq!(w.next_seq(), 1);
        assert_eq!(w.appended_bytes(), record_bytes, "open reflects the committed prefix");
        assert_eq!(w.position(), WalPosition { generation: 2, batches_covered: 1 });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn create_at_seeds_the_generation() {
        let path = temp_path("create-at");
        let w = WalWriter::create_at(&path, 3, 7).unwrap();
        assert_eq!(w.generation(), 7);
        drop(w);
        let contents = read(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(contents.generation, 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_generation_flips_are_detected() {
        let path = temp_path("header-crc");
        let mut w = WalWriter::create_at(&path, 3, 3).unwrap();
        w.append(&sample_batches()[0]).unwrap();
        let bytes = crate::read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        // Flip one generation byte (offsets 8..16): the header CRC must
        // reject it — a silently altered generation would misdirect the
        // recovery position comparison.
        for pos in 8..16 {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 0x10;
            assert!(
                matches!(read(&flipped), Err(PersistError::Corrupt { .. })),
                "generation byte {pos} flip must fail the header crc"
            );
        }
    }

    #[test]
    fn wal_position_round_trips() {
        let pos = WalPosition { generation: 42, batches_covered: 7 };
        let bytes = pos.encode();
        assert_eq!(bytes.len(), WalPosition::ENCODED_LEN);
        assert_eq!(WalPosition::decode(&bytes).unwrap(), pos);
        assert!(WalPosition::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut long = bytes;
        long.push(0);
        assert!(WalPosition::decode(&long).is_err());
    }

    #[test]
    fn corruption_is_typed_never_silent() {
        let path = temp_path("corrupt");
        let mut w = WalWriter::create(&path, 3).unwrap();
        for ops in sample_batches() {
            w.append(&ops).unwrap();
        }
        let bytes = crate::read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();

        // Flip one payload byte inside the first record.
        let mut flipped = bytes.clone();
        flipped[WAL_HEADER_LEN + WAL_RECORD_OVERHEAD + 2] ^= 0x40;
        assert!(matches!(read(&flipped), Err(PersistError::WalRecordCrc { seq: 0 })));
        // Tolerant recovery surfaces the same typed error with no batches.
        let rec = recover(&flipped).unwrap();
        assert!(rec.batches.is_empty());
        assert!(matches!(rec.tail_error, Some(PersistError::WalRecordCrc { seq: 0 })));

        // Foreign magic and version skew are hard errors for both paths.
        let mut foreign = bytes.clone();
        foreign[0] = b'X';
        assert_eq!(read(&foreign).unwrap_err(), PersistError::BadMagic);
        assert_eq!(recover(&foreign).unwrap_err(), PersistError::BadMagic);
        let mut skewed = bytes;
        skewed[4] = 0xFF;
        assert!(matches!(read(&skewed), Err(PersistError::VersionMismatch { .. })));
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let path = temp_path("arity");
        let mut w = WalWriter::create(&path, 3).unwrap();
        assert!(matches!(
            w.append(&[WalOp::Insert(vec![1, 2])]),
            Err(PersistError::Corrupt { .. })
        ));
        drop(w);
        assert!(matches!(WalWriter::open(&path, 4), Err(PersistError::Corrupt { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_log_reads_empty() {
        let path = temp_path("empty");
        let w = WalWriter::create(&path, 2).unwrap();
        drop(w);
        let contents = read(&crate::read_file(&path).unwrap()).unwrap();
        assert_eq!(contents.arity, 2);
        assert!(contents.batches.is_empty());
        std::fs::remove_file(&path).ok();
    }
}
