//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! recorded per section in the snapshot table. Hand-rolled: the build
//! environment has no crate registry, and the whole algorithm is a
//! 256-entry table plus one XOR per byte.

use std::sync::OnceLock;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = u32::try_from(i).unwrap_or(0);
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
            *slot = crc;
        }
        table
    })
}

/// CRC-32 of `bytes` with the conventional `0xFFFFFFFF` init/final XOR.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = usize::from((crc ^ u32::from(b)) as u8);
        // lint:allow-next-line(panic-surface): idx comes from a u8, so it is always within the 256-entry table
        crc = (crc >> 8) ^ table[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let base = crc32(b"dependency-based histogram synopsis");
        let flipped = crc32(b"dependency-based histogram synopsiS");
        assert_ne!(base, flipped);
    }
}
