//! Little-endian primitive readers/writers over byte buffers.
//!
//! All multi-byte values in the snapshot format are little-endian. The
//! reader performs only checked accesses — adversarial bytes produce a
//! typed [`PersistError`], never a panic (and certainly never UB).

use crate::error::PersistError;

/// Appends little-endian primitives to a growable buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_inner(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
    /// Bit-exact: the value read back is the identical `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends raw bytes with no framing.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a `usize` count as a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] if the count exceeds `u32::MAX`
    /// (no real synopsis gets near this; refusing beats silent truncation).
    pub fn put_len(&mut self, n: usize) -> Result<(), PersistError> {
        let v = u32::try_from(n)
            .map_err(|_| PersistError::Corrupt { reason: format!("length {n} overflows u32") })?;
        self.put_u32(v);
        Ok(())
    }

    /// Appends a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As for [`Writer::put_len`].
    pub fn put_str(&mut self, s: &str) -> Result<(), PersistError> {
        self.put_len(s.len())?;
        self.put_bytes(s.as_bytes());
        Ok(())
    }
}

/// Checked little-endian reads over a borrowed byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Reported in [`PersistError::Truncated`] failures.
    context: &'static str,
}

impl<'a> Reader<'a> {
    /// A reader over `bytes`; `context` names the structure being decoded
    /// in truncation errors.
    #[must_use]
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Self { bytes, pos: 0, context }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }

    /// Fails unless every byte has been consumed — trailing garbage in a
    /// fixed-layout payload means the encoder and decoder disagree.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] when bytes remain.
    pub fn expect_end(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt {
                reason: format!("{} trailing byte(s) after {}", self.remaining(), self.context),
            })
        }
    }

    /// Consumes `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(PersistError::Truncated { context: self.context })?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or(PersistError::Truncated { context: self.context })?;
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn u16(&mut self) -> Result<u16, PersistError> {
        let b: [u8; 2] = self
            .take(2)?
            .try_into()
            .map_err(|_| PersistError::Truncated { context: self.context })?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let b: [u8; 4] = self
            .take(4)?
            .try_into()
            .map_err(|_| PersistError::Truncated { context: self.context })?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let b: [u8; 8] = self
            .take(8)?
            .try_into()
            .map_err(|_| PersistError::Truncated { context: self.context })?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an `f64` bit pattern (bit-exact round trip with
    /// [`Writer::put_f64`]).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] at end of input.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `u32` count as a bounds-checked `usize`: the declared count
    /// must be coverable by the remaining bytes at `min_item_bytes` each,
    /// so a corrupted count cannot drive a multi-gigabyte allocation.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] for impossible counts.
    pub fn len(&mut self, min_item_bytes: usize) -> Result<usize, PersistError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(PersistError::Truncated { context: self.context });
        }
        Ok(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] on short input or
    /// [`PersistError::Corrupt`] on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, PersistError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| PersistError::Corrupt {
            reason: format!("invalid UTF-8 in {}", self.context),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(-0.0);
        w.put_f64(std::f64::consts::PI);
        w.put_str("clique").unwrap();
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), std::f64::consts::PI.to_bits());
        assert_eq!(r.str().unwrap(), "clique");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut r = Reader::new(&[1, 2], "widget");
        assert_eq!(r.u32(), Err(PersistError::Truncated { context: "widget" }));
    }

    #[test]
    fn hostile_count_is_rejected_without_allocation() {
        // Declares u32::MAX strings but provides 4 trailing bytes.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u32(0);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes, "list");
        assert_eq!(r.len(1), Err(PersistError::Truncated { context: "list" }));
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut r = Reader::new(&[1, 2, 3], "payload");
        let _ = r.u8().unwrap();
        assert!(matches!(r.expect_end(), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn invalid_utf8_is_corrupt() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_inner();
        let mut r = Reader::new(&bytes, "name");
        assert!(matches!(r.str(), Err(PersistError::Corrupt { .. })));
    }
}
