//! Section payload codecs for the decomposable model `M` and the factor
//! framing for `C`.
//!
//! The model is stored as three sections — schema, Markov graph, junction
//! tree — so a loaded snapshot materializes its structure directly:
//! separators are recomputed as clique intersections (cheap set
//! intersections), but there is **no** re-chordalization and no junction
//! re-rooting. Factor payloads are opaque to this crate: the histogram
//! layer owns their encoding, and this module only frames them as a
//! length-prefixed list aligned with the clique order.

use dbhist_distribution::{AttrSet, Schema};
use dbhist_model::{DecomposableModel, JunctionTree, MarkovGraph};

use crate::bytes::{Reader, Writer};
use crate::container::{SectionKind, Snapshot, SnapshotWriter};
use crate::error::PersistError;

/// Snapshot-level metadata stored in the [`SectionKind::Meta`] section.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Factor representation code: 1 = MHIST split-tree, 2 = grid,
    /// 3 = wavelet. Interpreted by the loading layer.
    pub factor_kind: u8,
    /// Display name of the synopsis (e.g. `"DB2"`).
    pub name: String,
    /// Storage footprint the synopsis reported when it was saved.
    pub storage_bytes: u64,
    /// Number of per-clique factors (must equal the junction-tree clique
    /// count; cross-checked at load).
    pub factor_count: u32,
}

impl SnapshotMeta {
    /// Encodes the meta payload.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] if the name length overflows the
    /// length prefix.
    pub fn encode(&self) -> Result<Vec<u8>, PersistError> {
        let mut w = Writer::new();
        w.put_u8(self.factor_kind);
        w.put_str(&self.name)?;
        w.put_u64(self.storage_bytes);
        w.put_u32(self.factor_count);
        Ok(w.into_inner())
    }

    /// Decodes a meta payload.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Truncated`] or [`PersistError::Corrupt`]
    /// on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::new(bytes, "meta section");
        let meta = Self {
            factor_kind: r.u8()?,
            name: r.str()?,
            storage_bytes: r.u64()?,
            factor_count: r.u32()?,
        };
        r.expect_end()?;
        Ok(meta)
    }
}

/// Appends the three model sections (schema, graph, junction) to `out`.
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if a count overflows its prefix
/// (unreachable for schemas the workspace can construct).
pub fn encode_model(
    model: &DecomposableModel,
    out: &mut SnapshotWriter,
) -> Result<(), PersistError> {
    out.section(SectionKind::Schema, encode_schema(model.schema())?);
    out.section(SectionKind::Graph, encode_graph(model.graph())?);
    out.section(SectionKind::Junction, encode_junction(model.junction_tree())?);
    Ok(())
}

fn encode_schema(schema: &Schema) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    w.put_len(schema.arity())?;
    for (_, attr) in schema.iter() {
        w.put_str(&attr.name)?;
        w.put_u32(attr.domain_size);
    }
    Ok(w.into_inner())
}

fn decode_schema(bytes: &[u8]) -> Result<Schema, PersistError> {
    let mut r = Reader::new(bytes, "schema section");
    let arity = r.len(5)?; // ≥ 4 bytes name prefix + 4 bytes domain, conservatively 5
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = r.str()?;
        let domain = r.u32()?;
        attrs.push((name, domain));
    }
    r.expect_end()?;
    Schema::new(attrs).map_err(|e| PersistError::Corrupt { reason: format!("invalid schema: {e}") })
}

fn encode_graph(graph: &MarkovGraph) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    w.put_len(graph.vertex_count())?;
    w.put_len(graph.edge_count())?;
    for (u, v) in graph.edges() {
        w.put_u16(u);
        w.put_u16(v);
    }
    Ok(w.into_inner())
}

fn decode_graph(bytes: &[u8]) -> Result<MarkovGraph, PersistError> {
    let mut r = Reader::new(bytes, "graph section");
    let n = r.u32()? as usize;
    let edge_count = r.len(4)?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let u = r.u16()?;
        let v = r.u16()?;
        edges.push((u, v));
    }
    r.expect_end()?;
    MarkovGraph::from_edges(n, edges)
        .map_err(|e| PersistError::Corrupt { reason: format!("invalid Markov graph: {e}") })
}

fn encode_junction(tree: &JunctionTree) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    w.put_len(tree.len())?;
    for clique in tree.cliques() {
        w.put_len(clique.len())?;
        for id in clique.iter() {
            w.put_u16(id);
        }
    }
    w.put_len(tree.edges().len())?;
    for edge in tree.edges() {
        w.put_len(edge.a)?;
        w.put_len(edge.b)?;
    }
    Ok(w.into_inner())
}

fn decode_junction(bytes: &[u8]) -> Result<JunctionTree, PersistError> {
    let mut r = Reader::new(bytes, "junction section");
    let clique_count = r.len(4)?;
    let mut cliques = Vec::with_capacity(clique_count);
    for _ in 0..clique_count {
        let len = r.len(2)?;
        let mut ids = Vec::with_capacity(len);
        for _ in 0..len {
            ids.push(r.u16()?);
        }
        cliques.push(AttrSet::from_ids(ids));
    }
    let edge_count = r.len(8)?;
    let mut edges = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        let a = r.u32()? as usize;
        let b = r.u32()? as usize;
        edges.push((a, b));
    }
    r.expect_end()?;
    JunctionTree::from_parts(cliques, edges)
        .map_err(|e| PersistError::Corrupt { reason: format!("invalid junction tree: {e}") })
}

/// Reassembles the decomposable model from a parsed snapshot — no
/// chordalization, no tree construction, only consistency validation.
///
/// # Errors
///
/// [`PersistError::MissingSection`] if a model section is absent, or
/// [`PersistError::Truncated`] / [`PersistError::Corrupt`] if its payload
/// does not decode into a valid model.
pub fn decode_model(snapshot: &Snapshot<'_>) -> Result<DecomposableModel, PersistError> {
    let schema = decode_schema(snapshot.section(SectionKind::Schema)?)?;
    let graph = decode_graph(snapshot.section(SectionKind::Graph)?)?;
    let junction = decode_junction(snapshot.section(SectionKind::Junction)?)?;
    DecomposableModel::from_parts(schema, graph, junction)
        .map_err(|e| PersistError::Corrupt { reason: format!("inconsistent model: {e}") })
}

/// Frames opaque factor payloads, one per clique, in clique order.
///
/// # Errors
///
/// Returns [`PersistError::Corrupt`] if the count overflows its prefix.
pub fn encode_factors(factors: &[Vec<u8>]) -> Result<Vec<u8>, PersistError> {
    let mut w = Writer::new();
    w.put_len(factors.len())?;
    for payload in factors {
        w.put_u64(payload.len() as u64);
        w.put_bytes(payload);
    }
    Ok(w.into_inner())
}

/// Splits the factors section back into per-clique payloads.
///
/// # Errors
///
/// Returns [`PersistError::Truncated`] or [`PersistError::Corrupt`] on
/// malformed framing.
pub fn decode_factors(bytes: &[u8]) -> Result<Vec<&[u8]>, PersistError> {
    let mut r = Reader::new(bytes, "factors section");
    let count = r.len(8)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let len = r.u64()?;
        let len = usize::try_from(len).map_err(|_| PersistError::Corrupt {
            reason: "factor payload length overflows usize".into(),
        })?;
        out.push(r.take(len)?);
    }
    r.expect_end()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::Snapshot;

    fn chain_model() -> DecomposableModel {
        // X0 — X1 — X2: a chordal chain with cliques {0,1} and {1,2}.
        let schema = Schema::new([("a", 4u32), ("b", 8), ("c", 2)]).unwrap();
        let graph = MarkovGraph::from_edges(3, [(0u16, 1u16), (1, 2)]).unwrap();
        DecomposableModel::new(schema, graph).unwrap()
    }

    #[test]
    fn meta_round_trips() {
        let meta = SnapshotMeta {
            factor_kind: 2,
            name: "DB-grid".into(),
            storage_bytes: 65_536,
            factor_count: 4,
        };
        assert_eq!(SnapshotMeta::decode(&meta.encode().unwrap()).unwrap(), meta);
    }

    #[test]
    fn model_round_trips_through_sections() {
        let model = chain_model();
        let mut w = SnapshotWriter::new();
        encode_model(&model, &mut w).unwrap();
        let bytes = w.finish().unwrap();
        let snap = Snapshot::parse(&bytes).unwrap();
        let loaded = decode_model(&snap).unwrap();
        assert_eq!(loaded.schema(), model.schema());
        assert_eq!(loaded.cliques(), model.cliques());
        assert_eq!(loaded.graph().edge_count(), model.graph().edge_count());
        assert_eq!(loaded.junction_tree().edges().len(), model.junction_tree().edges().len());
        for (a, b) in loaded.junction_tree().edges().iter().zip(model.junction_tree().edges()) {
            assert_eq!((a.a, a.b, &a.separator), (b.a, b.b, &b.separator));
        }
    }

    #[test]
    fn factor_framing_round_trips() {
        let factors = vec![vec![1u8, 2, 3], vec![], vec![0xFF; 100]];
        let bytes = encode_factors(&factors).unwrap();
        let decoded = decode_factors(&bytes).unwrap();
        assert_eq!(decoded.len(), 3);
        for (got, want) in decoded.iter().zip(&factors) {
            assert_eq!(got, &want.as_slice());
        }
    }

    #[test]
    fn hostile_factor_length_is_rejected() {
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u64(u64::MAX);
        let bytes = w.into_inner();
        assert!(decode_factors(&bytes).is_err());
    }

    #[test]
    fn junction_with_dangling_edge_is_corrupt() {
        let model = chain_model();
        let mut junk = Writer::new();
        // One clique but an edge referencing clique 5.
        junk.put_u32(1);
        junk.put_u32(2);
        junk.put_u16(0);
        junk.put_u16(1);
        junk.put_u32(1);
        junk.put_u32(0);
        junk.put_u32(5);
        let mut w = SnapshotWriter::new();
        w.section(SectionKind::Schema, encode_schema(model.schema()).unwrap());
        w.section(SectionKind::Graph, encode_graph(model.graph()).unwrap());
        w.section(SectionKind::Junction, junk.into_inner());
        let bytes = w.finish().unwrap();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert!(matches!(decode_model(&snap), Err(PersistError::Corrupt { .. })));
    }
}
