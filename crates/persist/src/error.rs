//! Typed failures for snapshot encoding, decoding, and file I/O.
//!
//! Every way a snapshot can be wrong maps to a distinct variant so that
//! callers (and CI's corruption round-trip job) can assert on the *kind*
//! of failure, not just its message. Corruption is always detected and
//! reported — never undefined behaviour, never a panic.

use std::fmt;

/// Errors produced while saving or loading a synopsis snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PersistError {
    /// The file does not start with the `DBHS` magic — not a snapshot.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the header.
        found: u16,
        /// Version this build reads and writes.
        expected: u16,
    },
    /// The byte stream ends before the structure it declares.
    Truncated {
        /// Which structure ran out of bytes.
        context: &'static str,
    },
    /// A section's payload bytes do not match the CRC-32 recorded in the
    /// section table.
    SectionCrc {
        /// Section-kind code of the corrupted section.
        kind: u16,
    },
    /// A section required to materialize the synopsis is absent.
    MissingSection {
        /// Section-kind code of the missing section.
        kind: u16,
    },
    /// The bytes are structurally well-formed (checksums pass) but encode
    /// an invalid value — a malformed tree, an out-of-range id, an
    /// inconsistent model.
    Corrupt {
        /// Human-readable description of the inconsistency.
        reason: String,
    },
    /// An operating-system I/O failure (stringified: `std::io::Error` is
    /// neither `Clone` nor `PartialEq`).
    Io {
        /// The path involved.
        path: String,
        /// The OS error message.
        reason: String,
    },
    /// A write-ahead-log record's payload does not match its framing
    /// CRC-32 — the record (and everything after it) is untrustworthy.
    WalRecordCrc {
        /// Sequence number the corrupted record was expected to carry.
        seq: u64,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadMagic => write!(f, "not a dbhist snapshot (bad magic)"),
            Self::VersionMismatch { found, expected } => {
                write!(f, "snapshot format version {found} is not the supported version {expected}")
            }
            Self::Truncated { context } => write!(f, "snapshot truncated while reading {context}"),
            Self::SectionCrc { kind } => {
                write!(f, "section {kind} failed its CRC-32 check (corrupted payload)")
            }
            Self::MissingSection { kind } => write!(f, "required section {kind} is missing"),
            Self::Corrupt { reason } => write!(f, "snapshot corrupt: {reason}"),
            Self::Io { path, reason } => write!(f, "snapshot I/O failed for {path}: {reason}"),
            Self::WalRecordCrc { seq } => {
                write!(f, "wal record {seq} failed its CRC-32 check (corrupted payload)")
            }
        }
    }
}

impl std::error::Error for PersistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        let v = PersistError::VersionMismatch { found: 1, expected: 2 };
        assert!(v.to_string().contains('1') && v.to_string().contains('2'));
        assert!(PersistError::Truncated { context: "header" }.to_string().contains("header"));
        assert!(PersistError::SectionCrc { kind: 3 }.to_string().contains('3'));
        assert!(PersistError::MissingSection { kind: 5 }.to_string().contains('5'));
        assert!(PersistError::Corrupt { reason: "bad id".into() }.to_string().contains("bad id"));
        let io = PersistError::Io { path: "/tmp/x.dbh".into(), reason: "denied".into() };
        assert!(io.to_string().contains("denied"));
        assert!(PersistError::WalRecordCrc { seq: 7 }.to_string().contains('7'));
    }

    #[test]
    fn variants_are_comparable_for_test_assertions() {
        assert_eq!(
            PersistError::VersionMismatch { found: 1, expected: 2 },
            PersistError::VersionMismatch { found: 1, expected: 2 }
        );
        assert_ne!(PersistError::BadMagic, PersistError::SectionCrc { kind: 1 });
    }
}
