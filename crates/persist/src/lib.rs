//! Versioned, checksummed snapshot persistence for DB histogram synopses.
//!
//! The paper's whole point of the split-tree representation (§4.2) is that
//! an MHIST compresses to `3b − 2` numbers, making a synopsis
//! `H = <M, C>` a *shippable artifact*. This crate defines that artifact:
//! a little-endian, alignment-padded container holding the decomposable
//! model `M` (schema, Markov graph, junction tree) and opaque per-clique
//! factor payloads `C`, each section protected by a CRC-32 recorded in the
//! header table.
//!
//! Design rules:
//!
//! - **Corruption is detected, never UB.** Every read is bounds-checked;
//!   every section CRC is verified before any payload is decoded; every
//!   failure is a typed [`PersistError`].
//! - **No structure re-derivation at load.** The junction tree is stored
//!   explicitly and revalidated — zero re-chordalization, zero re-rooting.
//! - **Bit-exact numerics.** `f64` values round-trip by bit pattern, so a
//!   loaded synopsis answers queries bit-identically to the saved one.
//!
//! The container layout is documented in [`container`] and DESIGN.md §12.
//! Factor payload encodings are owned by the histogram layer; this crate
//! treats them as opaque byte strings.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod container;
mod crc;
pub mod error;
pub mod model;
pub mod wal;

pub use container::{SectionKind, Snapshot, SnapshotWriter, FORMAT_VERSION, MAGIC};
pub use crc::crc32;
pub use error::PersistError;
pub use model::{decode_factors, decode_model, encode_factors, encode_model, SnapshotMeta};
pub use wal::{WalBatch, WalOp, WalPosition, WalRecovery, WalWriter};

use std::path::Path;

/// Reads a snapshot file into memory.
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure.
pub fn read_file(path: &Path) -> Result<Vec<u8>, PersistError> {
    std::fs::read(path)
        .map_err(|e| PersistError::Io { path: path.display().to_string(), reason: e.to_string() })
}

/// Writes snapshot bytes atomically **and durably**: the bytes land in a
/// sibling temporary file which is fsync'd, renamed over `path`, and the
/// parent directory is fsync'd after the rename. A crash mid-write can
/// never leave a truncated snapshot where a valid one existed (the
/// maintainer overwrites its snapshot in place on every drift-triggered
/// rebuild), and a power loss after this returns cannot roll the rename
/// back — which the ingest checkpoint relies on before it truncates the
/// WAL (an un-fsync'd snapshot plus a durable truncation would lose
/// acknowledged batches).
///
/// # Errors
///
/// Returns [`PersistError::Io`] on any filesystem failure.
pub fn write_file(path: &Path, bytes: &[u8]) -> Result<(), PersistError> {
    let io = |e: std::io::Error| PersistError::Io {
        path: path.display().to_string(),
        reason: e.to_string(),
    };
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp).map_err(io)?;
        file.write_all(bytes).map_err(io)?;
        file.sync_all().map_err(io)?;
    }
    std::fs::rename(&tmp, path).map_err(io)?;
    sync_parent_dir(path)
}

/// Fsyncs `path`'s parent directory so a just-created or just-renamed
/// entry survives power loss. A path with no parent (or an empty one)
/// is a no-op. Shared by [`write_file`] and the WAL's create/truncate.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), PersistError> {
    let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) else {
        return Ok(());
    };
    let io = |e: std::io::Error| PersistError::Io {
        path: parent.display().to_string(),
        reason: e.to_string(),
    };
    let dir = std::fs::File::open(parent).map_err(io)?;
    dir.sync_all().map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dbhist-persist-{}-{tag}.dbh", std::process::id()))
    }

    #[test]
    fn file_round_trip() {
        let mut w = SnapshotWriter::new();
        w.section(SectionKind::Meta, vec![42; 9]);
        let bytes = w.finish().unwrap();
        let path = temp_path("roundtrip");
        write_file(&path, &bytes).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back, bytes);
        let snap = Snapshot::parse(&back).unwrap();
        assert_eq!(snap.section(SectionKind::Meta).unwrap(), &[42; 9]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_file(Path::new("/nonexistent/dir/x.dbh")).unwrap_err();
        assert!(matches!(err, PersistError::Io { .. }));
    }

    #[test]
    fn write_leaves_no_temp_file_behind() {
        let path = temp_path("atomic");
        write_file(&path, b"DBHS").unwrap();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
        std::fs::remove_file(&path).ok();
    }
}
