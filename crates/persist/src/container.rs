//! The snapshot container: a fixed header, a section table, and
//! alignment-padded payloads.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------
//!      0     4  magic  b"DBHS"
//!      4     2  format version        (u16 LE) — currently 2
//!      6     2  section count  k      (u16 LE)
//!      8     8  total container len   (u64 LE)
//!     16   24k  section table, one 24-byte entry per section:
//!                 kind      u16 LE    (see [`SectionKind`])
//!                 reserved  u16 LE    (written 0, ignored on read)
//!                 crc32     u32 LE    (CRC-32/IEEE of the payload)
//!                 offset    u64 LE    (absolute, 8-byte aligned)
//!                 len       u64 LE    (payload bytes, pre-padding)
//!  16+24k   ...  payloads, each starting on an 8-byte boundary,
//!                gaps zero-filled
//! ```
//!
//! Everything is little-endian. Because the header is 16 bytes and each
//! table entry is 24, the first payload always lands 8-byte aligned; the
//! writer pads between payloads to keep every section aligned, so a
//! loader may overlay `u64`/`f64` views onto a memory-mapped snapshot
//! without copying. [`Snapshot::parse`] validates the whole table —
//! bounds, alignment, and every section's CRC — eagerly, so any accepted
//! snapshot is internally consistent before a single payload is decoded.

use std::ops::Range;

use crate::crc::crc32;
use crate::error::PersistError;

/// First four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"DBHS";

/// The format version this build reads and writes. Version 1 was the
/// pre-release layout and is rejected with
/// [`PersistError::VersionMismatch`]; any future incompatible layout
/// change must bump this.
pub const FORMAT_VERSION: u16 = 2;

/// Byte length of the fixed header.
pub const HEADER_LEN: usize = 16;

/// Byte length of one section-table entry.
pub const TABLE_ENTRY_LEN: usize = 24;

/// Payload alignment (and padding granularity).
pub const SECTION_ALIGN: usize = 8;

/// Section-kind codes recorded in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum SectionKind {
    /// Snapshot-level metadata: factor kind, synopsis name, byte budget.
    Meta = 1,
    /// Attribute schema: names and domain sizes.
    Schema = 2,
    /// Markov-graph edge list of the decomposable model.
    Graph = 3,
    /// Junction-tree cliques and tree edges.
    Junction = 4,
    /// Per-clique factor payloads, in clique order.
    Factors = 5,
    /// The WAL position this snapshot absorbed (an encoded
    /// [`crate::wal::WalPosition`]); present only in snapshots written
    /// by a durable ingest checkpoint. Recovery uses it to skip WAL
    /// batches the snapshot already contains.
    WalPosition = 6,
}

impl SectionKind {
    /// The on-disk code for this section kind.
    #[must_use]
    pub fn code(self) -> u16 {
        self as u16
    }
}

fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Assembles a snapshot byte-for-byte: collect sections, then
/// [`finish`](SnapshotWriter::finish) into the final container.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(u16, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a section. Order is preserved in the table and the payload
    /// area.
    pub fn section(&mut self, kind: SectionKind, payload: Vec<u8>) {
        self.sections.push((kind.code(), payload));
    }

    /// Emits the complete container: header, table, aligned payloads.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::Corrupt`] on a duplicate section kind or a
    /// section count / length that overflows the header fields.
    pub fn finish(self) -> Result<Vec<u8>, PersistError> {
        let count = u16::try_from(self.sections.len()).map_err(|_| PersistError::Corrupt {
            reason: format!("{} sections overflow the u16 count field", self.sections.len()),
        })?;
        for (i, (kind, _)) in self.sections.iter().enumerate() {
            if self.sections.iter().take(i).any(|(k, _)| k == kind) {
                return Err(PersistError::Corrupt {
                    reason: format!("duplicate section kind {kind}"),
                });
            }
        }

        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * self.sections.len();
        let mut entries = Vec::with_capacity(self.sections.len());
        let mut cursor = table_end;
        for (kind, payload) in &self.sections {
            cursor = align_up(cursor);
            entries.push((*kind, crc32(payload), cursor as u64, payload.len() as u64));
            cursor += payload.len();
        }
        let total_len = cursor as u64;

        let mut out = Vec::with_capacity(cursor);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&count.to_le_bytes());
        out.extend_from_slice(&total_len.to_le_bytes());
        for (kind, crc, offset, len) in &entries {
            out.extend_from_slice(&kind.to_le_bytes());
            out.extend_from_slice(&0u16.to_le_bytes());
            out.extend_from_slice(&crc.to_le_bytes());
            out.extend_from_slice(&offset.to_le_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        for ((_, _, offset, _), (_, payload)) in entries.iter().zip(&self.sections) {
            out.resize(usize::try_from(*offset).unwrap_or(out.len()), 0);
            out.extend_from_slice(payload);
        }
        Ok(out)
    }
}

/// A parsed, fully validated view over snapshot bytes. Holding a
/// `Snapshot` means the header, table bounds, payload alignment, and
/// every section CRC have already been checked.
#[derive(Debug)]
pub struct Snapshot<'a> {
    bytes: &'a [u8],
    table: Vec<(u16, Range<usize>)>,
}

fn le_u16(bytes: &[u8], at: usize) -> Option<u16> {
    let b: [u8; 2] = bytes.get(at..at.checked_add(2)?)?.try_into().ok()?;
    Some(u16::from_le_bytes(b))
}

fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let b: [u8; 4] = bytes.get(at..at.checked_add(4)?)?.try_into().ok()?;
    Some(u32::from_le_bytes(b))
}

fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let b: [u8; 8] = bytes.get(at..at.checked_add(8)?)?.try_into().ok()?;
    Some(u64::from_le_bytes(b))
}

impl<'a> Snapshot<'a> {
    /// Parses and validates a container.
    ///
    /// Checks run in order of increasing assumption: magic and version
    /// are readable from the first 6 bytes (so a version-1 file is
    /// reported as [`PersistError::VersionMismatch`] even if it is
    /// shorter than this format's header), then the full header, the
    /// table bounds and alignment, and finally every section's CRC.
    ///
    /// # Errors
    ///
    /// [`PersistError::BadMagic`], [`PersistError::VersionMismatch`],
    /// [`PersistError::Truncated`], [`PersistError::Corrupt`], or
    /// [`PersistError::SectionCrc`] — corruption is always detected.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, PersistError> {
        if bytes.len() < 6 {
            return Err(PersistError::Truncated { context: "snapshot header" });
        }
        if bytes.get(..4) != Some(MAGIC.as_slice()) {
            return Err(PersistError::BadMagic);
        }
        let version =
            le_u16(bytes, 4).ok_or(PersistError::Truncated { context: "snapshot header" })?;
        if version != FORMAT_VERSION {
            return Err(PersistError::VersionMismatch { found: version, expected: FORMAT_VERSION });
        }
        if bytes.len() < HEADER_LEN {
            return Err(PersistError::Truncated { context: "snapshot header" });
        }
        let count = usize::from(
            le_u16(bytes, 6).ok_or(PersistError::Truncated { context: "snapshot header" })?,
        );
        let total_len =
            le_u64(bytes, 8).ok_or(PersistError::Truncated { context: "snapshot header" })?;
        if total_len != bytes.len() as u64 {
            if total_len > bytes.len() as u64 {
                return Err(PersistError::Truncated { context: "snapshot body" });
            }
            return Err(PersistError::Corrupt {
                reason: format!(
                    "container declares {total_len} bytes but {} are present",
                    bytes.len()
                ),
            });
        }
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        if bytes.len() < table_end {
            return Err(PersistError::Truncated { context: "section table" });
        }

        let mut table = Vec::with_capacity(count);
        for i in 0..count {
            let start = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let e = bytes
                .get(start..start + TABLE_ENTRY_LEN)
                .ok_or(PersistError::Truncated { context: "section table" })?;
            let truncated = || PersistError::Truncated { context: "section table" };
            let kind = le_u16(e, 0).ok_or_else(truncated)?;
            let crc = le_u32(e, 4).ok_or_else(truncated)?;
            let offset = le_u64(e, 8).ok_or_else(truncated)?;
            let len = le_u64(e, 16).ok_or_else(truncated)?;
            let offset = usize::try_from(offset).map_err(|_| PersistError::Corrupt {
                reason: format!("section {kind} offset overflows usize"),
            })?;
            let len = usize::try_from(len).map_err(|_| PersistError::Corrupt {
                reason: format!("section {kind} length overflows usize"),
            })?;
            let end = offset.checked_add(len).ok_or_else(|| PersistError::Corrupt {
                reason: format!("section {kind} extent overflows"),
            })?;
            if offset < table_end || end > bytes.len() {
                return Err(PersistError::Truncated { context: "section payload" });
            }
            if offset % SECTION_ALIGN != 0 {
                return Err(PersistError::Corrupt {
                    reason: format!("section {kind} payload is not {SECTION_ALIGN}-byte aligned"),
                });
            }
            if table.iter().any(|(k, _)| *k == kind) {
                return Err(PersistError::Corrupt {
                    reason: format!("duplicate section kind {kind}"),
                });
            }
            let payload = bytes
                .get(offset..end)
                .ok_or(PersistError::Truncated { context: "section payload" })?;
            if crc32(payload) != crc {
                return Err(PersistError::SectionCrc { kind });
            }
            table.push((kind, offset..end));
        }
        Ok(Self { bytes, table })
    }

    /// The payload of a required section.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::MissingSection`] if absent.
    pub fn section(&self, kind: SectionKind) -> Result<&'a [u8], PersistError> {
        self.table
            .iter()
            .find(|(k, _)| *k == kind.code())
            // lint:allow-next-line(panic-surface): every table range was bounds-checked against `bytes` during parse
            .map(|(_, range)| &self.bytes[range.clone()])
            .ok_or(PersistError::MissingSection { kind: kind.code() })
    }

    /// Section kinds with their absolute payload byte ranges, in table
    /// order. Used by corruption tests to flip a byte inside a specific
    /// section.
    #[must_use]
    pub fn section_table(&self) -> &[(u16, Range<usize>)] {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section(SectionKind::Meta, vec![1, 2, 3]);
        w.section(SectionKind::Schema, b"schema-payload".to_vec());
        w.section(SectionKind::Factors, vec![9; 17]);
        w.finish().unwrap()
    }

    #[test]
    fn round_trip_preserves_payloads() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(snap.section(SectionKind::Meta).unwrap(), &[1, 2, 3]);
        assert_eq!(snap.section(SectionKind::Schema).unwrap(), b"schema-payload");
        assert_eq!(snap.section(SectionKind::Factors).unwrap(), &[9; 17]);
    }

    #[test]
    fn payloads_are_aligned() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).unwrap();
        for (_, range) in snap.section_table() {
            assert_eq!(range.start % SECTION_ALIGN, 0);
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = sample();
        let snap = Snapshot::parse(&bytes).unwrap();
        assert_eq!(
            snap.section(SectionKind::Graph).map(<[u8]>::len),
            Err(PersistError::MissingSection { kind: 3 })
        );
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(Snapshot::parse(&bytes), Err(PersistError::BadMagic)));
    }

    #[test]
    fn old_version_is_rejected_even_when_short() {
        // A minimal version-1 artifact: magic + version only.
        let bytes = [b'D', b'B', b'H', b'S', 1, 0];
        assert_eq!(
            Snapshot::parse(&bytes).err(),
            Some(PersistError::VersionMismatch { found: 1, expected: FORMAT_VERSION })
        );
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample();
        for cut in [3, 10, HEADER_LEN + 5, bytes.len() - 1] {
            let err = Snapshot::parse(&bytes[..cut]).err().unwrap();
            assert!(matches!(err, PersistError::Truncated { .. }), "cut at {cut} gave {err:?}");
        }
    }

    #[test]
    fn every_section_bit_flip_is_caught_by_its_crc() {
        let bytes = sample();
        let table: Vec<(u16, Range<usize>)> =
            Snapshot::parse(&bytes).unwrap().section_table().to_vec();
        for (kind, range) in table {
            let mut corrupted = bytes.clone();
            corrupted[range.start] ^= 0x01;
            assert_eq!(
                Snapshot::parse(&corrupted).err(),
                Some(PersistError::SectionCrc { kind }),
                "flip in section {kind}"
            );
        }
    }

    #[test]
    fn duplicate_sections_are_rejected_at_write_time() {
        let mut w = SnapshotWriter::new();
        w.section(SectionKind::Meta, vec![1]);
        w.section(SectionKind::Meta, vec![2]);
        assert!(matches!(w.finish(), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn length_mismatch_is_corrupt() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(Snapshot::parse(&bytes), Err(PersistError::Corrupt { .. })));
    }
}
