//! `cargo xtask`-style workspace automation. Dependency-free by design:
//! it must build in the same registry-less environment as the workspace.
//!
//! ```text
//! cargo run -p xtask -- lint        # run the custom static checks
//! cargo run -p xtask -- selftest    # prove the linter catches seeded bugs
//! cargo run -p xtask -- bench-diff <baseline.json> <fresh.json> <path>...
//!                                   # fail if a headline metric regressed >20%
//! ```
//!
//! `lint` walks every library source file in the workspace (each
//! `crates/<name>/src/**/*.rs` plus the root `src/`), applies the rules in
//! [`lint`], prints one human-readable line per violation to stderr and a
//! machine-readable JSON summary to stdout, and exits nonzero if any
//! violation survives its `lint:allow` escapes.

mod bench_diff;
mod lint;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("selftest") => run_selftest(),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint|selftest|bench-diff>");
            ExitCode::from(2)
        }
    }
}

/// Workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

/// Library source roots to scan: every workspace crate's `src/` except
/// xtask itself and the vendored dependency stand-ins, plus the root
/// package. `src/bin/` subtrees are excluded — the rules target library
/// code reachable from the public API, not one-off executables.
fn source_roots(root: &Path) -> Vec<PathBuf> {
    let mut roots = vec![root.join("src")];
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut names: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        names.sort();
        for krate in names {
            roots.push(krate.join("src"));
        }
    }
    roots
}

/// Recursively collects `.rs` files under `dir`, skipping `bin/` subtrees.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "bin") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Recursively collects every `.rs` file under `dir`, including `bin/`.
fn collect_rs_files_deep(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs_files_deep(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// File set for the `deprecated-shim` rule: everything first-party that
/// can call the construction API — library sources (with `bin/` this
/// time), examples, integration tests, and benches — but never the
/// vendored stand-ins or xtask itself.
fn shim_scan_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for dir in [root.join("src"), root.join("examples"), root.join("tests")] {
        collect_rs_files_deep(&dir, &mut files);
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        let mut names: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        names.sort();
        for krate in names {
            collect_rs_files_deep(&krate.join("src"), &mut files);
            collect_rs_files_deep(&krate.join("benches"), &mut files);
            collect_rs_files_deep(&krate.join("tests"), &mut files);
        }
    }
    files
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for src_root in source_roots(&root) {
        collect_rs_files(&src_root, &mut files);
    }

    let mut violations = Vec::new();
    let mut scanned = 0usize;
    let mut seen = std::collections::BTreeSet::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            eprintln!("xtask lint: unreadable file {}", path.display());
            continue;
        };
        let rel = path.strip_prefix(&root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        lint::scan_source(&rel, &source, &mut violations);
        seen.insert(rel);
        scanned += 1;
    }

    // The deprecated-shim and metric-name rules cover a wider net:
    // examples, integration tests, benches, and binaries are all
    // first-party call sites that can also record metrics.
    for path in shim_scan_files(&root) {
        let Ok(source) = fs::read_to_string(&path) else {
            eprintln!("xtask lint: unreadable file {}", path.display());
            continue;
        };
        let rel = path.strip_prefix(&root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        lint::scan_shims(&rel, &source, &mut violations);
        lint::scan_metrics(&rel, &source, &mut violations);
        if seen.insert(rel) {
            scanned += 1;
        }
    }

    for v in &violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.excerpt);
    }
    println!("{}", json_summary(scanned, &violations));

    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} violation(s) in {} file(s) scanned", violations.len(), scanned);
        ExitCode::FAILURE
    }
}

/// Proves the linter still catches seeded violations of every rule: a
/// regression test for the lint gate itself, runnable in CI without
/// mutating any tracked file. Exits nonzero if any seeded bug goes
/// undetected (i.e. the gate has rotted).
fn run_selftest() -> ExitCode {
    let seeded: [(&str, &str, &str); 6] = [
        ("snapshot-io", "crates/core/src/snapshot.rs", "let bytes = std::fs::read(path)?;"),
        ("no-panic", "crates/core/src/alloc.rs", "let v = budget.unwrap();"),
        ("float-cmp", "crates/core/src/marginal.rs", "if freq == 0.0 { return; }"),
        ("as-narrowing", "crates/histogram/src/codec.rs", "let n = count as u16;"),
        (
            "deprecated-shim",
            "examples/quickstart.rs",
            "let db = DbHistogram::build_mhist(&rel, &config)?;",
        ),
        (
            "metric-name",
            "crates/telemetry/src/wellknown.rs",
            "let c = registry.counter(\"dbhist_build_rounds\");",
        ),
    ];
    let scan_rule =
        |rule: &str, path: &str, source: &str, out: &mut Vec<lint::Violation>| match rule {
            "deprecated-shim" => lint::scan_shims(path, source, out),
            "metric-name" => lint::scan_metrics(path, source, out),
            _ => lint::scan_source(path, source, out),
        };
    let mut failures = 0u32;
    for (rule, path, source) in seeded {
        let mut out = Vec::new();
        scan_rule(rule, path, source, &mut out);
        if out.iter().any(|v| v.rule == rule) {
            eprintln!("selftest: rule {rule} fires on seeded violation ... ok");
        } else {
            eprintln!("selftest: rule {rule} MISSED seeded violation: {source}");
            failures += 1;
        }
        // The escape hatch must also still work.
        let allowed = format!("{source} // lint:allow({rule}): selftest");
        let mut quiet = Vec::new();
        scan_rule(rule, path, &allowed, &mut quiet);
        if quiet.iter().any(|v| v.rule == rule) {
            eprintln!("selftest: lint:allow({rule}) failed to suppress");
            failures += 1;
        }
    }
    // The one sanctioned call site must stay exempt, or the rule would
    // outlaw the shims' own coverage test.
    let mut exempt = Vec::new();
    lint::scan_shims(
        "crates/core/src/synopsis.rs",
        "let db = DbHistogram::build_mhist(&rel, &config)?;",
        &mut exempt,
    );
    if exempt.is_empty() {
        eprintln!("selftest: deprecated-shim exempts crates/core/src/synopsis.rs ... ok");
    } else {
        eprintln!("selftest: deprecated-shim wrongly fires inside synopsis.rs");
        failures += 1;
    }
    if failures == 0 {
        eprintln!("selftest: all {} rules verified", lint::RULES.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON (no serde in a registry-less build): one summary
/// object with per-rule counts and the full violation list.
fn json_summary(files_scanned: usize, violations: &[lint::Violation]) -> String {
    let mut s = String::from("{");
    s.push_str(&format!("\"files_scanned\":{files_scanned},"));
    s.push_str(&format!("\"total_violations\":{},", violations.len()));
    s.push_str("\"counts\":{");
    for (i, rule) in lint::RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        s.push_str(&format!("\"{rule}\":{n}"));
    }
    s.push_str("},\"violations\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"excerpt\":\"{}\"}}",
            json_escape(&v.file),
            v.line,
            v.rule,
            json_escape(&v.excerpt)
        ));
    }
    s.push_str("]}");
    s
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_summary_is_well_formed() {
        let violations = vec![lint::Violation {
            file: "crates/core/src/alloc.rs".into(),
            line: 7,
            rule: "no-panic",
            excerpt: "x.unwrap() // \"quoted\"".into(),
        }];
        let json = json_summary(3, &violations);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("\"no-panic\":1"));
        assert!(json.contains("\\\"quoted\\\""));
    }

    #[test]
    fn workspace_root_has_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn source_roots_cover_all_crates_except_self_and_vendor() {
        let roots = source_roots(&workspace_root());
        let names: Vec<String> = roots.iter().map(|p| p.display().to_string()).collect();
        assert!(names.iter().any(|n| n.ends_with("crates/core/src")), "{names:?}");
        assert!(names.iter().any(|n| n.ends_with("crates/histogram/src")));
        assert!(!names.iter().any(|n| n.contains("xtask")));
        assert!(!names.iter().any(|n| n.contains("vendor")));
    }
}
