//! `cargo xtask`-style workspace automation. Dependency-free beyond the
//! first-party analyzer crate: it must build in the same registry-less
//! environment as the workspace.
//!
//! ```text
//! cargo run -p xtask -- analyze         # scope-aware static analysis
//! cargo run -p xtask -- analyze --json  # machine-readable findings
//! cargo run -p xtask -- lint            # thin alias for `analyze`
//! cargo run -p xtask -- selftest        # prove the rules catch seeded bugs
//! cargo run -p xtask -- bench-diff <baseline.json> <fresh.json> <path>...
//!                                       # fail if a headline metric regressed >20%
//! ```
//!
//! `analyze` walks every first-party source file, runs the
//! [`dbhist_analyze`] rule engine (lexer → scopes → rules →
//! diagnostics), prints one human-readable line per finding to stderr
//! and a JSON summary to stdout, and exits nonzero if any finding — or
//! any unused `lint:allow` marker — survives. `lint` is the legacy
//! spelling, kept as an alias so muscle memory and older scripts keep
//! working.

mod bench_diff;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze" | "lint") => run_analyze(args.iter().any(|a| a == "--json")),
        Some("selftest") => run_selftest(),
        Some("bench-diff") => bench_diff::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <analyze [--json]|lint|selftest|bench-diff>");
            ExitCode::from(2)
        }
    }
}

/// Workspace root, resolved from this crate's manifest directory at
/// compile time (`crates/xtask` → two levels up).
fn workspace_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn run_analyze(json: bool) -> ExitCode {
    let report = dbhist_analyze::analyze_workspace(&workspace_root());
    eprint!("{}", report.render_human());
    if json {
        println!("{}", report.to_json(&dbhist_analyze::RULES));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask analyze: {} finding(s), {} unused suppression(s) in {} file(s) scanned",
            report.findings.len(),
            report.unused_suppressions.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

/// Proves the analyzer still catches seeded violations of every rule: a
/// regression test for the gate itself, runnable in CI without mutating
/// any tracked file. Exits nonzero if any seeded bug goes undetected
/// (i.e. the gate has rotted).
fn run_selftest() -> ExitCode {
    if dbhist_analyze::selftest::run() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_root_has_manifest() {
        assert!(workspace_root().join("Cargo.toml").is_file());
    }

    #[test]
    fn workspace_walk_covers_all_crates_except_tooling_and_vendor() {
        let files = dbhist_analyze::workspace_files(&workspace_root());
        let names: Vec<String> = files.iter().map(|(p, _)| p.display().to_string()).collect();
        assert!(names.iter().any(|n| n.ends_with("crates/core/src/lib.rs")), "{names:?}");
        assert!(names.iter().any(|n| n.contains("crates/histogram/src")));
        assert!(!names.iter().any(|n| n.contains("xtask")));
        assert!(!names.iter().any(|n| n.contains("crates/analyze")));
        assert!(!names.iter().any(|n| n.contains("vendor")));
    }
}
