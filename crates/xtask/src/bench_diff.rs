//! `cargo run -p xtask -- bench-diff <baseline.json> <fresh.json> <path>...`
//!
//! The bench-regression gate. Each `BENCH_*.json` committed at the repo
//! root is a performance contract: the headline speedups it records were
//! real on the hardware that produced them. CI re-runs the bench bins,
//! writes fresh `BENCH_*.ci.json` files, and calls this subcommand to
//! compare each headline metric (addressed by a dotted path such as
//! `speedup.total`) against the committed baseline. A fresh value below
//! `baseline × 0.8` — a regression of more than 20% — fails the gate.
//!
//! Fresh values *above* baseline never fail: CI runners are slower and
//! noisier than the machines that seed the baselines, so the gate only
//! guards the floor. Like the rest of xtask this is dependency-free; the
//! JSON reader below handles exactly the subset the hand-rolled bench
//! writers emit (objects, arrays, numbers, strings, bools, null).

use std::fs;
use std::process::ExitCode;

/// Fresh-over-baseline ratio below which a metric counts as regressed.
const REGRESSION_FLOOR: f64 = 0.8;

/// Entry point for the `bench-diff` subcommand. `args` excludes the
/// subcommand name itself: `[baseline, fresh, path, path, ...]`.
pub fn run(args: &[String]) -> ExitCode {
    let [baseline_path, fresh_path, metric_paths @ ..] = args else {
        eprintln!("usage: cargo run -p xtask -- bench-diff <baseline.json> <fresh.json> <path>...");
        return ExitCode::from(2);
    };
    if metric_paths.is_empty() {
        eprintln!("bench-diff: no metric paths given");
        return ExitCode::from(2);
    }
    let read = |path: &str| -> Option<String> {
        match fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("bench-diff: cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(baseline_json), Some(fresh_json)) = (read(baseline_path), read(fresh_path)) else {
        return ExitCode::FAILURE;
    };
    let mut failures = 0u32;
    for metric in metric_paths {
        match (lookup(&baseline_json, metric), lookup(&fresh_json, metric)) {
            (Some(base), Some(fresh)) => {
                let floor = base * REGRESSION_FLOOR;
                if fresh < floor {
                    eprintln!(
                        "bench-diff: REGRESSION {metric}: fresh {fresh:.3} < floor {floor:.3} \
                         (baseline {base:.3}, tolerance {REGRESSION_FLOOR})"
                    );
                    failures += 1;
                } else {
                    eprintln!(
                        "bench-diff: ok {metric}: fresh {fresh:.3} vs baseline {base:.3} ... ok"
                    );
                }
            }
            (base, fresh) => {
                if base.is_none() {
                    eprintln!("bench-diff: metric {metric} missing from {baseline_path}");
                }
                if fresh.is_none() {
                    eprintln!("bench-diff: metric {metric} missing from {fresh_path}");
                }
                failures += 1;
            }
        }
    }
    if failures == 0 {
        eprintln!("bench-diff: {} metric(s) within tolerance", metric_paths.len());
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Resolves a dotted path (`speedup.total`) to a numeric value inside a
/// JSON document. Array indexing is supported with numeric segments
/// (`runs.0.seconds`). Returns `None` on malformed JSON, a missing key,
/// or a non-numeric terminal value.
pub fn lookup(json: &str, dotted_path: &str) -> Option<f64> {
    let mut p = Parser { bytes: json.as_bytes(), pos: 0 };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return None;
    }
    let mut cur = &value;
    for segment in dotted_path.split('.') {
        cur = match cur {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == segment).map(|(_, v)| v)?,
            Value::Array(items) => items.get(segment.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    match cur {
        Value::Number(n) => Some(*n),
        _ => None,
    }
}

/// The JSON value tree. Strings, bools, and null are parsed (the bench
/// files contain them) but only numbers terminate a metric path, so
/// their payloads are discarded at parse time.
enum Value {
    Number(f64),
    String,
    Bool,
    Null,
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// Recursive-descent reader over the JSON subset the bench bins write.
/// Every method returns `None` on malformed input; nothing panics.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_whitespace) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Value> {
        self.skip_ws();
        match self.bytes.get(self.pos)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(|_| Value::String),
            b't' => self.literal("true", Value::Bool),
            b'f' => self.literal("false", Value::Bool),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Option<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Some(value)
        } else {
            None
        }
    }

    fn object(&mut self) -> Option<Value> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Some(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Value::Object(pairs));
                }
                _ => return None,
            }
        }
    }

    fn array(&mut self) -> Option<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Some(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos)? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Value::Array(items));
                }
                _ => return None,
            }
        }
    }

    fn string(&mut self) -> Option<String> {
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    // The bench writers only ever escape quotes and
                    // backslashes; anything else passes through verbatim.
                    let esc = *self.bytes.get(self.pos + 1)?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        other => other as char,
                    });
                    self.pos += 2;
                }
                &b => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Option<Value> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|&b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "rows": 40000,
        "speedup": { "total": 2.93, "load_vs_rebuild": 14.5 },
        "phases": [ { "name": "build", "seconds": 1.5e-2 } ],
        "ok": true, "note": "seeded", "missing": null
    }"#;

    #[test]
    fn lookup_resolves_nested_and_indexed_paths() {
        assert_eq!(lookup(DOC, "rows"), Some(40000.0));
        assert_eq!(lookup(DOC, "speedup.total"), Some(2.93));
        assert_eq!(lookup(DOC, "phases.0.seconds"), Some(1.5e-2));
    }

    #[test]
    fn lookup_rejects_missing_and_non_numeric() {
        assert_eq!(lookup(DOC, "speedup.nope"), None);
        assert_eq!(lookup(DOC, "note"), None);
        assert_eq!(lookup(DOC, "ok"), None);
        assert_eq!(lookup(DOC, "missing"), None);
        assert_eq!(lookup(DOC, "phases.7.seconds"), None);
    }

    #[test]
    fn lookup_rejects_malformed_json() {
        assert_eq!(lookup("{\"a\": }", "a"), None);
        assert_eq!(lookup("{\"a\": 1} trailing", "a"), None);
        assert_eq!(lookup("", "a"), None);
        assert_eq!(lookup("{\"a\": [1, 2", "a.0"), None);
    }

    #[test]
    fn negative_and_exponent_numbers_parse() {
        assert_eq!(lookup("{\"x\": -3.5e2}", "x"), Some(-350.0));
    }
}
