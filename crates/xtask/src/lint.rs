//! Custom static checks for the dbhist workspace.
//!
//! These enforce project invariants that rustc and clippy cannot express:
//!
//! * `no-panic` — library code must not contain `unwrap()` / `expect(` /
//!   `panic!` / `unreachable!` / `todo!` / `unimplemented!` outside
//!   `#[cfg(test)]` regions. Library code returns `Result` through the
//!   crate error enums; a synopsis data structure that can be fed
//!   adversarial bytes (the split-tree codec) must never abort the host.
//! * `float-cmp` — no `==` / `!=` where an operand is a float literal or a
//!   frequency-like identifier (`freq`, `mass`, `weight`). Frequencies are
//!   accumulated `f64` sums; exact comparison hides representation error.
//!   Zero-tests must go through an explicit epsilon or integer counts.
//! * `as-narrowing` — in codec / bucket arithmetic files, no bare `as`
//!   casts to a narrower integer type. Wire-format widths are a contract;
//!   a silent truncation corrupts the payload instead of erroring. Use
//!   `try_from` and surface `HistogramError::Codec`.
//! * `deprecated-shim` — no first-party code outside
//!   `crates/core/src/synopsis.rs` may call the deprecated
//!   `DbHistogram::build_mhist` / `build_grid` / `build_wavelet` shims.
//!   New code goes through `SynopsisBuilder`; the shims exist only for
//!   downstream compatibility and their own coverage test. Unlike the
//!   other rules this one also covers examples, integration tests,
//!   benches, and binaries (see [`scan_shims`]).
//! * `metric-name` — every telemetry metric name literal must follow
//!   `dbhist_<subsystem>_<name>_<unit>`: at least four non-empty
//!   `_`-separated lowercase segments ending in an approved unit
//!   (`total`, `seconds`, `ns`, `us`, `bytes`, `ratio`, `count`), with an
//!   optional `{label="..."}` suffix. The registry is a process-wide
//!   namespace shared by every subsystem and scraped by external
//!   tooling; a misnamed metric is an API break that nothing else would
//!   catch. Scans the same wide file set as `deprecated-shim` (see
//!   [`scan_metrics`]), and scans *raw* lines — the names live inside
//!   the string literals that [`mask_line`] blanks.
//! * `snapshot-io` — no library code outside `crates/persist/` may read
//!   file bytes with `std::fs::read` / `File::open` / `read_to_end`.
//!   Snapshot bytes must enter the process through
//!   `dbhist_persist::read_file`, which funnels every load into the
//!   validating container parser (magic, version, bounds, CRCs); an ad
//!   hoc read path would let unchecked bytes reach the factor codecs.
//!
//! A violation can be suppressed on its line with an inline escape hatch:
//! `// lint:allow(<rule>): <justification>`, or from the line above with
//! `// lint:allow-next-line(<rule>): <justification>` (the standalone form
//! survives rustfmt rewrapping). The justification is part of the
//! convention — a bare allow with no reason should not survive review.

/// One rule violation at a specific file location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub excerpt: String,
}

/// Names of every rule, for `lint:allow` validation and reporting.
pub const RULES: [&str; 6] =
    ["no-panic", "float-cmp", "as-narrowing", "deprecated-shim", "metric-name", "snapshot-io"];

/// Banned invocations for the `no-panic` rule. Each must appear with a
/// non-identifier character before it so that e.g. `try_unwrap()` in a
/// comment about other APIs is not flagged.
const PANIC_PATTERNS: [&str; 6] =
    [".unwrap()", ".expect(", "panic!", "unreachable!", "todo!", "unimplemented!"];

/// Identifier fragments that mark an operand as a frequency-like float.
const FLOAT_IDENT_HINTS: [&str; 3] = ["freq", "mass", "weight"];

/// Narrow integer targets banned as bare `as` casts in codec/bucket files.
const NARROW_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Deprecated construction entry points for the `deprecated-shim` rule.
/// The shims are associated functions, so every call site spells the
/// qualified path; a textual match on it is exact enough.
const SHIM_PATTERNS: [&str; 3] =
    ["DbHistogram::build_mhist", "DbHistogram::build_grid", "DbHistogram::build_wavelet"];

/// Approved trailing unit segments for the `metric-name` rule.
const METRIC_UNITS: [&str; 7] = ["total", "seconds", "ns", "us", "bytes", "ratio", "count"];

/// Derived-name suffixes the Prometheus exporter appends to a histogram
/// family (`<name>_bucket`, `<name>_sum`; `_count` is already a unit).
/// Literals naming those series (exporter tests, scrape examples) stay
/// legal as long as the family name under the suffix is itself valid.
const METRIC_DERIVED_SUFFIXES: [&str; 2] = ["bucket", "sum"];

/// Raw-file read entry points banned outside `crates/persist/` by the
/// `snapshot-io` rule. `fs::read(` deliberately does not match
/// `fs::read_dir(` or `fs::read_to_string(` — directory walks and text
/// config reads are not snapshot-byte ingestion.
const SNAPSHOT_IO_PATTERNS: [&str; 3] = ["fs::read(", "File::open(", "read_to_end("];

/// Path fragments that put a file in scope for the `as-narrowing` rule:
/// the wire codec, the split-tree (bucket) arithmetic, bounding boxes, and
/// the bucket-budget allocator.
const NARROWING_SCOPE: [&str; 4] = ["codec", "mhist", "bbox", "alloc"];

/// Cross-line lexer state: inside a (possibly nested) block comment, a
/// string literal, or a raw string literal with `hashes` trailing `#`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Mode {
    #[default]
    Code,
    Block(u32),
    Str,
    RawStr(u8),
}

/// Replaces comment and string/char-literal contents with spaces so that
/// rule matching and brace counting only ever see real code. Length is
/// preserved. Line comments end the line; other modes carry across lines
/// via `mode`.
fn mask_line(line: &str, mode: &mut Mode) -> String {
    let bytes = line.as_bytes();
    let mut out = vec![b' '; bytes.len()];
    let mut i = 0;
    while i < bytes.len() {
        match *mode {
            Mode::Block(depth) => {
                if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    *mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                    i += 2;
                } else if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    *mode = Mode::Block(depth + 1);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            Mode::Str => {
                if bytes[i] == b'\\' {
                    i += 2;
                } else if bytes[i] == b'"' {
                    *mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(hashes) => {
                if bytes[i] == b'"' {
                    let h = usize::from(hashes);
                    if bytes.len() >= i + 1 + h
                        && bytes[i + 1..i + 1 + h].iter().all(|&b| b == b'#')
                    {
                        *mode = Mode::Code;
                        i += 1 + h;
                        continue;
                    }
                }
                i += 1;
            }
            Mode::Code => match bytes[i] {
                b'/' if bytes.get(i + 1) == Some(&b'/') => {
                    return String::from_utf8(out).unwrap_or_default()
                }
                b'/' if bytes.get(i + 1) == Some(&b'*') => {
                    *mode = Mode::Block(1);
                    i += 2;
                }
                b'"' => {
                    *mode = Mode::Str;
                    i += 1;
                }
                b'r' if bytes.get(i + 1) == Some(&b'"')
                    || (bytes.get(i + 1) == Some(&b'#')
                        && raw_str_hashes(&bytes[i + 1..]).is_some()) =>
                {
                    let hashes = raw_str_hashes(&bytes[i + 1..]).unwrap_or(0);
                    out[i] = b'r';
                    *mode = Mode::RawStr(hashes);
                    i += 2 + usize::from(hashes);
                }
                b'\'' => {
                    // Char literal (`'x'`, `'\n'`, `'{'`) vs lifetime (`'a`).
                    if bytes.get(i + 1) == Some(&b'\\') {
                        // Escaped char literal: skip to the closing quote.
                        let mut j = i + 2;
                        while j < bytes.len() && bytes[j] != b'\'' {
                            j += 1;
                        }
                        i = (j + 1).min(bytes.len());
                    } else if bytes.len() > i + 2 && bytes[i + 2] == b'\'' {
                        i += 3; // plain char literal
                    } else {
                        out[i] = b'\''; // lifetime marker: keep, advance one
                        i += 1;
                    }
                }
                b => {
                    out[i] = b;
                    i += 1;
                }
            },
        }
    }
    String::from_utf8(out).unwrap_or_default()
}

/// Counts leading `#` bytes followed by a `"` — the `r#..#"` raw-string
/// opener — returning the hash count, or `None` if this is not one.
fn raw_str_hashes(after_r: &[u8]) -> Option<u8> {
    if after_r.first() == Some(&b'"') {
        return Some(0);
    }
    let hashes = after_r.iter().take_while(|&&b| b == b'#').count();
    if hashes > 0 && after_r.get(hashes) == Some(&b'"') {
        u8::try_from(hashes).ok()
    } else {
        None
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Rules suppressed on this line via `// lint:allow(rule)` markers in the
/// raw (unmasked) source.
fn allowed_rules(raw_line: &str) -> Vec<&str> {
    parse_allow_markers(raw_line, "lint:allow(")
}

/// Rules suppressed on the *following* line via
/// `// lint:allow-next-line(rule)`. The standalone-comment form survives
/// rustfmt rewrapping, which can detach a trailing comment from the line
/// it annotates.
fn next_line_allowed_rules(raw_line: &str) -> Vec<&str> {
    parse_allow_markers(raw_line, "lint:allow-next-line(")
}

fn parse_allow_markers<'a>(raw_line: &'a str, marker: &str) -> Vec<&'a str> {
    let mut allowed = Vec::new();
    let mut rest = raw_line;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        if let Some(end) = rest.find(')') {
            for rule in rest[..end].split(',') {
                allowed.push(rule.trim());
            }
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    allowed
}

/// Matches `pattern` in `masked` at word-ish boundaries: the byte before a
/// match must not be an identifier byte (so `try_unwrap()` never matches
/// `.unwrap()` — the leading dot anchors it anyway, but macro patterns like
/// `panic!` need the guard).
fn find_banned(masked: &str, pattern: &str) -> bool {
    // The boundary guard only matters for patterns that begin with an
    // identifier byte (the macros); `.unwrap()` is anchored by its dot.
    let needs_guard = pattern.as_bytes().first().copied().is_some_and(is_ident_byte);
    let mut start = 0;
    while let Some(pos) = masked[start..].find(pattern) {
        let abs = start + pos;
        if !needs_guard || abs == 0 || !is_ident_byte(masked.as_bytes()[abs - 1]) {
            return true;
        }
        start = abs + pattern.len();
    }
    false
}

/// True if `text` contains a float literal: a digit, a `.`, then a digit.
/// `0..5` (range syntax) and `x.0` (tuple field) deliberately do not match.
fn has_float_literal(text: &str) -> bool {
    let b = text.as_bytes();
    (2..b.len()).any(|i| b[i].is_ascii_digit() && b[i - 1] == b'.' && b[i - 2].is_ascii_digit())
}

/// True if `text` contains an identifier with a frequency-like fragment.
fn has_float_ident(text: &str) -> bool {
    text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_').any(|tok| {
        let lower = tok.to_ascii_lowercase();
        FLOAT_IDENT_HINTS.iter().any(|h| lower.contains(h))
    })
}

/// Detects `==` / `!=` comparisons whose nearby operand text looks like a
/// float frequency. The operand window is heuristic (40 bytes each side,
/// clipped at expression separators) — this is a lint, not a type checker;
/// clippy's `float_cmp` is the semantic backstop.
fn has_float_cmp(masked: &str) -> bool {
    let b = masked.as_bytes();
    let mut i = 0;
    while i + 1 < b.len() {
        let is_eq = b[i] == b'=' && b[i + 1] == b'=';
        let is_ne = b[i] == b'!' && b[i + 1] == b'=';
        if (is_eq || is_ne)
            && (i == 0
                || !matches!(
                    b[i - 1],
                    b'<' | b'>'
                        | b'='
                        | b'!'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                ))
            && b.get(i + 2) != Some(&b'=')
        {
            let lo = i.saturating_sub(40);
            let hi = (i + 2 + 40).min(b.len());
            let left = clip_operand(&masked[lo..i], true);
            let right = clip_operand(&masked[i + 2..hi], false);
            for side in [left, right] {
                if has_float_literal(side) || has_float_ident(side) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// Clips an operand window at the nearest expression separator so that
/// unrelated neighbouring arguments don't leak into the float heuristic.
fn clip_operand(window: &str, from_end: bool) -> &str {
    const SEPS: [char; 6] = [',', ';', '(', ')', '{', '}'];
    if from_end {
        match window.rfind(SEPS) {
            Some(p) => &window[p + 1..],
            None => window,
        }
    } else {
        match window.find(SEPS) {
            Some(p) => &window[..p],
            None => window,
        }
    }
}

/// Detects a bare `as <narrow-int>` cast in the masked line.
fn has_narrowing_cast(masked: &str) -> bool {
    let b = masked.as_bytes();
    let mut start = 0;
    while let Some(pos) = masked[start..].find(" as ") {
        let abs = start + pos;
        let after = &masked[abs + 4..];
        let target: String = after.chars().take_while(|c| c.is_ascii_alphanumeric()).collect();
        if NARROW_TARGETS.contains(&target.as_str()) {
            // `as` must be a standalone word (preceded by non-ident byte).
            if abs == 0 || !is_ident_byte(b[abs]) {
                return true;
            }
        }
        start = abs + 4;
    }
    false
}

/// True if this relative path is in scope for the `as-narrowing` rule.
pub fn narrowing_applies(rel_path: &str) -> bool {
    let normalized = rel_path.replace('\\', "/");
    NARROWING_SCOPE.iter().any(|frag| {
        normalized.rsplit('/').next().is_some_and(|file| file.contains(frag))
            || normalized.contains(&format!("/{frag}/"))
    })
}

/// True if this relative path may perform raw file reads: only the
/// persistence crate, which owns the validating snapshot read path, is
/// exempt from the `snapshot-io` rule.
pub fn snapshot_io_exempt(rel_path: &str) -> bool {
    rel_path.replace('\\', "/").contains("crates/persist/")
}

/// True if this relative path may call the deprecated `DbHistogram`
/// construction shims: only the module that defines them (and carries
/// their coverage test) is exempt from the `deprecated-shim` rule.
pub fn shim_exempt(rel_path: &str) -> bool {
    rel_path.replace('\\', "/").ends_with("crates/core/src/synopsis.rs")
}

/// Scans one file for the `deprecated-shim` rule only. Run over a wider
/// file set than [`scan_source`] — examples, integration tests, benches,
/// and binaries all count as first-party call sites — and deliberately
/// does not exempt `#[cfg(test)]` regions: tests must exercise the
/// builder API too, except inside the defining module itself.
pub fn scan_shims(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
    if shim_exempt(rel_path) {
        return;
    }
    let mut mode = Mode::default();
    let mut next_line_allows: Vec<&str> = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let masked = mask_line(raw_line, &mut mode);
        let carried = std::mem::take(&mut next_line_allows);
        next_line_allows = next_line_allowed_rules(raw_line);
        let mut allowed = allowed_rules(raw_line);
        allowed.extend(carried);
        if allowed.contains(&"deprecated-shim") {
            continue;
        }
        if SHIM_PATTERNS.iter().any(|p| find_banned(&masked, p)) {
            out.push(Violation {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "deprecated-shim",
                excerpt: raw_line.trim().chars().take(120).collect(),
            });
        }
    }
}

/// Returns the first malformed `dbhist_`-prefixed metric-name literal on
/// this raw (unmasked) line, if any. A name is well formed when it has at
/// least four non-empty `_`-separated `[a-z0-9]` segments and its last
/// segment is an approved unit (or an exporter-derived `_bucket` / `_sum`
/// suffix over a valid family name). Extraction stops at the closing
/// quote or a `{label=...}` opener; a name running straight into other
/// characters (e.g. an uppercase letter) is malformed by definition.
fn bad_metric_name(raw_line: &str) -> Option<&str> {
    let bytes = raw_line.as_bytes();
    let mut start = 0;
    while let Some(pos) = raw_line[start..].find("\"dbhist_") {
        let name_start = start + pos + 1;
        let mut end = name_start;
        while end < bytes.len()
            && (bytes[end].is_ascii_lowercase()
                || bytes[end].is_ascii_digit()
                || bytes[end] == b'_')
        {
            end += 1;
        }
        let name = &raw_line[name_start..end];
        if !metric_name_ok(name) || bytes.get(end).is_some_and(u8::is_ascii_uppercase) {
            return Some(name);
        }
        start = end;
    }
    None
}

/// Validates one extracted metric name against the
/// `dbhist_<subsystem>_<name>_<unit>` convention.
fn metric_name_ok(name: &str) -> bool {
    let segments: Vec<&str> = name.split('_').collect();
    if segments.len() < 4 || segments.iter().any(|s| s.is_empty()) {
        return false;
    }
    let last = segments[segments.len() - 1];
    if METRIC_UNITS.contains(&last) {
        return true;
    }
    // `<family>_bucket` / `<family>_sum` derived series: valid iff the
    // family under the suffix is.
    METRIC_DERIVED_SUFFIXES.contains(&last)
        && segments.len() >= 5
        && METRIC_UNITS.contains(&segments[segments.len() - 2])
}

/// Scans one file for the `metric-name` rule only. Like [`scan_shims`]
/// this runs over the wider first-party file set — binaries, benches, and
/// integration tests record metrics too — and does not exempt
/// `#[cfg(test)]` regions: a test-only metric still lands in the shared
/// registry namespace. Unlike every other rule it inspects *raw* lines,
/// because the names it validates live inside string literals that
/// [`mask_line`] blanks out.
pub fn scan_metrics(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
    let mut next_line_allows: Vec<&str> = Vec::new();
    for (idx, raw_line) in source.lines().enumerate() {
        let carried = std::mem::take(&mut next_line_allows);
        next_line_allows = next_line_allowed_rules(raw_line);
        let mut allowed = allowed_rules(raw_line);
        allowed.extend(carried);
        if allowed.contains(&"metric-name") {
            continue;
        }
        if bad_metric_name(raw_line).is_some() {
            out.push(Violation {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: "metric-name",
                excerpt: raw_line.trim().chars().take(120).collect(),
            });
        }
    }
}

/// Scans one file's source text, appending violations. `rel_path` is used
/// for reporting and for path-scoped rules.
pub fn scan_source(rel_path: &str, source: &str, out: &mut Vec<Violation>) {
    let mut mode = Mode::default();
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut test_until: Option<i64> = None;
    let mut next_line_allows: Vec<&str> = Vec::new();
    let narrowing_in_scope = narrowing_applies(rel_path);
    let snapshot_io_in_scope = !snapshot_io_exempt(rel_path);

    for (idx, raw_line) in source.lines().enumerate() {
        let masked = mask_line(raw_line, &mut mode);
        let line_no = idx + 1;

        if test_until.is_none() && masked.contains("cfg(test)") {
            pending_test = true;
        }
        let opens = i64::try_from(masked.bytes().filter(|&b| b == b'{').count()).unwrap_or(0);
        let closes = i64::try_from(masked.bytes().filter(|&b| b == b'}').count()).unwrap_or(0);
        if pending_test && opens > 0 {
            test_until = Some(depth);
            pending_test = false;
        }
        let in_test = test_until.is_some();
        depth += opens - closes;
        if let Some(t) = test_until {
            if depth <= t {
                test_until = None;
            }
        }

        let carried_allows = std::mem::take(&mut next_line_allows);
        next_line_allows = next_line_allowed_rules(raw_line);
        if in_test {
            continue;
        }
        let mut allowed = allowed_rules(raw_line);
        allowed.extend(carried_allows);
        let mut push = |rule: &'static str| {
            if !allowed.contains(&rule) {
                out.push(Violation {
                    file: rel_path.to_string(),
                    line: line_no,
                    rule,
                    excerpt: raw_line.trim().chars().take(120).collect(),
                });
            }
        };

        if PANIC_PATTERNS.iter().any(|p| find_banned(&masked, p)) {
            push("no-panic");
        }
        if has_float_cmp(&masked) {
            push("float-cmp");
        }
        if narrowing_in_scope && has_narrowing_cast(&masked) {
            push("as-narrowing");
        }
        if snapshot_io_in_scope && SNAPSHOT_IO_PATTERNS.iter().any(|p| find_banned(&masked, p)) {
            push("snapshot-io");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Violation> {
        let mut out = Vec::new();
        scan_source(path, src, &mut out);
        out
    }

    #[test]
    fn flags_each_panic_pattern_in_lib_code() {
        for bad in [
            "let x = maybe.unwrap();",
            "let x = maybe.expect(\"reason\");",
            "panic!(\"boom\");",
            "unreachable!(),",
            "todo!()",
            "unimplemented!()",
        ] {
            let v = scan("crates/core/src/alloc.rs", bad);
            assert_eq!(v.len(), 1, "{bad} should be flagged: {v:?}");
            assert_eq!(v[0].rule, "no-panic");
        }
    }

    #[test]
    fn cfg_test_region_is_exempt() {
        let src = "fn lib() -> u32 { 1 }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { x.unwrap(); panic!(\"ok in tests\"); }\n\
                   }\n\
                   fn after() { y.unwrap(); }\n";
        let v = scan("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 6, "only the post-module unwrap counts");
    }

    #[test]
    fn comments_and_strings_are_ignored() {
        let src = "// this .unwrap() is prose\n\
                   /* panic! in a block\n\
                      spanning lines .unwrap() */\n\
                   let s = \"contains panic! and .unwrap()\";\n\
                   let r = r#\"raw panic! body\"#;\n";
        assert!(scan("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn char_literal_braces_do_not_corrupt_test_tracking() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { let open = '{'; x.unwrap(); }\n\
                   }\n\
                   fn lib() { y.unwrap(); }\n";
        let v = scan("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn lint_allow_suppresses_named_rule_only() {
        let allowed = "let x = m.unwrap(); // lint:allow(no-panic): invariant upheld by caller";
        assert!(scan("crates/core/src/lib.rs", allowed).is_empty());
        let wrong_rule = "let x = m.unwrap(); // lint:allow(float-cmp): wrong rule named";
        assert_eq!(scan("crates/core/src/lib.rs", wrong_rule).len(), 1);
    }

    #[test]
    fn lint_allow_next_line_suppresses_following_line_only() {
        let allowed = "// lint:allow-next-line(no-panic): invariant upheld by caller\n\
                       let x = m.unwrap();";
        assert!(scan("crates/core/src/lib.rs", allowed).is_empty());
        // The suppression does not extend past the next line.
        let too_far = "// lint:allow-next-line(no-panic): only reaches the next line\n\
                       let x = 1;\n\
                       let y = m.unwrap();";
        assert_eq!(scan("crates/core/src/lib.rs", too_far).len(), 1);
        // The next-line form does not suppress its own line.
        let own_line = "let x = m.unwrap(); // lint:allow-next-line(no-panic): misplaced";
        assert_eq!(scan("crates/core/src/lib.rs", own_line).len(), 1);
    }

    #[test]
    fn float_cmp_flags_frequency_comparisons() {
        for bad in [
            "if freq == 0.0 { return; }",
            "if total_mass != expected_mass {",
            "assert(weight == w2);",
            "if 0.5 == threshold {",
        ] {
            let v = scan("crates/core/src/marginal.rs", bad);
            assert_eq!(v.len(), 1, "{bad}: {v:?}");
            assert_eq!(v[0].rule, "float-cmp");
        }
    }

    #[test]
    fn float_cmp_ignores_integers_and_ranges() {
        for ok in [
            "if count == 0 { return; }",
            "for i in 0..5 { body(i); }",
            "if tag != 1 { err(); }",
            "let eq = a <= b;",
            "if idx == len - 1 {",
        ] {
            assert!(scan("crates/core/src/marginal.rs", ok).is_empty(), "{ok}");
        }
    }

    #[test]
    fn narrowing_cast_scoped_to_codec_paths() {
        let bad = "let n = total as u16;";
        assert_eq!(scan("crates/histogram/src/codec.rs", bad).len(), 1);
        assert_eq!(scan("crates/histogram/src/mhist/build.rs", bad).len(), 1);
        assert_eq!(scan("crates/core/src/alloc.rs", bad).len(), 1);
        // Out of scope: same cast elsewhere is clippy's business, not ours.
        assert!(scan("crates/data/src/census.rs", bad).is_empty());
        // Widening casts stay legal even in scope.
        assert!(scan("crates/histogram/src/codec.rs", "let w = x as u64;").is_empty());
        assert!(scan("crates/histogram/src/codec.rs", "let f = x as f64;").is_empty());
    }

    #[test]
    fn deprecated_shim_flagged_outside_synopsis_module() {
        let mut out = Vec::new();
        for call in [
            "let db = DbHistogram::build_mhist(&rel, &config)?;",
            "let db = DbHistogram::build_grid(&rel, &config)?;",
            "let db = DbHistogram::build_wavelet(&rel, &config)?;",
        ] {
            out.clear();
            scan_shims("examples/quickstart.rs", call, &mut out);
            assert_eq!(out.len(), 1, "{call}: {out:?}");
            assert_eq!(out[0].rule, "deprecated-shim");
        }
        // The defining module (and its coverage test) is exempt.
        out.clear();
        scan_shims(
            "crates/core/src/synopsis.rs",
            "let db = DbHistogram::build_mhist(&rel, &config)?;",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // Comments and the allow escape are honoured; cfg(test) is not.
        out.clear();
        scan_shims("tests/end_to_end.rs", "// prose about DbHistogram::build_mhist", &mut out);
        assert!(out.is_empty(), "{out:?}");
        out.clear();
        let allowed = "DbHistogram::build_mhist(&rel, &c)?; // lint:allow(deprecated-shim): compat";
        scan_shims("tests/end_to_end.rs", allowed, &mut out);
        assert!(out.is_empty(), "{out:?}");
        out.clear();
        let in_test =
            "#[cfg(test)]\nmod tests {\n  fn t() { DbHistogram::build_mhist(&r, &c); }\n}";
        scan_shims("crates/bench/src/experiments.rs", in_test, &mut out);
        assert_eq!(out.len(), 1, "cfg(test) is not exempt for shims: {out:?}");
    }

    #[test]
    fn metric_name_enforces_convention() {
        let mut out = Vec::new();
        for bad in [
            "let c = reg.counter(\"dbhist_build_rounds\");", // too few segments
            "let c = reg.counter(\"dbhist_build_rounds_ms\");", // unapproved unit
            "let g = reg.gauge(\"dbhist__estimator_drift_ratio\");", // empty segment
            "let h = reg.histogram(\"dbhist_query_latency_usEC\");", // runs into junk
            "let s = \"dbhist_query_estimate_sum\";",        // derived suffix, bad family
        ] {
            out.clear();
            scan_metrics("crates/telemetry/src/wellknown.rs", bad, &mut out);
            assert_eq!(out.len(), 1, "{bad}: {out:?}");
            assert_eq!(out[0].rule, "metric-name");
        }
        for ok in [
            "let c = reg.counter(\"dbhist_query_estimates_total\");",
            "let h = reg.histogram(\"dbhist_build_selection_latency_us\");",
            "let g = format!(\"dbhist_estimator_drift_ratio{{clique=\\\"{i}\\\"}}\");",
            "assert!(prom.contains(\"dbhist_test_export_latency_ns_bucket{le=\\\"+Inf\\\"} 4\"));",
            "assert!(prom.contains(\"dbhist_test_export_latency_ns_sum 100110\"));",
            "let other = \"not_a_metric_name\";", // no dbhist_ prefix: out of scope
        ] {
            out.clear();
            scan_metrics("crates/core/src/synopsis.rs", ok, &mut out);
            assert!(out.is_empty(), "{ok}: {out:?}");
        }
        // The escape hatches work like every other rule's.
        out.clear();
        let allowed = "let c = reg.counter(\"dbhist_legacy\"); // lint:allow(metric-name): compat";
        scan_metrics("crates/core/src/plan.rs", allowed, &mut out);
        assert!(out.is_empty(), "{out:?}");
        out.clear();
        let next_line = "// lint:allow-next-line(metric-name): compat\n\
                         let c = reg.counter(\"dbhist_legacy\");";
        scan_metrics("crates/core/src/plan.rs", next_line, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn snapshot_io_flags_raw_reads_outside_persist() {
        let src = "fn load(p: &Path) -> Vec<u8> { std::fs::read(p).unwrap_or_default() }\n";
        let hits = scan("crates/core/src/snapshot.rs", src);
        assert!(hits.iter().any(|v| v.rule == "snapshot-io" && v.line == 1), "{hits:?}");

        // The persistence crate owns the validating read path.
        assert!(
            scan("crates/persist/src/lib.rs", src).iter().all(|v| v.rule != "snapshot-io"),
            "persist crate must stay exempt"
        );

        // Directory walks and text reads are not snapshot ingestion.
        let benign = "let e = std::fs::read_dir(p);\nlet s = std::fs::read_to_string(p);\n";
        assert!(scan("crates/core/src/build.rs", benign).is_empty());

        // Each banned entry point fires.
        for line in ["let f = File::open(p);", "let mut v = Vec::new(); f.read_to_end(&mut v);"] {
            let hits = scan("crates/core/src/maintenance.rs", line);
            assert!(hits.iter().any(|v| v.rule == "snapshot-io"), "{line}");
        }

        // The escape hatch works.
        let allowed = "let b = std::fs::read(p); // lint:allow(snapshot-io): fixture loader\n";
        assert!(scan("crates/core/src/snapshot.rs", allowed).is_empty());
    }

    #[test]
    fn nested_block_comments_unwind_correctly() {
        let src = "/* outer /* inner */ still comment .unwrap() */\n\
                   real.unwrap();\n";
        let v = scan("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 2);
    }

    #[test]
    fn multiline_string_state_carries_over() {
        let src = "let s = \"line one panic!\n\
                   line two .unwrap()\";\n\
                   after.unwrap();\n";
        let v = scan("crates/core/src/lib.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 3);
    }
}
