//! Error types for model construction.

use std::fmt;

use dbhist_distribution::AttrId;

/// Errors produced by this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A graph operation referenced a vertex outside `0..n`.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: AttrId,
        /// The graph's vertex count.
        n: usize,
    },
    /// A self-loop was requested; Markov graphs are simple graphs.
    SelfLoop {
        /// The vertex the loop was requested on.
        vertex: AttrId,
    },
    /// The graph is not chordal, so it does not correspond to a
    /// decomposable model.
    NotChordal,
    /// Model selection was configured with an invalid parameter.
    InvalidConfig {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// Externally supplied structure (e.g. a deserialized junction tree)
    /// violates a model invariant.
    InvalidStructure {
        /// Human-readable description of the violated invariant.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::VertexOutOfRange { vertex, n } => {
                write!(f, "vertex {vertex} out of range for a {n}-vertex graph")
            }
            Self::SelfLoop { vertex } => write!(f, "self-loop on vertex {vertex} not allowed"),
            Self::NotChordal => write!(f, "graph is not chordal (model not decomposable)"),
            Self::InvalidConfig { reason } => write!(f, "invalid selection config: {reason}"),
            Self::InvalidStructure { reason } => {
                write!(f, "invalid model structure: {reason}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(ModelError::NotChordal.to_string().contains("chordal"));
        assert!(ModelError::SelfLoop { vertex: 2 }.to_string().contains('2'));
        assert!(ModelError::VertexOutOfRange { vertex: 5, n: 3 }.to_string().contains("3-vertex"));
        assert!(ModelError::InvalidConfig { reason: "bad".into() }.to_string().contains("bad"));
        assert!(ModelError::InvalidStructure { reason: "dangling edge".into() }
            .to_string()
            .contains("dangling edge"));
    }
}
