//! Junction (clique) trees for chordal graphs (paper §2.2).
//!
//! A junction tree `J(M)` is a tree over the maximal cliques of a chordal
//! graph satisfying the *clique-intersection property*: for every pair of
//! cliques `C_i`, `C_j`, the set `C_i ∩ C_j` is contained in every clique
//! on the tree path between them. The closed-form frequency estimates of a
//! decomposable model are read directly off the tree (paper Eq. 2):
//!
//! ```text
//! f̂ = Π_cliques f_C  /  Π_tree-edges f_{C_i ∩ C_j}
//! ```
//!
//! Construction uses the standard maximum-weight spanning tree over the
//! clique graph with edge weight `|C_i ∩ C_j|`; for disconnected chordal
//! graphs the spanning forest is completed into a tree with empty
//! separators (intersections across components are empty, so the
//! clique-intersection property is preserved).

use std::sync::OnceLock;

use dbhist_distribution::AttrSet;

use crate::chordal::{is_chordal, maximal_cliques};
use crate::error::ModelError;
use crate::graph::MarkovGraph;

/// An edge of a junction tree: two clique indices and their separator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JunctionEdge {
    /// Index of the first endpoint clique.
    pub a: usize,
    /// Index of the second endpoint clique.
    pub b: usize,
    /// The separator `C_a ∩ C_b` (possibly empty across components).
    pub separator: AttrSet,
}

/// A junction tree over the maximal cliques of a chordal graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct JunctionTree {
    cliques: Vec<AttrSet>,
    edges: Vec<JunctionEdge>,
    /// `adjacency[i]` lists edge indices incident to clique `i`.
    adjacency: Vec<Vec<usize>>,
}

impl JunctionTree {
    /// Builds a junction tree for `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotChordal`] if the graph has no junction tree.
    pub fn build(graph: &MarkovGraph) -> Result<Self, ModelError> {
        if !is_chordal(graph) {
            return Err(ModelError::NotChordal);
        }
        let cliques = maximal_cliques(graph);
        Ok(Self::from_cliques(cliques))
    }

    /// Builds a junction tree directly from a set of maximal cliques of a
    /// chordal graph (maximum-weight spanning tree by separator size,
    /// Kruskal with union–find).
    #[must_use]
    pub fn from_cliques(cliques: Vec<AttrSet>) -> Self {
        let k = cliques.len();
        // All candidate edges, heaviest separators first; ties broken by
        // (a, b) for determinism.
        let mut candidates: Vec<(usize, usize, usize)> = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                let w = cliques[a].intersection(&cliques[b]).len();
                candidates.push((w, a, b));
            }
        }
        candidates.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)).then(x.2.cmp(&y.2)));

        let mut parent: Vec<usize> = (0..k).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }

        let mut edges = Vec::with_capacity(k.saturating_sub(1));
        let mut adjacency = vec![Vec::new(); k];
        for (_, a, b) in candidates {
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
                let separator = cliques[a].intersection(&cliques[b]);
                adjacency[a].push(edges.len());
                adjacency[b].push(edges.len());
                edges.push(JunctionEdge { a, b, separator });
            }
        }
        let tree = Self { cliques, edges, adjacency };
        #[cfg(debug_assertions)]
        if let Err(violation) = tree.validate() {
            panic!("junction tree invariant violated: {violation}"); // lint:allow(panic-surface): debug-only invariant validator
        }
        tree
    }

    /// Reassembles a junction tree from externally supplied cliques and
    /// tree edges (clique-index pairs), e.g. decoded from a snapshot.
    /// Separators and the adjacency table are recomputed — they are
    /// derived data — and the full invariant suite ([`Self::validate`],
    /// including the clique-intersection property) runs unconditionally,
    /// so hostile input cannot produce an inconsistent tree.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStructure`] when the edges reference
    /// out-of-range cliques or the result violates any junction-tree
    /// invariant.
    pub fn from_parts(
        cliques: Vec<AttrSet>,
        edge_pairs: Vec<(usize, usize)>,
    ) -> Result<Self, ModelError> {
        let k = cliques.len();
        let mut edges = Vec::with_capacity(edge_pairs.len());
        let mut adjacency = vec![Vec::new(); k];
        for (a, b) in edge_pairs {
            if a >= k || b >= k || a == b {
                return Err(ModelError::InvalidStructure {
                    reason: format!("edge ({a}, {b}) invalid for {k} cliques"),
                });
            }
            let separator = cliques[a].intersection(&cliques[b]);
            adjacency[a].push(edges.len());
            adjacency[b].push(edges.len());
            edges.push(JunctionEdge { a, b, separator });
        }
        if edges.len() != k.saturating_sub(1) {
            // `from_cliques` always emits a spanning tree; anything else
            // was not produced by this crate.
            return Err(ModelError::InvalidStructure {
                reason: format!("{} edges cannot span {k} cliques", edges.len()),
            });
        }
        let tree = Self { cliques, edges, adjacency };
        tree.validate().map_err(|reason| ModelError::InvalidStructure { reason })?;
        Ok(tree)
    }

    /// Structural invariant check (see DESIGN.md, "Invariants & lint
    /// policy"): every edge must join two distinct in-range cliques with a
    /// separator equal to their intersection, the adjacency table must
    /// mirror the edge list, the edge count must stay below the clique
    /// count (spanning forest), and the clique-intersection property must
    /// hold. Run automatically after construction in debug builds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        let k = self.cliques.len();
        if self.adjacency.len() != k {
            return Err(format!(
                "adjacency table has {} rows for {k} cliques",
                self.adjacency.len()
            ));
        }
        if k > 0 && self.edges.len() >= k {
            return Err(format!(
                "{} edges over {k} cliques cannot form a forest",
                self.edges.len()
            ));
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.a >= k || e.b >= k || e.a == e.b {
                return Err(format!("edge {i} joins invalid cliques {} and {}", e.a, e.b));
            }
            if e.separator != self.cliques[e.a].intersection(&self.cliques[e.b]) {
                return Err(format!(
                    "edge {i} separator is not the intersection of its endpoint cliques"
                ));
            }
            if !self.adjacency[e.a].contains(&i) || !self.adjacency[e.b].contains(&i) {
                return Err(format!("edge {i} missing from an endpoint's adjacency row"));
            }
        }
        if !self.satisfies_clique_intersection_property() {
            return Err("clique-intersection property violated".into());
        }
        Ok(())
    }

    /// The maximal cliques (model generators), sorted ascending.
    #[must_use]
    pub fn cliques(&self) -> &[AttrSet] {
        &self.cliques
    }

    /// The tree edges with their separators.
    #[must_use]
    pub fn edges(&self) -> &[JunctionEdge] {
        &self.edges
    }

    /// The separators of all tree edges (with multiplicity).
    pub fn separators(&self) -> impl Iterator<Item = &AttrSet> {
        self.edges.iter().map(|e| &e.separator)
    }

    /// Indices of cliques adjacent to clique `i`, paired with the
    /// connecting separator.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = (usize, &AttrSet)> {
        self.adjacency[i].iter().map(move |&e| {
            let edge = &self.edges[e];
            let other = if edge.a == i { edge.b } else { edge.a };
            (other, &edge.separator)
        })
    }

    /// Number of cliques.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// `true` if the tree has no cliques (empty model).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Verifies the clique-intersection property by brute force: for every
    /// clique pair, their intersection must be contained in every clique on
    /// the connecting tree path. Used by tests and debug assertions.
    #[must_use]
    pub fn satisfies_clique_intersection_property(&self) -> bool {
        let k = self.cliques.len();
        for a in 0..k {
            for b in (a + 1)..k {
                let inter = self.cliques[a].intersection(&self.cliques[b]);
                if inter.is_empty() {
                    continue;
                }
                for c in self.path(a, b) {
                    if !inter.is_subset(&self.cliques[c]) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The clique indices on the tree path from `a` to `b`, inclusive.
    #[must_use]
    pub fn path(&self, a: usize, b: usize) -> Vec<usize> {
        // DFS from a recording parent pointers.
        let mut parent = vec![usize::MAX; self.cliques.len()];
        let mut stack = vec![a];
        parent[a] = a;
        while let Some(c) = stack.pop() {
            if c == b {
                break;
            }
            for (next, _) in self.neighbors(c) {
                if parent[next] == usize::MAX {
                    parent[next] = c;
                    stack.push(next);
                }
            }
        }
        if parent[b] == usize::MAX {
            return Vec::new(); // disconnected (cannot happen for a tree)
        }
        let mut path = vec![b];
        let mut cur = b;
        while cur != a {
            cur = parent[cur];
            path.push(cur);
        }
        path.reverse();
        path
    }

    /// Rooted view: `cover(C_i)` for every clique, where `cover` is the
    /// union of the clique with all its descendants' cliques when the tree
    /// is rooted at `root` (paper §3.3.1). Also returns each node's parent
    /// (`usize::MAX` for the root) and children lists.
    #[must_use]
    pub fn rooted(&self, root: usize) -> RootedJunctionTree {
        let k = self.cliques.len();
        let mut parent = vec![usize::MAX; k];
        let mut order = Vec::with_capacity(k);
        let mut stack = vec![root];
        let mut seen = vec![false; k];
        seen[root] = true;
        while let Some(c) = stack.pop() {
            order.push(c);
            for (next, _) in self.neighbors(c) {
                if !seen[next] {
                    seen[next] = true;
                    parent[next] = c;
                    stack.push(next);
                }
            }
        }
        let mut children = vec![Vec::new(); k];
        for (c, &p) in parent.iter().enumerate() {
            if p != usize::MAX {
                children[p].push(c);
            }
        }
        // Bottom-up accumulation of covers.
        let mut cover: Vec<AttrSet> = self.cliques.clone();
        for &c in order.iter().rev() {
            let mut acc = cover[c].clone();
            for &ch in &children[c] {
                acc.union_with(&cover[ch]);
            }
            cover[c] = acc;
        }
        RootedJunctionTree { root, parent, children, cover }
    }

    /// A lazily-populated cache of [`RootedJunctionTree`] views, one per
    /// candidate root.
    ///
    /// `ComputeMarginal` roots the tree at the clique best overlapping the
    /// query, so a steady-state query workload re-derives the same handful
    /// of rooted views endlessly. Hoist the returned cache next to the
    /// tree (the synopsis layer stores one per synopsis) and fetch views
    /// through [`RootedViews::get`]; each root is computed at most once
    /// over the cache's lifetime.
    #[must_use]
    pub fn rooted_views(&self) -> RootedViews {
        RootedViews { views: std::iter::repeat_with(OnceLock::new).take(self.len()).collect() }
    }

    /// The model-notation string, e.g. `"[012][013][04]"` for the paper's
    /// Fig. 1(b) example.
    #[must_use]
    pub fn notation(&self) -> String {
        let mut s = String::new();
        for c in &self.cliques {
            s.push('[');
            for (i, a) in c.iter().enumerate() {
                if i > 0 {
                    s.push(' ');
                }
                s.push_str(&a.to_string());
            }
            s.push(']');
        }
        s
    }
}

/// Cached rooted views of one [`JunctionTree`] (see
/// [`JunctionTree::rooted_views`]).
///
/// The cache is interior-mutable (`OnceLock` per root), so shared
/// references can populate it concurrently; cloning clones whatever has
/// been computed so far.
#[derive(Debug, Clone, Default)]
pub struct RootedViews {
    views: Vec<OnceLock<RootedJunctionTree>>,
}

impl RootedViews {
    /// The rooted view of `tree` at clique `root`, computed on first
    /// access and cached thereafter.
    ///
    /// `tree` must be the tree this cache was created from (same clique
    /// count and structure) — pairing it with a different tree yields
    /// views of the wrong tree.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range for the originating tree.
    pub fn get(&self, tree: &JunctionTree, root: usize) -> &RootedJunctionTree {
        debug_assert_eq!(self.views.len(), tree.len(), "RootedViews paired with a foreign tree");
        self.views[root].get_or_init(|| tree.rooted(root))
    }

    /// Number of views already materialized (for tests and diagnostics).
    #[must_use]
    pub fn computed(&self) -> usize {
        self.views.iter().filter(|v| v.get().is_some()).count()
    }
}

/// A rooted view of a junction tree: parents, children, and cover sets
/// (paper §3.3.1) used by the `ComputeMarginal` algorithm.
#[derive(Debug, Clone)]
pub struct RootedJunctionTree {
    /// Index of the root clique.
    pub root: usize,
    /// `parent[i]` is `i`'s parent clique index, `usize::MAX` for the root.
    pub parent: Vec<usize>,
    /// `children[i]` lists `i`'s child clique indices.
    pub children: Vec<Vec<usize>>,
    /// `cover[i]` = union of clique `i` and all cliques in its subtree.
    pub cover: Vec<AttrSet>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::AttrId;

    fn set(ids: &[AttrId]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    fn paper_example() -> MarkovGraph {
        // Fig. 1(b): [123][124][15] shifted to zero-based [012][013][04].
        MarkovGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn rejects_non_chordal() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        assert_eq!(JunctionTree::build(&g), Err(ModelError::NotChordal));
    }

    #[test]
    fn paper_example_tree() {
        let jt = JunctionTree::build(&paper_example()).unwrap();
        assert_eq!(jt.len(), 3);
        assert_eq!(jt.cliques(), &[set(&[0, 1, 2]), set(&[0, 1, 3]), set(&[0, 4])]);
        assert_eq!(jt.edges().len(), 2);
        assert!(jt.satisfies_clique_intersection_property());
        // Separators must be {0,1} and {0} (paper Fig. 1(c)).
        let mut seps: Vec<AttrSet> = jt.separators().cloned().collect();
        seps.sort();
        assert_eq!(seps, vec![set(&[0]), set(&[0, 1])]);
        assert_eq!(jt.notation(), "[0 1 2][0 1 3][0 4]");
    }

    #[test]
    fn disconnected_graph_gets_empty_separators() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let jt = JunctionTree::build(&g).unwrap();
        assert_eq!(jt.len(), 2);
        assert_eq!(jt.edges().len(), 1);
        assert!(jt.edges()[0].separator.is_empty());
        assert!(jt.satisfies_clique_intersection_property());
    }

    #[test]
    fn full_independence_tree() {
        let jt = JunctionTree::build(&MarkovGraph::empty(4)).unwrap();
        assert_eq!(jt.len(), 4);
        assert_eq!(jt.edges().len(), 3);
        assert!(jt.separators().all(AttrSet::is_empty));
    }

    #[test]
    fn path_endpoints_and_interior() {
        let jt = JunctionTree::build(&paper_example()).unwrap();
        // Cliques: 0={0,1,2}, 1={0,1,3}, 2={0,4}.
        let p = jt.path(0, 0);
        assert_eq!(p, vec![0]);
        for a in 0..3 {
            for b in 0..3 {
                let p = jt.path(a, b);
                assert_eq!(*p.first().unwrap(), a);
                assert_eq!(*p.last().unwrap(), b);
            }
        }
    }

    #[test]
    fn rooted_covers() {
        let jt = JunctionTree::build(&paper_example()).unwrap();
        let rooted = jt.rooted(0);
        assert_eq!(rooted.root, 0);
        assert_eq!(rooted.parent[0], usize::MAX);
        // The root's cover is all attributes.
        assert_eq!(rooted.cover[0], set(&[0, 1, 2, 3, 4]));
        // Every non-root cover is a subset of its parent's cover.
        for i in 0..jt.len() {
            if rooted.parent[i] != usize::MAX {
                assert!(rooted.cover[i].is_subset(&rooted.cover[rooted.parent[i]]));
            }
        }
        // Children lists are consistent with parents.
        for i in 0..jt.len() {
            for &c in &rooted.children[i] {
                assert_eq!(rooted.parent[c], i);
            }
        }
    }

    #[test]
    fn rooted_views_cache_matches_direct_rooting() {
        let jt = JunctionTree::build(&paper_example()).unwrap();
        let views = jt.rooted_views();
        assert_eq!(views.computed(), 0);
        for root in 0..jt.len() {
            let cached = views.get(&jt, root);
            let direct = jt.rooted(root);
            assert_eq!(cached.root, direct.root);
            assert_eq!(cached.parent, direct.parent);
            assert_eq!(cached.children, direct.children);
            assert_eq!(cached.cover, direct.cover);
        }
        assert_eq!(views.computed(), jt.len());
        // Repeated access returns the same cached view (same address).
        let a: *const RootedJunctionTree = views.get(&jt, 1);
        let b: *const RootedJunctionTree = views.get(&jt, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn spanning_tree_prefers_heavy_separators() {
        // Chain cliques {0,1,2},{1,2,3},{3,4}: MST must connect {012}-{123}
        // (weight 2) and {123}-{34} (weight 1), never {012}-{34} (weight 0).
        let g =
            MarkovGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]).unwrap();
        let jt = JunctionTree::build(&g).unwrap();
        assert!(jt.satisfies_clique_intersection_property());
        let mut seps: Vec<usize> = jt.separators().map(AttrSet::len).collect();
        seps.sort_unstable();
        assert_eq!(seps, vec![1, 2]);
    }
}
