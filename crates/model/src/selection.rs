//! Forward selection of decomposable models (paper §3.1).
//!
//! Selection starts from the full-independence model and greedily adds the
//! interaction edge with the best score until no candidate passes the
//! statistical-significance threshold `θ`, the clique-size bound `k_max`
//! would be violated, or an edge budget is exhausted.
//!
//! Two candidate-scoring *heuristics* (paper §4.1):
//!
//! * **DB₁** — pick the edge whose divergence improvement has the highest
//!   statistical significance (G² likelihood-ratio test against χ²).
//! * **DB₂** — pick the edge maximizing improvement per unit increase of
//!   the total model state space (Σ over cliques of the product of the
//!   member domain sizes), accounting for the space the clique histograms
//!   will later need.
//!
//! Two *algorithms* with identical outputs but different costs:
//!
//! * [`SelectionAlgorithm::Naive`] — paper's first algorithm: try every
//!   non-edge, re-test chordality of the augmented graph, rebuild the
//!   junction tree, and re-evaluate the full model divergence.
//! * [`SelectionAlgorithm::Efficient`] — paper's novel algorithm: only
//!   guaranteed-addable edges are considered and each is scored *locally*
//!   as the conditional mutual information `I(u; v | S)` over the unique
//!   minimal separator `S`, requiring just four (memoized) marginal
//!   entropies per candidate instead of a full model evaluation.

use dbhist_distribution::fxhash::FxHashSet;
use dbhist_distribution::{measures, AttrId, AttrSet, Relation, SyncEntropyCache};
use rayon::prelude::*;

use crate::chordal::addable_edge_separator;
use crate::decomposable::DecomposableModel;
use crate::error::ModelError;
use crate::graph::MarkovGraph;
use crate::junction::JunctionTree;
use crate::stats::SignificanceTest;

/// Saturating widening for telemetry counter mirroring.
fn to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// Which edge-scoring heuristic drives the greedy choice (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EdgeHeuristic {
    /// Highest statistical significance of the divergence improvement.
    Db1,
    /// Highest improvement per unit of added model state space. The paper
    /// finds this variant best under tight storage budgets, and uses it as
    /// the flagship configuration.
    #[default]
    Db2,
}

/// Which search algorithm enumerates and scores candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionAlgorithm {
    /// Arbitrary-edge trial with chordality re-tests and full model
    /// re-evaluation per candidate.
    Naive,
    /// Separator-based local scoring; constant entropy work per edge.
    #[default]
    Efficient,
}

/// Default work-size floor for parallel candidate scoring (see
/// [`SelectionConfig::parallel_candidate_floor`]): rounds with fewer
/// addable edges run serially regardless of the configured thread count.
pub const MIN_PARALLEL_CANDIDATES: usize = 32;

/// Configuration for forward selection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionConfig {
    /// Upper bound on generator (clique) size; the paper uses 2 in all
    /// headline experiments ("including 3-dimensional clique histograms
    /// decreases accuracy considerably").
    pub k_max: usize,
    /// Statistical-significance threshold `θ`; the paper uses 0.90.
    pub theta: f64,
    /// Edge-scoring heuristic.
    pub heuristic: EdgeHeuristic,
    /// Search algorithm.
    pub algorithm: SelectionAlgorithm,
    /// Optional hard cap on the number of edges added (used by the Fig. 6
    /// model-complexity sweep).
    pub max_edges: Option<usize>,
    /// Worker threads for per-round candidate scoring. `1` (the default)
    /// runs the exact serial path; any larger count scores candidates
    /// concurrently with bit-identical results (scores are independent
    /// given the current model, entropies are pure functions of the
    /// relation, and the greedy reduction stays serial with the
    /// deterministic edge-id tie-break).
    pub threads: usize,
    /// Work-size floor for parallel candidate scoring: rounds with fewer
    /// addable edges than this take the serial path even when
    /// `threads > 1`. Scoring one candidate costs a few entropy lookups,
    /// so small rounds lose more to pool spin-up and work distribution
    /// than they gain (`BENCH_build.json` measured 0.85x at 4 threads on
    /// a 15-candidate workload before this floor existed). The path
    /// choice never affects results — both are bit-identical.
    pub parallel_candidate_floor: usize,
}

impl Default for SelectionConfig {
    fn default() -> Self {
        Self {
            k_max: 2,
            theta: 0.90,
            heuristic: EdgeHeuristic::default(),
            algorithm: SelectionAlgorithm::default(),
            max_edges: None,
            threads: 1,
            parallel_candidate_floor: MIN_PARALLEL_CANDIDATES,
        }
    }
}

impl SelectionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for `k_max < 2`, `theta`
    /// outside `[0, 1)`, or `threads == 0`.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.k_max < 2 {
            return Err(ModelError::InvalidConfig {
                reason: format!("k_max must be at least 2, got {}", self.k_max),
            });
        }
        if !(0.0..1.0).contains(&self.theta) {
            return Err(ModelError::InvalidConfig {
                reason: format!("theta must lie in [0, 1), got {}", self.theta),
            });
        }
        if self.threads == 0 {
            return Err(ModelError::InvalidConfig {
                reason: "threads must be at least 1 (1 = serial path)".to_string(),
            });
        }
        Ok(())
    }
}

/// A scored candidate edge.
#[derive(Debug, Clone)]
pub struct EdgeCandidate {
    /// The interaction edge endpoints (`u < v`).
    pub u: AttrId,
    /// Second endpoint.
    pub v: AttrId,
    /// The unique minimal `u–v` separator; the new generator is
    /// `S ∪ {u, v}`.
    pub separator: AttrSet,
    /// Divergence improvement `ΔD = I(u; v | S) ≥ 0`.
    pub improvement: f64,
    /// G² significance test of the improvement.
    pub test: SignificanceTest,
    /// Increase in total model state space caused by the addition.
    pub state_space_increase: u64,
}

impl EdgeCandidate {
    /// The heuristic's scalar score (higher is better) plus deterministic
    /// tie-breakers.
    ///
    /// With the tuple counts of real tables, the χ² CDF saturates to 1.0
    /// for every genuinely correlated pair, so DB₁ falls back to the raw
    /// divergence improvement among equally significant candidates — the
    /// behaviour the paper's Fig. 6 exhibits (DB₁ grabs the strongest
    /// interactions first regardless of their state-space price).
    fn score(&self, heuristic: EdgeHeuristic) -> (f64, f64, f64) {
        match heuristic {
            EdgeHeuristic::Db1 => (
                self.test.significance,
                self.improvement,
                self.test.g_squared / self.test.degrees_of_freedom,
            ),
            EdgeHeuristic::Db2 => {
                let space = self.state_space_increase.max(1) as f64;
                (self.improvement / space, self.improvement, -space)
            }
        }
    }
}

/// One accepted step of forward selection.
#[derive(Debug, Clone)]
pub struct SelectionStep {
    /// The accepted candidate.
    pub candidate: EdgeCandidate,
    /// Model divergence after the addition.
    pub divergence_after: f64,
    /// Snapshot of the model after the addition (used by the Fig. 6
    /// error-vs-edges sweep).
    pub model: DecomposableModel,
}

/// The outcome of a selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The final model.
    pub model: DecomposableModel,
    /// Divergence of the initial (full-independence) model.
    pub initial_divergence: f64,
    /// Every accepted step, in order.
    pub steps: Vec<SelectionStep>,
    /// Number of marginal-entropy computations performed (cache misses) —
    /// the cost metric the paper's full version optimizes.
    pub entropy_computations: usize,
    /// Number of entropy lookups answered from the memoization cache.
    pub entropy_cache_hits: usize,
    /// Largest number of scored candidates seen in any single round
    /// (reported by `BuildTrace` as the selection phase's peak fan-out).
    pub peak_candidates: usize,
}

/// Greedy forward selector over decomposable models.
#[derive(Debug)]
pub struct ForwardSelector<'a> {
    cache: SyncEntropyCache<'a>,
    config: SelectionConfig,
    graph: MarkovGraph,
    divergence: f64,
    peak_candidates: usize,
}

impl<'a> ForwardSelector<'a> {
    /// Creates a selector starting from full independence.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid; use [`SelectionConfig::validate`] to
    /// check untrusted configurations first.
    #[must_use]
    pub fn new(relation: &'a Relation, config: SelectionConfig) -> Self {
        #[allow(clippy::expect_used)]
        config.validate().expect("invalid selection config"); // lint:allow(panic-surface): documented panic contract on invalid config
        let n = relation.schema().arity();
        let cache = SyncEntropyCache::new(relation);
        let graph = MarkovGraph::empty(n);
        let divergence = Self::graph_divergence(&graph, relation, &cache);
        Self { cache, config, graph, divergence, peak_candidates: 0 }
    }

    /// Runs `op` under a worker pool sized to the configured thread count.
    fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        match rayon::ThreadPoolBuilder::new().num_threads(self.config.threads).build() {
            Ok(pool) => pool.install(op),
            Err(_) => op(),
        }
    }

    fn graph_divergence(
        graph: &MarkovGraph,
        relation: &Relation,
        cache: &SyncEntropyCache<'_>,
    ) -> f64 {
        // Selection only proposes chordality-preserving edges; a build
        // failure means the graph is unusable, so poison the score with an
        // infinite divergence instead of aborting.
        let Ok(jt) = JunctionTree::build(graph) else {
            return f64::INFINITY;
        };
        let clique_entropies: Vec<f64> = jt.cliques().iter().map(|c| cache.entropy(c)).collect();
        let sep_entropies: Vec<f64> = jt.separators().map(|s| cache.entropy(s)).collect();
        let joint = cache.entropy(&relation.schema().all_attrs());
        measures::decomposable_divergence(joint, &clique_entropies, &sep_entropies)
    }

    /// Current model divergence.
    #[must_use]
    pub fn divergence(&self) -> f64 {
        self.divergence
    }

    /// Current interaction graph.
    #[must_use]
    pub fn graph(&self) -> &MarkovGraph {
        &self.graph
    }

    /// Scores an addable candidate whose minimal separator is already
    /// known. Takes `&self` so that rounds can fan candidates out across
    /// worker threads, all reading the shared entropy cache.
    fn score_with_separator(&self, u: AttrId, v: AttrId, separator: AttrSet) -> EdgeCandidate {
        let relation = self.cache.relation();
        let schema = relation.schema();
        let n = relation.row_count() as f64;

        let improvement = match self.config.algorithm {
            SelectionAlgorithm::Efficient => {
                // Local scoring: ΔD = I(u; v | S) from four entropies.
                let h_su = self.cache.entropy(&separator.with(u));
                let h_sv = self.cache.entropy(&separator.with(v));
                let h_s = self.cache.entropy(&separator);
                let h_suv = self.cache.entropy(&separator.with(u).with(v));
                measures::conditional_mutual_information(h_su, h_sv, h_s, h_suv)
            }
            SelectionAlgorithm::Naive => {
                // Full re-evaluation of the augmented model. A candidate
                // whose edge cannot be added scores zero improvement and
                // is never picked.
                let mut augmented = self.graph.clone();
                if augmented.add_edge(u, v).is_ok() {
                    let new_d = Self::graph_divergence(&augmented, relation, &self.cache);
                    self.divergence - new_d
                } else {
                    0.0
                }
            }
        }
        .max(0.0);

        // Degrees of freedom of the added interaction:
        // (|D_u|−1)(|D_v|−1) · Π_{s ∈ S} |D_s|.
        let mut df = f64::from(schema.domain_size(u) - 1) * f64::from(schema.domain_size(v) - 1);
        for s in separator.iter() {
            df *= f64::from(schema.domain_size(s));
        }
        let test = SignificanceTest::new(n, improvement, df);

        // State-space increase: the new generator S∪{u,v} appears; the
        // cliques S∪{u} and S∪{v} disappear iff they were maximal before.
        let new_clique = separator.with(u).with(v);
        let mut increase = schema.state_space(&new_clique) as i128;
        for absorbed in [separator.with(u), separator.with(v)] {
            if self.is_maximal_clique(&absorbed) {
                increase -= schema.state_space(&absorbed) as i128;
            }
        }
        let state_space_increase = increase.max(0) as u64;

        EdgeCandidate { u, v, separator, improvement, test, state_space_increase }
    }

    /// `true` if `set` induces a complete subgraph not strictly contained
    /// in a larger one.
    fn is_maximal_clique(&self, set: &AttrSet) -> bool {
        if !self.graph.is_clique(set) {
            return false;
        }
        let n = self.graph.vertex_count() as AttrId;
        !(0..n).any(|w| !set.contains(w) && set.iter().all(|m| self.graph.has_edge(w, m)))
    }

    /// Scores every addable candidate edge under the current model.
    ///
    /// With `config.threads > 1` the candidates are scored concurrently:
    /// the entropies each score reads are pre-computed in parallel over
    /// the deterministically deduplicated subset list (so the cache-miss
    /// count matches the serial path exactly), then the scores — pure
    /// functions of cached entropies — are evaluated in parallel and
    /// returned in enumeration order. The output is bit-identical to the
    /// serial path.
    pub fn candidates(&self) -> Vec<EdgeCandidate> {
        let addable: Vec<(AttrId, AttrId, AttrSet)> = self
            .graph
            .non_edges()
            .filter_map(|(u, v)| {
                let sep = addable_edge_separator(&self.graph, u, v)?;
                (sep.len() + 2 <= self.config.k_max).then_some((u, v, sep))
            })
            .collect();
        if self.config.threads > 1 && addable.len() >= self.config.parallel_candidate_floor.max(2) {
            self.prewarm(&addable);
            self.install(|| {
                addable
                    .into_par_iter()
                    .map(|(u, v, sep)| self.score_with_separator(u, v, sep))
                    .collect()
            })
        } else {
            addable.into_iter().map(|(u, v, sep)| self.score_with_separator(u, v, sep)).collect()
        }
    }

    /// Every entropy subset this round's scoring will read, in candidate
    /// order (with duplicates).
    fn round_subsets(&self, addable: &[(AttrId, AttrId, AttrSet)]) -> Vec<AttrSet> {
        match self.config.algorithm {
            SelectionAlgorithm::Efficient => addable
                .iter()
                .flat_map(|(u, v, sep)| {
                    [sep.with(*u), sep.with(*v), sep.clone(), sep.with(*u).with(*v)]
                })
                .collect(),
            SelectionAlgorithm::Naive => {
                // Each candidate's score reads the cliques and separators
                // of its augmented junction tree (plus the joint entropy,
                // cached since construction).
                let per_candidate: Vec<Vec<AttrSet>> = self.install(|| {
                    addable
                        .par_iter()
                        .map(|(u, v, _sep)| {
                            let mut augmented = self.graph.clone();
                            if augmented.add_edge(*u, *v).is_err() {
                                return Vec::new();
                            }
                            match JunctionTree::build(&augmented) {
                                Ok(jt) => jt
                                    .cliques()
                                    .iter()
                                    .cloned()
                                    .chain(jt.separators().cloned())
                                    .collect(),
                                Err(_) => Vec::new(),
                            }
                        })
                        .collect()
                });
                per_candidate.into_iter().flatten().collect()
            }
        }
    }

    /// Computes (in parallel) and caches every entropy the round is
    /// missing. Deduplication keeps each subset computed exactly once, so
    /// [`SelectionResult::entropy_computations`] matches the serial path.
    fn prewarm(&self, addable: &[(AttrId, AttrId, AttrSet)]) {
        let mut seen = FxHashSet::default();
        let missing: Vec<AttrSet> = self
            .round_subsets(addable)
            .into_iter()
            .filter(|s| seen.insert(s.clone()) && !self.cache.contains(s))
            .collect();
        if missing.is_empty() {
            return;
        }
        let computed: Vec<f64> =
            self.install(|| missing.par_iter().map(|s| self.cache.compute(s)).collect());
        for (subset, entropy) in missing.into_iter().zip(computed) {
            self.cache.insert(subset, entropy);
        }
    }

    /// Performs one greedy step: scores all candidates, accepts the best
    /// one passing the significance threshold, and returns it. Returns
    /// `None` when selection has converged.
    pub fn step(&mut self) -> Option<SelectionStep> {
        let heuristic = self.config.heuristic;
        let candidates = self.candidates();
        self.peak_candidates = self.peak_candidates.max(candidates.len());
        let best = candidates
            .into_iter()
            .filter(|c| c.improvement > 0.0 && c.test.is_significant(self.config.theta))
            .max_by(|a, b| {
                let (sa, sb) = (a.score(heuristic), b.score(heuristic));
                sa.partial_cmp(&sb)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    // Deterministic tie-break on the edge itself.
                    .then_with(|| (b.u, b.v).cmp(&(a.u, a.v)))
            })?;
        // Candidates were enumerated from the current graph, so the edge is
        // addable and chordality-preserving; if either check disagrees,
        // stop selecting rather than abort.
        self.graph.add_edge(best.u, best.v).ok()?;
        let relation = self.cache.relation();
        self.divergence = Self::graph_divergence(&self.graph, relation, &self.cache);
        let model = DecomposableModel::new(relation.schema().clone(), self.graph.clone()).ok()?;
        Some(SelectionStep { candidate: best, divergence_after: self.divergence, model })
    }

    /// Runs selection to convergence (or `max_edges`) and returns the
    /// result, including per-step snapshots.
    #[must_use]
    pub fn run(mut self) -> SelectionResult {
        let initial_divergence = self.divergence;
        let mut steps = Vec::new();
        let mut rounds = 0usize;
        let max_edges = self.config.max_edges.unwrap_or(usize::MAX);
        while steps.len() < max_edges {
            let round = {
                let _span = dbhist_telemetry::span!("dbhist_model_selection_round_latency_us");
                self.step()
            };
            rounds += 1;
            match round {
                Some(step) => steps.push(step),
                None => break,
            }
        }
        let relation = self.cache.relation();
        let model = steps.last().map_or_else(
            || DecomposableModel::independence(relation.schema().clone()),
            |s| s.model.clone(),
        );
        let result = SelectionResult {
            model,
            initial_divergence,
            steps,
            entropy_computations: self.cache.computations(),
            entropy_cache_hits: self.cache.hits(),
            peak_candidates: self.peak_candidates,
        };
        if dbhist_telemetry::enabled() {
            let w = dbhist_telemetry::wellknown::wellknown();
            w.build_selection_rounds.add(to_u64(rounds));
            w.model_entropy_computations.add(to_u64(result.entropy_computations));
            w.model_entropy_cache_hits.add(to_u64(result.entropy_cache_hits));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::Schema;

    /// a == b, c == d (shifted), e independent.
    fn two_pair_relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 3), ("d", 3), ("e", 2)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..720u32)
            .map(|i| {
                let a = i % 4;
                let c = (i / 4) % 3;
                let e = (i / 12) % 2;
                vec![a, a, c, (c + 1) % 3, e]
            })
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn discovers_true_structure() {
        let rel = two_pair_relation();
        for algorithm in [SelectionAlgorithm::Naive, SelectionAlgorithm::Efficient] {
            for heuristic in [EdgeHeuristic::Db1, EdgeHeuristic::Db2] {
                let config = SelectionConfig { algorithm, heuristic, ..Default::default() };
                let result = ForwardSelector::new(&rel, config).run();
                let g = result.model.graph();
                assert!(g.has_edge(0, 1), "{algorithm:?}/{heuristic:?} missed a-b");
                assert!(g.has_edge(2, 3), "{algorithm:?}/{heuristic:?} missed c-d");
                assert_eq!(g.edge_count(), 2, "{algorithm:?}/{heuristic:?} overfit: {g}");
            }
        }
    }

    #[test]
    fn naive_and_efficient_agree() {
        let rel = two_pair_relation();
        let naive = ForwardSelector::new(
            &rel,
            SelectionConfig { algorithm: SelectionAlgorithm::Naive, ..Default::default() },
        )
        .run();
        let efficient = ForwardSelector::new(
            &rel,
            SelectionConfig { algorithm: SelectionAlgorithm::Efficient, ..Default::default() },
        )
        .run();
        assert_eq!(naive.model.graph(), efficient.model.graph());
        assert_eq!(naive.steps.len(), efficient.steps.len());
        for (a, b) in naive.steps.iter().zip(&efficient.steps) {
            assert_eq!((a.candidate.u, a.candidate.v), (b.candidate.u, b.candidate.v));
            assert!(
                (a.candidate.improvement - b.candidate.improvement).abs() < 1e-9,
                "local CMI must equal full divergence delta"
            );
        }
        // The efficient algorithm touches fewer marginals.
        assert!(efficient.entropy_computations <= naive.entropy_computations);
    }

    #[test]
    fn divergence_monotonically_decreases() {
        let rel = two_pair_relation();
        let result = ForwardSelector::new(
            &rel,
            SelectionConfig { theta: 0.0, max_edges: Some(6), ..Default::default() },
        )
        .run();
        let mut prev = result.initial_divergence;
        for step in &result.steps {
            assert!(step.divergence_after <= prev + 1e-9);
            prev = step.divergence_after;
        }
    }

    #[test]
    fn k_max_bounds_clique_size() {
        let rel = two_pair_relation();
        for k_max in [2usize, 3] {
            let result = ForwardSelector::new(
                &rel,
                SelectionConfig { k_max, theta: 0.0, ..Default::default() },
            )
            .run();
            assert!(result.model.max_clique_size() <= k_max);
        }
    }

    #[test]
    fn k_max_two_yields_forest() {
        // With k_max = 2 every generator has ≤ 2 attributes, so the model
        // graph is acyclic (a forest), as the paper notes (§4.1).
        let rel = two_pair_relation();
        let result = ForwardSelector::new(
            &rel,
            SelectionConfig { k_max: 2, theta: 0.0, ..Default::default() },
        )
        .run();
        let g = result.model.graph();
        assert!(g.edge_count() < rel.schema().arity());
        assert!(result.model.max_clique_size() <= 2);
    }

    #[test]
    fn max_edges_caps_steps() {
        let rel = two_pair_relation();
        let result = ForwardSelector::new(
            &rel,
            SelectionConfig { max_edges: Some(1), theta: 0.0, ..Default::default() },
        )
        .run();
        assert_eq!(result.steps.len(), 1);
        assert_eq!(result.model.edge_count(), 1);
    }

    #[test]
    fn high_theta_blocks_noise_edges() {
        // Independent uniform attributes: no edge should be significant.
        let schema = Schema::new(vec![("x", 4), ("y", 4), ("z", 4)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..64u32).map(|i| vec![i % 4, (i / 4) % 4, (i / 16) % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let result =
            ForwardSelector::new(&rel, SelectionConfig { theta: 0.90, ..Default::default() }).run();
        assert_eq!(result.model.edge_count(), 0, "{}", result.model.notation());
        assert!(result.initial_divergence.abs() < 1e-10);
    }

    #[test]
    fn config_validation() {
        assert!(SelectionConfig { k_max: 1, ..Default::default() }.validate().is_err());
        assert!(SelectionConfig { theta: 1.0, ..Default::default() }.validate().is_err());
        assert!(SelectionConfig { theta: -0.1, ..Default::default() }.validate().is_err());
        assert!(SelectionConfig { threads: 0, ..Default::default() }.validate().is_err());
        assert!(SelectionConfig::default().validate().is_ok());
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_serial() {
        let rel = two_pair_relation();
        for algorithm in [SelectionAlgorithm::Naive, SelectionAlgorithm::Efficient] {
            for heuristic in [EdgeHeuristic::Db1, EdgeHeuristic::Db2] {
                let base =
                    SelectionConfig { algorithm, heuristic, theta: 0.0, ..Default::default() };
                let serial = ForwardSelector::new(&rel, base).run();
                // Floor lowered to 2 so this small fixture actually
                // exercises the parallel scoring path.
                let parallel = ForwardSelector::new(
                    &rel,
                    SelectionConfig { threads: 4, parallel_candidate_floor: 2, ..base },
                )
                .run();
                assert_eq!(serial.model.graph(), parallel.model.graph());
                assert_eq!(serial.steps.len(), parallel.steps.len());
                for (a, b) in serial.steps.iter().zip(&parallel.steps) {
                    assert_eq!((a.candidate.u, a.candidate.v), (b.candidate.u, b.candidate.v));
                    assert_eq!(
                        a.candidate.improvement.to_bits(),
                        b.candidate.improvement.to_bits(),
                        "{algorithm:?}/{heuristic:?}: improvement differs"
                    );
                    assert_eq!(a.divergence_after.to_bits(), b.divergence_after.to_bits());
                }
                assert_eq!(
                    serial.entropy_computations, parallel.entropy_computations,
                    "{algorithm:?}/{heuristic:?}: prewarm must not duplicate entropy work"
                );
                assert_eq!(serial.peak_candidates, parallel.peak_candidates);
            }
        }
    }

    #[test]
    fn candidates_report_separators() {
        let rel = two_pair_relation();
        let mut sel = ForwardSelector::new(
            &rel,
            SelectionConfig { k_max: 3, theta: 0.0, ..Default::default() },
        );
        // DB₂ picks c-d first: I(c;d) = ln 3 per 3 units of state space
        // beats I(a;b) = ln 4 per 8 units.
        let step = sel.step().unwrap();
        assert_eq!((step.candidate.u, step.candidate.v), (2, 3));
        let cands = sel.candidates();
        assert!(cands.iter().all(|c| c.improvement >= 0.0));
        assert!(cands.iter().any(|c| c.separator.is_empty()));
    }

    #[test]
    fn steps_expose_models_for_complexity_sweep() {
        let rel = two_pair_relation();
        let result =
            ForwardSelector::new(&rel, SelectionConfig { theta: 0.0, ..Default::default() }).run();
        for (i, step) in result.steps.iter().enumerate() {
            assert_eq!(step.model.edge_count(), i + 1);
        }
    }
}
