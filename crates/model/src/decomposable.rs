//! Decomposable interaction models (paper §2.2).
//!
//! A [`DecomposableModel`] couples a chordal [`MarkovGraph`] with its
//! maximal cliques (the model *generators*) and a [`JunctionTree`]. It
//! provides the two capabilities the paper relies on:
//!
//! * **Closed-form frequency estimates** (Eq. 2): `f̂ = Π f_C / Π f_S`
//!   read off the junction tree, evaluated here against exact marginal
//!   distributions (the clique-histogram-based path lives in
//!   `dbhist-core`).
//! * **Divergence computation** via the entropy decomposition
//!   `D(f, f̂_M) = Σ E(C) − Σ E(S) − E(f)`, which needs only marginal
//!   entropies (memoized in an [`EntropyCache`]) rather than the joint.

use dbhist_distribution::{measures, AttrSet, Distribution, EntropyCache, Relation, Schema};

use crate::error::ModelError;
use crate::graph::MarkovGraph;
use crate::junction::JunctionTree;

/// A decomposable log-linear interaction model over a schema's attributes.
#[derive(Debug, Clone)]
pub struct DecomposableModel {
    schema: Schema,
    graph: MarkovGraph,
    junction: JunctionTree,
}

impl DecomposableModel {
    /// Builds a model from an interaction graph.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::NotChordal`] if `graph` is not chordal (i.e.
    /// the log-linear model it denotes is not decomposable).
    pub fn new(schema: Schema, graph: MarkovGraph) -> Result<Self, ModelError> {
        let junction = JunctionTree::build(&graph)?;
        Ok(Self { schema, graph, junction })
    }

    /// Reassembles a model from externally supplied parts (e.g. a decoded
    /// snapshot) without re-deriving structure: no chordality test, no
    /// junction-tree construction. Instead the parts are cross-checked —
    /// the junction tree must already satisfy its own invariants (callers
    /// construct it via [`JunctionTree::from_parts`], which validates),
    /// its cliques must be complete in `graph` and jointly cover every
    /// vertex, and every graph edge must lie inside some clique. Together
    /// those checks certify that the tree is a junction tree *of this
    /// graph*, which is only possible when the graph is chordal.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidStructure`] when the parts are
    /// mutually inconsistent.
    pub fn from_parts(
        schema: Schema,
        graph: MarkovGraph,
        junction: JunctionTree,
    ) -> Result<Self, ModelError> {
        if graph.vertex_count() != schema.arity() {
            return Err(ModelError::InvalidStructure {
                reason: format!(
                    "graph has {} vertices for a {}-attribute schema",
                    graph.vertex_count(),
                    schema.arity()
                ),
            });
        }
        junction.validate().map_err(|reason| ModelError::InvalidStructure { reason })?;
        let cliques = junction.cliques();
        let mut covered = AttrSet::empty();
        for clique in cliques {
            if !graph.is_clique(clique) {
                return Err(ModelError::InvalidStructure {
                    reason: format!("generator {clique} is not complete in the Markov graph"),
                });
            }
            covered.union_with(clique);
        }
        let in_range = covered.iter().all(|id| usize::from(id) < schema.arity());
        if covered.len() != schema.arity() || !in_range {
            return Err(ModelError::InvalidStructure {
                reason: "junction-tree cliques do not cover exactly the schema's attributes".into(),
            });
        }
        for (u, v) in graph.edges() {
            if !cliques.iter().any(|c| c.contains(u) && c.contains(v)) {
                return Err(ModelError::InvalidStructure {
                    reason: format!("graph edge ({u}, {v}) lies in no clique"),
                });
            }
        }
        Ok(Self { schema, graph, junction })
    }

    /// The full-independence model `[1][2]...[n]` — forward selection's
    /// starting point.
    #[must_use]
    pub fn independence(schema: Schema) -> Self {
        let graph = MarkovGraph::empty(schema.arity());
        #[allow(clippy::expect_used)]
        Self::new(schema, graph).expect("the empty graph is chordal") // lint:allow(panic-surface): the edgeless graph is trivially chordal
    }

    /// The saturated (fully-correlated) model `[12...n]`.
    #[must_use]
    pub fn saturated(schema: Schema) -> Self {
        let graph = MarkovGraph::complete(schema.arity());
        #[allow(clippy::expect_used)]
        Self::new(schema, graph).expect("the complete graph is chordal") // lint:allow(panic-surface): the complete graph is trivially chordal
    }

    /// The model's schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying Markov graph.
    #[must_use]
    pub fn graph(&self) -> &MarkovGraph {
        &self.graph
    }

    /// The junction tree over the model's generators.
    #[must_use]
    pub fn junction_tree(&self) -> &JunctionTree {
        &self.junction
    }

    /// The model generators (maximal cliques), sorted ascending.
    #[must_use]
    pub fn cliques(&self) -> &[AttrSet] {
        self.junction.cliques()
    }

    /// Number of interaction edges in the Markov graph.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The size of the largest generator (bounded by `k_max` during
    /// selection).
    #[must_use]
    pub fn max_clique_size(&self) -> usize {
        self.cliques().iter().map(AttrSet::len).max().unwrap_or(0)
    }

    /// The total model state space: `Σ_cliques Π_{a ∈ C} |D_a|` — the
    /// quantity the paper's DB₂ heuristic normalizes improvements by.
    #[must_use]
    pub fn state_space(&self) -> u64 {
        self.cliques().iter().map(|c| self.schema.state_space(c)).fold(0u64, u64::saturating_add)
    }

    /// Model notation such as `"[0 1 2][0 1 3][0 4]"`.
    #[must_use]
    pub fn notation(&self) -> String {
        self.junction.notation()
    }

    /// `true` if the model entails `A ⊥ B | C` — i.e. `C` separates `A`
    /// from `B` in the Markov graph (the global Markov property,
    /// paper §2.2).
    #[must_use]
    pub fn implies_independence(&self, a: &AttrSet, b: &AttrSet, given: &AttrSet) -> bool {
        self.graph.separates(a, b, given)
    }

    /// The model's defining conditional-independence statements, one per
    /// junction-tree edge: removing edge `(C_i, C_j)` with separator `S`
    /// splits the tree in two; the attributes on either side (minus `S`)
    /// are conditionally independent given `S`. Every other independence
    /// the model entails follows from these by the graphoid axioms.
    #[must_use]
    pub fn independence_statements(&self) -> Vec<IndependenceStatement> {
        let jt = &self.junction;
        let k = jt.len();
        let mut out = Vec::with_capacity(jt.edges().len());
        for (edge_idx, edge) in jt.edges().iter().enumerate() {
            // Attributes reachable from edge.a without crossing this edge.
            let mut side = vec![false; k];
            let mut stack = vec![edge.a];
            side[edge.a] = true;
            while let Some(c) = stack.pop() {
                for (other, _) in jt.neighbors(c) {
                    let crosses = {
                        let e = &jt.edges()[edge_idx];
                        (c == e.a && other == e.b) || (c == e.b && other == e.a)
                    };
                    if !crosses && !side[other] {
                        side[other] = true;
                        stack.push(other);
                    }
                }
            }
            let mut left = AttrSet::empty();
            let mut right = AttrSet::empty();
            for (i, clique) in jt.cliques().iter().enumerate() {
                if side[i] {
                    left = left.union(clique);
                } else {
                    right = right.union(clique);
                }
            }
            let sep = edge.separator.clone();
            out.push(IndependenceStatement {
                left: left.difference(&sep),
                right: right.difference(&sep),
                given: sep,
            });
        }
        out
    }

    /// Divergence `D(f, f̂_M)` of the model from the data, via the entropy
    /// decomposition (marginal entropies are pulled from `cache`).
    pub fn divergence(&self, cache: &mut EntropyCache<'_>) -> f64 {
        let clique_entropies: Vec<f64> = self.cliques().iter().map(|c| cache.entropy(c)).collect();
        let sep_entropies: Vec<f64> =
            self.junction.separators().map(|s| cache.entropy(s)).collect();
        let joint = cache.entropy(&self.schema.all_attrs());
        measures::decomposable_divergence(joint, &clique_entropies, &sep_entropies)
    }

    /// Materializes exact marginal distributions for every generator and
    /// every junction-tree separator of the model, returning an
    /// [`ExactEstimator`] that evaluates the closed-form estimate
    /// `f̂(i_1,...,i_n)` of Eq. 2.
    ///
    /// # Errors
    ///
    /// Propagates distribution errors if the model's attributes are not in
    /// the relation's schema (impossible when both came from the same
    /// schema).
    pub fn exact_estimator(
        &self,
        relation: &Relation,
    ) -> Result<ExactEstimator, dbhist_distribution::DistributionError> {
        let cliques: Vec<Distribution> =
            self.cliques().iter().map(|c| relation.marginal(c)).collect::<Result<_, _>>()?;
        let separators: Vec<Distribution> =
            self.junction.separators().map(|s| relation.marginal(s)).collect::<Result<_, _>>()?;
        Ok(ExactEstimator {
            attrs: self.schema.all_attrs(),
            cliques,
            separators,
            total: relation.row_count() as f64,
        })
    }
}

/// A conditional-independence statement `left ⊥ right | given` entailed
/// by a decomposable model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependenceStatement {
    /// The first attribute set.
    pub left: AttrSet,
    /// The second attribute set.
    pub right: AttrSet,
    /// The conditioning set (a junction-tree separator; possibly empty,
    /// in which case the statement is an unconditional independence).
    pub given: AttrSet,
}

impl std::fmt::Display for IndependenceStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.given.is_empty() {
            write!(f, "{} ⊥ {}", self.left, self.right)
        } else {
            write!(f, "{} ⊥ {} | {}", self.left, self.right, self.given)
        }
    }
}

/// Evaluates a decomposable model's closed-form estimates against exact
/// marginals (paper Eq. 2): `f̂ = Π f_C / Π f_S`, with the convention that
/// the estimate is `0` whenever any clique marginal is `0`.
///
/// An empty-separator factor contributes `f_∅ = N` in the denominator
/// (relative frequencies multiply across independent components).
#[derive(Debug, Clone)]
pub struct ExactEstimator {
    attrs: AttrSet,
    cliques: Vec<Distribution>,
    separators: Vec<Distribution>,
    total: f64,
}

impl ExactEstimator {
    /// The estimated frequency `f̂(key)` for a full joint key (ordered by
    /// ascending attribute id over all schema attributes).
    #[must_use]
    pub fn estimate(&self, key: &[u32]) -> f64 {
        debug_assert_eq!(key.len(), self.attrs.len());
        let mut numerator = 1.0;
        for c in &self.cliques {
            let sub = project_key(key, &self.attrs, c.attrs());
            let f = c.frequency(&sub);
            if f <= 0.0 {
                return 0.0;
            }
            numerator *= f;
        }
        let mut denominator = 1.0;
        for s in &self.separators {
            let f = if s.attrs().is_empty() {
                self.total
            } else {
                let sub = project_key(key, &self.attrs, s.attrs());
                s.frequency(&sub)
            };
            // A zero separator with nonzero clique marginals cannot occur
            // for consistent marginals; guard anyway.
            if f <= 0.0 {
                return 0.0;
            }
            denominator *= f;
        }
        numerator / denominator
    }

    /// Total mass `N` of the underlying data.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.total
    }
}

/// Extracts the sub-key of `key` (ordered by `full`) corresponding to the
/// attribute subset `sub`. Attributes missing from `full` are skipped,
/// which callers never trigger (they always pass `sub ⊆ full`).
fn project_key(key: &[u32], full: &AttrSet, sub: &AttrSet) -> Vec<u32> {
    sub.iter().filter_map(|a| full.position(a).map(|p| key[p])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbhist_distribution::measures::kl_divergence;

    /// a == b (4 values), c independent coin, d independent of everything.
    fn correlated_relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2), ("d", 3)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..240u32).map(|i| vec![i % 4, i % 4, (i / 4) % 2, (i / 8) % 3]).collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn independence_and_saturated() {
        let rel = correlated_relation();
        let ind = DecomposableModel::independence(rel.schema().clone());
        assert_eq!(ind.cliques().len(), 4);
        assert_eq!(ind.edge_count(), 0);
        assert_eq!(ind.max_clique_size(), 1);
        let sat = DecomposableModel::saturated(rel.schema().clone());
        assert_eq!(sat.cliques().len(), 1);
        assert_eq!(sat.max_clique_size(), 4);
    }

    #[test]
    fn non_chordal_rejected() {
        let schema = Schema::new(vec![("a", 2), ("b", 2), ("c", 2), ("d", 2)]).unwrap();
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        assert_eq!(DecomposableModel::new(schema, g).unwrap_err(), ModelError::NotChordal);
    }

    #[test]
    fn saturated_model_has_zero_divergence() {
        let rel = correlated_relation();
        let model = DecomposableModel::saturated(rel.schema().clone());
        let mut cache = EntropyCache::new(&rel);
        assert!(model.divergence(&mut cache).abs() < 1e-10);
    }

    #[test]
    fn correct_model_has_zero_divergence() {
        // [ab][c][d] matches the generating process exactly.
        let rel = correlated_relation();
        let g = MarkovGraph::from_edges(4, [(0, 1)]).unwrap();
        let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        let mut cache = EntropyCache::new(&rel);
        assert!(model.divergence(&mut cache).abs() < 1e-10);
    }

    #[test]
    fn independence_model_divergence_positive() {
        let rel = correlated_relation();
        let model = DecomposableModel::independence(rel.schema().clone());
        let mut cache = EntropyCache::new(&rel);
        // a == b uniformly over 4 values: I(a;b) = ln 4.
        let d = model.divergence(&mut cache);
        assert!((d - (4.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn entropy_divergence_matches_direct_kl() {
        let rel = correlated_relation();
        for edges in [vec![], vec![(0u16, 1u16)], vec![(0, 1), (1, 2)], vec![(0, 1), (2, 3)]] {
            let g = MarkovGraph::from_edges(4, edges).unwrap();
            let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
            let mut cache = EntropyCache::new(&rel);
            let via_entropy = model.divergence(&mut cache);
            let est = model.exact_estimator(&rel).unwrap();
            let joint = rel.distribution();
            let direct = kl_divergence(&joint, |key| est.estimate(key));
            assert!(
                (via_entropy - direct).abs() < 1e-9,
                "model {}: {via_entropy} vs {direct}",
                model.notation()
            );
        }
    }

    #[test]
    fn exact_estimates_sum_to_total() {
        // For any decomposable model, Σ f̂ over the full state space = N.
        let rel = correlated_relation();
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        let est = model.exact_estimator(&rel).unwrap();
        let mut sum = 0.0;
        for a in 0..4u32 {
            for b in 0..4u32 {
                for c in 0..2u32 {
                    for d in 0..3u32 {
                        sum += est.estimate(&[a, b, c, d]);
                    }
                }
            }
        }
        assert!((sum - 240.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn paper_example_estimate_formula() {
        // Model [01][02] over 3 attrs: conditional independence of 1 and 2
        // given 0; f̂(i,j,k) = f01(i,j)·f02(i,k)/f0(i) (paper §2.2).
        let schema = Schema::new(vec![("x", 3), ("y", 3), ("z", 3)]).unwrap();
        let rows: Vec<Vec<u32>> =
            (0..270u32).map(|i| vec![i % 3, (i / 3) % 3, (i / 9) % 3]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let g = MarkovGraph::from_edges(3, [(0, 1), (0, 2)]).unwrap();
        let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        let est = model.exact_estimator(&rel).unwrap();

        let f01 = rel.marginal(&AttrSet::from_ids([0, 1])).unwrap();
        let f02 = rel.marginal(&AttrSet::from_ids([0, 2])).unwrap();
        let f0 = rel.marginal(&AttrSet::singleton(0)).unwrap();
        for i in 0..3u32 {
            for j in 0..3u32 {
                for k in 0..3u32 {
                    let expect =
                        f01.frequency(&[i, j]) * f02.frequency(&[i, k]) / f0.frequency(&[i]);
                    assert!((est.estimate(&[i, j, k]) - expect).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn state_space_accounting() {
        let rel = correlated_relation();
        let ind = DecomposableModel::independence(rel.schema().clone());
        assert_eq!(ind.state_space(), 4 + 4 + 2 + 3);
        let g = MarkovGraph::from_edges(4, [(0, 1)]).unwrap();
        let m = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        assert_eq!(m.state_space(), 16 + 2 + 3);
    }

    #[test]
    fn independence_statements_match_paper_example() {
        // Fig. 1(b): [012][013][04] (zero-based).
        let schema = Schema::new(vec![("a", 2), ("b", 2), ("c", 2), ("d", 2), ("e", 2)]).unwrap();
        let g =
            MarkovGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]).unwrap();
        let model = DecomposableModel::new(schema, g).unwrap();
        let statements = model.independence_statements();
        assert_eq!(statements.len(), 2, "one statement per junction edge");
        // Each statement must be entailed by the graph itself.
        for s in &statements {
            assert!(model.implies_independence(&s.left, &s.right, &s.given), "{s}");
            assert!(s.left.is_disjoint(&s.right));
            assert!(s.left.is_disjoint(&s.given));
        }
        // The paper's two reads: {2} ⊥ {3} | {0,1} and {4} ⊥ {1,2,3} | {0}.
        assert!(model.implies_independence(
            &AttrSet::singleton(2),
            &AttrSet::singleton(3),
            &AttrSet::from_ids([0, 1])
        ));
        assert!(model.implies_independence(
            &AttrSet::singleton(4),
            &AttrSet::from_ids([1, 2, 3]),
            &AttrSet::singleton(0)
        ));
        // And a non-independence.
        assert!(!model.implies_independence(
            &AttrSet::singleton(2),
            &AttrSet::singleton(3),
            &AttrSet::singleton(0)
        ));
    }

    #[test]
    fn independence_statements_cover_components() {
        // Disconnected model: the cross-component statement has an empty
        // conditioning set (unconditional independence).
        let schema = Schema::new(vec![("a", 2), ("b", 2), ("c", 2)]).unwrap();
        let g = MarkovGraph::from_edges(3, [(0, 1)]).unwrap();
        let model = DecomposableModel::new(schema, g).unwrap();
        let statements = model.independence_statements();
        assert_eq!(statements.len(), 1);
        assert!(statements[0].given.is_empty());
        assert_eq!(statements[0].to_string(), "{0,1} ⊥ {2}");
    }

    #[test]
    fn estimate_zero_outside_support() {
        let rel = correlated_relation();
        let g = MarkovGraph::from_edges(4, [(0, 1)]).unwrap();
        let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        let est = model.exact_estimator(&rel).unwrap();
        // (a=0, b=1) never occurs.
        assert_eq!(est.estimate(&[0, 1, 0, 0]), 0.0);
    }
}
