//! Iterative Proportional Fitting for general hierarchical models
//! (paper §2.2).
//!
//! Hierarchical log-linear models that are *not* decomposable — the
//! paper's example is `[12][23][13]`, the smallest non-interpretable
//! model — admit no closed-form frequency estimates. Fitting them
//! requires IPF: start from a uniform table and cyclically rescale it so
//! each generator's marginal matches the data, until convergence to the
//! maximum-entropy distribution satisfying the marginal constraints.
//!
//! The paper cites IPF's cost (every estimate requires materializing the
//! *full* joint) as a core reason to restrict DB histograms to
//! decomposable models. This module makes that argument concrete: it
//! implements IPF over dense tables, and the tests verify both classical
//! properties — for decomposable generators IPF reproduces the closed-form
//! product estimates, and for non-decomposable ones it converges to a
//! table matching all prescribed marginals.

use dbhist_distribution::{AttrId, AttrSet, Distribution, Relation, Schema};

use crate::error::ModelError;

/// Convergence report of an IPF run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IpfReport {
    /// Number of full cycles over the generators performed.
    pub cycles: usize,
    /// The final maximum absolute marginal discrepancy.
    pub max_discrepancy: f64,
    /// Whether the tolerance was reached before the cycle cap.
    pub converged: bool,
}

/// A dense fitted joint table produced by IPF.
#[derive(Debug, Clone)]
pub struct FittedJoint {
    schema: Schema,
    dims: Vec<usize>,
    values: Vec<f64>,
    report: IpfReport,
}

impl FittedJoint {
    /// The convergence report.
    #[must_use]
    pub fn report(&self) -> IpfReport {
        self.report
    }

    /// The fitted frequency of a full value combination.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not match the schema arity or domains.
    #[must_use]
    pub fn frequency(&self, key: &[u32]) -> f64 {
        self.values[self.flat_index(key)]
    }

    fn flat_index(&self, key: &[u32]) -> usize {
        assert_eq!(key.len(), self.dims.len(), "key arity mismatch");
        let mut idx = 0usize;
        for (p, (&v, &d)) in key.iter().zip(&self.dims).enumerate() {
            assert!((v as usize) < d, "value {v} outside domain of attribute {p}");
            idx = idx * d + v as usize;
        }
        idx
    }

    /// Total fitted mass.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// The fitted marginal over `attrs`, as a sparse [`Distribution`].
    ///
    /// # Errors
    ///
    /// Propagates invalid attribute sets.
    pub fn marginal(
        &self,
        attrs: &AttrSet,
    ) -> Result<Distribution, dbhist_distribution::DistributionError> {
        let mut out = Distribution::empty(self.schema.clone(), attrs.clone())?;
        let positions: Vec<usize> = attrs.iter().map(usize::from).collect();
        let mut key = vec![0u32; self.dims.len()];
        let mut sub = vec![0u32; positions.len()];
        for (flat, &v) in self.values.iter().enumerate() {
            // lint:allow-next-line(float-cmp): exact-zero cell short-circuit
            if v == 0.0 {
                continue;
            }
            // Decode the flat index.
            let mut rem = flat;
            for p in (0..self.dims.len()).rev() {
                key[p] = (rem % self.dims[p]) as u32;
                rem /= self.dims[p];
            }
            for (s, &p) in sub.iter_mut().zip(&positions) {
                *s = key[p];
            }
            out.add(&sub, v);
        }
        Ok(out)
    }
}

/// Runs IPF for the hierarchical model with the given `generators` against
/// the marginals of `relation`, over a dense table of the full state
/// space.
///
/// # Errors
///
/// Returns [`ModelError::InvalidConfig`] when there are no generators,
/// when a generator mentions an unknown attribute, or when the full state
/// space exceeds `max_cells` (the guard that makes the paper's
/// dimensionality argument unmissable: the table is exponential in the
/// arity).
pub fn iterative_proportional_fit(
    relation: &Relation,
    generators: &[AttrSet],
    tolerance: f64,
    max_cycles: usize,
    max_cells: usize,
) -> Result<FittedJoint, ModelError> {
    let schema = relation.schema().clone();
    if generators.is_empty() {
        return Err(ModelError::InvalidConfig {
            reason: "IPF requires at least one generator".into(),
        });
    }
    for g in generators {
        for a in g.iter() {
            if usize::from(a) >= schema.arity() {
                return Err(ModelError::InvalidConfig {
                    reason: format!("generator attribute {a} not in the schema"),
                });
            }
        }
    }
    let dims: Vec<usize> =
        (0..schema.arity()).map(|a| schema.domain_size(a as AttrId) as usize).collect();
    let cells: usize = dims.iter().product();
    if cells > max_cells {
        return Err(ModelError::InvalidConfig {
            reason: format!(
                "full joint has {cells} cells, exceeding the {max_cells}-cell cap — \
                 this is exactly the blow-up decomposable models avoid"
            ),
        });
    }

    let n = relation.row_count() as f64;
    // Start from the uniform table with the right total.
    let mut table = vec![n / cells as f64; cells];

    // Pre-compute target marginals and per-generator cell grouping info.
    struct Target {
        positions: Vec<usize>,
        group_dims: Vec<usize>,
        desired: Vec<f64>,
    }
    let mut targets = Vec::with_capacity(generators.len());
    let strides_of = |dims: &[usize]| -> Vec<usize> {
        let mut s = vec![1usize; dims.len()];
        for p in (0..dims.len().saturating_sub(1)).rev() {
            s[p] = s[p + 1] * dims[p + 1];
        }
        s
    };
    let full_strides = strides_of(&dims);
    for g in generators {
        let positions: Vec<usize> = g.iter().map(usize::from).collect();
        let group_dims: Vec<usize> = positions.iter().map(|&p| dims[p]).collect();
        let group_cells: usize = group_dims.iter().product();
        let data = relation
            .marginal(g)
            .map_err(|e| ModelError::InvalidConfig { reason: e.to_string() })?;
        let group_strides = strides_of(&group_dims);
        let mut desired = vec![0.0; group_cells];
        for (key, f) in data.iter() {
            let mut idx = 0usize;
            for (&v, &s) in key.iter().zip(&group_strides) {
                idx += v as usize * s;
            }
            desired[idx] = f;
        }
        targets.push(Target { positions, group_dims, desired });
    }

    let group_index = |target: &Target, flat: usize, dims: &[usize], full_strides: &[usize]| {
        let mut idx = 0usize;
        for (k, &p) in target.positions.iter().enumerate() {
            let v = (flat / full_strides[p]) % dims[p];
            idx = idx * target.group_dims[k] + v;
        }
        idx
    };

    let mut cycles = 0;
    let mut max_disc = f64::INFINITY;
    while cycles < max_cycles {
        cycles += 1;
        for target in &targets {
            // Current marginal of the working table for this generator.
            let group_cells: usize = target.group_dims.iter().product();
            let mut current = vec![0.0; group_cells];
            for (flat, &v) in table.iter().enumerate() {
                current[group_index(target, flat, &dims, &full_strides)] += v;
            }
            // Rescale every cell by desired/current.
            for (flat, v) in table.iter_mut().enumerate() {
                let g = group_index(target, flat, &dims, &full_strides);
                *v = if current[g] > 0.0 { *v * target.desired[g] / current[g] } else { 0.0 };
            }
        }
        // Convergence: all marginals within tolerance.
        max_disc = 0.0f64;
        for target in &targets {
            let group_cells: usize = target.group_dims.iter().product();
            let mut current = vec![0.0; group_cells];
            for (flat, &v) in table.iter().enumerate() {
                current[group_index(target, flat, &dims, &full_strides)] += v;
            }
            for (c, d) in current.iter().zip(&target.desired) {
                max_disc = max_disc.max((c - d).abs());
            }
        }
        if max_disc <= tolerance {
            break;
        }
    }

    Ok(FittedJoint {
        schema,
        dims,
        values: table,
        report: IpfReport { cycles, max_discrepancy: max_disc, converged: max_disc <= tolerance },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomposable::DecomposableModel;
    use crate::graph::MarkovGraph;

    /// x and y correlated, z depends on both (three-way interaction).
    fn relation() -> Relation {
        let schema = Schema::new(vec![("x", 3), ("y", 3), ("z", 3)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..3u32 {
            for y in 0..3u32 {
                for z in 0..3u32 {
                    let f = 1 + (x == y) as u32 * 3 + (z == (x + y) % 3) as u32 * 2;
                    for _ in 0..f {
                        rows.push(vec![x, y, z]);
                    }
                }
            }
        }
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn ipf_matches_prescribed_marginals() {
        let rel = relation();
        let generators =
            vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2]), AttrSet::from_ids([0, 2])];
        let fit = iterative_proportional_fit(&rel, &generators, 1e-9, 200, 1 << 20).unwrap();
        assert!(fit.report().converged, "{:?}", fit.report());
        for g in &generators {
            let fitted = fit.marginal(g).unwrap();
            let truth = rel.marginal(g).unwrap();
            for (k, v) in truth.iter() {
                assert!(
                    (fitted.frequency(k) - v).abs() < 1e-6,
                    "marginal {g} at {k:?}: {} vs {v}",
                    fitted.frequency(k)
                );
            }
        }
        assert!((fit.total() - rel.row_count() as f64).abs() < 1e-6);
    }

    #[test]
    fn ipf_reproduces_closed_form_for_decomposable_generators() {
        // For the decomposable model [01][12], IPF must converge to the
        // same estimates the junction-tree product form gives directly —
        // and it does so in very few cycles.
        let rel = relation();
        let g = MarkovGraph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let model = DecomposableModel::new(rel.schema().clone(), g).unwrap();
        let generators: Vec<AttrSet> = model.cliques().to_vec();
        let fit = iterative_proportional_fit(&rel, &generators, 1e-10, 100, 1 << 20).unwrap();
        let est = model.exact_estimator(&rel).unwrap();
        for x in 0..3u32 {
            for y in 0..3u32 {
                for z in 0..3u32 {
                    let closed = est.estimate(&[x, y, z]);
                    let fitted = fit.frequency(&[x, y, z]);
                    assert!(
                        (closed - fitted).abs() < 1e-6,
                        "({x},{y},{z}): closed {closed} vs IPF {fitted}"
                    );
                }
            }
        }
        // Decomposable generators converge essentially immediately.
        assert!(fit.report().cycles <= 3, "{:?}", fit.report());
    }

    #[test]
    fn non_decomposable_model_needs_iterations_but_converges() {
        let rel = relation();
        // [01][12][02] — the paper's smallest non-interpretable model.
        let generators =
            vec![AttrSet::from_ids([0, 1]), AttrSet::from_ids([1, 2]), AttrSet::from_ids([0, 2])];
        let fit = iterative_proportional_fit(&rel, &generators, 1e-9, 500, 1 << 20).unwrap();
        assert!(fit.report().converged);
        // All three pairwise marginals are matched simultaneously — the
        // defining property IPF buys for non-decomposable generators.
        for g in &generators {
            let fitted = fit.marginal(g).unwrap();
            let truth = rel.marginal(g).unwrap();
            for (k, v) in truth.iter() {
                assert!((fitted.frequency(k) - v).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn state_space_guard_trips() {
        let schema = Schema::new(vec![("a", 100), ("b", 100), ("c", 100)]).unwrap();
        let rel = Relation::from_rows(schema, vec![vec![0, 0, 0]]).unwrap();
        let err = iterative_proportional_fit(&rel, &[AttrSet::from_ids([0, 1])], 1e-6, 10, 1 << 16)
            .unwrap_err();
        assert!(err.to_string().contains("cells"));
    }

    #[test]
    fn rejects_bad_generators() {
        let rel = relation();
        assert!(iterative_proportional_fit(&rel, &[], 1e-6, 10, 1 << 20).is_err());
        assert!(
            iterative_proportional_fit(&rel, &[AttrSet::singleton(9)], 1e-6, 10, 1 << 20).is_err()
        );
    }
}
