//! Chordality testing and clique extraction.
//!
//! Decomposable models correspond exactly to *chordal* (triangulated)
//! Markov graphs (paper §2.2). This module provides:
//!
//! * [`maximum_cardinality_search`] — the classic MCS ordering of Tarjan &
//!   Yannakakis;
//! * [`is_chordal`] — the zero-fill-in test over an MCS ordering;
//! * [`maximal_cliques`] — the generators of a chordal graph;
//! * [`addable_edge_separator`] — the test at the heart of forward
//!   selection: whether inserting an interaction edge `(u, v)` keeps the
//!   graph chordal, and if so the (unique) minimal `u–v` separator `S`,
//!   so that the single new maximal clique is `S ∪ {u, v}` and the
//!   divergence improvement is the conditional mutual information
//!   `I(u; v | S)`.

use dbhist_distribution::{AttrId, AttrSet};

use crate::graph::MarkovGraph;

/// A Maximum Cardinality Search ordering.
///
/// `order[i]` is the `i`-th vertex visited; for chordal graphs the reverse
/// of this order is a perfect elimination ordering.
#[must_use]
pub fn maximum_cardinality_search(graph: &MarkovGraph) -> Vec<AttrId> {
    let n = graph.vertex_count();
    let mut weight = vec![0usize; n];
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        // Pick the unvisited vertex with the most visited neighbors
        // (ties broken by smallest id for determinism).
        let Some(v) = (0..n).filter(|&v| !visited[v]).max_by_key(|&v| (weight[v], usize::MAX - v))
        else {
            // The loop runs exactly `n` times over `n` vertices, so an
            // exhausted candidate set means we are already done.
            break;
        };
        visited[v] = true;
        order.push(v as AttrId);
        for u in 0..n {
            if !visited[u] && graph.has_edge(v as AttrId, u as AttrId) {
                weight[u] += 1;
            }
        }
    }
    order
}

/// For each vertex, its neighbors that appear *earlier* in `order`
/// (the "monotone adjacency" sets used by the zero-fill-in test).
fn monotone_adjacency(graph: &MarkovGraph, order: &[AttrId]) -> Vec<AttrSet> {
    let n = graph.vertex_count();
    let mut rank = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        rank[usize::from(v)] = i;
    }
    order
        .iter()
        .map(|&v| {
            AttrSet::from_ids(
                graph.neighbors(v).iter().filter(|&u| rank[usize::from(u)] < rank[usize::from(v)]),
            )
        })
        .collect()
}

/// Tests whether `graph` is chordal: runs MCS and checks that every
/// vertex's earlier neighbors form a clique (zero fill-in).
#[must_use]
pub fn is_chordal(graph: &MarkovGraph) -> bool {
    let order = maximum_cardinality_search(graph);
    monotone_adjacency(graph, &order).iter().all(|madj| graph.is_clique(madj))
}

/// The maximal cliques (model generators) of a chordal graph.
///
/// Candidates are `{v} ∪ madj(v)` over the MCS order; non-maximal
/// candidates are pruned. Isolated vertices yield singleton cliques, so the
/// empty graph over `n` vertices returns `n` singletons — the
/// full-independence model `[1][2]...[n]`.
///
/// # Panics
///
/// Panics (in debug builds) if the graph is not chordal; call
/// [`is_chordal`] first for untrusted graphs.
#[must_use]
pub fn maximal_cliques(graph: &MarkovGraph) -> Vec<AttrSet> {
    debug_assert!(is_chordal(graph), "maximal_cliques requires a chordal graph");
    let order = maximum_cardinality_search(graph);
    let madj = monotone_adjacency(graph, &order);
    let mut candidates: Vec<AttrSet> = order.iter().zip(&madj).map(|(&v, m)| m.with(v)).collect();
    // Prune candidates strictly contained in another candidate.
    candidates.sort_by_key(|c| std::cmp::Reverse(c.len()));
    let mut cliques: Vec<AttrSet> = Vec::new();
    for cand in candidates {
        if !cliques.iter().any(|c| cand.is_subset(c)) {
            cliques.push(cand);
        }
    }
    cliques.sort();
    cliques
}

/// Decides whether adding the edge `(u, v)` to a chordal graph preserves
/// chordality, returning the unique minimal `u–v` separator `S` if so.
///
/// * If `u` and `v` lie in different connected components, the edge is
///   always addable and `S = ∅`.
/// * Otherwise the classic characterization applies: `G + (u,v)` is chordal
///   iff `u` and `v` have a *unique* minimal separator `S` in `G`; the new
///   maximal clique is then `S ∪ {u, v}`.
///
/// Returns `None` when the edge is not addable (or already present / a
/// self-loop).
///
/// Addability is decided by a direct chordality re-test of the augmented
/// graph (vertex counts are tiny, ≤ a few dozen, so the O(n·m) test is
/// cheap and keeps this function unconditionally correct). The separator
/// for an addable edge is the common neighborhood `N(u) ∩ N(v)`: in a
/// chordal graph the common neighbors of a *non-adjacent* pair are pairwise
/// adjacent (otherwise two non-adjacent common neighbors would close a
/// chordless 4-cycle through `u` and `v`), so `{u,v} ∪ N(u)∩N(v)` is the
/// unique maximal clique of `G + (u,v)` containing the new edge.
#[must_use]
pub fn addable_edge_separator(graph: &MarkovGraph, u: AttrId, v: AttrId) -> Option<AttrSet> {
    if u == v
        || usize::from(u) >= graph.vertex_count()
        || usize::from(v) >= graph.vertex_count()
        || graph.has_edge(u, v)
    {
        return None;
    }
    if !graph.same_component(u, v) {
        return Some(AttrSet::empty());
    }
    let mut augmented = graph.clone();
    if augmented.add_edge(u, v).is_err() || !is_chordal(&augmented) {
        return None;
    }
    Some(graph.neighbors(u).intersection(&graph.neighbors(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[AttrId]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn chordality_basic() {
        // Path and tree graphs are chordal.
        assert!(is_chordal(&MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap()));
        // 4-cycle is the smallest non-chordal graph.
        assert!(!is_chordal(
            &MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap()
        ));
        // 4-cycle plus a chord is chordal.
        assert!(is_chordal(
            &MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]).unwrap()
        ));
        // Complete and empty graphs are chordal.
        assert!(is_chordal(&MarkovGraph::complete(5)));
        assert!(is_chordal(&MarkovGraph::empty(5)));
        // 5-cycle with one chord still has a chordless 4-cycle.
        assert!(!is_chordal(
            &MarkovGraph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (0, 2)]).unwrap()
        ));
    }

    #[test]
    fn mcs_orders_all_vertices() {
        let g = MarkovGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let order = maximum_cardinality_search(&g);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cliques_of_empty_graph_are_singletons() {
        let cliques = maximal_cliques(&MarkovGraph::empty(3));
        assert_eq!(cliques, vec![set(&[0]), set(&[1]), set(&[2])]);
    }

    #[test]
    fn cliques_of_complete_graph() {
        let cliques = maximal_cliques(&MarkovGraph::complete(4));
        assert_eq!(cliques, vec![set(&[0, 1, 2, 3])]);
    }

    #[test]
    fn cliques_of_paper_example() {
        // Paper Fig. 1(b): model [123][124][15] over attributes 0..5
        // (paper's 1..5 shifted down by one).
        let g =
            MarkovGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]).unwrap();
        assert!(is_chordal(&g));
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![set(&[0, 1, 2]), set(&[0, 1, 3]), set(&[0, 4])]);
    }

    #[test]
    fn cliques_of_two_triangles_sharing_edge() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        let cliques = maximal_cliques(&g);
        assert_eq!(cliques, vec![set(&[0, 1, 2]), set(&[1, 2, 3])]);
    }

    #[test]
    fn addable_cross_component() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(addable_edge_separator(&g, 0, 2), Some(AttrSet::empty()));
    }

    #[test]
    fn addable_with_singleton_separator() {
        // Star cliques {01},{12},{13}: edge (0,3) addable with S={1}.
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_eq!(addable_edge_separator(&g, 0, 3), Some(set(&[1])));
        assert_eq!(addable_edge_separator(&g, 3, 0), Some(set(&[1])));
    }

    #[test]
    fn addable_with_two_vertex_separator() {
        // Two triangles sharing edge {1,2}: edge (0,3) addable with S={1,2}.
        let g = MarkovGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(addable_edge_separator(&g, 0, 3), Some(set(&[1, 2])));
    }

    #[test]
    fn not_addable_on_path() {
        // Path 0-1-2-3: adding (0,3) creates a chordless 4-cycle.
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(addable_edge_separator(&g, 0, 3), None);
    }

    #[test]
    fn not_addable_existing_edge_or_loop() {
        let g = MarkovGraph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(addable_edge_separator(&g, 0, 1), None);
        assert_eq!(addable_edge_separator(&g, 2, 2), None);
        assert_eq!(addable_edge_separator(&g, 0, 9), None);
    }

    #[test]
    fn addable_edge_really_preserves_chordality() {
        // Exhaustive check over all chordal graphs on 5 vertices generated
        // by random edge insertion: every edge reported addable keeps the
        // graph chordal, every edge reported not-addable breaks it.
        let mut g = MarkovGraph::empty(5);
        let mut rng: u64 = 0x1234_5678;
        for _ in 0..200 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let u = (rng % 5) as AttrId;
            let v = ((rng >> 8) % 5) as AttrId;
            if u == v {
                continue;
            }
            match addable_edge_separator(&g, u, v) {
                Some(sep) => {
                    // Separator plus endpoints must induce a clique in G+uv.
                    let mut g2 = g.clone();
                    g2.add_edge(u, v).unwrap();
                    assert!(is_chordal(&g2));
                    assert!(g2.is_clique(&sep.with(u).with(v)));
                    g = g2;
                }
                None => {
                    if !g.has_edge(u, v) {
                        let mut g2 = g.clone();
                        g2.add_edge(u, v).unwrap();
                        assert!(!is_chordal(&g2));
                    }
                }
            }
            if g.edge_count() == 10 {
                g = MarkovGraph::empty(5);
            }
        }
    }
}
