//! Backward elimination of decomposable models (paper §3.1).
//!
//! Backward elimination is the classic, "well established" search
//! direction in the statistical literature: start from the saturated
//! model (complete Markov graph) and repeatedly delete the interaction
//! edge whose removal *least* degrades the fit, while preserving
//! decomposability. The paper argues this direction is a poor match for
//! synopsis construction — most of the complete graph's edges must be
//! checked and removed before the model becomes low-dimensional enough to
//! histogram — and this module exists to make that comparison measurable
//! (see the `selection_direction` ablation bench).
//!
//! The decomposability-preserving deletion rule is the classical dual of
//! edge addition: removing `(u, v)` from a chordal graph leaves it chordal
//! **iff** the edge belongs to exactly one maximal clique. The divergence
//! *increase* is then the local term `I(u; v | C \ {u,v})` where `C` is
//! that unique clique — the mirror image of forward selection's
//! improvement.

use dbhist_distribution::{measures, AttrId, AttrSet, EntropyCache, Relation};

use crate::chordal::maximal_cliques;
use crate::decomposable::DecomposableModel;
use crate::graph::MarkovGraph;
use crate::selection::{SelectionConfig, SelectionResult, SelectionStep};
use crate::stats::SignificanceTest;

/// Decides whether removing `(u, v)` keeps `graph` chordal, returning the
/// conditioning set `S = C \ {u, v}` of the unique containing clique if so.
///
/// Removal preserves chordality iff the edge lies in exactly one maximal
/// clique (otherwise the two cliques it bridges lose their chord and open
/// a 4-cycle).
#[must_use]
pub fn removable_edge_context(graph: &MarkovGraph, u: AttrId, v: AttrId) -> Option<AttrSet> {
    if !graph.has_edge(u, v) {
        return None;
    }
    let mut containing =
        maximal_cliques(graph).into_iter().filter(|c| c.contains(u) && c.contains(v));
    let first = containing.next()?;
    if containing.next().is_some() {
        return None;
    }
    Some(first.without(u).without(v))
}

/// Backward elimination from the saturated model.
///
/// Edges are removed while the *loss* of fit is statistically
/// insignificant at level `config.theta` (the dual of forward selection's
/// acceptance rule), preferring the least-significant loss each round.
/// Elimination also continues — regardless of significance — while any
/// generator exceeds `config.k_max`, since an over-wide clique can never
/// be histogrammed within the paper's accuracy regime; among those rounds
/// it still removes the least harmful edge.
///
/// Returns the same [`SelectionResult`] shape as the forward selector;
/// `steps` record *removals* (improvement is the negated divergence
/// increase, so it is ≤ 0).
///
/// # Panics
///
/// Panics if `config` is invalid; use [`SelectionConfig::validate`] to
/// check untrusted configurations first.
#[must_use]
pub fn backward_eliminate(relation: &Relation, config: SelectionConfig) -> SelectionResult {
    #[allow(clippy::expect_used)]
    config.validate().expect("invalid selection config"); // lint:allow(panic-surface): documented panic contract on invalid config
    let schema = relation.schema().clone();
    let n = schema.arity();
    let mut cache = EntropyCache::new(relation);
    let mut graph = MarkovGraph::complete(n);
    let total = relation.row_count() as f64;

    let joint_entropy = cache.entropy(&schema.all_attrs());
    let divergence = |graph: &MarkovGraph, cache: &mut EntropyCache<'_>| -> f64 {
        // Elimination only ever removes edges whose deletion keeps the
        // graph chordal; a build failure means the candidate is unusable,
        // so poison it with an infinite divergence.
        let Ok(jt) = crate::junction::JunctionTree::build(graph) else {
            return f64::INFINITY;
        };
        let cliques: Vec<f64> = jt.cliques().iter().map(|c| cache.entropy(c)).collect();
        let seps: Vec<f64> = jt.separators().map(|s| cache.entropy(s)).collect();
        measures::decomposable_divergence(joint_entropy, &cliques, &seps)
    };

    let initial_divergence = divergence(&graph, &mut cache);
    let mut steps: Vec<SelectionStep> = Vec::new();
    loop {
        let oversized = {
            let model_cliques = maximal_cliques(&graph);
            model_cliques.iter().any(|c| c.len() > config.k_max)
        };
        // Score every removable edge by the divergence increase.
        let edges: Vec<(AttrId, AttrId)> = graph.edges().collect();
        let mut best: Option<(AttrId, AttrId, AttrSet, f64, SignificanceTest)> = None;
        for (u, v) in edges {
            let Some(s) = removable_edge_context(&graph, u, v) else {
                continue;
            };
            let h_su = cache.entropy(&s.with(u));
            let h_sv = cache.entropy(&s.with(v));
            let h_s = cache.entropy(&s);
            let h_suv = cache.entropy(&s.with(u).with(v));
            let increase = measures::conditional_mutual_information(h_su, h_sv, h_s, h_suv);
            let mut df =
                f64::from(schema.domain_size(u) - 1) * f64::from(schema.domain_size(v) - 1);
            for a in s.iter() {
                df *= f64::from(schema.domain_size(a));
            }
            let test = SignificanceTest::new(total, increase, df);
            if best.as_ref().is_none_or(|(_, _, _, inc, _)| increase < *inc) {
                best = Some((u, v, s, increase, test));
            }
        }
        let Some((u, v, separator, increase, test)) = best else {
            break;
        };
        // Stop when the cheapest removal is significant — i.e. it would
        // discard real structure — unless a clique is still too wide.
        if !oversized && test.is_significant(config.theta) {
            break;
        }
        if graph.remove_edge(u, v).is_err() {
            break;
        }
        let Ok(model) = DecomposableModel::new(schema.clone(), graph.clone()) else {
            // Chordality was verified when the candidate was scored; if the
            // rebuild disagrees, stop eliminating rather than abort.
            break;
        };
        let divergence_after = divergence(&graph, &mut cache);
        steps.push(SelectionStep {
            candidate: crate::selection::EdgeCandidate {
                u,
                v,
                separator,
                improvement: -increase,
                test,
                state_space_increase: 0,
            },
            divergence_after,
            model,
        });
        if graph.edge_count() == 0 {
            break;
        }
    }

    let model = steps
        .last()
        .map_or_else(|| DecomposableModel::saturated(schema.clone()), |s| s.model.clone());
    // Backward elimination scans existing edges serially; it reports no
    // candidate fan-out (peak_candidates is a forward-selection metric).
    SelectionResult {
        model,
        initial_divergence,
        steps,
        entropy_computations: cache.computations(),
        entropy_cache_hits: cache.hits(),
        peak_candidates: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chordal::is_chordal;
    use crate::selection::ForwardSelector;
    use dbhist_distribution::Schema;

    fn set(ids: &[AttrId]) -> AttrSet {
        AttrSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn removable_iff_single_clique() {
        // Two triangles sharing edge (1,2): the shared edge is in both
        // cliques (not removable); outer edges are in one (removable).
        let g = MarkovGraph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(removable_edge_context(&g, 1, 2), None);
        assert_eq!(removable_edge_context(&g, 0, 1), Some(set(&[2])));
        assert_eq!(removable_edge_context(&g, 2, 3), Some(set(&[1])));
        // Absent edges are not removable.
        assert_eq!(removable_edge_context(&g, 0, 3), None);
    }

    #[test]
    fn removal_preserves_chordality() {
        let mut g = MarkovGraph::complete(5);
        let mut steps = 0;
        // Remove greedily until no edge is removable (empty graph).
        loop {
            let candidates: Vec<(AttrId, AttrId)> = g.edges().collect();
            let Some(&(u, v)) =
                candidates.iter().find(|&&(u, v)| removable_edge_context(&g, u, v).is_some())
            else {
                break;
            };
            g.remove_edge(u, v).unwrap();
            assert!(is_chordal(&g), "removal broke chordality at step {steps}");
            steps += 1;
        }
        assert_eq!(g.edge_count(), 0, "the complete graph can be fully dismantled");
        assert_eq!(steps, 10);
    }

    /// a == b, c == d (shifted), e independent.
    fn two_pair_relation() -> Relation {
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 3), ("d", 3), ("e", 2)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..720u32)
            .map(|i| {
                let a = i % 4;
                let c = (i / 4) % 3;
                let e = (i / 12) % 2;
                vec![a, a, c, (c + 1) % 3, e]
            })
            .collect();
        Relation::from_rows(schema, rows).unwrap()
    }

    #[test]
    fn backward_recovers_true_structure() {
        let rel = two_pair_relation();
        let result = backward_eliminate(&rel, SelectionConfig::default());
        let g = result.model.graph();
        assert!(g.has_edge(0, 1), "kept a-b: {g}");
        assert!(g.has_edge(2, 3), "kept c-d: {g}");
        assert_eq!(g.edge_count(), 2, "removed everything else: {g}");
        assert!(result.model.max_clique_size() <= 2);
    }

    #[test]
    fn forward_and_backward_agree_on_clear_structure() {
        let rel = two_pair_relation();
        let fwd = ForwardSelector::new(&rel, SelectionConfig::default()).run();
        let bwd = backward_eliminate(&rel, SelectionConfig::default());
        assert_eq!(fwd.model.graph(), bwd.model.graph());
        // Backward elimination starts from the complete graph, so it must
        // evaluate far more candidate moves (the paper's §3.1 argument for
        // forward selection in this setting).
        assert!(bwd.entropy_computations >= fwd.entropy_computations);
    }

    #[test]
    fn k_max_is_enforced_even_when_significant() {
        // Three mutually identical attributes: every pairwise (and triple)
        // interaction is maximally significant, but k_max = 2 must still
        // break the triangle.
        let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 4)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..400u32).map(|i| vec![i % 4, i % 4, i % 4]).collect();
        let rel = Relation::from_rows(schema, rows).unwrap();
        let result = backward_eliminate(&rel, SelectionConfig::default());
        assert!(result.model.max_clique_size() <= 2, "{}", result.model.notation());
    }

    #[test]
    fn divergence_monotonically_increases_along_removals() {
        let rel = two_pair_relation();
        let result = backward_eliminate(&rel, SelectionConfig::default());
        let mut prev = result.initial_divergence;
        for step in &result.steps {
            assert!(step.divergence_after >= prev - 1e-9);
            assert!(step.candidate.improvement <= 1e-9);
            prev = step.divergence_after;
        }
    }
}
