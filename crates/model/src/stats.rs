//! Statistical significance machinery built from scratch.
//!
//! Forward selection prefers a more complex model only when the improvement
//! in fit is *statistically significant* (paper §2.3). The test statistic
//! is the likelihood-ratio `G² = 2·N·ΔD`, asymptotically χ²-distributed
//! with degrees of freedom equal to the number of interaction parameters
//! the new edge introduces. No suitable statistics crate is available
//! offline, so this module implements the required special functions:
//!
//! * [`ln_gamma`] — Lanczos approximation (g = 7, n = 9 coefficients);
//! * [`regularized_lower_gamma`] — series expansion for `x < a + 1`,
//!   continued fraction (modified Lentz) otherwise;
//! * [`chi_square_cdf`] / [`chi_square_quantile`] — the χ² distribution.

/// Lanczos coefficients (g = 7).
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0` (Lanczos approximation,
/// ~15 significant digits).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection branch is not needed by this crate).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;
/// Relative convergence tolerance.
const EPS: f64 = 1e-14;

/// Regularized lower incomplete gamma `P(a, x) = γ(a, x) / Γ(a)` for
/// `a > 0`, `x ≥ 0`.
#[must_use]
pub fn regularized_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "regularized_lower_gamma requires a > 0, got {a}");
    assert!(x >= 0.0, "regularized_lower_gamma requires x >= 0, got {x}");
    // lint:allow-next-line(float-cmp): exact boundary of the gamma integral
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_continued_fraction(a, x)
    }
}

/// Series representation of `P(a, x)`, convergent for `x < a + 1`.
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued-fraction representation of `Q(a, x) = 1 − P(a, x)`,
/// convergent for `x ≥ a + 1` (modified Lentz algorithm).
fn upper_gamma_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// CDF of the χ² distribution with `df` degrees of freedom at `x`.
///
/// `df` is a positive real (large fractional dfs arise from products of
/// domain sizes); `x < 0` yields `0`.
#[must_use]
pub fn chi_square_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi_square_cdf requires df > 0, got {df}");
    if x <= 0.0 {
        return 0.0;
    }
    regularized_lower_gamma(df / 2.0, x / 2.0)
}

/// Quantile (inverse CDF) of the χ² distribution: the smallest `x` with
/// `CDF(x) ≥ p`, for `p ∈ [0, 1)`. Computed by bracketed bisection, which
/// is robust across the enormous df range this workspace produces
/// (df up to ~10⁵ for wide categorical attributes).
#[must_use]
pub fn chi_square_quantile(p: f64, df: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "quantile requires p in [0,1), got {p}");
    assert!(df > 0.0, "chi_square_quantile requires df > 0, got {df}");
    // lint:allow-next-line(float-cmp): exact boundary of the quantile domain
    if p == 0.0 {
        return 0.0;
    }
    // Bracket: mean + k·stddev grows until CDF exceeds p.
    let mut hi = df + 10.0 * (2.0 * df).sqrt() + 10.0;
    while chi_square_cdf(hi, df) < p {
        hi *= 2.0;
    }
    let mut lo = 0.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if chi_square_cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-10 * (1.0 + hi) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Outcome of a G² likelihood-ratio significance test for adding model
/// complexity (paper §2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceTest {
    /// The G² statistic `2·N·ΔD` (natural-log units).
    pub g_squared: f64,
    /// Degrees of freedom of the added interaction.
    pub degrees_of_freedom: f64,
    /// `P(χ²_df ≤ G²)` — the "statistical significance" the paper ranks
    /// edges by under the DB₁ heuristic. The addition is accepted at
    /// threshold `θ` iff `significance ≥ θ`.
    pub significance: f64,
}

impl SignificanceTest {
    /// Runs the test for a divergence improvement `delta_d ≥ 0` observed on
    /// `n` data points, with `df` degrees of freedom.
    #[must_use]
    pub fn new(n: f64, delta_d: f64, df: f64) -> Self {
        let g2 = 2.0 * n * delta_d.max(0.0);
        let df = df.max(1.0);
        Self { g_squared: g2, degrees_of_freedom: df, significance: chi_square_cdf(g2, df) }
    }

    /// `true` if the improvement is significant at level `theta`
    /// (e.g. `0.90` per the paper's experiments).
    #[must_use]
    pub fn is_significant(&self, theta: f64) -> bool {
        self.significance >= theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-12);
        assert!(ln_gamma(2.0).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Recurrence Γ(x+1) = x·Γ(x) at an awkward point.
        let x = 3.7;
        assert!((ln_gamma(x + 1.0) - (x.ln() + ln_gamma(x))).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_bounds_and_monotonicity() {
        assert_eq!(regularized_lower_gamma(2.5, 0.0), 0.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let x = f64::from(i) * 0.3;
            let p = regularized_lower_gamma(2.5, x);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev, "P(a,·) must be nondecreasing");
            prev = p;
        }
        assert!(prev > 0.999999, "P(a, 30) ≈ 1");
    }

    #[test]
    fn chi_square_cdf_known_values() {
        // χ²(1): CDF(3.841) ≈ 0.95; χ²(2): CDF(x) = 1 − e^{−x/2}.
        assert!((chi_square_cdf(3.841_458_820_694_124, 1.0) - 0.95).abs() < 1e-9);
        for x in [0.5, 1.0, 2.0, 5.0] {
            let exact = 1.0 - (-x / 2.0f64).exp();
            assert!((chi_square_cdf(x, 2.0) - exact).abs() < 1e-12);
        }
        // χ²(10): CDF(18.307) ≈ 0.95 (standard table).
        assert!((chi_square_cdf(18.307_038, 10.0) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn chi_square_cdf_large_df() {
        // For large df the distribution approaches N(df, 2df): CDF at the
        // mean is close to 1/2 (slightly below due to right skew).
        let c = chi_square_cdf(12544.0, 12544.0);
        assert!((c - 0.5).abs() < 0.01, "got {c}");
        assert!(chi_square_cdf(12544.0 + 5.0 * (2.0 * 12544.0f64).sqrt(), 12544.0) > 0.999);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for df in [1.0, 2.0, 7.0, 100.0, 12544.0] {
            for p in [0.1, 0.5, 0.9, 0.95, 0.99] {
                let x = chi_square_quantile(p, df);
                assert!((chi_square_cdf(x, df) - p).abs() < 1e-8, "df={df} p={p} x={x}");
            }
        }
        assert_eq!(chi_square_quantile(0.0, 5.0), 0.0);
    }

    #[test]
    fn significance_test_behaviour() {
        // Huge improvement on many points: fully significant.
        let t = SignificanceTest::new(100_000.0, 0.5, 9.0);
        assert!(t.is_significant(0.99));
        assert!(t.significance > 0.999_999);
        // Tiny improvement vs many parameters: insignificant.
        let t = SignificanceTest::new(1_000.0, 1e-4, 10_000.0);
        assert!(!t.is_significant(0.90));
        // Negative improvements are clamped.
        let t = SignificanceTest::new(1_000.0, -0.5, 4.0);
        assert_eq!(t.g_squared, 0.0);
        assert_eq!(t.significance, 0.0);
        // Degenerate df is clamped to 1.
        let t = SignificanceTest::new(1_000.0, 0.1, 0.0);
        assert_eq!(t.degrees_of_freedom, 1.0);
    }
}
