//! Decomposable statistical interaction models (paper §2.2–§3.1).
//!
//! This crate implements the model half of a DEPENDENCY-BASED histogram
//! synopsis `H = <M, C>`: the machinery to represent, validate, and
//! *discover* a decomposable log-linear model `M` for a joint frequency
//! distribution.
//!
//! # Contents
//!
//! * [`graph::MarkovGraph`] — undirected interaction graphs over attribute
//!   ids.
//! * [`chordal`] — Maximum Cardinality Search, chordality testing, and
//!   maximal-clique extraction for chordal graphs. Decomposable models
//!   correspond exactly to chordal Markov graphs (paper §2.2).
//! * [`junction::JunctionTree`] — clique trees satisfying the
//!   clique-intersection property, from which the closed-form product
//!   estimates of a decomposable model are read off (paper Eq. 2).
//! * [`DecomposableModel`] — the model itself: generators, separators,
//!   closed-form frequency estimates, and divergence via the entropy
//!   decomposition `D = Σ E(C) − Σ E(S) − E(f)`.
//! * [`stats`] — ln-gamma, regularized incomplete gamma, and the χ²
//!   distribution, built from scratch; used for the G² likelihood-ratio
//!   significance test that gates model growth (paper §2.3).
//! * [`selection`] — forward selection of decomposable models with the
//!   paper's two edge-scoring heuristics (`DB₁`: highest statistical
//!   significance; `DB₂`: divergence improvement per unit of model state
//!   space), a clique-size bound `k_max`, and a significance threshold `θ`.
//!
//! # Example: discovering structure
//!
//! ```
//! use dbhist_distribution::{Schema, Relation};
//! use dbhist_model::selection::{ForwardSelector, SelectionConfig};
//!
//! // a == b, c independent coin.
//! let schema = Schema::new(vec![("a", 4), ("b", 4), ("c", 2)]).unwrap();
//! let rows: Vec<Vec<u32>> = (0..256)
//!     .map(|i| vec![i % 4, i % 4, (i / 4) % 2])
//!     .collect();
//! let rel = Relation::from_rows(schema, rows).unwrap();
//!
//! let model = ForwardSelector::new(&rel, SelectionConfig::default())
//!     .run()
//!     .model;
//! // The selector links the correlated pair and leaves `c` independent.
//! assert!(model.graph().has_edge(0, 1));
//! assert!(!model.graph().has_edge(0, 2));
//! assert!(!model.graph().has_edge(1, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod backward;
pub mod chordal;
pub mod decomposable;
pub mod error;
pub mod graph;
pub mod ipf;
pub mod junction;
pub mod selection;
pub mod stats;

pub use decomposable::DecomposableModel;
pub use error::ModelError;
pub use graph::MarkovGraph;
pub use junction::{JunctionTree, RootedViews};
