//! Undirected Markov interaction graphs.
//!
//! A [`MarkovGraph`] over `n` attributes has a node per attribute and an
//! edge per pairwise interaction effect retained in the log-linear model
//! (paper §2.2: generators correspond to the maximal cliques of this
//! graph). Attribute counts are small (histogram synopses top out around a
//! dozen dimensions), so a dense adjacency matrix keeps every operation
//! simple and fast.

use std::fmt;

use dbhist_distribution::{AttrId, AttrSet};

use crate::error::ModelError;

/// A simple undirected graph over vertices `0..n` (attribute ids).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MarkovGraph {
    n: usize,
    /// Row-major `n x n` adjacency matrix; symmetric, false diagonal.
    adj: Vec<bool>,
}

impl MarkovGraph {
    /// Creates an edgeless graph over `n` vertices (the full-independence
    /// model `[1][2]...[n]`).
    #[must_use]
    pub fn empty(n: usize) -> Self {
        Self { n, adj: vec![false; n * n] }
    }

    /// Creates the complete graph over `n` vertices (the saturated model).
    #[must_use]
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        for u in 0..n as AttrId {
            for v in (u + 1)..n as AttrId {
                g.set_edge(u, v, true);
            }
        }
        g
    }

    /// Builds a graph from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::VertexOutOfRange`] or [`ModelError::SelfLoop`]
    /// for invalid edges.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (AttrId, AttrId)>,
    ) -> Result<Self, ModelError> {
        let mut g = Self::empty(n);
        for (u, v) in edges {
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.adj.iter().filter(|&&b| b).count() / 2
    }

    #[inline]
    fn idx(&self, u: AttrId, v: AttrId) -> usize {
        usize::from(u) * self.n + usize::from(v)
    }

    fn set_edge(&mut self, u: AttrId, v: AttrId, present: bool) {
        let (i, j) = (self.idx(u, v), self.idx(v, u));
        self.adj[i] = present;
        self.adj[j] = present;
    }

    fn check_vertex(&self, v: AttrId) -> Result<(), ModelError> {
        if usize::from(v) >= self.n {
            Err(ModelError::VertexOutOfRange { vertex: v, n: self.n })
        } else {
            Ok(())
        }
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::VertexOutOfRange`] for out-of-range vertices
    /// and [`ModelError::SelfLoop`] when `u == v`.
    pub fn add_edge(&mut self, u: AttrId, v: AttrId) -> Result<(), ModelError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u == v {
            return Err(ModelError::SelfLoop { vertex: u });
        }
        self.set_edge(u, v, true);
        Ok(())
    }

    /// Removes the undirected edge `(u, v)` if present.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::VertexOutOfRange`] for out-of-range vertices.
    pub fn remove_edge(&mut self, u: AttrId, v: AttrId) -> Result<(), ModelError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if u != v {
            self.set_edge(u, v, false);
        }
        Ok(())
    }

    /// `true` if the edge `(u, v)` is present. Out-of-range pairs are
    /// simply not edges.
    #[must_use]
    pub fn has_edge(&self, u: AttrId, v: AttrId) -> bool {
        usize::from(u) < self.n && usize::from(v) < self.n && u != v && self.adj[self.idx(u, v)]
    }

    /// The neighbors of `v` in ascending order.
    #[must_use]
    pub fn neighbors(&self, v: AttrId) -> AttrSet {
        AttrSet::from_ids((0..self.n as AttrId).filter(|&u| self.has_edge(v, u)))
    }

    /// Iterates over all edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        (0..self.n as AttrId).flat_map(move |u| {
            ((u + 1)..self.n as AttrId).filter(move |&v| self.has_edge(u, v)).map(move |v| (u, v))
        })
    }

    /// Iterates over all non-edges `(u, v)` with `u < v` — the candidate
    /// interactions forward selection may add.
    pub fn non_edges(&self) -> impl Iterator<Item = (AttrId, AttrId)> + '_ {
        (0..self.n as AttrId).flat_map(move |u| {
            ((u + 1)..self.n as AttrId).filter(move |&v| !self.has_edge(u, v)).map(move |v| (u, v))
        })
    }

    /// `true` if every pair of distinct vertices in `set` is joined by an
    /// edge (i.e. `set` induces a complete subgraph).
    #[must_use]
    pub fn is_clique(&self, set: &AttrSet) -> bool {
        let ids = set.as_slice();
        for (i, &u) in ids.iter().enumerate() {
            for &v in &ids[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// The connected component containing `v`, computed by BFS over a
    /// subgraph that *excludes* the vertices in `forbidden`.
    ///
    /// Passing an empty `forbidden` set yields ordinary components. The
    /// exclusion form is what minimal-separator computation needs.
    #[must_use]
    pub fn component_excluding(&self, v: AttrId, forbidden: &AttrSet) -> AttrSet {
        if usize::from(v) >= self.n || forbidden.contains(v) {
            return AttrSet::empty();
        }
        let mut seen = vec![false; self.n];
        seen[usize::from(v)] = true;
        let mut queue = vec![v];
        let mut out = vec![v];
        while let Some(u) = queue.pop() {
            for w in 0..self.n as AttrId {
                if self.has_edge(u, w) && !seen[usize::from(w)] && !forbidden.contains(w) {
                    seen[usize::from(w)] = true;
                    queue.push(w);
                    out.push(w);
                }
            }
        }
        AttrSet::from_ids(out)
    }

    /// `true` if `u` and `v` lie in the same connected component.
    #[must_use]
    pub fn same_component(&self, u: AttrId, v: AttrId) -> bool {
        self.component_excluding(u, &AttrSet::empty()).contains(v)
    }

    /// `true` if the vertex set `c` separates `a` from `b`: every path
    /// from a vertex of `a` to a vertex of `b` passes through `c`.
    ///
    /// For a Markov graph this is the *global Markov property* test
    /// (paper §2.2): separation of `A` and `B` by `C` means `A ⊥ B | C`
    /// in every distribution respecting the model. Vertices shared with
    /// `c` are ignored; overlapping `a`/`b` (outside `c`) are trivially
    /// non-separated.
    #[must_use]
    pub fn separates(&self, a: &AttrSet, b: &AttrSet, c: &AttrSet) -> bool {
        let a = a.difference(c);
        let b = b.difference(c);
        if !a.is_disjoint(&b) {
            return false;
        }
        for start in a.iter() {
            let reach = self.component_excluding(start, c);
            if b.iter().any(|t| reach.contains(t)) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for MarkovGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MarkovGraph(n={}, edges=[", self.n)?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{u}-{v}")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_complete() {
        let e = MarkovGraph::empty(4);
        assert_eq!(e.edge_count(), 0);
        let c = MarkovGraph::complete(4);
        assert_eq!(c.edge_count(), 6);
        assert!(c.has_edge(0, 3));
        assert!(!c.has_edge(2, 2));
    }

    #[test]
    fn add_remove_edges() {
        let mut g = MarkovGraph::empty(3);
        g.add_edge(0, 1).unwrap();
        assert!(g.has_edge(1, 0), "edges are undirected");
        g.remove_edge(1, 0).unwrap();
        assert!(!g.has_edge(0, 1));
        assert!(g.add_edge(0, 0).is_err());
        assert!(g.add_edge(0, 5).is_err());
        assert!(g.remove_edge(0, 5).is_err());
    }

    #[test]
    fn neighbors_and_iterators() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (1, 3)]).unwrap();
        assert_eq!(g.neighbors(1), AttrSet::from_ids([0, 2, 3]));
        assert_eq!(g.neighbors(0), AttrSet::singleton(1));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2), (1, 3)]);
        assert_eq!(g.non_edges().collect::<Vec<_>>(), vec![(0, 2), (0, 3), (2, 3)]);
    }

    #[test]
    fn clique_detection() {
        let g = MarkovGraph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        assert!(g.is_clique(&AttrSet::from_ids([0, 1, 2])));
        assert!(!g.is_clique(&AttrSet::from_ids([0, 1, 3])));
        assert!(g.is_clique(&AttrSet::singleton(3)));
        assert!(g.is_clique(&AttrSet::empty()));
    }

    #[test]
    fn components() {
        let g = MarkovGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]).unwrap();
        assert!(g.same_component(0, 2));
        assert!(!g.same_component(0, 3));
        // Excluding vertex 1 disconnects 0 from 2.
        let comp = g.component_excluding(0, &AttrSet::singleton(1));
        assert_eq!(comp, AttrSet::singleton(0));
        // Excluded start vertex yields the empty set.
        assert!(g.component_excluding(1, &AttrSet::singleton(1)).is_empty());
    }

    #[test]
    fn separation_global_markov() {
        // Paper Fig. 1(b): [012][013][04] (zero-based).
        let g =
            MarkovGraph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]).unwrap();
        // Paper: variables {3,4} are conditionally independent given
        // {1,2} — zero-based: {2} ⊥ {3} given {0,1}.
        assert!(g.separates(
            &AttrSet::singleton(2),
            &AttrSet::singleton(3),
            &AttrSet::from_ids([0, 1])
        ));
        // Variable 5 (zero-based 4) independent of {2,3,4}→{1,2,3} given 0.
        assert!(g.separates(
            &AttrSet::singleton(4),
            &AttrSet::from_ids([1, 2, 3]),
            &AttrSet::singleton(0)
        ));
        // Not separated without the conditioning set.
        assert!(!g.separates(&AttrSet::singleton(2), &AttrSet::singleton(3), &AttrSet::empty()));
        // Overlapping sets are never separated.
        assert!(!g.separates(
            &AttrSet::from_ids([1, 2]),
            &AttrSet::from_ids([2, 3]),
            &AttrSet::singleton(0)
        ));
        // Different components are separated by anything.
        let h = MarkovGraph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(h.separates(&AttrSet::singleton(0), &AttrSet::singleton(2), &AttrSet::empty()));
    }

    #[test]
    fn display_lists_edges() {
        let g = MarkovGraph::from_edges(3, [(0, 2)]).unwrap();
        assert_eq!(g.to_string(), "MarkovGraph(n=3, edges=[0-2])");
    }
}
