//! MHIST-2 construction (paper §3.2, after Poosala & Ioannidis [18]).
//!
//! The builder maintains the current bucketization as a growing split
//! tree. At each step it finds, over all buckets and all dimensions, the
//! split the partitioning constraint rates highest ("the bucket in most
//! need of partitioning") and applies it, until the bucket budget is
//! exhausted or every bucket is a single cell.
//!
//! Like [`crate::one_dim::OneDimBuilder`], the builder is *incremental*:
//! `IncrementalGains` space allocation interleaves construction across
//! clique histograms, so it can ask for the error improvement of the next
//! split (`peek_gain`) before paying a bucket for it.

use dbhist_distribution::{AttrId, AttrSet, Distribution};

use crate::bbox::BoundingBox;
use crate::criterion::{best_split_bounded, SplitCriterion};
use crate::error::HistogramError;

use super::{Node, NodeId, SplitTree};

/// A bucket under construction: its cells, box, and cached best split.
#[derive(Debug, Clone)]
struct BucketState {
    /// Non-zero cells inside the bucket: key (aligned with attrs) → freq.
    cells: Vec<(Vec<u32>, f64)>,
    bbox: BoundingBox,
    /// Arena id of the leaf node representing this bucket.
    node: NodeId,
    /// Cached best split `(attr, split value, criterion score)`.
    best: Option<(AttrId, u32, f64)>,
    /// Cached volume-aware SSE of the bucket.
    sse: f64,
}

/// Incremental MHIST-2 builder over a marginal [`Distribution`].
#[derive(Debug, Clone)]
pub struct MhistBuilder {
    attrs: AttrSet,
    domain: BoundingBox,
    criterion: SplitCriterion,
    nodes: Vec<Node>,
    buckets: Vec<BucketState>,
}

impl MhistBuilder {
    /// Starts a builder with a single bucket covering the full domain of
    /// the distribution's attributes.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramError::InvalidRequest`] if the distribution is
    /// empty or covers no attributes.
    pub fn new(dist: &Distribution, criterion: SplitCriterion) -> Result<Self, HistogramError> {
        let attrs = dist.attrs().clone();
        if attrs.is_empty() {
            return Err(HistogramError::InvalidRequest {
                reason: "MHIST requires at least one attribute".into(),
            });
        }
        if dist.total() <= 0.0 {
            return Err(HistogramError::InvalidRequest {
                reason: "cannot build a histogram over an empty distribution".into(),
            });
        }
        let ranges: Vec<(u32, u32)> =
            attrs.iter().map(|a| (0, dist.schema().domain_size(a) - 1)).collect();
        let domain = BoundingBox::new(attrs.clone(), ranges);
        let cells: Vec<(Vec<u32>, f64)> = dist.iter().map(|(k, f)| (k.to_vec(), f)).collect();
        let nodes = vec![Node::Leaf { freq: dist.total() }];
        let mut bucket = BucketState { cells, bbox: domain.clone(), node: 0, best: None, sse: 0.0 };
        let mut builder = Self { attrs, domain, criterion, nodes, buckets: Vec::new() };
        builder.refresh_bucket(&mut bucket);
        builder.buckets.push(bucket);
        Ok(builder)
    }

    /// Convenience: builds an MHIST with at most `max_buckets` buckets.
    ///
    /// # Errors
    ///
    /// See [`MhistBuilder::new`]; additionally rejects a zero budget.
    pub fn build(
        dist: &Distribution,
        max_buckets: usize,
        criterion: SplitCriterion,
    ) -> Result<SplitTree, HistogramError> {
        if max_buckets == 0 {
            return Err(HistogramError::InvalidRequest {
                reason: "bucket budget must be positive".into(),
            });
        }
        let mut b = Self::new(dist, criterion)?;
        while b.bucket_count() < max_buckets && b.split_once() {}
        Ok(b.finish())
    }

    /// Recomputes a bucket's cached best split and SSE.
    fn refresh_bucket(&self, bucket: &mut BucketState) {
        // Volume-aware SSE: cells not present count as zeroes.
        let volume = bucket.bbox.volume() as f64;
        let total: f64 = bucket.cells.iter().map(|(_, f)| f).sum();
        let nnz = bucket.cells.len() as f64;
        let mean = total / volume;
        let nonzero_sse: f64 = bucket.cells.iter().map(|(_, f)| (f - mean).powi(2)).sum();
        bucket.sse = nonzero_sse + (volume - nnz) * mean * mean;

        // Best split across dimensions by the partitioning constraint.
        let mut best: Option<(AttrId, u32, f64)> = None;
        for (pos, attr) in self.attrs.iter().enumerate() {
            // Aggregate cell frequencies along this dimension.
            let mut agg: Vec<(u32, f64)> = Vec::new();
            {
                let mut tmp: Vec<(u32, f64)> =
                    bucket.cells.iter().map(|(k, f)| (k[pos], *f)).collect();
                tmp.sort_unstable_by_key(|&(v, _)| v);
                for (v, f) in tmp {
                    match agg.last_mut() {
                        Some(last) if last.0 == v => last.1 += f,
                        _ => agg.push((v, f)),
                    }
                }
            }
            // Bucket boxes cover every histogram attribute by
            // construction; skip the dimension if this one is corrupt.
            let Some((lo, hi)) = bucket.bbox.range(attr) else {
                continue;
            };
            if let Some(choice) = best_split_bounded(&agg, lo, hi, self.criterion) {
                if best.is_none_or(|(_, _, s)| choice.score > s) {
                    best = Some((attr, choice.value, choice.score));
                }
            }
        }
        bucket.best = best;
    }

    /// Current number of buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Current total volume-aware SSE across buckets (the error measure
    /// handed to the space-allocation algorithms).
    #[must_use]
    pub fn error(&self) -> f64 {
        self.buckets.iter().map(|b| b.sse).sum()
    }

    /// Index of the bucket the construction algorithm would split next.
    fn next_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.best.map(|(_, _, score)| (i, score)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
    }

    /// Splits `bucket`'s cell list by its cached best split, returning the
    /// two halves as fresh bucket states (node ids unassigned).
    fn split_bucket(&self, idx: usize) -> Option<(BucketState, BucketState)> {
        let bucket = &self.buckets[idx];
        let (attr, value, _) = bucket.best?;
        let pos = self.attrs.position(attr)?;
        let (mut left_cells, mut right_cells) = (Vec::new(), Vec::new());
        for (k, f) in &bucket.cells {
            if k[pos] < value {
                left_cells.push((k.clone(), *f));
            } else {
                right_cells.push((k.clone(), *f));
            }
        }
        let (lo, hi) = bucket.bbox.range(attr)?;
        let mut lbox = bucket.bbox.clone();
        lbox.clamp(attr, lo, value - 1);
        let mut rbox = bucket.bbox.clone();
        rbox.clamp(attr, value, hi);
        let mut left = BucketState { cells: left_cells, bbox: lbox, node: 0, best: None, sse: 0.0 };
        let mut right =
            BucketState { cells: right_cells, bbox: rbox, node: 0, best: None, sse: 0.0 };
        self.refresh_bucket(&mut left);
        self.refresh_bucket(&mut right);
        Some((left, right))
    }

    /// The error decrease the next split would achieve (`None` when no
    /// bucket can be split further).
    #[must_use]
    pub fn peek_gain(&self) -> Option<f64> {
        let idx = self.next_bucket()?;
        let (left, right) = self.split_bucket(idx)?;
        Some(self.buckets[idx].sse - left.sse - right.sse)
    }

    /// Applies the next split (adding exactly one bucket). Returns `false`
    /// when construction is saturated.
    pub fn split_once(&mut self) -> bool {
        let Some(idx) = self.next_bucket() else {
            return false;
        };
        let Some((attr, value, _)) = self.buckets[idx].best else {
            return false;
        };
        let Some((mut left, mut right)) = self.split_bucket(idx) else {
            return false;
        };
        let leaf = self.buckets[idx].node;
        // The old leaf becomes an internal node with two fresh leaves.
        let left_id = self.nodes.len() as NodeId;
        self.nodes.push(Node::Leaf { freq: 0.0 });
        let right_id = self.nodes.len() as NodeId;
        self.nodes.push(Node::Leaf { freq: 0.0 });
        self.nodes[leaf as usize] =
            Node::Internal { attr, split: value, left: left_id, right: right_id };
        left.node = left_id;
        right.node = right_id;
        self.buckets[idx] = left;
        self.buckets.push(right);
        true
    }

    /// Materializes the split tree.
    #[must_use]
    pub fn finish(&self) -> SplitTree {
        let mut nodes = self.nodes.clone();
        for bucket in &self.buckets {
            let freq: f64 = bucket.cells.iter().map(|(_, f)| f).sum();
            nodes[bucket.node as usize] = Node::Leaf { freq };
        }
        SplitTree::from_parts(self.attrs.clone(), self.domain.clone(), nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mhist::tests::grid_relation;
    use dbhist_distribution::{Relation, Schema};

    #[test]
    fn budget_and_mass_conservation() {
        let dist = grid_relation().distribution();
        for budget in [1usize, 2, 5, 10, 30, 64, 1000] {
            let tree = MhistBuilder::build(&dist, budget, SplitCriterion::MaxDiff).unwrap();
            assert!(tree.bucket_count() <= budget.min(64));
            assert!(
                (tree.total() - dist.total()).abs() < 1e-9,
                "mass conserved at budget {budget}"
            );
            assert!(tree.validate().is_ok());
        }
    }

    #[test]
    fn saturated_tree_is_exact() {
        let rel = grid_relation();
        let dist = rel.distribution();
        let tree = MhistBuilder::build(&dist, 64, SplitCriterion::MaxDiff).unwrap();
        assert_eq!(tree.bucket_count(), 64);
        for x in 0..8u32 {
            for y in 0..8u32 {
                let exact = f64::from(x + 2 * y + 1);
                let est = tree.mass_in_box(&[(0, x, x), (1, y, y)]);
                assert!((est - exact).abs() < 1e-9, "cell ({x},{y}): {est} vs {exact}");
            }
        }
    }

    #[test]
    fn error_decreases_and_reaches_zero() {
        let dist = grid_relation().distribution();
        let mut b = MhistBuilder::new(&dist, SplitCriterion::VOptimal).unwrap();
        let mut prev = b.error();
        assert!(prev > 0.0);
        while b.split_once() {
            let cur = b.error();
            assert!(cur <= prev + 1e-9, "SSE must not increase");
            prev = cur;
        }
        assert!(prev.abs() < 1e-9, "fully partitioned SSE is zero");
        assert_eq!(b.bucket_count(), 64);
    }

    #[test]
    fn peek_gain_matches_actual() {
        let dist = grid_relation().distribution();
        let mut b = MhistBuilder::new(&dist, SplitCriterion::MaxDiff).unwrap();
        for _ in 0..20 {
            let Some(gain) = b.peek_gain() else { break };
            let before = b.error();
            assert!(b.split_once());
            assert!((gain - (before - b.error())).abs() < 1e-9);
        }
    }

    #[test]
    fn rejects_bad_input() {
        let dist = grid_relation().distribution();
        assert!(MhistBuilder::build(&dist, 0, SplitCriterion::MaxDiff).is_err());
        let schema = Schema::new(vec![("x", 4)]).unwrap();
        let empty = Relation::from_rows(schema, Vec::<Vec<u32>>::new()).unwrap().distribution();
        assert!(MhistBuilder::new(&empty, SplitCriterion::MaxDiff).is_err());
    }

    #[test]
    fn one_dimensional_mhist_works() {
        // A split tree over a single attribute behaves like a 1-D histogram.
        let schema = Schema::new(vec![("x", 16)]).unwrap();
        let rows: Vec<Vec<u32>> = (0..160u32).map(|i| vec![(i * i) % 16]).collect();
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        let tree = MhistBuilder::build(&dist, 6, SplitCriterion::MaxDiff).unwrap();
        assert!(tree.bucket_count() <= 6);
        assert!((tree.mass_in_box(&[(0, 0, 15)]) - 160.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_data_gets_isolated() {
        // One heavy cell among uniform noise: with a handful of buckets the
        // MaxDiff MHIST isolates the spike and estimates it well.
        let schema = Schema::new(vec![("x", 8), ("y", 8)]).unwrap();
        let mut rows = Vec::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                rows.push(vec![x, y]);
            }
        }
        for _ in 0..500 {
            rows.push(vec![3, 3]);
        }
        let dist = Relation::from_rows(schema, rows).unwrap().distribution();
        let tree = MhistBuilder::build(&dist, 8, SplitCriterion::MaxDiff).unwrap();
        let spike = tree.mass_in_box(&[(0, 3, 3), (1, 3, 3)]);
        assert!((spike - 501.0).abs() / 501.0 < 0.25, "spike estimate {spike} should be near 501");
    }
}
